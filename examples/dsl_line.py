#!/usr/bin/env python3
"""Emulating a messy consumer access line — and dilating it.

Real emulation targets are rarely clean pipes. This example builds an
ADSL-flavoured path with every imperfection the substrate models:

* asymmetric rates (8 Mbps down / 1 Mbps up) via token-bucket shapers
  below the physical line rate (exactly how dummynet/netem shape),
* delay jitter on the downlink,
* competing CBR cross traffic ("the roommate's video call").

It then measures a download at TDF 1 and at TDF 5 over a 5x-slower
physical substrate — the guests can't tell the difference.

Run it::

    python examples/dsl_line.py
"""

import random

from repro.apps.crosstraffic import CbrSource, UdpSink
from repro.apps.iperf import IperfClient, IperfServer
from repro.core.vmm import Hypervisor
from repro.simnet.shaper import ShapedInterface
from repro.simnet.topology import Network
from repro.simnet.units import format_rate, kbps, mbps, ms
from repro.tcp.stack import TcpStack
from repro.udp.socket import UdpStack


def run_dsl(tdf: int) -> dict:
    # Perceived targets; the physical build divides rates and multiplies
    # delays by the TDF.
    down_rate = mbps(8) / tdf
    up_rate = mbps(1) / tdf
    base_delay = ms(15) * tdf
    jitter = ms(3) * tdf

    net = Network()
    isp = net.add_node("isp")
    home = net.add_node("home")
    link = net.add_link(isp, home, mbps(100) / tdf, base_delay)
    net.finalize()

    # Shape each direction below the line rate, as a DSLAM does. Burst
    # sizes are byte quantities (TDF-invariant) and the shaper buffer is
    # finite, so TCP receives loss feedback instead of bufferbloat.
    down_shaper = ShapedInterface(net.sim, link.a_to_b, down_rate / 8,
                                  burst_bytes=10_000,
                                  max_backlog_packets=40)
    up_shaper = ShapedInterface(net.sim, link.b_to_a, up_rate / 8,
                                burst_bytes=3_000,
                                max_backlog_packets=40)
    isp.set_route("home", down_shaper)
    home.set_route("isp", up_shaper)
    # Jitter on the downlink propagation.
    link.a_to_b.jitter_s = jitter
    link.a_to_b._jitter_rng = random.Random(99)

    vmm = Hypervisor(net.sim)
    vmm.create_vm("isp-vm", tdf=tdf, cpu_share=0.5, node=isp)
    home_vm = vmm.create_vm("home-vm", tdf=tdf, cpu_share=0.5, node=home)

    # The download under test.
    server = IperfServer(TcpStack(home))
    IperfClient(TcpStack(isp), "home", total_bytes=1 << 30).start()

    # The roommate's 1.5 Mbps (perceived) video stream.
    sink = UdpSink(UdpStack(home), 9000)
    cross = CbrSource(UdpStack(isp), "home", 9000,
                      rate_bps=mbps(1.5), packet_bytes=1200)
    cross.start()

    net.run(until=home_vm.clock.to_physical(10.0))  # 10 virtual seconds
    return {
        "download": server.goodput_bps(),
        "cross": sink.bytes_received * 8 / 10.0,
    }


def main() -> None:
    print("ADSL-style line: shaped 8 Mbps down, 3 ms jitter, 1.5 Mbps of")
    print("competing video traffic. Download goodput as the guest sees it:\n")
    for tdf in (1, 5):
        result = run_dsl(tdf)
        print(f"TDF {tdf}: download {format_rate(result['download'])}, "
              f"video stream {format_rate(result['cross'])}")
    print("\nSame perceived line; at TDF 5 the physical substrate only ever")
    print("carried one fifth of these rates.")


if __name__ == "__main__":
    main()
