#!/usr/bin/env python3
"""Run a benchmark *program* inside a dilated guest.

The original paper dilated whole operating systems, so any binary running
in the guest experienced warped time. The analogue here: guest programs
are generator coroutines issuing syscalls (Sleep / Compute / DiskRead /
DiskWrite / Now) against the VM's dilated clock, vCPU and virtual disk.

This example times a little "compile benchmark" — read sources, crunch,
write the artifact — three ways:

* TDF 1 (the real machine);
* TDF 10 with full resources: the guest thinks its machine got 10x faster;
* TDF 10 with CPU share and disk throttle set to 1/10: the guest cannot
  tell anything changed — which is how you dilate *only* the network.

Run it::

    python examples/guest_benchmark.py
"""

from repro.core.disk import VirtualDisk
from repro.core.guest import Compute, DiskRead, DiskWrite, GuestKernel, Now
from repro.core.vmm import Hypervisor
from repro.simnet.engine import Simulator


def compile_benchmark(results):
    """The guest program: a toy compiler pipeline."""
    start = yield Now()
    yield DiskRead(64 << 20)        # read the source tree
    read_done = yield Now()
    yield Compute(3e9)              # compile
    compiled = yield Now()
    yield DiskWrite(16 << 20)       # write the binary
    done = yield Now()
    results["read"] = read_done - start
    results["compile"] = compiled - read_done
    results["write"] = done - compiled
    results["total"] = done - start


def run(tdf, cpu_share, disk_throttle):
    sim = Simulator()
    vmm = Hypervisor(sim, host_cycles_per_second=1e9)
    vm = vmm.create_vm("bench-vm", tdf=tdf, cpu_share=cpu_share)
    vm.attach_disk(VirtualDisk(sim, bandwidth_bytes_per_s=200e6,
                               positioning_delay_s=0.004,
                               throttle=disk_throttle))
    results = {}
    GuestKernel(vm).spawn(compile_benchmark(results))
    sim.run()
    results["wall"] = sim.now
    return results


def main() -> None:
    rows = [
        ("TDF 1  (the real machine)", run(1, 1.0, 1.0)),
        ("TDF 10 (full resources)", run(10, 1.0, 1.0)),
        ("TDF 10 (1/10 CPU+disk)", run(10, 0.1, 0.1)),
    ]
    print("Toy compile benchmark, timed by the guest itself (virtual s):\n")
    print(f"{'configuration':<28} {'read':>7} {'compile':>8} "
          f"{'write':>7} {'total':>7} {'physical':>9}")
    for label, r in rows:
        print(f"{label:<28} {r['read']:>7.3f} {r['compile']:>8.3f} "
              f"{r['write']:>7.3f} {r['total']:>7.3f} {r['wall']:>8.1f}s")
    print("\nRow 2: the guest believes its hardware is 10x faster.")
    print("Row 3: compensation makes dilation invisible to the program —")
    print("only the network (not shown here) would appear faster.")


if __name__ == "__main__":
    main()
