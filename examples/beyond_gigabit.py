#!/usr/bin/env python3
"""The title experiment: emulate a 10 Gbps path on 1 Gbps "hardware".

In 2006 no testbed had 10 Gbps NICs, yet the paper ran 10 Gbps TCP
experiments — by capping the physical path at 1 Gbps and dilating guests
by 10. This example replays that: the physical bottleneck here is 1 Gbps,
but the guests (TDF 10) observe and *fill* a 10 Gbps path.

Run it::

    python examples/beyond_gigabit.py
"""

from repro.apps.iperf import IperfClient, IperfServer
from repro.apps.ping import EchoResponder, Pinger
from repro.core.vmm import Hypervisor
from repro.simnet.queues import DropTailQueue
from repro.simnet.topology import Network
from repro.simnet.units import format_rate, gbps, ms
from repro.tcp.options import TcpOptions
from repro.tcp.stack import TcpStack
from repro.udp.socket import UdpStack

PHYSICAL_LIMIT = gbps(1)      # the fastest link we "own"
TDF = 10                      # -> guests perceive 10 Gbps
PHYSICAL_DELAY = ms(20)       # -> guests perceive a 4 ms RTT


def main() -> None:
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    net.add_link(
        a, b, PHYSICAL_LIMIT, PHYSICAL_DELAY,
        queue_factory=lambda: DropTailQueue(capacity_packets=600),
    )
    net.finalize()

    vmm = Hypervisor(net.sim)
    vmm.create_vm("vm-a", tdf=TDF, cpu_share=0.5, node=a)
    vm_b = vmm.create_vm("vm-b", tdf=TDF, cpu_share=0.5, node=b)

    # Jumbo frames and a large receive window, as any 10 Gbps host would use.
    options = TcpOptions(mss=8960, receive_buffer=32 << 20)
    server = IperfServer(TcpStack(b, default_options=options), options=options)
    client = IperfClient(
        TcpStack(a, default_options=options), "b",
        total_bytes=10 << 30, options=options,
    )
    client.start()

    # An in-guest ping to show the perceived RTT too.
    EchoResponder(UdpStack(b))
    pinger = Pinger(UdpStack(a), "b", count=5, interval_s=0.3)
    pinger.start()

    net.run(until=vm_b.clock.to_physical(3.0))  # 3 virtual = 30 physical s

    mean_rtt = sum(pinger.rtts) / len(pinger.rtts)
    print(f"physical wire:        {format_rate(PHYSICAL_LIMIT)}, "
          f"{PHYSICAL_DELAY * 2 * 1e3:.0f} ms RTT")
    print(f"guest-perceived path: {format_rate(server.goodput_bps())} TCP "
          f"goodput, {mean_rtt * 1e3:.2f} ms ping RTT")
    print()
    print("The guests just ran a 10 Gbps experiment on a 1 Gbps testbed —")
    print("'to infinity and beyond'.")


if __name__ == "__main__":
    main()
