#!/usr/bin/env python3
"""Macro-benchmark walkthrough: a web server under dilation.

Reproduces the paper's web-server scenario interactively: a SPECweb99-like
document tree served over TCP, driven by open-loop Poisson load, with the
server's request processing charged to a VMM-scheduled virtual CPU.

The interesting twist is *independent resource scaling*: at TDF 10 we give
the server VM a 1/10 CPU share, so the guest perceives the same CPU but a
10x-faster network. The observable effect: the saturation knee stays at
the CPU ceiling while transfer-dominated latency shrinks.

Run it::

    python examples/web_server_dilation.py
"""

import random

from repro.apps.httpclient import OpenLoopHttpLoad
from repro.apps.httpd import WebServer
from repro.core.vmm import Hypervisor
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.tcp.stack import TcpStack
from repro.workloads.specweb import SpecWebMix


def run_site(tdf: int, compensate_cpu: bool, offered_rps: float) -> dict:
    net = Network()
    www = net.add_node("www")
    client = net.add_node("client")
    # Physical path: scaled so the guests perceive 100 Mbps / 20 ms RTT.
    net.add_link(www, client, mbps(100) / tdf, ms(10) * tdf)
    net.finalize()

    vmm = Hypervisor(net.sim, host_cycles_per_second=1e8)
    share = 0.5 / tdf if compensate_cpu else 0.5
    server_vm = vmm.create_vm("www-vm", tdf=tdf, cpu_share=share, node=www)
    vmm.create_vm("client-vm", tdf=tdf, cpu_share=0.25, node=client)

    WebServer(TcpStack(www), SpecWebMix(rng=random.Random(1)),
              cpu=server_vm.cpu)
    load = OpenLoopHttpLoad(
        TcpStack(client), "www",
        rate_per_second=offered_rps,
        mix=SpecWebMix(rng=random.Random(2)),
        rng=random.Random(3),
        duration_s=8.0,
    )
    load.start()
    net.run(until=server_vm.clock.to_physical(10.0))
    return {
        "throughput": load.throughput_rps() * 8.0 / 10.0,  # completed/8s window
        "completed": load.completed,
        "mean_ms": load.latency.summary.mean * 1e3,
    }


def main() -> None:
    print("SPECweb-like load, perceived 100 Mbps / 20 ms, CPU ceiling ~25 req/s\n")
    print(f"{'config':<38} {'done':>5} {'mean latency':>13}")
    for offered in (10, 60):
        base = run_site(tdf=1, compensate_cpu=False, offered_rps=offered)
        dilated = run_site(tdf=10, compensate_cpu=True, offered_rps=offered)
        print(f"offered {offered:>3}/s  TDF 1                    "
              f"{base['completed']:>5} {base['mean_ms']:>10.1f} ms")
        print(f"offered {offered:>3}/s  TDF 10 (CPU compensated) "
              f"{dilated['completed']:>5} {dilated['mean_ms']:>10.1f} ms")
    print("\nDilated rows match the baseline: the guests cannot tell that the")
    print("physical network under them is ten times slower.")


if __name__ == "__main__":
    main()
