#!/usr/bin/env python3
"""Swarm walkthrough: a BitTorrent swarm inside dilated guests.

Builds a star network of one tracker, one seed, and eight leechers, boots
every host as a TDF-10 guest, and downloads a 1 MiB file. Download times
are reported in the guests' virtual seconds and match what an undilated
swarm over a 10x-faster star would measure.

Run it::

    python examples/bittorrent_swarm.py
"""

import random

from repro.apps.bittorrent import PeerConfig, TorrentMeta, build_swarm
from repro.core.vmm import Hypervisor
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms


def run_swarm(tdf: int) -> list:
    leechers = 8
    net = Network()
    hub = net.add_node("hub")
    leaves = []
    for index in range(leechers + 2):  # tracker + seed + leechers
        leaf = net.add_node(f"host{index}")
        # Physical leaf links scaled so guests perceive 10 Mbps / 10 ms RTT.
        net.add_link(leaf, hub, mbps(10) / tdf, ms(5) * tdf)
        leaves.append(leaf)
    net.finalize()

    vmm = Hypervisor(net.sim)
    vms = [
        vmm.create_vm(f"vm{index}", tdf=tdf, cpu_share=1.0 / len(leaves),
                      node=leaf)
        for index, leaf in enumerate(leaves)
    ]

    swarm = build_swarm(
        tracker_node=leaves[0],
        seed_nodes=[leaves[1]],
        leecher_nodes=leaves[2:],
        meta=TorrentMeta(name="demo.torrent", total_bytes=1 << 20,
                         piece_size=64 * 1024),
        rng=random.Random(42),
        config=PeerConfig(choke_interval_s=2.0),
    )
    swarm.start()

    clock = vms[0].clock
    virtual_elapsed = 0.0
    while not swarm.all_complete() and virtual_elapsed < 300.0:
        virtual_elapsed += 5.0
        net.run(until=clock.to_physical(virtual_elapsed))
    return sorted(swarm.download_times())


def main() -> None:
    print("1 MiB torrent, 1 seed + 8 leechers, perceived 10 Mbps star\n")
    for tdf in (1, 10):
        times = run_swarm(tdf)
        formatted = ", ".join(f"{t:.1f}" for t in times)
        print(f"TDF {tdf:>2}: download times (virtual s): {formatted}")
    print("\nThe dilated swarm's timing matches the baseline — swarm dynamics")
    print("(choking rounds, rarest-first spread) all run on warped clocks.")


if __name__ == "__main__":
    main()
