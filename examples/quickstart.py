#!/usr/bin/env python3
"""Quickstart: see time dilation make a 10 Mbps wire look like 100 Mbps.

We build the smallest possible testbed — two hosts on one 10 Mbps,
20 ms-RTT link — then run the same bulk TCP transfer twice:

1. undilated (TDF 1): the guest measures ~10 Mbps and a ~20 ms RTT;
2. dilated (TDF 10): the *same physical wire*, but the guests' clocks run
   at one-tenth speed, so they measure ~100 Mbps and ~2 ms.

Run it::

    python examples/quickstart.py
"""

from repro.apps.iperf import IperfClient, IperfServer
from repro.core.vmm import Hypervisor
from repro.simnet.topology import Network
from repro.simnet.units import format_rate, format_time, mbps, ms
from repro.tcp.stack import TcpStack


def run_transfer(tdf: int) -> None:
    # --- the physical testbed: one 10 Mbps link with a 20 ms round trip.
    net = Network()
    alice = net.add_node("alice")
    bob = net.add_node("bob")
    net.add_link(alice, bob, bandwidth_bps=mbps(10), delay_s=ms(10))
    net.finalize()

    # --- the paper's contribution: boot both hosts as dilated guests.
    vmm = Hypervisor(net.sim)
    vmm.create_vm("vm-alice", tdf=tdf, cpu_share=0.5, node=alice)
    vm_bob = vmm.create_vm("vm-bob", tdf=tdf, cpu_share=0.5, node=bob)

    # --- a stock TCP stack and an iperf-style transfer; nothing in the
    #     stack knows about dilation — it just reads its node's clock.
    server = IperfServer(TcpStack(bob))
    IperfClient(TcpStack(alice), "bob").start()

    # Run for 3 guest-perceived seconds (3 * tdf physical seconds).
    net.run(until=vm_bob.clock.to_physical(3.0))

    client_rtt = ms(20) / tdf
    print(f"TDF {tdf:>3}: guest measures "
          f"{format_rate(server.goodput_bps()):>12} goodput, "
          f"expects RTT ~{format_time(client_rtt)} "
          f"(physical wire: 10 Mbps, 20 ms)")


def main() -> None:
    print("One physical 10 Mbps wire, observed by guests at two TDFs:\n")
    run_transfer(tdf=1)
    run_transfer(tdf=10)
    print("\nSame hardware, same TCP stack — ten times the apparent network.")


if __name__ == "__main__":
    main()
