#!/usr/bin/env python3
"""Pinpointing where a dilated run's history forks, packet by packet.

Aggregate equivalence checks ("goodput within 2%") tell you *that* a
dilated run diverged from its baseline; the flight recorder tells you
*where*. This example runs bulk TCP over a bottleneck impaired by a
seeded Gilbert–Elliott burst-loss model, three times:

* a TDF-1 baseline,
* a faithful TDF-10 dilation (same seed — the loss process is
  per-packet, so both runs face the identical drop pattern),
* a *broken* "dilation" where the experimenter regenerated the loss
  pattern with a fresh seed instead of reusing it.

The faithful pair diffs clean on the virtual-time axis — zero
divergences across thousands of events, warmup included. The broken
pair forks at the exact packet where the new loss pattern first differs
from the old one, and the diff report brackets that event with context
from both recordings. Finally the dilated trace is synthesized into a
pcap (nanosecond magic, virtual-time timestamps) for any header-level
reader.

Run it::

    python examples/trace_divergence.py
"""

import os
import tempfile

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bulk
from repro.simnet.impairments import ImpairmentSpec
from repro.simnet.units import format_rate, mbps, ms
from repro.trace.diff import diff_traces, summarize_events
from repro.trace.events import save_jsonl
from repro.trace.pcap import export_pcap, read_pcap
from repro.trace.spec import TraceSpec

PERCEIVED = NetworkProfile.from_rtt(mbps(10), ms(20))
TRACE = TraceSpec(point="bottleneck", tcp=True)


def capture(tdf, seed):
    impair = ImpairmentSpec(kind="gilbert", rate=0.01, burst=4.0, seed=seed)
    result = run_bulk(PERCEIVED, tdf=tdf, duration_s=2.0, warmup_s=0.5,
                      impair=impair, trace=TRACE)
    return result, result.trace_events


def main():
    print("Capturing bulk TCP over a seeded Gilbert-Elliott bottleneck...")
    base_result, base_events = capture(tdf=1, seed=42)
    dilated_result, dilated_events = capture(tdf=10, seed=42)
    broken_result, broken_events = capture(tdf=10, seed=7)

    for label, result in (("TDF 1 (baseline)", base_result),
                          ("TDF 10 (faithful)", dilated_result),
                          ("TDF 10 (broken seed)", broken_result)):
        print(f"  {label:22s} goodput {format_rate(result.goodput_bps):>12s}"
              f"  retransmits {result.retransmits}"
              f"  events {len(result.trace_events)}")

    summary = summarize_events(dilated_events)
    drops = summary["drops_by_reason"]
    print(f"\nDilated recording: {summary['events']} events, "
          f"drops by reason: {drops}")

    # --- faithful dilation: zero divergences ---------------------------
    clean = diff_traces(dilated_events, base_events)
    print("\n== TDF 10 vs TDF 1 baseline (same seed) ==")
    print(clean.render(label_a="tdf10", label_b="tdf1"))
    assert clean.identical, "faithful dilation must diff clean"

    # --- broken run: the first forked packet, with context -------------
    broken = diff_traces(broken_events, base_events)
    print("\n== broken TDF 10 vs TDF 1 baseline (regenerated seed) ==")
    print(broken.render(label_a="broken", label_b="tdf1"))
    assert not broken.identical, "a different loss pattern must diverge"

    # --- artifacts: JSONL recordings + a virtual-time pcap -------------
    out = tempfile.mkdtemp(prefix="trace-divergence-")
    jsonl = os.path.join(out, "dilated.jsonl")
    save_jsonl(dilated_events, jsonl)
    pcap = os.path.join(out, "dilated.pcap")
    count = export_pcap(dilated_events, pcap, time_base="virtual")
    header, records = read_pcap(pcap)
    print(f"\nArtifacts in {out}:")
    print(f"  {jsonl}: {len(dilated_events)} events")
    first = records[0]
    print(f"  {pcap}: {count} packets, magic {header['magic']:#x}, "
          f"first timestamp {first['ts_sec']}.{first['ts_nsec']:09d}s virtual")


if __name__ == "__main__":
    main()
