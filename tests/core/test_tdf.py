"""Unit tests for the TDF value object."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.tdf import TDF, as_tdf
from repro.simnet.errors import ConfigurationError


def test_construct_from_int():
    assert TDF(10).value == Fraction(10)


def test_construct_from_float_is_exactish():
    assert TDF(0.1).value == Fraction(1, 10)


def test_construct_from_string():
    assert TDF("3/2").value == Fraction(3, 2)


def test_construct_from_fraction_and_tdf():
    assert TDF(Fraction(5, 2)).value == Fraction(5, 2)
    assert TDF(TDF(7)).value == Fraction(7)


@pytest.mark.parametrize("bad", [0, -1, -0.5, "0", Fraction(-1, 3)])
def test_rejects_nonpositive(bad):
    with pytest.raises(ConfigurationError):
        TDF(bad)


def test_rejects_nonsense_type():
    with pytest.raises(ConfigurationError):
        TDF(object())


def test_immutability():
    tdf = TDF(2)
    with pytest.raises(AttributeError):
        tdf._value = Fraction(3)


def test_conversions():
    tdf = TDF(10)
    assert tdf.virtual_to_physical(1.0) == 10.0
    assert tdf.physical_to_virtual(10.0) == 1.0
    assert tdf.scale_rate(100e6) == 1e9


def test_identity():
    assert TDF(1).is_identity()
    assert not TDF(2).is_identity()


def test_equality_and_hash():
    assert TDF(2) == TDF(2)
    assert TDF(2) == 2
    assert TDF(2) == 2.0
    assert TDF(2) != TDF(3)
    assert hash(TDF(2)) == hash(TDF("2"))
    assert (TDF(2) == "2") is False or True  # NotImplemented path falls back


def test_repr():
    assert repr(TDF(10)) == "TDF(10)"
    assert repr(TDF("3/2")) == "TDF(3/2)"


def test_as_tdf_passthrough():
    tdf = TDF(4)
    assert as_tdf(tdf) is tdf
    assert as_tdf(4) == tdf


@given(st.integers(min_value=1, max_value=1000), st.floats(min_value=0, max_value=1e6))
def test_property_roundtrip_exact_for_integers(k, duration):
    tdf = TDF(k)
    assert tdf.physical_to_virtual(tdf.virtual_to_physical(duration)) == pytest.approx(
        duration, rel=1e-12, abs=1e-12
    )
