"""Unit tests for the guest kernel and its dilation behaviour."""

import pytest

from repro.core.disk import VirtualDisk
from repro.core.guest import (
    Compute,
    DiskRead,
    DiskWrite,
    GuestKernel,
    Join,
    Now,
    Sleep,
)
from repro.core.vmm import Hypervisor
from repro.simnet.engine import Simulator
from repro.simnet.errors import ConfigurationError


def boot(tdf=1, cpu_share=1.0, host_cps=1e9, with_disk=False):
    sim = Simulator()
    vmm = Hypervisor(sim, host_cycles_per_second=host_cps)
    vm = vmm.create_vm("g0", tdf=tdf, cpu_share=cpu_share)
    if with_disk:
        vm.attach_disk(VirtualDisk(sim, bandwidth_bytes_per_s=100e6,
                                   positioning_delay_s=0.0))
    return sim, GuestKernel(vm)


def test_empty_program_exits():
    sim, kernel = boot()

    def program():
        return
        yield  # pragma: no cover - makes this a generator

    process = kernel.spawn(program())
    sim.run()
    assert not process.alive
    assert process.error is None
    assert kernel.running == 0
    assert kernel.exited == [process]


def test_sleep_advances_virtual_time():
    sim, kernel = boot()
    result = {}

    def program():
        start = yield Now()
        yield Sleep(1.5)
        result["elapsed"] = (yield Now()) - start

    kernel.spawn(program())
    sim.run()
    assert result["elapsed"] == pytest.approx(1.5)


def test_compute_charges_vcpu():
    sim, kernel = boot(host_cps=1e9)
    result = {}

    def program():
        start = yield Now()
        yield Compute(2e9)
        result["elapsed"] = (yield Now()) - start

    kernel.spawn(program())
    sim.run()
    assert result["elapsed"] == pytest.approx(2.0)


def test_dilated_program_measures_scaled_times():
    """The paper's guest-benchmark behaviour: at TDF 10 with full CPU,
    compute appears 10x faster while sleeps are honoured in virtual time."""
    sim, kernel = boot(tdf=10, host_cps=1e9)
    result = {}

    def program():
        start = yield Now()
        yield Compute(2e9)            # 2 phys s = 0.2 virtual s
        mid = yield Now()
        yield Sleep(1.0)              # 1 virtual s = 10 phys s
        result["compute"] = mid - start
        result["total"] = (yield Now()) - start

    kernel.spawn(program())
    sim.run()
    assert result["compute"] == pytest.approx(0.2)
    assert result["total"] == pytest.approx(1.2)
    assert sim.now == pytest.approx(12.0)  # physical: 2 + 10


def test_disk_io_round_trip():
    sim, kernel = boot(with_disk=True)
    result = {}

    def program():
        start = yield Now()
        n = yield DiskRead(100_000_000)   # 1 s at 100 MB/s
        result["bytes"] = n
        yield DiskWrite(50_000_000)
        result["elapsed"] = (yield Now()) - start

    kernel.spawn(program())
    sim.run()
    assert result["bytes"] == 100_000_000
    assert result["elapsed"] == pytest.approx(1.5)


def test_disk_without_device_crashes_process():
    sim, kernel = boot(with_disk=False)

    def program():
        yield DiskRead(1000)

    process = kernel.spawn(program())
    sim.run()
    assert process.error is not None
    assert not process.alive


def test_unknown_syscall_crashes_process():
    sim, kernel = boot()

    def program():
        yield "make me a sandwich"

    process = kernel.spawn(program())
    sim.run()
    assert process.error is not None


def test_program_exception_is_captured():
    sim, kernel = boot()

    def program():
        yield Sleep(0.1)
        raise RuntimeError("boom")

    process = kernel.spawn(program())
    sim.run()
    assert isinstance(process.error, RuntimeError)
    assert process.runtime() == pytest.approx(0.1)


def test_negative_sleep_crashes():
    sim, kernel = boot()

    def program():
        yield Sleep(-1)

    process = kernel.spawn(program())
    sim.run()
    assert process.error is not None


def test_two_processes_share_the_vcpu_fifo():
    sim, kernel = boot(host_cps=1e9)
    finished = {}

    def worker(name):
        yield Compute(1e9)
        finished[name] = yield Now()

    kernel.spawn(worker("a"), name="a")
    kernel.spawn(worker("b"), name="b")
    sim.run()
    # Single core: second submission runs after the first completes.
    assert finished["a"] == pytest.approx(1.0)
    assert finished["b"] == pytest.approx(2.0)


def test_sleeping_process_does_not_block_cpu():
    sim, kernel = boot(host_cps=1e9)
    finished = {}

    def sleeper():
        yield Sleep(5.0)
        finished["sleeper"] = yield Now()

    def worker():
        yield Compute(1e9)
        finished["worker"] = yield Now()

    kernel.spawn(sleeper(), name="sleeper")
    kernel.spawn(worker(), name="worker")
    sim.run()
    assert finished["worker"] == pytest.approx(1.0)
    assert finished["sleeper"] == pytest.approx(5.0)


def test_duplicate_name_rejected():
    sim, kernel = boot()

    def program():
        yield Sleep(1.0)

    kernel.spawn(program(), name="p")
    with pytest.raises(ConfigurationError):
        kernel.spawn(program(), name="p")


def test_on_exit_callback_and_counters():
    sim, kernel = boot()
    exits = []

    def program():
        yield Sleep(0.2)
        yield Sleep(0.3)

    process = kernel.spawn(program(), on_exit=exits.append)
    sim.run()
    assert exits == [process]
    assert process.syscalls == 2
    assert process.runtime() == pytest.approx(0.5)


def test_join_waits_for_target_exit():
    sim, kernel = boot()
    order = []

    def worker():
        yield Sleep(2.0)
        order.append(("worker-done", kernel.vm.clock.now()))

    def waiter(target):
        joined = yield Join(target)
        order.append(("joined", kernel.vm.clock.now(), joined.name))

    worker_proc = kernel.spawn(worker(), name="worker")
    kernel.spawn(waiter(worker_proc), name="waiter")
    sim.run()
    assert order[0][0] == "worker-done"
    assert order[1][0] == "joined"
    assert order[1][1] == pytest.approx(2.0)
    assert order[1][2] == "worker"


def test_join_already_exited_resolves_immediately():
    sim, kernel = boot()

    def quick():
        return
        yield  # pragma: no cover

    quick_proc = kernel.spawn(quick(), name="quick")
    sim.run()
    assert not quick_proc.alive
    result = {}

    def waiter():
        joined = yield Join(quick_proc)
        result["joined"] = joined

    kernel.spawn(waiter(), name="late-waiter")
    sim.run()
    assert result["joined"] is quick_proc


def test_join_crashed_process_exposes_error():
    sim, kernel = boot()

    def crasher():
        yield Sleep(0.1)
        raise ValueError("nope")

    crash_proc = kernel.spawn(crasher(), name="crasher")
    seen = {}

    def waiter():
        joined = yield Join(crash_proc)
        seen["error"] = joined.error

    kernel.spawn(waiter(), name="waiter")
    sim.run()
    assert isinstance(seen["error"], ValueError)


def test_join_self_crashes():
    sim, kernel = boot()
    holder = {}

    def selfish():
        yield Join(holder["me"])

    holder["me"] = kernel.spawn(selfish(), name="selfish")
    sim.run()
    assert holder["me"].error is not None


def test_fork_join_fanout():
    """A parent forks workers and joins them all — total time is the max,
    not the sum, of their sleeps (the CPU is untouched)."""
    sim, kernel = boot()
    result = {}

    def worker(duration):
        yield Sleep(duration)

    def parent():
        start = yield Now()
        children = [
            kernel.spawn(worker(d), name=f"child{i}")
            for i, d in enumerate((1.0, 3.0, 2.0))
        ]
        for child in children:
            yield Join(child)
        result["elapsed"] = (yield Now()) - start

    kernel.spawn(parent(), name="parent")
    sim.run()
    assert result["elapsed"] == pytest.approx(3.0)


def test_compensated_guest_sees_native_compute_but_fast_network_clock():
    """TDF 10, CPU share 1/10: compute timing unchanged (the independent
    scaling recipe), while virtual time still runs at 1/10 physical."""
    sim, kernel = boot(tdf=10, cpu_share=0.1, host_cps=1e9)
    result = {}

    def program():
        start = yield Now()
        yield Compute(1e9)
        result["compute"] = (yield Now()) - start

    kernel.spawn(program())
    sim.run()
    assert result["compute"] == pytest.approx(1.0)
    assert sim.now == pytest.approx(10.0)
