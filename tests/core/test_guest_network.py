"""Tests for the guest kernel's network syscalls."""

import pytest

from repro.core.guest import (
    CloseSock,
    Connect,
    Flush,
    GuestKernel,
    Now,
    Recv,
    SendOn,
)
from repro.core.vmm import Hypervisor
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.tcp.stack import TcpStack
from tests.helpers import Collector


def build(tdf=1):
    net = Network()
    guest_node = net.add_node("guest")
    server_node = net.add_node("server")
    net.add_link(guest_node, server_node, mbps(10), ms(10))
    net.finalize()
    vmm = Hypervisor(net.sim)
    vm = vmm.create_vm("g", tdf=tdf, cpu_share=0.5, node=guest_node)
    vmm.create_vm("s", tdf=tdf, cpu_share=0.5, node=server_node)
    kernel = GuestKernel(vm)
    kernel.use_tcp(TcpStack(guest_node))
    server_stack = TcpStack(server_node)
    return net, kernel, server_stack, vm


def test_connect_send_flush_close():
    net, kernel, server_stack, vm = build()
    events = Collector()
    server_stack.listen(80, events.on_accept, on_data=events.on_data)
    result = {}

    def program():
        sock = yield Connect("server", 80)
        yield SendOn(sock, 100_000)
        acked = yield Flush(sock)
        result["acked"] = acked
        yield CloseSock(sock)
        result["done_at"] = yield Now()

    process = kernel.spawn(program())
    net.run(until=60.0)
    assert process.error is None
    assert result["acked"] == 100_000
    assert events.total_bytes == 100_000
    assert result["done_at"] > 0


def test_recv_blocks_until_bytes_arrive():
    net, kernel, server_stack, vm = build()

    def on_accept(server_sock):
        # Server streams a response after a half-second think.
        server_sock.node.clock.call_in(0.5, lambda: server_sock.send(30_000))

    server_stack.listen(80, on_accept)
    result = {}

    def program():
        sock = yield Connect("server", 80)
        start = yield Now()
        total = yield Recv(sock, 30_000)
        result["waited"] = (yield Now()) - start
        result["total"] = total

    kernel.spawn(program())
    net.run(until=30.0)
    assert result["total"] == 30_000
    assert result["waited"] > 0.5


def test_request_response_echo():
    """A full RPC from guest-program code: send, server doubles it back."""
    net, kernel, server_stack, vm = build()

    def on_accept(server_sock):
        state = {"got": 0}

        def on_data(sock, n):
            state["got"] += n

        server_sock.on_data = on_data

        def maybe_reply(sock):
            sock.send(2 * state["got"])

        server_sock.on_close = maybe_reply

    server_stack.listen(80, on_accept)
    result = {}

    def program():
        sock = yield Connect("server", 80)
        yield SendOn(sock, 5000)
        yield Flush(sock)
        yield CloseSock(sock)
        yield Recv(sock, 10_000)
        result["ok"] = True

    kernel.spawn(program())
    net.run(until=30.0)
    assert result.get("ok")


def test_connect_refused_crashes_process():
    net, kernel, server_stack, vm = build()  # no listener on port 81

    def program():
        yield Connect("server", 81)

    process = kernel.spawn(program())
    net.run(until=10.0)
    assert process.error is not None


def test_connect_without_stack_crashes():
    net = Network()
    node = net.add_node("n")
    other = net.add_node("m")
    net.add_link(node, other, mbps(1), ms(1))
    net.finalize()
    vmm = Hypervisor(net.sim)
    kernel = GuestKernel(vmm.create_vm("g", node=node))

    def program():
        yield Connect("m", 80)

    process = kernel.spawn(program())
    net.run(until=1.0)
    assert process.error is not None


def test_dilated_guest_network_program_times_scale():
    """The same program at TDF 10 over the rescaled path reports the same
    virtual transfer time as the baseline."""
    def run(tdf, bandwidth_scale, delay_scale):
        net = Network()
        guest_node = net.add_node("guest")
        server_node = net.add_node("server")
        net.add_link(guest_node, server_node,
                     mbps(10) * bandwidth_scale, ms(10) * delay_scale)
        net.finalize()
        vmm = Hypervisor(net.sim)
        vm = vmm.create_vm("g", tdf=tdf, cpu_share=0.5, node=guest_node)
        vmm.create_vm("s", tdf=tdf, cpu_share=0.5, node=server_node)
        kernel = GuestKernel(vm)
        kernel.use_tcp(TcpStack(guest_node))
        events = Collector()
        TcpStack(server_node).listen(80, events.on_accept,
                                     on_data=events.on_data)
        result = {}

        def program():
            start = yield Now()
            sock = yield Connect("server", 80)
            yield SendOn(sock, 500_000)
            yield Flush(sock)
            result["elapsed"] = (yield Now()) - start

        kernel.spawn(program())
        net.run(until=120.0)
        return result["elapsed"]

    baseline = run(1, 1, 1)
    dilated = run(10, 1 / 10, 10)
    assert dilated == pytest.approx(baseline, rel=1e-6)
