"""Unit tests for VirtualMachine and Hypervisor."""

import pytest

from repro.core.vmm import Hypervisor
from repro.simnet.engine import Simulator
from repro.simnet.errors import ConfigurationError
from repro.simnet.node import Node


def test_create_vm_defaults():
    sim = Simulator()
    vmm = Hypervisor(sim)
    vm = vmm.create_vm("g0")
    assert vm.tdf.is_identity()
    assert vm.cpu.share == 1.0


def test_duplicate_vm_name_rejected():
    vmm = Hypervisor(Simulator())
    vmm.create_vm("g0", cpu_share=0.5)
    with pytest.raises(ConfigurationError):
        vmm.create_vm("g0", cpu_share=0.25)


def test_cpu_overcommit_rejected():
    vmm = Hypervisor(Simulator())
    vmm.create_vm("g0", cpu_share=0.7)
    with pytest.raises(ConfigurationError):
        vmm.create_vm("g1", cpu_share=0.5)


def test_cpu_shares_exactly_full_allowed():
    vmm = Hypervisor(Simulator())
    vmm.create_vm("g0", cpu_share=0.5)
    vmm.create_vm("g1", cpu_share=0.5)


def test_resize_share_respects_total():
    vmm = Hypervisor(Simulator())
    vmm.create_vm("g0", cpu_share=0.5)
    vmm.create_vm("g1", cpu_share=0.5)
    with pytest.raises(ConfigurationError):
        vmm.set_cpu_share("g1", 0.6)
    vmm.set_cpu_share("g1", 0.3)
    assert vmm.vm("g1").cpu.share == pytest.approx(0.3)


def test_vm_lookup_missing():
    vmm = Hypervisor(Simulator())
    with pytest.raises(ConfigurationError):
        vmm.vm("ghost")


def test_invalid_host_rate():
    with pytest.raises(ConfigurationError):
        Hypervisor(Simulator(), host_cycles_per_second=0)


def test_attach_node_swaps_clock():
    sim = Simulator()
    vmm = Hypervisor(sim)
    node = Node(sim, "host0")
    original_clock = node.clock
    vm = vmm.create_vm("g0", tdf=10, node=node)
    assert node.clock is vm.clock
    assert node.clock is not original_clock


def test_attach_node_twice_rejected():
    sim = Simulator()
    vmm = Hypervisor(sim)
    vm = vmm.create_vm("g0")
    vm.attach_node(Node(sim, "a"))
    with pytest.raises(ConfigurationError):
        vm.attach_node(Node(sim, "b"))


def test_uptime_virtual_vs_physical():
    sim = Simulator()
    vmm = Hypervisor(sim)
    vm = vmm.create_vm("g0", tdf=10)
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert vm.physical_uptime() == pytest.approx(10.0)
    assert vm.uptime() == pytest.approx(1.0)


def test_set_tdf_via_hypervisor():
    sim = Simulator()
    vmm = Hypervisor(sim)
    vm = vmm.create_vm("g0", tdf=10)
    vmm.set_tdf("g0", 5)
    assert float(vm.tdf) == 5.0


def test_perceived_cpu_speed():
    sim = Simulator()
    vmm = Hypervisor(sim, host_cycles_per_second=2e9)
    vm = vmm.create_vm("g0", tdf=10, cpu_share=0.1)
    # 2e9 * 0.1 share * 10 tdf = 2e9: compensated back to native speed.
    assert vm.perceived_cpu_speed() == pytest.approx(2e9)


def test_vm_timers_are_dilated():
    sim = Simulator()
    vmm = Hypervisor(sim)
    vm = vmm.create_vm("g0", tdf=4)
    fired = []
    vm.timers.after(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [pytest.approx(4.0)]
