"""Dilation equivalence with RED queues at the bottleneck.

RED drops probabilistically from a seeded RNG; as long as both runs build
their queues from the same seed, the dilated run sees the same drop
decisions at the same *virtual* instants and must match the baseline.
"""

import random

import pytest

from repro.core.vmm import Hypervisor
from repro.simnet.queues import REDQueue
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.tcp.stack import TcpStack


def run_red_transfer(bandwidth_bps, delay_s, tdf, duration_virtual, seed,
                     warmup_virtual=0.0):
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    queue_rng = random.Random(seed)
    mean_packet_time = 1500 * 8 / bandwidth_bps  # physical, so it scales
    net.add_link(
        a, b, bandwidth_bps, delay_s,
        queue_factory=lambda: REDQueue(
            capacity_packets=200, min_th=20, max_th=80, rng=queue_rng,
            clock=net.sim, mean_packet_time_s=mean_packet_time,
        ),
    )
    net.finalize()
    vmm = Hypervisor(net.sim)
    vmm.create_vm("vma", tdf=tdf, cpu_share=0.5, node=a)
    vm_b = vmm.create_vm("vmb", tdf=tdf, cpu_share=0.5, node=b)
    received = {"bytes": 0}
    stack_b = TcpStack(b)
    stack_b.listen(80, lambda s: None,
                   on_data=lambda s, n: received.__setitem__(
                       "bytes", received["bytes"] + n))
    client = TcpStack(a).connect("b", 80)
    client.send(1 << 30)
    at_warmup = 0
    if warmup_virtual > 0:
        net.run(until=vm_b.clock.to_physical(warmup_virtual))
        at_warmup = received["bytes"]
    net.run(until=vm_b.clock.to_physical(duration_virtual))
    return received["bytes"] - at_warmup, client.retransmits


def test_red_marks_equivalently_under_dilation():
    base_bytes, base_retx = run_red_transfer(mbps(20), ms(10), 1, 4.0, seed=5)
    dil_bytes, dil_retx = run_red_transfer(mbps(2), ms(100), 10, 4.0, seed=5)
    assert dil_bytes == pytest.approx(base_bytes, rel=1e-6)
    assert dil_retx == base_retx
    assert base_retx > 0  # RED actually dropped something


def test_red_steady_state_fills_pipe():
    """With idle decay in place, RED's steady state fills most of the pipe
    (without it, the stale average keeps early-dropping an empty queue)."""
    bytes_received, retransmits = run_red_transfer(
        mbps(20), ms(10), 1, 6.0, seed=3, warmup_virtual=2.0
    )
    goodput = bytes_received * 8 / 4.0
    assert goodput > 0.7 * mbps(20)
