"""Unit tests for the guest timer service."""

import pytest

from repro.core.clock import DilatedClock
from repro.core.timer import TimerService
from repro.simnet.clock import PhysicalClock
from repro.simnet.engine import Simulator
from repro.simnet.errors import ConfigurationError, SchedulingError


def make_service(tdf=None):
    sim = Simulator()
    clock = PhysicalClock(sim) if tdf is None else DilatedClock(sim, tdf)
    return sim, TimerService(clock)


def test_one_shot_fires_once():
    sim, timers = make_service()
    fired = []
    timer = timers.after(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.0]
    assert timer.fired
    assert not timer.active


def test_one_shot_cancel():
    sim, timers = make_service()
    fired = []
    timer = timers.after(1.0, lambda: fired.append(1))
    assert timer.active
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.active


def test_cancel_idempotent_and_after_fire():
    sim, timers = make_service()
    timer = timers.after(1.0, lambda: None)
    sim.run()
    timer.cancel()
    timer.cancel()


def test_negative_delay_rejected():
    _, timers = make_service()
    with pytest.raises(SchedulingError):
        timers.after(-1.0, lambda: None)


def test_dilated_one_shot_physical_expansion():
    sim, timers = make_service(tdf=10)
    fired = []
    timers.after(0.010, lambda: fired.append(sim.now))  # 10 ms virtual
    sim.run()
    assert fired == [pytest.approx(0.100)]  # 100 ms physical


def test_periodic_ticks_and_ordinals():
    sim, timers = make_service()
    ticks = []
    timers.every(0.5, lambda n: ticks.append((n, sim.now)), max_ticks=4)
    sim.run()
    assert ticks == [
        (1, pytest.approx(0.5)),
        (2, pytest.approx(1.0)),
        (3, pytest.approx(1.5)),
        (4, pytest.approx(2.0)),
    ]


def test_periodic_does_not_drift():
    sim, timers = make_service()
    times = []
    timers.every(0.1, lambda n: times.append(sim.now), max_ticks=100)
    sim.run()
    # Tick n lands exactly at n * period (re-arm from deadline, not from now).
    assert times[-1] == pytest.approx(10.0, abs=1e-9)


def test_periodic_stop_from_callback():
    sim, timers = make_service()
    ticks = []

    def on_tick(n):
        ticks.append(n)
        if n == 3:
            handle.stop()

    handle = timers.every(1.0, on_tick)
    sim.run()
    assert ticks == [1, 2, 3]
    assert handle.ticks == 3


def test_periodic_stop_external():
    sim, timers = make_service()
    ticks = []
    handle = timers.every(1.0, lambda n: ticks.append(n))
    sim.schedule(2.5, handle.stop)
    sim.run()
    assert ticks == [1, 2]


def test_periodic_rejects_nonpositive_period():
    _, timers = make_service()
    with pytest.raises(ConfigurationError):
        timers.every(0.0, lambda n: None)


def test_dilated_periodic_tick_spacing():
    """A TDF-10 guest's 10 ms tick arrives every 100 ms physical.

    This is exactly the dilated timer-interrupt behaviour of the paper's
    Xen patch (guest HZ unchanged in virtual time, scaled in physical time).
    """
    sim, timers = make_service(tdf=10)
    times = []
    timers.every(0.010, lambda n: times.append(sim.now), max_ticks=3)
    sim.run()
    assert times == [pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.3)]


def test_reset_pushes_deadline_out():
    """The retransmission-timer pattern: every ACK re-arms the timeout."""
    sim, timers = make_service()
    fired = []
    timer = timers.after(1.0, lambda: fired.append(sim.now))
    sim.schedule(0.5, lambda: timer.reset(1.0))
    sim.run()
    assert fired == [pytest.approx(1.5)]
    assert timer.fired


def test_reset_revives_cancelled_timer():
    sim, timers = make_service()
    fired = []
    timer = timers.after(1.0, lambda: fired.append(sim.now))
    timer.cancel()
    timer.reset(2.0)
    assert timer.active
    sim.run()
    assert fired == [pytest.approx(2.0)]


def test_reset_rearms_fired_timer():
    sim, timers = make_service()
    fired = []
    timer = timers.after(1.0, lambda: fired.append(sim.now))
    sim.run()
    timer.reset(1.0)
    assert timer.active and not timer.fired
    sim.run()
    assert fired == [pytest.approx(1.0), pytest.approx(2.0)]


def test_reset_negative_delay_rejected():
    _, timers = make_service()
    timer = timers.after(1.0, lambda: None)
    with pytest.raises(SchedulingError):
        timer.reset(-0.1)


def test_reset_converts_virtual_delay():
    """reset() goes through the dilated clock exactly like after()."""
    sim, timers = make_service(tdf=10)
    fired = []
    timer = timers.after(0.010, lambda: fired.append(sim.now))
    timer.reset(0.020)  # 20 ms virtual -> 200 ms physical
    sim.run()
    assert fired == [pytest.approx(0.200)]
    assert timer.fired


def test_periodic_reuses_one_engine_event():
    """Re-arming re-keys the same Event: the heap never bloats with one
    dead entry per tick."""
    sim, timers = make_service()
    timers.every(0.1, lambda n: None, max_ticks=200)
    sim.run()
    assert sim.events_processed == 200
    assert sim.heap_len() <= 2  # no dead-entry trail from 200 re-arms
