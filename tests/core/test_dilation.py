"""Unit tests for the resource-scaling arithmetic (Table 1 math)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.dilation import (
    NetworkProfile,
    cpu_share_for_constant_speed,
    perceived,
    physical_for,
    resource_scaling_rows,
)
from repro.simnet.errors import ConfigurationError
from repro.simnet.units import mbps, ms


def test_profile_rtt_and_bdp():
    profile = NetworkProfile(bandwidth_bps=mbps(100), delay_s=ms(20))
    assert profile.rtt_s == pytest.approx(0.040)
    assert profile.bandwidth_delay_product_bits == pytest.approx(100e6 * 0.040)


def test_profile_from_rtt():
    profile = NetworkProfile.from_rtt(mbps(10), rtt_s=ms(100))
    assert profile.delay_s == pytest.approx(0.050)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"bandwidth_bps": 0, "delay_s": 0.1},
        {"bandwidth_bps": -1, "delay_s": 0.1},
        {"bandwidth_bps": 1e6, "delay_s": -0.1},
        {"bandwidth_bps": 1e6, "delay_s": 0.1, "cpu_cycles_per_second": 0},
    ],
)
def test_profile_validation(kwargs):
    with pytest.raises(ConfigurationError):
        NetworkProfile(**kwargs)


def test_perceived_scales_all_axes():
    physical = NetworkProfile(mbps(100), ms(100), cpu_cycles_per_second=1e9)
    view = perceived(physical, tdf=10)
    assert view.bandwidth_bps == pytest.approx(mbps(1000))
    assert view.delay_s == pytest.approx(ms(10))
    assert view.cpu_cycles_per_second == pytest.approx(1e10)


def test_perceived_with_compensating_cpu_share():
    physical = NetworkProfile(mbps(100), ms(100), cpu_cycles_per_second=1e9)
    view = perceived(physical, tdf=10, cpu_share=0.1)
    assert view.cpu_cycles_per_second == pytest.approx(1e9)


def test_physical_for_needs_less_hardware():
    target = NetworkProfile(bandwidth_bps=mbps(1000), delay_s=ms(1))
    needed = physical_for(target, tdf=10)
    assert needed.bandwidth_bps == pytest.approx(mbps(100))
    assert needed.delay_s == pytest.approx(ms(10))


def test_cpu_share_for_constant_speed():
    assert cpu_share_for_constant_speed(10) == pytest.approx(0.1)
    assert cpu_share_for_constant_speed(1) == 1.0


def test_cpu_none_propagates():
    target = NetworkProfile(mbps(10), ms(5))
    assert physical_for(target, 10).cpu_cycles_per_second is None
    assert perceived(target, 10).cpu_cycles_per_second is None


@given(
    st.floats(min_value=1e3, max_value=1e12),
    st.floats(min_value=0, max_value=10),
    st.integers(min_value=1, max_value=1000),
)
def test_property_perceived_inverts_physical_for(bandwidth, delay, tdf):
    target = NetworkProfile(bandwidth, delay)
    back = perceived(physical_for(target, tdf), tdf)
    assert back.bandwidth_bps == pytest.approx(target.bandwidth_bps, rel=1e-9)
    assert back.delay_s == pytest.approx(target.delay_s, rel=1e-9, abs=1e-15)


def test_resource_scaling_rows_table1():
    physical = NetworkProfile(mbps(100), ms(10), cpu_cycles_per_second=1e9)
    rows = resource_scaling_rows(physical, tdfs=[1, 10, 100])
    assert len(rows) == 3
    assert rows[0].perceived_bandwidth_bps == pytest.approx(mbps(100))
    assert rows[1].perceived_bandwidth_bps == pytest.approx(mbps(1000))
    assert rows[2].perceived_bandwidth_bps == pytest.approx(mbps(10000))
    assert rows[2].perceived_delay_s == pytest.approx(ms(0.1))
    assert rows[1].physical_bandwidth_bps == pytest.approx(mbps(100))
