"""Unit tests for the virtual disk and its dilation behaviour."""

import pytest

from repro.core.clock import DilatedClock
from repro.core.disk import DiskRequest, VirtualDisk
from repro.core.vmm import Hypervisor
from repro.simnet.engine import Simulator
from repro.simnet.errors import ConfigurationError


def test_service_time_components():
    sim = Simulator()
    disk = VirtualDisk(sim, bandwidth_bytes_per_s=100e6,
                       positioning_delay_s=0.010)
    # 10 ms positioning + 1 MB / 100 MB/s = 10 ms transfer.
    assert disk.service_time(1_000_000) == pytest.approx(0.020)


def test_request_completes_at_service_time():
    sim = Simulator()
    disk = VirtualDisk(sim, bandwidth_bytes_per_s=100e6,
                       positioning_delay_s=0.010)
    done = []
    disk.read(1_000_000, on_complete=lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(0.020)]


def test_fifo_queueing():
    sim = Simulator()
    disk = VirtualDisk(sim, bandwidth_bytes_per_s=100e6,
                       positioning_delay_s=0.010)
    order = []
    disk.read(1_000_000, on_complete=lambda: order.append(("r", sim.now)))
    disk.write(1_000_000, on_complete=lambda: order.append(("w", sim.now)))
    assert disk.queue_depth == 1
    sim.run()
    assert order == [("r", pytest.approx(0.020)), ("w", pytest.approx(0.040))]


def test_counters():
    sim = Simulator()
    disk = VirtualDisk(sim)
    disk.read(4096)
    disk.write(8192)
    sim.run()
    assert disk.requests_completed == 2
    assert disk.bytes_transferred == 12288


def test_throttle_slows_device():
    sim = Simulator()
    disk = VirtualDisk(sim, bandwidth_bytes_per_s=100e6,
                       positioning_delay_s=0.010, throttle=0.1)
    # Both positioning and transfer stretch by 10x.
    assert disk.service_time(1_000_000) == pytest.approx(0.200)


def test_dilated_guest_perceives_faster_disk():
    """TDF 10, full throttle: the guest measures 10x disk bandwidth."""
    sim = Simulator()
    clock = DilatedClock(sim, tdf=10)
    disk = VirtualDisk(sim, bandwidth_bytes_per_s=100e6,
                       positioning_delay_s=0.0)
    measured = []
    start = clock.now()
    disk.read(100_000_000, on_complete=lambda: measured.append(clock.now() - start))
    sim.run()
    # 1 physical second -> 0.1 virtual seconds -> 1 GB/s perceived.
    assert measured == [pytest.approx(0.1)]


def test_throttle_compensation_keeps_perceived_speed():
    """TDF 10 with throttle 1/10: perceived disk speed unchanged."""
    sim = Simulator()
    clock = DilatedClock(sim, tdf=10)
    disk = VirtualDisk(sim, bandwidth_bytes_per_s=100e6,
                       positioning_delay_s=0.0, throttle=0.1)
    measured = []
    start = clock.now()
    disk.read(100_000_000, on_complete=lambda: measured.append(clock.now() - start))
    sim.run()
    assert measured == [pytest.approx(1.0)]


def test_vm_attach_disk():
    sim = Simulator()
    vmm = Hypervisor(sim)
    vm = vmm.create_vm("g0", tdf=10)
    disk = vm.attach_disk(VirtualDisk(sim))
    assert vm.disk is disk
    with pytest.raises(ConfigurationError):
        vm.attach_disk(VirtualDisk(sim))


@pytest.mark.parametrize(
    "kwargs",
    [
        {"bandwidth_bytes_per_s": 0},
        {"positioning_delay_s": -1},
        {"throttle": 0},
        {"throttle": 1.5},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ConfigurationError):
        VirtualDisk(Simulator(), **kwargs)


def test_request_validation():
    with pytest.raises(ConfigurationError):
        DiskRequest(0)


def test_request_records_timestamps():
    sim = Simulator()
    disk = VirtualDisk(sim, bandwidth_bytes_per_s=1e6, positioning_delay_s=0.0)
    request = disk.read(1000)
    assert not request.done
    sim.run()
    assert request.done
    assert request.completed_at_physical == pytest.approx(0.001)
