"""Unit tests for the guest CPU model."""

import pytest

from repro.core.clock import DilatedClock
from repro.core.cpu import CpuTask, VirtualCpu
from repro.simnet.clock import PhysicalClock
from repro.simnet.engine import Simulator
from repro.simnet.errors import ConfigurationError


def test_task_duration_full_share():
    sim = Simulator()
    cpu = VirtualCpu(sim, host_cycles_per_second=1e9, share=1.0)
    done = []
    cpu.run(2e9, on_complete=lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(2.0)]


def test_task_duration_half_share():
    sim = Simulator()
    cpu = VirtualCpu(sim, host_cycles_per_second=1e9, share=0.5)
    done = []
    cpu.run(1e9, on_complete=lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(2.0)]


def test_fifo_execution():
    sim = Simulator()
    cpu = VirtualCpu(sim, host_cycles_per_second=1e9)
    order = []
    cpu.run(1e9, on_complete=lambda: order.append(("a", sim.now)))
    cpu.run(1e9, on_complete=lambda: order.append(("b", sim.now)))
    assert cpu.busy
    assert cpu.queue_depth == 1
    sim.run()
    assert order == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]


def test_callback_can_submit_more_work():
    sim = Simulator()
    cpu = VirtualCpu(sim, host_cycles_per_second=1e9)
    done = []
    cpu.run(1e9, on_complete=lambda: cpu.run(1e9, on_complete=lambda: done.append(sim.now)))
    sim.run()
    assert done == [pytest.approx(2.0)]


def test_share_change_recosts_inflight_task():
    sim = Simulator()
    cpu = VirtualCpu(sim, host_cycles_per_second=1e9, share=1.0)
    done = []
    cpu.run(2e9, on_complete=lambda: done.append(sim.now))
    # After 1 s (1e9 cycles done), halve the share: remaining 1e9 cycles
    # now take 2 s -> completion at t=3.
    sim.schedule(1.0, lambda: cpu.set_share(0.5))
    sim.run()
    assert done == [pytest.approx(3.0)]


def test_share_change_while_idle():
    sim = Simulator()
    cpu = VirtualCpu(sim, host_cycles_per_second=1e9)
    cpu.set_share(0.25)
    assert cpu.delivered_cycles_per_second == pytest.approx(2.5e8)


def test_task_records_timestamps():
    sim = Simulator()
    cpu = VirtualCpu(sim, host_cycles_per_second=1e9)
    task = cpu.run(5e8)
    sim.run()
    assert task.submitted_at_physical == 0.0
    assert task.completed_at_physical == pytest.approx(0.5)
    assert task.done


def test_cycles_executed_accounting():
    sim = Simulator()
    cpu = VirtualCpu(sim, host_cycles_per_second=1e9)
    cpu.run(1e9)
    cpu.run(5e8)
    sim.run()
    assert cpu.cycles_executed == pytest.approx(1.5e9)


@pytest.mark.parametrize("share", [0.0, -0.1, 1.5])
def test_invalid_share_rejected(share):
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        VirtualCpu(sim, 1e9, share=share)


def test_invalid_host_rate_rejected():
    with pytest.raises(ConfigurationError):
        VirtualCpu(Simulator(), 0)


def test_invalid_task_cycles_rejected():
    with pytest.raises(ConfigurationError):
        CpuTask(0)


def test_perceived_speed_undilated():
    sim = Simulator()
    cpu = VirtualCpu(sim, host_cycles_per_second=1e9, share=0.5)
    clock = PhysicalClock(sim)
    assert cpu.perceived_cycles_per_second(clock) == pytest.approx(5e8)


def test_perceived_speed_dilated():
    """TDF 10 with full share: the guest thinks its CPU is 10x faster."""
    sim = Simulator()
    cpu = VirtualCpu(sim, host_cycles_per_second=1e9, share=1.0)
    clock = DilatedClock(sim, tdf=10)
    assert cpu.perceived_cycles_per_second(clock) == pytest.approx(1e10)


def test_perceived_speed_dilated_with_compensating_share():
    """TDF 10 with 1/10 share: perceived CPU speed is unchanged.

    This is the paper's recipe for scaling the network without scaling CPU.
    """
    sim = Simulator()
    cpu = VirtualCpu(sim, host_cycles_per_second=1e9, share=0.1)
    clock = DilatedClock(sim, tdf=10)
    assert cpu.perceived_cycles_per_second(clock) == pytest.approx(1e9)


def test_guest_measured_task_time_shrinks_under_dilation():
    """A fixed-cycle task *appears* k-times faster to a dilated guest."""
    sim = Simulator()
    cpu = VirtualCpu(sim, host_cycles_per_second=1e9)
    clock = DilatedClock(sim, tdf=10)
    measured = []
    start_virtual = clock.now()
    cpu.run(1e9, on_complete=lambda: measured.append(clock.now() - start_virtual))
    sim.run()
    assert measured == [pytest.approx(0.1)]
