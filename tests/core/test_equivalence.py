"""The paper's headline claim, as an integration test.

A guest pair dilated by TDF k over a physical network (B, D) must behave
exactly like an undilated pair over (k·B, D/k) — same goodput in guest
seconds, same segment counts, same congestion behaviour. The substrate is
deterministic, so we can demand near-exact agreement, far tighter than the
paper's testbed could.
"""

import pytest

from repro.core.vmm import Hypervisor
from repro.simnet.queues import DropTailQueue
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.tcp import TcpOptions
from repro.tcp.stack import TcpStack


def run_transfer(bandwidth_bps, delay_s, tdf, transfer_bytes, virtual_duration,
                 flavor="newreno", queue_packets=100):
    """One sender/receiver pair, optionally dilated; returns guest-side stats.

    The *virtual* measurement duration is fixed; the physical run length is
    ``virtual_duration * tdf``.
    """
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    net.add_link(
        a, b, bandwidth_bps, delay_s,
        queue_factory=lambda: DropTailQueue(capacity_packets=queue_packets),
    )
    net.finalize()
    vmm = Hypervisor(net.sim)
    vm_a = vmm.create_vm("vm-a", tdf=tdf, cpu_share=0.5, node=a)
    vm_b = vmm.create_vm("vm-b", tdf=tdf, cpu_share=0.5, node=b)
    options = TcpOptions(flavor=flavor)
    stack_a = TcpStack(a, default_options=options)
    stack_b = TcpStack(b, default_options=options)

    received = {"bytes": 0}

    def on_data(sock, n):
        received["bytes"] += n

    stack_b.listen(80, lambda s: None, on_data=on_data)
    client = stack_a.connect("b", 80)
    client.send(transfer_bytes)
    net.run(until=vm_b.clock.to_physical(virtual_duration))
    return {
        "bytes": received["bytes"],
        "virtual_goodput": received["bytes"] * 8 / virtual_duration,
        "segments_sent": client.segments_sent,
        "retransmits": client.retransmits,
        "timeouts": client.timeouts,
        "srtt": client.rtt.srtt,
        "cwnd": client.cc.cwnd,
    }


@pytest.mark.parametrize("tdf", [10, 100])
def test_dilated_run_matches_scaled_baseline_bulk_tcp(tdf):
    """TDF k over (B, D) == TDF 1 over (kB, D/k), measured in guest time."""
    target_bw = mbps(50)       # what the guests should perceive
    target_delay = ms(20)
    duration = 3.0             # virtual seconds
    transfer = 60_000_000      # more than can complete: steady stream

    baseline = run_transfer(target_bw, target_delay, 1, transfer, duration)
    dilated = run_transfer(target_bw / tdf, target_delay * tdf, tdf, transfer, duration)

    assert dilated["bytes"] == pytest.approx(baseline["bytes"], rel=1e-6)
    assert dilated["segments_sent"] == baseline["segments_sent"]
    assert dilated["retransmits"] == baseline["retransmits"]
    assert dilated["timeouts"] == baseline["timeouts"]
    assert dilated["srtt"] == pytest.approx(baseline["srtt"], rel=1e-6)
    assert dilated["cwnd"] == pytest.approx(baseline["cwnd"], rel=1e-6)


def test_dilated_guest_measures_scaled_rtt():
    """The guest's TCP RTT estimate is the physical RTT divided by k."""
    result = run_transfer(mbps(10), ms(100), 10, 1_000_000, 2.0)
    # Physical RTT 200 ms; guest should measure ~20 ms.
    assert result["srtt"] == pytest.approx(0.020, rel=0.5)


@pytest.mark.parametrize("flavor", ["reno", "cubic"])
def test_equivalence_holds_for_other_flavors(flavor):
    """CUBIC's growth is a function of *time* — the strongest test that the
    whole stack reads only virtual clocks."""
    baseline = run_transfer(mbps(40), ms(10), 1, 40_000_000, 2.0, flavor=flavor)
    dilated = run_transfer(mbps(4), ms(100), 10, 40_000_000, 2.0, flavor=flavor)
    # CUBIC evaluates a cubic of absolute clock readings, so the float
    # rounding of virtual-time division is amplified through the window
    # trajectory; sub-0.1% agreement is the expected precision there.
    tolerance = 1e-6 if flavor == "reno" else 2e-3
    assert dilated["bytes"] == pytest.approx(baseline["bytes"], rel=tolerance)
    assert dilated["retransmits"] == pytest.approx(baseline["retransmits"], abs=2)


def test_fractional_tdf_contraction():
    """TDF 1/2 (time contraction) emulates a *slower* network on fast gear."""
    baseline = run_transfer(mbps(5), ms(40), 1, 10_000_000, 2.0)
    contracted = run_transfer(mbps(10), ms(20), "1/2", 10_000_000, 2.0)
    assert contracted["bytes"] == pytest.approx(baseline["bytes"], rel=1e-6)


def test_misscaled_network_breaks_equivalence():
    """Negative control: dilating time without scaling the physical network
    must NOT look like the baseline (otherwise the test above is vacuous)."""
    baseline = run_transfer(mbps(50), ms(20), 1, 60_000_000, 3.0)
    # TDF 10 but network left at the target values (not divided/multiplied).
    wrong = run_transfer(mbps(50), ms(20), 10, 60_000_000, 3.0)
    assert wrong["bytes"] != pytest.approx(baseline["bytes"], rel=0.05)
