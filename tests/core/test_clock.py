"""Unit tests for physical and dilated clocks."""

import pytest
from hypothesis import given, strategies as st

from repro.core.clock import DilatedClock
from repro.simnet.clock import PhysicalClock
from repro.simnet.engine import Simulator
from repro.simnet.errors import SchedulingError


class TestPhysicalClock:
    def test_identity_mapping(self):
        sim = Simulator()
        clock = PhysicalClock(sim)
        assert clock.to_physical(5.0) == 5.0
        assert clock.to_local(5.0) == 5.0

    def test_now_tracks_sim(self):
        sim = Simulator()
        clock = PhysicalClock(sim)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert clock.now() == 2.0

    def test_call_in(self):
        sim = Simulator()
        clock = PhysicalClock(sim)
        fired = []
        clock.call_in(1.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.5]


class TestDilatedClock:
    def test_virtual_time_runs_slow(self):
        sim = Simulator()
        clock = DilatedClock(sim, tdf=10)
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert clock.now() == pytest.approx(1.0)

    def test_contraction_runs_fast(self):
        sim = Simulator()
        clock = DilatedClock(sim, tdf="1/2")
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert clock.now() == pytest.approx(2.0)

    def test_call_in_converts_to_physical(self):
        sim = Simulator()
        clock = DilatedClock(sim, tdf=10)
        fired = []
        clock.call_in(1.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(10.0)]

    def test_call_at_converts_to_physical(self):
        sim = Simulator()
        clock = DilatedClock(sim, tdf=4)
        fired = []
        clock.call_at(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(8.0)]

    def test_negative_virtual_delay_rejected(self):
        sim = Simulator()
        clock = DilatedClock(sim, tdf=2)
        with pytest.raises(SchedulingError):
            clock.call_in(-0.5, lambda: None)

    def test_virtual_origin(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        clock = DilatedClock(sim, tdf=1, virtual_origin=0.0)
        assert clock.now() == pytest.approx(0.0)  # guest boots at virtual zero

    def test_roundtrip_conversion(self):
        sim = Simulator()
        clock = DilatedClock(sim, tdf=7)
        for t in [0.0, 0.5, 3.25, 100.0]:
            assert clock.to_local(clock.to_physical(t)) == pytest.approx(t)

    def test_set_tdf_keeps_virtual_time_continuous(self):
        sim = Simulator()
        clock = DilatedClock(sim, tdf=10)
        sim.schedule(10.0, lambda: clock.set_tdf(5))
        sim.run()  # at phys 10, virtual is 1.0, then rate changes
        assert clock.now() == pytest.approx(1.0)
        sim.schedule(5.0, lambda: None)
        sim.run()  # 5 more physical seconds at TDF 5 -> +1 virtual
        assert clock.now() == pytest.approx(2.0)

    def test_set_tdf_same_value_is_noop(self):
        sim = Simulator()
        clock = DilatedClock(sim, tdf=10)
        clock.set_tdf(10)
        assert len(clock._epochs) == 1

    def test_historical_mapping_across_epochs(self):
        sim = Simulator()
        clock = DilatedClock(sim, tdf=10)
        sim.schedule(10.0, lambda: clock.set_tdf(2))
        sim.schedule(14.0, lambda: None)
        sim.run()
        # Physical 5.0 is inside the first epoch: virtual 0.5.
        assert clock.to_local(5.0) == pytest.approx(0.5)
        # Physical 12.0 is in the second epoch: 1.0 + 2/2 = 2.0.
        assert clock.to_local(12.0) == pytest.approx(2.0)
        # And the inverse maps agree.
        assert clock.to_physical(0.5) == pytest.approx(5.0)
        assert clock.to_physical(2.0) == pytest.approx(12.0)

    def test_timer_armed_before_tdf_change_keeps_physical_deadline(self):
        sim = Simulator()
        clock = DilatedClock(sim, tdf=10)
        fired = []
        clock.call_in(2.0, lambda: fired.append(sim.now))  # phys 20
        sim.schedule(10.0, lambda: clock.set_tdf(1))
        sim.run()
        assert fired == [pytest.approx(20.0)]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=50),   # physical gap
                st.integers(min_value=1, max_value=100),  # new tdf
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_property_virtual_time_strictly_increases_across_tdf_changes(self, steps):
        sim = Simulator()
        clock = DilatedClock(sim, tdf=3)
        samples = []
        at = 0.0
        for gap, new_tdf in steps:
            at += gap
            sim.call_at(at, lambda n=new_tdf: (samples.append(clock.now()),
                                               clock.set_tdf(n)))
        sim.run()
        samples.append(clock.now())
        assert all(b >= a for a, b in zip(samples, samples[1:]))

    @given(st.floats(min_value=0, max_value=1e4), st.integers(min_value=1, max_value=1000))
    def test_property_roundtrip(self, virtual_time, tdf):
        sim = Simulator()
        clock = DilatedClock(sim, tdf=tdf)
        assert clock.to_local(clock.to_physical(virtual_time)) == pytest.approx(
            virtual_time, rel=1e-9, abs=1e-9
        )
