"""Unit tests for workload distributions."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.errors import ConfigurationError
from repro.workloads.distributions import (
    PoissonProcess,
    ZipfSampler,
    exponential_interarrival,
)


class TestZipf:
    def test_single_item_always_zero(self):
        sampler = ZipfSampler(1, rng=random.Random(1))
        assert all(sampler.sample() == 0 for _ in range(10))

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(20, exponent=0.8, rng=random.Random(1))
        total = sum(sampler.probability(i) for i in range(20))
        assert total == pytest.approx(1.0)

    def test_rank_ordering(self):
        sampler = ZipfSampler(10, exponent=1.0, rng=random.Random(1))
        probabilities = [sampler.probability(i) for i in range(10)]
        assert probabilities == sorted(probabilities, reverse=True)
        assert probabilities[0] == pytest.approx(2 * probabilities[1], rel=1e-9)

    def test_exponent_zero_is_uniform(self):
        sampler = ZipfSampler(5, exponent=0.0, rng=random.Random(1))
        for i in range(5):
            assert sampler.probability(i) == pytest.approx(0.2)

    def test_empirical_frequencies_match(self):
        sampler = ZipfSampler(5, exponent=1.0, rng=random.Random(42))
        counts = [0] * 5
        n = 20000
        for _ in range(n):
            counts[sampler.sample()] += 1
        for i in range(5):
            assert counts[i] / n == pytest.approx(sampler.probability(i), abs=0.02)

    def test_determinism(self):
        a = ZipfSampler(10, rng=random.Random(7))
        b = ZipfSampler(10, rng=random.Random(7))
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(5, exponent=-1)
        with pytest.raises(ConfigurationError):
            ZipfSampler(5, rng=random.Random(0)).probability(5)

    @given(st.integers(min_value=1, max_value=100), st.floats(min_value=0, max_value=3))
    @settings(max_examples=25)
    def test_property_samples_in_range(self, n, exponent):
        sampler = ZipfSampler(n, exponent=exponent, rng=random.Random(0))
        for _ in range(50):
            assert 0 <= sampler.sample() < n


class TestPoisson:
    def test_mean_interarrival(self):
        rng = random.Random(3)
        gaps = [exponential_interarrival(10.0, rng) for _ in range(20000)]
        assert sum(gaps) / len(gaps) == pytest.approx(0.1, rel=0.05)

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            exponential_interarrival(0.0, random.Random(0))
        with pytest.raises(ConfigurationError):
            PoissonProcess(-1.0)

    def test_arrivals_until_horizon(self):
        process = PoissonProcess(100.0, rng=random.Random(5))
        arrivals = process.arrivals_until(2.0)
        assert all(0 < t < 2.0 for t in arrivals)
        assert arrivals == sorted(arrivals)
        assert len(arrivals) == pytest.approx(200, rel=0.25)

    def test_gaps_positive(self):
        process = PoissonProcess(5.0, rng=random.Random(9))
        assert all(process.next_gap() > 0 for _ in range(100))
