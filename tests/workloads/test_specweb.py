"""Unit tests for the SPECweb99-like mix."""

import random

import pytest

from repro.simnet.errors import ConfigurationError
from repro.workloads.specweb import CLASS_WEIGHTS, FILES_PER_CLASS, SpecWebMix


def test_document_tree_shape():
    mix = SpecWebMix(rng=random.Random(1))
    assert len(mix.files) == 4
    for class_files in mix.files:
        assert len(class_files) == FILES_PER_CLASS


def test_file_sizes_span_three_orders_of_magnitude():
    mix = SpecWebMix(rng=random.Random(1))
    smallest = mix.files[0][0].size_bytes
    largest = mix.files[3][-1].size_bytes
    assert smallest == 102
    assert largest == 102400 * 9
    assert largest / smallest > 1000


def test_class_mix_empirical():
    mix = SpecWebMix(rng=random.Random(42))
    counts = [0, 0, 0, 0]
    n = 20000
    for _ in range(n):
        counts[mix.sample().file_class] += 1
    for class_index, weight in enumerate(CLASS_WEIGHTS):
        assert counts[class_index] / n == pytest.approx(weight, abs=0.02)


def test_mean_file_size_matches_empirical():
    mix = SpecWebMix(rng=random.Random(7))
    analytic = mix.mean_file_size()
    n = 30000
    empirical = sum(mix.sample().size_bytes for _ in range(n)) / n
    assert empirical == pytest.approx(analytic, rel=0.1)


def test_file_name_roundtrip():
    mix = SpecWebMix(rng=random.Random(1))
    file = mix.sample()
    assert mix.file_by_name(file.name) == file


def test_file_by_name_invalid():
    mix = SpecWebMix(rng=random.Random(1))
    with pytest.raises(ConfigurationError):
        mix.file_by_name("/nope")
    with pytest.raises(ConfigurationError):
        mix.file_by_name("/class9/file0")


def test_determinism():
    a = SpecWebMix(rng=random.Random(5))
    b = SpecWebMix(rng=random.Random(5))
    assert [a.sample().name for _ in range(100)] == [
        b.sample().name for _ in range(100)
    ]
