"""TCP behaviour under impairments: recovery style, dupacks, corruption.

The interesting interaction is between impairment-induced signals
(reordering, duplication, loss) and the congestion-control flavor:

* Reno/NewReno treat the third dupack as a fast-retransmit trigger and
  *recover* — cwnd halves, the flow keeps its ACK clock.
* Tahoe fires the same retransmit but then collapses to slow start — no
  fast-recovery episode is ever recorded.
"""

import pytest

from repro.simnet.impairments import (
    BernoulliLoss,
    Duplicate,
    Corrupt,
    ImpairmentChain,
    Reorder,
)
from repro.simnet.units import mbps, ms
from repro.tcp import TcpOptions
from tests.helpers import Collector, two_hosts


def lossy_transfer(flavor, stage, total=400_000, sack=False, until=60.0):
    """Run one transfer with ``stage`` impairing the data direction."""
    options = TcpOptions(flavor=flavor, sack=sack)
    net, a, b, sa, sb, link = two_hosts(
        bandwidth_bps=mbps(10), delay_s=ms(10), tcp_options=options
    )
    link.a_to_b.set_impairments(ImpairmentChain([stage]))
    events = Collector()
    sb.listen(80, events.on_accept, on_data=events.on_data)
    client = sa.connect("b", 80)
    client.send(total)
    net.run(until=until)
    return net, client, events


@pytest.mark.parametrize("flavor", ["reno", "newreno", "tahoe"])
def test_transfer_completes_despite_random_loss(flavor):
    net, client, events = lossy_transfer(flavor, BernoulliLoss(0.02, seed=5))
    assert events.total_bytes == 400_000
    assert client.retransmits > 0


def test_reno_recovers_via_fast_recovery_under_loss():
    net, client, events = lossy_transfer("reno", BernoulliLoss(0.02, seed=5))
    assert events.total_bytes == 400_000
    assert client.fast_retransmits > 0
    assert client.fast_recoveries > 0
    assert client.dupacks_received >= 3 * client.fast_retransmits


def test_tahoe_never_enters_fast_recovery():
    """Tahoe fast-retransmits on the third dupack but collapses to slow
    start instead of recovering — the taxonomy keeps the two distinct."""
    net, client, events = lossy_transfer("tahoe", BernoulliLoss(0.02, seed=5))
    assert events.total_bytes == 400_000
    assert client.fast_retransmits > 0
    assert client.fast_recoveries == 0


def test_tahoe_pays_for_the_collapse_in_goodput():
    """Same seed, same loss pattern: Reno's fast recovery must beat
    Tahoe's restart-from-one-MSS response. Compared mid-flight so the
    faster flavor hasn't already drained the send buffer."""
    _, reno, _ = lossy_transfer("reno", BernoulliLoss(0.02, seed=5),
                                total=4_000_000, until=5.0)
    _, tahoe, _ = lossy_transfer("tahoe", BernoulliLoss(0.02, seed=5),
                                 total=4_000_000, until=5.0)
    assert reno.bytes_acked > tahoe.bytes_acked


def test_reordering_triggers_dupacks_but_no_timeout_for_reno():
    # Hold-back far beyond the ~1.2 ms packet spacing: reordered packets
    # arrive several positions late, generating dupack bursts.
    stage = Reorder(0.05, hold_s=0.008, seed=9)
    net, client, events = lossy_transfer("reno", stage)
    assert events.total_bytes == 400_000
    assert client.dupacks_received > 0
    # Nothing was lost, so every spurious fast retransmit still recovered
    # without an RTO.
    assert client.timeouts == 0


def test_reordering_collapses_tahoe_but_not_reno():
    """Pure reordering costs Tahoe real window (every spurious third
    dupack restarts slow start) while Reno only halves."""
    stage_args = dict(rate=0.05, hold_s=0.008, seed=9)
    _, reno, _ = lossy_transfer("reno", Reorder(**stage_args), until=20.0)
    _, tahoe, _ = lossy_transfer("tahoe", Reorder(**stage_args), until=20.0)
    assert tahoe.fast_retransmits > 0
    assert tahoe.fast_recoveries == 0
    assert reno.fast_recoveries > 0
    assert reno.bytes_acked >= tahoe.bytes_acked


def test_duplication_is_harmless_to_the_transfer():
    """Duplicate data segments produce duplicate ACKs at the receiver but
    never three in a row for the same hole — no spurious recovery, no
    retransmissions, full goodput."""
    net, client, events = lossy_transfer("reno", Duplicate(0.05, seed=3))
    assert events.total_bytes == 400_000
    assert client.retransmits == 0
    assert client.timeouts == 0


def test_corruption_behaves_like_loss_to_the_sender():
    net, client, events = lossy_transfer("newreno", Corrupt(0.02, seed=4))
    assert events.total_bytes == 400_000
    # The receiver's checksum discarded segments; the sender had to
    # retransmit them exactly as if the wire had eaten them.
    assert events.accepted[0].stack.checksum_drops > 0
    assert client.retransmits > 0
    assert net.sim.counters["drop.checksum"] == \
        events.accepted[0].stack.checksum_drops


def test_sack_recovery_also_counts_episodes():
    net, client, events = lossy_transfer(
        "newreno", BernoulliLoss(0.02, seed=5), sack=True
    )
    assert events.total_bytes == 400_000
    assert client.fast_recoveries > 0
    info = client.info()
    assert info["fast_recoveries"] == client.fast_recoveries
    assert info["dupacks_received"] == client.dupacks_received
    assert info["fast_retransmits"] == client.fast_retransmits
