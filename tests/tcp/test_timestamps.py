"""Tests for the RFC 7323 timestamps option."""

import pytest

from repro.simnet.units import mbps, ms
from repro.tcp import TcpOptions
from repro.tcp.segment import Segment
from tests.helpers import Collector, two_hosts


def run_transfer(timestamps, bandwidth=mbps(50), rtt=ms(40), until=3.0,
                 loss_fn=None):
    net, a, b, sa, sb, link = two_hosts(
        bandwidth_bps=bandwidth, delay_s=rtt / 2,
        tcp_options=TcpOptions(timestamps=timestamps),
    )
    events = Collector()
    sb.listen(80, events.on_accept, on_data=events.on_data)
    if loss_fn is not None:
        link.a_to_b.set_loss(loss_fn)
    client = sa.connect("b", 80)
    client.send(20_000_000)
    net.run(until=until)
    return events, client, link


def test_segments_carry_timestamps_on_wire():
    seen = []
    net, a, b, sa, sb, link = two_hosts(
        tcp_options=TcpOptions(timestamps=True))
    # 'tx' on the a->b interface observes the client's data segments.
    link.a_to_b.add_tap(
        lambda kind, t, p: seen.append(p.payload) if kind == "tx" else None
    )
    events = Collector()
    sb.listen(80, events.on_accept, on_data=events.on_data)
    client = sa.connect("b", 80)
    client.send(10_000)
    net.run(until=2.0)
    data = [s for s in seen if s.length > 0]
    assert data and all(s.ts_val is not None for s in data)
    # After the handshake, data segments echo the peer's timestamps.
    assert any(s.ts_ecr is not None for s in data)


def test_timestamps_disabled_leaves_fields_none():
    seen = []
    net, a, b, sa, sb, link = two_hosts(tcp_options=TcpOptions())
    link.a_to_b.add_tap(
        lambda kind, t, p: seen.append(p.payload) if kind == "tx" else None
    )
    link.b_to_a.add_tap(
        lambda kind, t, p: seen.append(p.payload) if kind == "tx" else None
    )
    events = Collector()
    sb.listen(80, events.on_accept, on_data=events.on_data)
    client = sa.connect("b", 80)
    client.send(10_000)
    net.run(until=2.0)
    assert all(s.ts_val is None and s.ts_ecr is None for s in seen)


def test_many_rtt_samples_per_flight():
    """RTTM takes a sample on every advancing ACK, so the sample count
    dwarfs the one-per-flight count of the timed-segment method."""
    events_ts, client_ts, _ = run_transfer(timestamps=True)
    events_plain, client_plain, _ = run_transfer(timestamps=False)
    assert events_ts.total_bytes > 0
    assert client_ts.rtt.samples > 5 * client_plain.rtt.samples


def test_srtt_converges_to_path_rtt():
    _, client, _ = run_transfer(timestamps=True)
    assert client.rtt.srtt == pytest.approx(0.040, rel=0.5)


def test_transfer_completes_with_loss_and_timestamps():
    dropped = set()

    def drop_some(packet):
        segment = packet.payload
        if (
            segment.length > 0
            and 100_000 < segment.seq < 160_000
            and segment.seq not in dropped
            and (segment.seq // 1460) % 2 == 0
        ):
            dropped.add(segment.seq)
            return True
        return False

    events, client, _ = run_transfer(
        timestamps=True, until=20.0, loss_fn=drop_some
    )
    assert events.total_bytes == 20_000_000
    assert client.retransmits > 0
    assert dropped


def test_timestamp_option_charged_on_wire():
    with_ts = Segment(src_port=1, dst_port=2, length=100, ts_val=1.0, ts_ecr=0.5)
    without = Segment(src_port=1, dst_port=2, length=100)
    assert with_ts.wire_bytes == without.wire_bytes + 12


def test_dilated_timestamps_are_virtual():
    """Inside TDF-10 guests, on-wire TSval advances at 1/10 physical rate."""
    from repro.core.vmm import Hypervisor
    from repro.simnet.topology import Network
    from repro.tcp.stack import TcpStack

    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    link = net.add_link(a, b, mbps(10), ms(5))
    net.finalize()
    vmm = Hypervisor(net.sim)
    vmm.create_vm("vma", tdf=10, cpu_share=0.5, node=a)
    vmm.create_vm("vmb", tdf=10, cpu_share=0.5, node=b)
    options = TcpOptions(timestamps=True)
    stamps = []
    link.a_to_b.add_tap(
        lambda kind, t, p: stamps.append((t, p.payload.ts_val))
        if kind == "tx" and p.payload.ts_val is not None else None
    )
    received = {"n": 0}
    TcpStack(b, default_options=options).listen(
        80, lambda s: None,
        on_data=lambda s, n: received.__setitem__("n", received["n"] + n))
    TcpStack(a, default_options=options).connect("b", 80).send(1_000_000)
    net.run(until=10.0)
    assert len(stamps) > 10
    (t0, v0), (t1, v1) = stamps[0], stamps[-1]
    assert (v1 - v0) == pytest.approx((t1 - t0) / 10, rel=0.05)
