"""Integration tests: full TCP connections over the substrate."""

import pytest

from repro.simnet.units import mbps, ms
from repro.tcp import ESTABLISHED, CLOSED, TIME_WAIT, TcpOptions
from tests.helpers import Collector, two_hosts


def test_handshake_establishes_both_ends():
    net, a, b, sa, sb, _ = two_hosts()
    server_events = Collector()
    client_events = Collector()
    sb.listen(80, server_events.on_accept)
    client = sa.connect("b", 80, on_connected=client_events.on_connected)
    net.run(until=1.0)
    assert client.state == ESTABLISHED
    assert len(server_events.accepted) == 1
    assert server_events.accepted[0].state == ESTABLISHED
    assert client_events.connected == [client]


def test_small_transfer_delivers_bytes_and_messages():
    net, a, b, sa, sb, _ = two_hosts()
    server_events = Collector()
    sb.listen(
        80, server_events.on_accept,
        on_data=server_events.on_data, on_message=server_events.on_message,
    )
    client = sa.connect("b", 80)
    client.send(5000, message={"kind": "hello"})
    net.run(until=2.0)
    assert server_events.total_bytes == 5000
    assert server_events.messages == [{"kind": "hello"}]


def test_multi_segment_transfer_exact_byte_count():
    net, a, b, sa, sb, _ = two_hosts()
    server_events = Collector()
    sb.listen(80, server_events.on_accept, on_data=server_events.on_data)
    client = sa.connect("b", 80)
    total = 1_000_000
    client.send(total)
    net.run(until=30.0)
    assert server_events.total_bytes == total


def test_bulk_throughput_approaches_bottleneck():
    """A long flow should fill most of a 10 Mbps pipe."""
    net, a, b, sa, sb, _ = two_hosts(bandwidth_bps=mbps(10), delay_s=ms(10))
    server_events = Collector()
    sb.listen(80, server_events.on_accept, on_data=server_events.on_data)
    client = sa.connect("b", 80)
    client.send(12_500_000)  # 100 Mb = ~10 s at line rate
    net.run(until=4.0)  # warm-up: slow-start overshoot and its recovery
    at_warmup = server_events.total_bytes
    net.run(until=9.0)
    goodput = (server_events.total_bytes - at_warmup) * 8 / 5.0
    assert goodput > 0.85 * mbps(10)
    assert goodput <= mbps(10)


def test_bidirectional_transfer():
    net, a, b, sa, sb, _ = two_hosts()
    a_events, b_events = Collector(), Collector()

    def on_accept(server_sock):
        b_events.accepted.append(server_sock)
        server_sock.send(30_000)

    sb.listen(80, on_accept, on_data=b_events.on_data)
    client = sa.connect("b", 80, on_data=a_events.on_data)
    client.send(20_000)
    net.run(until=5.0)
    assert b_events.total_bytes == 20_000
    assert a_events.total_bytes == 30_000


def test_two_parallel_connections_demuxed_independently():
    net, a, b, sa, sb, _ = two_hosts()
    per_socket = {}

    def on_accept(sock):
        per_socket[sock.remote_port] = 0

    def on_data(sock, n):
        per_socket[sock.remote_port] += n

    sb.listen(80, on_accept, on_data=on_data)
    c1 = sa.connect("b", 80)
    c2 = sa.connect("b", 80)
    c1.send(10_000)
    c2.send(20_000)
    net.run(until=5.0)
    assert sorted(per_socket.values()) == [10_000, 20_000]
    assert c1.local_port != c2.local_port


def test_fin_teardown_reaches_closed():
    net, a, b, sa, sb, _ = two_hosts(tcp_options=TcpOptions(msl=0.1))
    server_events = Collector()

    def on_close_server(sock):
        server_events.closed.append(sock)
        sock.close()  # close our side too

    sb.listen(80, server_events.on_accept, on_close=on_close_server)
    client_events = Collector()
    client = sa.connect("b", 80, on_close=client_events.on_close)
    client.send(1000)
    client.close()
    net.run(until=10.0)
    assert len(server_events.closed) == 1
    server_sock = server_events.accepted[0]
    assert server_sock.state == CLOSED
    assert client.state == CLOSED
    assert sa.connection_count() == 0
    assert sb.connection_count() == 0


def test_connect_to_closed_port_resets():
    net, a, b, sa, sb, _ = two_hosts()
    events = Collector()
    client = sa.connect("b", 9999, on_error=events.on_error)
    net.run(until=2.0)
    assert len(events.errors) == 1
    assert client.state == CLOSED
    assert sb.resets_sent == 1


def test_send_after_close_rejected():
    net, a, b, sa, sb, _ = two_hosts()
    sb.listen(80, lambda s: None)
    client = sa.connect("b", 80)
    net.run(until=1.0)
    client.close()
    with pytest.raises(Exception):
        client.send(100)


def test_loss_recovery_via_fast_retransmit():
    """Drop one data segment; the flow must still deliver everything."""
    net, a, b, sa, sb, link = two_hosts(bandwidth_bps=mbps(10), delay_s=ms(5))
    events = Collector()
    sb.listen(80, events.on_accept, on_data=events.on_data)

    dropped = []

    def drop_fifth_data(packet):
        segment = packet.payload
        if segment.length > 0 and not dropped and segment.seq > 5 * 1460:
            dropped.append(segment.seq)
            return True
        return False

    link.a_to_b.set_loss(drop_fifth_data)
    client = sa.connect("b", 80)
    client.send(300_000)
    net.run(until=20.0)
    assert dropped, "loss injector never fired"
    assert events.total_bytes == 300_000
    assert client.retransmits >= 1


def test_recovery_from_burst_loss():
    """Drop a whole burst; NewReno partial ACKs must fill all holes."""
    net, a, b, sa, sb, link = two_hosts(bandwidth_bps=mbps(10), delay_s=ms(5))
    events = Collector()
    sb.listen(80, events.on_accept, on_data=events.on_data)

    state = {"count": 0}

    def drop_burst(packet):
        segment = packet.payload
        if segment.length > 0 and 20_000 < segment.seq < 40_000 and state["count"] < 8:
            state["count"] += 1
            return True
        return False

    link.a_to_b.set_loss(drop_burst)
    client = sa.connect("b", 80)
    client.send(300_000)
    net.run(until=30.0)
    assert state["count"] > 0
    assert events.total_bytes == 300_000


def test_rto_recovers_from_total_ack_blackout():
    """Drop ACKs for a while: sender must RTO, back off, and finish."""
    net, a, b, sa, sb, link = two_hosts(bandwidth_bps=mbps(10), delay_s=ms(5))
    events = Collector()
    sb.listen(80, events.on_accept, on_data=events.on_data)

    def drop_acks_early(packet):
        return net.sim.now < 1.0

    link.b_to_a.set_loss(drop_acks_early)
    client = sa.connect("b", 80)
    client.send(100_000)
    net.run(until=60.0)
    assert events.total_bytes == 100_000
    assert client.timeouts >= 1


def test_syn_retransmission_on_lost_syn():
    net, a, b, sa, sb, link = two_hosts()
    events = Collector()
    sb.listen(80, events.on_accept)

    state = {"dropped": False}

    def drop_first_syn(packet):
        if packet.payload.syn and not state["dropped"]:
            state["dropped"] = True
            return True
        return False

    link.a_to_b.set_loss(drop_first_syn)
    client = sa.connect("b", 80)
    net.run(until=10.0)
    assert client.state == ESTABLISHED
    assert len(events.accepted) == 1


def test_give_up_after_max_retries():
    net, a, b, sa, sb, link = two_hosts()
    events = Collector()
    link.a_to_b.set_loss(lambda packet: True)  # black hole
    client = sa.connect("b", 80, on_error=events.on_error)
    net.run(until=10_000.0)
    assert client.state == CLOSED
    assert len(events.errors) == 1


def test_message_markers_survive_loss():
    """A message riding a dropped segment arrives via the retransmission."""
    net, a, b, sa, sb, link = two_hosts(bandwidth_bps=mbps(10), delay_s=ms(5))
    events = Collector()
    sb.listen(80, events.on_accept, on_message=events.on_message)

    state = {"dropped": False}

    def drop_one(packet):
        segment = packet.payload
        if segment.length > 0 and segment.messages and not state["dropped"]:
            state["dropped"] = True
            return True
        return False

    link.a_to_b.set_loss(drop_one)
    client = sa.connect("b", 80)
    for index in range(10):
        client.send(1000, message=f"msg{index}")
    net.run(until=20.0)
    assert state["dropped"]
    assert events.messages == [f"msg{index}" for index in range(10)]


def test_rtt_estimator_converges_to_path_rtt():
    net, a, b, sa, sb, _ = two_hosts(bandwidth_bps=mbps(100), delay_s=ms(20))
    events = Collector()
    sb.listen(80, events.on_accept, on_data=events.on_data)
    client = sa.connect("b", 80)
    client.send(500_000)
    net.run(until=10.0)
    # Path RTT is 40 ms + serialisation/queueing; srtt should be close.
    assert client.rtt.srtt == pytest.approx(0.040, rel=0.5)


def test_flavors_all_complete_transfer():
    for flavor in ("tahoe", "reno", "newreno", "cubic"):
        net, a, b, sa, sb, link = two_hosts(
            bandwidth_bps=mbps(10), delay_s=ms(5),
            tcp_options=TcpOptions(flavor=flavor),
        )
        events = Collector()
        sb.listen(80, events.on_accept, on_data=events.on_data)

        state = {"count": 0}

        def drop_some(packet, state=state):
            segment = packet.payload
            if segment.length > 0 and state["count"] < 3 and 50_000 < segment.seq < 60_000:
                state["count"] += 1
                return True
            return False

        link.a_to_b.set_loss(drop_some)
        client = sa.connect("b", 80)
        client.send(200_000)
        net.run(until=60.0)
        assert events.total_bytes == 200_000, flavor


def test_listener_stop_listening():
    net, a, b, sa, sb, _ = two_hosts()
    events = Collector()
    sb.listen(80, events.on_accept)
    sb.stop_listening(80)
    client = sa.connect("b", 80, on_error=events.on_error)
    net.run(until=2.0)
    assert events.accepted == []
    assert len(events.errors) == 1


def test_time_wait_then_closed():
    options = TcpOptions(msl=0.05)
    net, a, b, sa, sb, _ = two_hosts(tcp_options=options)
    events = Collector()

    def on_close_server(sock):
        sock.close()

    sb.listen(80, events.on_accept, on_close=on_close_server)
    client = sa.connect("b", 80)
    client.send(100)
    client.close()
    net.run(until=0.5)
    # Client initiated close; it must pass through TIME_WAIT to CLOSED.
    assert client.state in (TIME_WAIT, CLOSED)
    net.run(until=5.0)
    assert client.state == CLOSED
