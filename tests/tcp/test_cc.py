"""Unit tests for congestion-control algorithms."""

import pytest

from repro.simnet.errors import ConfigurationError
from repro.tcp.cc import (
    Cubic,
    NewReno,
    Reno,
    Tahoe,
    initial_window,
    make_congestion_control,
)

MSS = 1460


def test_initial_window_rfc3390():
    assert initial_window(1460) == 4380
    assert initial_window(500) == 2000   # 4*mss < 4380
    assert initial_window(3000) == 6000  # 2*mss > 4380


def test_factory():
    assert isinstance(make_congestion_control("tahoe", MSS), Tahoe)
    assert isinstance(make_congestion_control("reno", MSS), Reno)
    assert isinstance(make_congestion_control("newreno", MSS), NewReno)
    assert isinstance(make_congestion_control("cubic", MSS), Cubic)
    from repro.tcp.cc import Vegas

    assert isinstance(make_congestion_control("vegas", MSS), Vegas)
    with pytest.raises(ConfigurationError):
        make_congestion_control("westwood", MSS)


def test_invalid_mss():
    with pytest.raises(ConfigurationError):
        Reno(0)


def test_slow_start_doubles_per_rtt():
    cc = Reno(MSS)
    start = cc.cwnd
    # One RTT's worth of ACKs: each full-MSS ACK adds one MSS.
    acks = int(start // MSS)
    for _ in range(acks):
        cc.on_ack(MSS, flight_size=int(start), now=0.0)
    assert cc.cwnd == pytest.approx(start * 2)


def test_congestion_avoidance_linear():
    cc = Reno(MSS)
    cc.ssthresh = cc.cwnd  # force CA from the start
    window = cc.cwnd
    acks = int(window // MSS)
    for _ in range(acks):
        cc.on_ack(MSS, flight_size=int(window), now=0.0)
    # One MSS per RTT growth (approximately).
    assert cc.cwnd == pytest.approx(window + MSS, rel=0.05)


def test_timeout_collapses_to_one_mss():
    cc = Reno(MSS)
    cc.cwnd = 100 * MSS
    cc.on_retransmit_timeout(flight_size=100 * MSS, now=0.0)
    assert cc.cwnd == MSS
    assert cc.ssthresh == pytest.approx(50 * MSS)


def test_ssthresh_floor_two_mss():
    cc = Reno(MSS)
    cc.on_retransmit_timeout(flight_size=MSS, now=0.0)
    assert cc.ssthresh == 2 * MSS


def test_reno_fast_recovery_inflation_and_exit():
    cc = Reno(MSS)
    cc.cwnd = 20 * MSS
    cc.on_enter_recovery(flight_size=20 * MSS, now=0.0)
    assert cc.ssthresh == pytest.approx(10 * MSS)
    assert cc.cwnd == pytest.approx(13 * MSS)  # ssthresh + 3 MSS
    cc.on_dup_ack_in_recovery()
    assert cc.cwnd == pytest.approx(14 * MSS)
    cc.on_exit_recovery(now=0.0)
    assert cc.cwnd == pytest.approx(10 * MSS)


def test_newreno_partial_ack_deflation():
    cc = NewReno(MSS)
    cc.cwnd = 20 * MSS
    cc.on_enter_recovery(flight_size=20 * MSS, now=0.0)
    before = cc.cwnd
    cc.on_partial_ack(5 * MSS)
    assert cc.cwnd == pytest.approx(before - 5 * MSS + MSS)


def test_partial_ack_never_below_one_mss():
    cc = NewReno(MSS)
    cc.cwnd = 2 * MSS
    cc.on_partial_ack(10 * MSS)
    assert cc.cwnd == MSS


def test_tahoe_no_fast_recovery():
    cc = Tahoe(MSS)
    assert not cc.supports_fast_recovery
    cc.cwnd = 30 * MSS
    cc.on_enter_recovery(flight_size=30 * MSS, now=0.0)
    assert cc.cwnd == MSS  # collapse, not inflate
    assert cc.ssthresh == pytest.approx(15 * MSS)


def test_slow_start_respects_ssthresh_boundary():
    cc = Reno(MSS)
    cc.ssthresh = cc.cwnd + MSS / 2
    cc.on_ack(MSS, flight_size=int(cc.cwnd), now=0.0)
    # Next ACK is in CA (cwnd >= ssthresh): growth less than one MSS.
    before = cc.cwnd
    cc.on_ack(MSS, flight_size=int(cc.cwnd), now=0.0)
    assert cc.cwnd - before < MSS


class TestCubic:
    def test_grows_like_reno_before_first_loss(self):
        cubic, reno = Cubic(MSS), Reno(MSS)
        cubic.ssthresh = reno.ssthresh = 0  # both in "avoidance"
        for _ in range(10):
            cubic.on_ack(MSS, flight_size=10 * MSS, now=0.0)
            reno.on_ack(MSS, flight_size=10 * MSS, now=0.0)
        assert cubic.cwnd == pytest.approx(reno.cwnd)

    def test_beta_decrease_on_loss(self):
        cc = Cubic(MSS)
        cc.cwnd = 100 * MSS
        cc.on_enter_recovery(flight_size=100 * MSS, now=1.0)
        assert cc.ssthresh == pytest.approx(70 * MSS)

    def test_concave_recovery_toward_w_max(self):
        cc = Cubic(MSS)
        cc.cwnd = 100 * MSS
        cc.on_enter_recovery(flight_size=100 * MSS, now=0.0)
        cc.on_exit_recovery(now=0.0)
        start = cc.cwnd
        # Feed ACKs at advancing times; window should climb back toward
        # w_max (100 segments) and be concave (no overshoot early).
        now = 0.0
        for _ in range(2000):
            now += 0.01
            cc.on_ack(MSS, flight_size=int(cc.cwnd), now=now)
        assert start < cc.cwnd
        assert cc.cwnd > 90 * MSS

    def test_timeout_resets_to_one_mss(self):
        cc = Cubic(MSS)
        cc.cwnd = 50 * MSS
        cc.on_retransmit_timeout(flight_size=50 * MSS, now=2.0)
        assert cc.cwnd == MSS
