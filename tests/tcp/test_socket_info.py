"""Tests for the socket introspection snapshot."""

import pytest

from repro.simnet.units import mbps, ms
from tests.helpers import Collector, two_hosts


def test_info_snapshot_fields():
    net, a, b, sa, sb, _ = two_hosts(bandwidth_bps=mbps(10), delay_s=ms(10))
    events = Collector()
    sb.listen(80, events.on_accept, on_data=events.on_data)
    client = sa.connect("b", 80)
    client.send(500_000)
    net.run(until=3.0)
    info = client.info()
    assert info["state"] == "ESTABLISHED"
    assert info["local"] == f"a:{client.local_port}"
    assert info["remote"] == "b:80"
    assert info["flavor"] == "newreno"
    assert info["cwnd"] > 0
    # Propagation RTT is 20 ms; queueing at the 10 Mbps bottleneck can add
    # a few tens of ms on top.
    assert 0.020 <= info["srtt"] <= 0.100
    assert info["bytes_acked"] >= 500_000
    assert info["segments_sent"] > 0
    assert info["retransmits"] == 0
    assert info["in_recovery"] is False


def test_info_reflects_progress():
    net, a, b, sa, sb, _ = two_hosts()
    events = Collector()
    sb.listen(80, events.on_accept, on_data=events.on_data)
    client = sa.connect("b", 80)
    before = client.info()
    assert before["state"] in ("SYN_SENT", "ESTABLISHED")
    client.send(10_000)
    net.run(until=2.0)
    after = client.info()
    assert after["snd_una"] > before["snd_una"]
    server_info = events.accepted[0].info()
    assert server_info["bytes_received"] == 10_000
