"""Tests for SACK generation and scoreboard-driven recovery."""

import pytest

from repro.simnet.units import mbps, ms
from repro.tcp import TcpOptions
from repro.tcp.buffers import ReceiveAssembler
from repro.tcp.socket import _merge_interval, _total_bytes, _trim_below
from tests.helpers import Collector, two_hosts


class TestIntervalHelpers:
    def test_merge_disjoint(self):
        assert _merge_interval([(0, 5)], 10, 15) == [(0, 5), (10, 15)]

    def test_merge_overlapping(self):
        assert _merge_interval([(0, 5), (10, 15)], 4, 11) == [(0, 15)]

    def test_merge_adjacent(self):
        assert _merge_interval([(0, 5)], 5, 8) == [(0, 8)]

    def test_merge_empty_range_noop(self):
        assert _merge_interval([(0, 5)], 7, 7) == [(0, 5)]

    def test_trim(self):
        assert _trim_below([(0, 5), (8, 12)], 3) == [(3, 5), (8, 12)]
        assert _trim_below([(0, 5)], 5) == []

    def test_total(self):
        assert _total_bytes([(0, 5), (8, 12)]) == 9


class TestSackBlocks:
    def test_no_ooo_no_blocks(self):
        asm = ReceiveAssembler(10000)
        asm.accept(0, 100, [])
        assert asm.sack_blocks() == []

    def test_most_recent_first(self):
        asm = ReceiveAssembler(100000)
        asm.accept(100, 50, [])   # hole at [0,100)
        asm.accept(300, 50, [])
        asm.accept(500, 50, [])
        assert asm.sack_blocks()[0] == (500, 550)
        assert set(asm.sack_blocks()) == {(100, 150), (300, 350), (500, 550)}

    def test_merge_moves_to_front(self):
        asm = ReceiveAssembler(100000)
        asm.accept(100, 50, [])
        asm.accept(300, 50, [])
        asm.accept(150, 50, [])  # extends the first range
        assert asm.sack_blocks()[0] == (100, 200)

    def test_limit_four(self):
        asm = ReceiveAssembler(1000000)
        for i in range(1, 8):
            asm.accept(i * 100, 50, [])
        assert len(asm.sack_blocks()) == 4
        # Most recent range first.
        assert asm.sack_blocks()[0] == (700, 750)

    def test_delivered_ranges_leave_recency(self):
        asm = ReceiveAssembler(100000)
        asm.accept(100, 100, [])
        asm.accept(0, 100, [])  # fills the hole; ooo absorbed
        assert asm.sack_blocks() == []


class TestSackRecovery:
    def run_lossy_transfer(self, sack, drop_range=(300_000, 500_000),
                           bandwidth=mbps(100), rtt=ms(40), until=6.0):
        """Drop the first copy of every segment in a range (wide burst);
        retransmissions pass. Returns (delivered_bytes, client)."""
        net, a, b, sa, sb, link = two_hosts(
            bandwidth_bps=bandwidth, delay_s=rtt / 2,
            tcp_options=TcpOptions(sack=sack),
        )
        events = Collector()
        sb.listen(80, events.on_accept, on_data=events.on_data)
        dropped_seqs = set()

        def drop_burst(packet):
            # Two of every three first copies in the range are lost; the
            # survivors carry the SACK information recovery feeds on. (A
            # 100% flight loss would correctly force an RTO even with SACK.)
            segment = packet.payload
            if (
                segment.length > 0
                and drop_range[0] < segment.seq < drop_range[1]
                and segment.seq not in dropped_seqs
                and (segment.seq // 1460) % 3 != 0
            ):
                dropped_seqs.add(segment.seq)
                return True
            return False

        link.a_to_b.set_loss(drop_burst)
        client = sa.connect("b", 80)
        client.send(5_000_000)
        net.run(until=until)
        return events.total_bytes, client

    def test_wide_burst_repaired_without_rto(self):
        delivered, client = self.run_lossy_transfer(sack=True)
        assert delivered == 5_000_000
        assert client.timeouts == 0
        assert client.retransmits > 50  # the burst really was wide

    def test_sack_much_faster_than_newreno_on_burst(self):
        """The reason SACK exists: NewReno repairs one hole per RTT."""
        delivered_sack, client_sack = self.run_lossy_transfer(sack=True, until=4.0)
        delivered_nr, client_nr = self.run_lossy_transfer(sack=False, until=4.0)
        assert delivered_sack > 1.5 * delivered_nr

    def test_sack_single_loss(self):
        delivered, client = self.run_lossy_transfer(
            sack=True, drop_range=(30_000, 31_500))
        assert delivered == 5_000_000
        assert client.timeouts == 0

    def test_sack_acks_carry_blocks_on_wire(self):
        net, a, b, sa, sb, link = two_hosts(tcp_options=TcpOptions(sack=True))
        events = Collector()
        sb.listen(80, events.on_accept, on_data=events.on_data)
        seen_blocks = []

        def tap(kind, t, packet):
            segment = packet.payload
            if kind == "rx" and segment.sack:
                seen_blocks.append(segment.sack)

        link.a_to_b.add_tap(tap)  # ACK direction is b->a; rx on a side taps a_to_b? no
        link.b_to_a.add_tap(tap)
        state = {"dropped": False}

        def drop_one(packet):
            if packet.payload.length > 0 and not state["dropped"] \
                    and packet.payload.seq > 20_000:
                state["dropped"] = True
                return True
            return False

        link.a_to_b.set_loss(drop_one)
        client = sa.connect("b", 80)
        client.send(200_000)
        net.run(until=10.0)
        assert events.total_bytes == 200_000
        assert seen_blocks, "no SACK blocks observed on the wire"

    def test_sack_disabled_sends_no_blocks(self):
        net, a, b, sa, sb, link = two_hosts(tcp_options=TcpOptions(sack=False))
        events = Collector()
        sb.listen(80, events.on_accept, on_data=events.on_data)
        seen = []
        link.b_to_a.add_tap(
            lambda kind, t, p: seen.append(p.payload.sack)
            if kind == "rx" else None
        )
        client = sa.connect("b", 80)
        client.send(50_000)
        net.run(until=5.0)
        assert all(blocks == () for blocks in seen)
