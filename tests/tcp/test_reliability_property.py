"""Property-based reliability: TCP must deliver everything, exactly once,
in order, under arbitrary (non-total) loss patterns.

The loss model drops the first copy of a pseudo-random subset of data
segments and a subset of ACKs; retransmissions always pass, so delivery is
eventually possible and the stack has no excuse.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.units import mbps, ms
from repro.tcp import TcpOptions
from tests.helpers import Collector, two_hosts


def run_with_random_loss(seed, data_loss, ack_loss, total_bytes, sack):
    net, a, b, sa, sb, link = two_hosts(
        bandwidth_bps=mbps(20), delay_s=ms(5),
        tcp_options=TcpOptions(sack=sack),
    )
    events = Collector()
    sb.listen(80, events.on_accept, on_data=events.on_data,
              on_message=events.on_message)
    rng = random.Random(seed)
    dropped_data = set()
    dropped_acks = set()

    def drop_forward(packet):
        segment = packet.payload
        if segment.length == 0:
            return False
        if segment.seq in dropped_data:
            return False  # retransmission: let it through
        if rng.random() < data_loss:
            dropped_data.add(segment.seq)
            return True
        return False

    def drop_reverse(packet):
        segment = packet.payload
        key = (segment.ack, segment.uid)
        if rng.random() < ack_loss and key not in dropped_acks:
            dropped_acks.add(key)
            return True
        return False

    link.a_to_b.set_loss(drop_forward)
    link.b_to_a.set_loss(drop_reverse)
    client = sa.connect("b", 80)
    chunk = 10_000
    for index in range(total_bytes // chunk):
        client.send(chunk, message=index)
    net.run(until=300.0)
    return events, client, len(dropped_data)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    data_loss=st.sampled_from([0.02, 0.1, 0.3]),
    ack_loss=st.sampled_from([0.0, 0.1]),
    sack=st.booleans(),
)
def test_property_exactly_once_in_order_delivery(seed, data_loss, ack_loss, sack):
    total = 200_000
    events, client, dropped = run_with_random_loss(
        seed, data_loss, ack_loss, total, sack
    )
    assert events.total_bytes == total
    # Message markers are the in-order witness: 0, 1, 2, ... exactly once.
    assert events.messages == list(range(total // 10_000))


def test_heavy_loss_still_completes():
    events, client, dropped = run_with_random_loss(
        seed=1, data_loss=0.5, ack_loss=0.2, total_bytes=100_000, sack=True
    )
    assert events.total_bytes == 100_000
    assert dropped > 10
