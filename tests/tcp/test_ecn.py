"""Tests for ECN: RED marking, ECE echo, CWR confirmation, and the
no-retransmit rate reduction — including under dilation."""

import random

import pytest

from repro.core.vmm import Hypervisor
from repro.simnet.queues import REDQueue
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.tcp import TcpOptions
from repro.tcp.stack import TcpStack


def run_ecn_transfer(ecn, tdf=1, duration_virtual=5.0, seed=11,
                     bandwidth=mbps(20), delay=ms(10)):
    """One flow over a RED bottleneck in marking mode; returns stats."""
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    queue_rng = random.Random(seed)
    queues = []

    def queue_factory():
        queue = REDQueue(
            capacity_packets=200, min_th=15, max_th=60,
            rng=queue_rng, clock=net.sim,
            mean_packet_time_s=1500 * 8 / bandwidth,
            ecn_marking=True,
        )
        queues.append(queue)
        return queue

    net.add_link(a, b, bandwidth, delay, queue_factory=queue_factory)
    net.finalize()
    vmm = Hypervisor(net.sim)
    vmm.create_vm("vma", tdf=tdf, cpu_share=0.5, node=a)
    vm_b = vmm.create_vm("vmb", tdf=tdf, cpu_share=0.5, node=b)
    options = TcpOptions(ecn=ecn)
    received = {"bytes": 0}
    TcpStack(b, default_options=options).listen(
        80, lambda s: None,
        on_data=lambda s, n: received.__setitem__("bytes", received["bytes"] + n),
    )
    client = TcpStack(a, default_options=options).connect("b", 80)
    client.send(1 << 30)
    net.run(until=vm_b.clock.to_physical(duration_virtual))
    return {
        "bytes": received["bytes"],
        "retransmits": client.retransmits,
        "timeouts": client.timeouts,
        "marks": queues[0].marked_packets,
        "drops": queues[0].stats.dropped_packets,
        "goodput": received["bytes"] * 8 / duration_virtual,
    }


def test_ecn_flow_is_marked_not_dropped():
    result = run_ecn_transfer(ecn=True)
    assert result["marks"] > 0
    # In the probabilistic region everything is a mark; only hard overflow
    # could drop, and a responsive flow should avoid it entirely.
    assert result["drops"] == 0
    assert result["retransmits"] == 0


def test_non_ecn_flow_suffers_drops():
    result = run_ecn_transfer(ecn=False)
    assert result["marks"] == 0
    assert result["drops"] > 0
    assert result["retransmits"] > 0


def test_ecn_keeps_goodput_competitive():
    ecn = run_ecn_transfer(ecn=True)
    loss = run_ecn_transfer(ecn=False)
    assert ecn["goodput"] >= 0.85 * loss["goodput"]
    assert ecn["goodput"] > 0.6 * mbps(20)


def test_ecn_sender_still_backs_off():
    """Marks must actually reduce the window: goodput stays below raw line
    rate because the source keeps yielding to the AQM."""
    result = run_ecn_transfer(ecn=True)
    assert result["marks"] > 3  # repeated reductions over the run


def test_ecn_equivalence_under_dilation():
    """ECN equivalence is statistical, not bit-exact: RED's marking
    probability runs through the idle-decay exponent, where the last-ulp
    difference between ``t*k`` and summed dilated timestamps occasionally
    flips a razor-edge RNG comparison. Each flip perturbs the control
    loop, so runs agree like repeated testbed trials do."""
    base = run_ecn_transfer(ecn=True, tdf=1, seed=21)
    dilated_net = run_ecn_transfer(ecn=True, tdf=10, seed=21,
                                   bandwidth=mbps(2), delay=ms(100))
    assert dilated_net["bytes"] == pytest.approx(base["bytes"], rel=0.10)
    assert dilated_net["marks"] == pytest.approx(base["marks"], rel=0.15)
    assert dilated_net["retransmits"] == base["retransmits"] == 0
    assert dilated_net["drops"] == base["drops"] == 0


def test_pure_acks_not_ecn_capable():
    from repro.simnet.packet import Packet
    from repro.tcp.segment import Segment
    from repro.simnet.topology import Network as Net

    net = Net()
    node = net.add_node("a")
    stack = TcpStack(node, default_options=TcpOptions(ecn=True))
    sent = []
    node.send = lambda packet: sent.append(packet)
    sock = stack.connect("peer", 80)
    sock.handle_segment(Segment(src_port=80, dst_port=sock.local_port,
                                seq=0, ack=1, syn=True, ack_flag=True,
                                window=1 << 20))
    sock.send(5000)
    data = [p for p in sent if p.payload.length > 0]
    acks = [p for p in sent if p.payload.length == 0 and not p.payload.syn]
    assert all(p.ecn_capable for p in data)
    assert all(not p.ecn_capable for p in acks)
