"""Tests for TCP Vegas — the delay-based dilation probe."""

import pytest

from repro.simnet.units import mbps, ms
from repro.tcp import TcpOptions
from repro.tcp.cc import Vegas
from tests.helpers import Collector, two_hosts

MSS = 1460


class TestVegasUnit:
    def test_base_rtt_tracks_minimum(self):
        cc = Vegas(MSS)
        cc.on_rtt_sample(0.050, now=0.0)
        cc.on_rtt_sample(0.030, now=0.1)
        cc.on_rtt_sample(0.070, now=0.2)
        assert cc.base_rtt == 0.030

    def test_grows_when_queue_empty(self):
        cc = Vegas(MSS)
        cc.ssthresh = 0  # out of slow start
        cc.on_rtt_sample(0.040, now=0.0)
        cc.on_rtt_sample(0.040, now=0.1)  # actual == base: diff = 0 < alpha
        before = cc.cwnd
        cc.on_ack(MSS, flight_size=int(cc.cwnd), now=0.2)
        assert cc.cwnd == before + MSS

    def test_shrinks_when_queueing_heavily(self):
        cc = Vegas(MSS)
        cc.ssthresh = 0
        cc.cwnd = 50 * MSS
        cc.on_rtt_sample(0.040, now=0.0)
        cc.on_rtt_sample(0.120, now=0.1)  # big queue: diff >> beta
        before = cc.cwnd
        cc.on_ack(MSS, flight_size=int(cc.cwnd), now=0.2)
        assert cc.cwnd == before - MSS

    def test_holds_inside_band(self):
        cc = Vegas(MSS)
        cc.ssthresh = 0
        cc.cwnd = 20 * MSS
        base = 0.040
        cc.on_rtt_sample(base, now=0.0)
        # Choose an RTT putting diff between alpha (2) and beta (4):
        # diff = cwnd*(1/base - 1/rtt)*base/mss = 3 -> rtt solved below.
        target_diff = 3 * MSS
        rtt = base * cc.cwnd / (cc.cwnd - target_diff)
        cc.on_rtt_sample(rtt, now=0.1)
        before = cc.cwnd
        cc.on_ack(MSS, flight_size=int(cc.cwnd), now=0.2)
        assert cc.cwnd == before

    def test_adjusts_at_most_once_per_rtt(self):
        cc = Vegas(MSS)
        cc.ssthresh = 0
        cc.on_rtt_sample(0.040, now=0.0)
        before = cc.cwnd
        for i in range(10):
            cc.on_ack(MSS, flight_size=int(cc.cwnd), now=0.001 * i)
        assert cc.cwnd <= before + MSS  # one adjustment, not ten

    def test_floor_two_mss(self):
        # With default alpha/beta the dynamics never reach the floor (diff
        # is bounded by cwnd in segments); force it with an aggressive beta
        # and check repeated shrinks clamp at 2 MSS.
        cc = Vegas(MSS)
        cc.ssthresh = 0
        cc.BETA = 0.5
        cc.ALPHA = 0.1
        cc.cwnd = 3 * MSS
        cc.on_rtt_sample(0.040, now=0.0)
        cc.on_rtt_sample(0.400, now=0.1)
        now = 0.2
        for _ in range(5):
            cc.on_ack(MSS, flight_size=int(cc.cwnd), now=now)
            now += 1.0  # past the per-RTT adjustment gate
        assert cc.cwnd == 2 * MSS


class TestVegasIntegration:
    def run_flow(self, bandwidth=mbps(10), rtt=ms(40), until=8.0):
        net, a, b, sa, sb, link = two_hosts(
            bandwidth_bps=bandwidth, delay_s=rtt / 2,
            tcp_options=TcpOptions(flavor="vegas", timestamps=True),
        )
        events = Collector()
        sb.listen(80, events.on_accept, on_data=events.on_data)
        client = sa.connect("b", 80)
        client.send(1 << 30)
        net.run(until=until)
        return events, client, link

    def test_fills_pipe_with_tiny_queue(self):
        events, client, link = self.run_flow()
        goodput = events.total_bytes * 8 / 8.0
        assert goodput > 0.75 * mbps(10)
        # Vegas's signature: it stops before overflowing the buffer.
        queue_stats = link.a_to_b.queue.stats
        assert queue_stats.dropped_packets <= 100  # slow-start exit only

    def test_steady_state_low_loss_vs_reno(self):
        events_v, client_v, link_v = self.run_flow()
        net, a, b, sa, sb, link_r = two_hosts(
            bandwidth_bps=mbps(10), delay_s=ms(20),
            tcp_options=TcpOptions(flavor="newreno"),
        )
        ev = Collector()
        sb.listen(80, ev.on_accept, on_data=ev.on_data)
        sa.connect("b", 80).send(1 << 30)
        net.run(until=8.0)
        # Reno keeps pushing until drops; Vegas backs off on delay.
        assert client_v.retransmits < 100
        assert link_v.a_to_b.queue.stats.dropped_packets \
            <= link_r.a_to_b.queue.stats.dropped_packets

    def test_vegas_equivalence_under_dilation(self):
        """Delay-based control is pure RTT arithmetic — it must dilate
        exactly."""
        from repro.core.dilation import NetworkProfile
        from repro.harness.experiments import run_bulk

        perceived = NetworkProfile.from_rtt(mbps(10), ms(40))
        base = run_bulk(perceived, 1, duration_s=3.0, warmup_s=1.0,
                        flavor="vegas")
        dilated = run_bulk(perceived, 10, duration_s=3.0, warmup_s=1.0,
                           flavor="vegas")
        assert dilated.delivered_bytes == pytest.approx(
            base.delivered_bytes, rel=1e-6)
        assert dilated.segments_sent == base.segments_sent
