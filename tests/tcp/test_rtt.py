"""Unit tests for the RFC 6298 RTT estimator."""

import pytest
from hypothesis import given, strategies as st

from repro.tcp.rtt import RttEstimator


def test_initial_rto():
    assert RttEstimator(initial_rto=1.0).rto == 1.0


def test_first_sample_initialises_srtt_and_var():
    est = RttEstimator()
    est.observe(0.100)
    assert est.srtt == pytest.approx(0.100)
    assert est.rttvar == pytest.approx(0.050)
    # RTO = srtt + 4*rttvar = 0.3
    assert est.rto == pytest.approx(0.300)


def test_ewma_updates():
    est = RttEstimator()
    est.observe(0.100)
    est.observe(0.100)
    assert est.srtt == pytest.approx(0.100)
    assert est.rttvar == pytest.approx(0.0375)  # (1-1/4)*0.05 + 1/4*0


def test_min_rto_floor():
    est = RttEstimator(min_rto=0.2)
    for _ in range(20):
        est.observe(0.001)
    assert est.rto == pytest.approx(0.2)


def test_max_rto_ceiling():
    est = RttEstimator(max_rto=60.0)
    est.observe(100.0)
    assert est.rto == 60.0


def test_backoff_doubles_until_cap():
    est = RttEstimator(initial_rto=1.0, max_rto=8.0)
    est.backoff()
    assert est.rto == 2.0
    est.backoff()
    assert est.rto == 4.0
    est.backoff()
    est.backoff()
    assert est.rto == 8.0  # capped


def test_backoff_multiplier_itself_is_clamped():
    """Regression: the multiplier used to grow unchecked to 1<<16 with only
    the ``rto`` property min'ing the product, leaving a stale super-max
    product in raw state. The multiplier must now stop once the product
    reaches ``max_rto``."""
    est = RttEstimator(initial_rto=1.0, max_rto=60.0)
    for _ in range(30):
        est.backoff()
        assert est._rto * est._backoff <= est.max_rto + 1e-9
        assert est.rto <= est.max_rto
    assert est._backoff <= 60.0  # not 1 << 16


def test_backoff_observe_interleaving_never_reports_super_max():
    est = RttEstimator(initial_rto=1.0, min_rto=0.2, max_rto=60.0)
    for round_no in range(5):
        for _ in range(20):
            est.backoff()
            assert est.rto <= est.max_rto
            assert est._rto * est._backoff <= est.max_rto + 1e-9
        est.observe(0.1 * (round_no + 1))
        assert est._backoff == 1
        assert est.rto <= est.max_rto


def test_sample_clears_backoff():
    est = RttEstimator(min_rto=0.2)
    est.observe(0.1)
    est.backoff()
    assert est.rto > 0.3
    est.observe(0.1)
    assert est.rto < 0.4


def test_negative_sample_rejected():
    with pytest.raises(ValueError):
        RttEstimator().observe(-0.1)


def test_reset():
    est = RttEstimator(initial_rto=1.0)
    est.observe(0.05)
    est.backoff()
    est.reset()
    assert est.srtt is None
    assert est.rto == 1.0
    assert est.samples == 0


def test_sample_counter():
    est = RttEstimator()
    for _ in range(5):
        est.observe(0.1)
    assert est.samples == 5


@given(st.lists(st.floats(min_value=1e-6, max_value=10), min_size=1, max_size=100))
def test_property_rto_always_within_bounds(samples):
    est = RttEstimator(min_rto=0.2, max_rto=60.0)
    for sample in samples:
        est.observe(sample)
        assert 0.2 <= est.rto <= 60.0
        assert est.srtt is not None and est.srtt > 0
        assert est.rttvar is not None and est.rttvar >= 0


@given(st.floats(min_value=1e-4, max_value=5.0))
def test_property_constant_rtt_converges(value):
    est = RttEstimator(min_rto=1e-6)
    for _ in range(200):
        est.observe(value)
    assert est.srtt == pytest.approx(value, rel=1e-3)
    assert est.rttvar == pytest.approx(0.0, abs=value * 0.01)


def test_initial_rto_clamped_to_max():
    # A super-max initial RTO used to survive until the first sample and
    # collapse backoff()'s multiplier cap to 1.0 (backoff permanently
    # disabled); it must be clamped into [min_rto, max_rto] up front.
    est = RttEstimator(initial_rto=120.0, min_rto=0.2, max_rto=60.0)
    assert est.rto == 60.0
    est.backoff()
    assert est.rto == 60.0  # still bounded, multiplier not collapsed


def test_initial_rto_clamped_to_min():
    est = RttEstimator(initial_rto=0.01, min_rto=0.2, max_rto=60.0)
    assert est.rto == 0.2


def test_initial_rto_clamp_survives_reset():
    est = RttEstimator(initial_rto=120.0, min_rto=0.2, max_rto=60.0)
    est.observe(0.1)
    est.reset()
    assert est.rto == 60.0


def test_backoff_doubles_from_clamped_initial():
    # With initial_rto inside the bounds backoff proceeds normally.
    est = RttEstimator(initial_rto=1.0, min_rto=0.2, max_rto=60.0)
    for expected in (2.0, 4.0, 8.0):
        est.backoff()
        assert est.rto == pytest.approx(expected)


@given(
    st.floats(min_value=1e-3, max_value=1e3),
    st.floats(min_value=1e-2, max_value=1.0),
    st.floats(min_value=2.0, max_value=100.0),
)
def test_property_initial_rto_always_within_bounds(initial, min_rto, max_rto):
    est = RttEstimator(initial_rto=initial, min_rto=min_rto, max_rto=max_rto)
    assert min_rto <= est.rto <= max_rto
    est.backoff()
    assert est.rto <= max_rto
