"""Segment-level unit tests: drive one socket with fabricated segments.

These cover paths that are hard to reach through a real network — the
zero-window persist timer, RST handling, duplicate-ACK classification
rules — by capturing what the socket emits and injecting crafted replies.
"""

import pytest

from repro.simnet.topology import Network
from repro.tcp import CLOSED, ESTABLISHED, TcpOptions
from repro.tcp.segment import Segment
from repro.tcp.stack import TcpStack


class Harness:
    """One socket whose peer is played by the test."""

    def __init__(self, options=None):
        self.net = Network()
        self.node = self.net.add_node("a")
        self.stack = TcpStack(self.node, default_options=options)
        self.sent = []
        self.node.send = lambda packet: self.sent.append(packet.payload)
        self.errors = []
        self.sock = self.stack.connect(
            "peer", 80, on_error=lambda s, e: self.errors.append(e)
        )

    def establish(self, window=1 << 20):
        synack = Segment(
            src_port=80, dst_port=self.sock.local_port,
            seq=0, ack=1, syn=True, ack_flag=True, window=window,
        )
        self.sock.handle_segment(synack)
        assert self.sock.state == ESTABLISHED
        self.sent.clear()

    def ack(self, ack, window=1 << 20, sack=()):
        self.sock.handle_segment(
            Segment(src_port=80, dst_port=self.sock.local_port,
                    seq=1, ack=ack, ack_flag=True, window=window, sack=sack)
        )

    def data_segments(self):
        return [s for s in self.sent if s.length > 0]


def test_syn_carries_no_ack():
    h = Harness()
    assert h.sent[0].syn and not h.sent[0].ack_flag


def test_rst_closes_and_reports():
    h = Harness()
    h.establish()
    h.sock.handle_segment(
        Segment(src_port=80, dst_port=h.sock.local_port, rst=True)
    )
    assert h.sock.state == CLOSED
    assert len(h.errors) == 1


def test_zero_window_arms_persist_probe():
    h = Harness()
    h.establish()
    h.ack(1, window=0)  # peer slams the window shut
    h.sock.send(5000)
    assert h.data_segments() == []  # nothing may be sent
    # The persist timer fires after one RTO and emits a 1-byte probe.
    h.net.run(until=2 * h.sock.rtt.rto + 0.1)
    probes = h.data_segments()
    assert len(probes) >= 1
    assert probes[0].length == 1


def test_window_reopen_releases_data():
    h = Harness()
    h.establish()
    h.ack(1, window=0)
    h.sock.send(5000)
    assert h.data_segments() == []
    h.ack(1, window=1 << 20)  # window update
    # Release is still congestion-window limited: exactly the RFC 3390
    # initial window (4380 bytes) goes out, not the whole 5000.
    assert sum(s.length for s in h.data_segments()) == 4380


def test_three_dupacks_trigger_fast_retransmit():
    h = Harness(options=TcpOptions(sack=False))
    h.establish()
    h.sock.send(50_000)
    first = h.data_segments()[0]
    h.sent.clear()
    for _ in range(3):
        h.ack(1)  # three pure duplicates of the handshake ack
    emitted = h.data_segments()
    # Dupacks 1 and 2 release NEW data (limited transmit, RFC 3042);
    # the third triggers the retransmission of the first segment.
    assert emitted[-1].seq == first.seq
    assert all(s.seq > first.seq for s in emitted[:-1])
    assert h.sock._in_recovery


def test_dupack_requires_unchanged_window():
    h = Harness(options=TcpOptions(sack=False))
    h.establish()
    h.sock.send(50_000)
    h.sent.clear()
    # Same ack value but a different advertised window each time: these are
    # window updates, not duplicate ACKs (RFC 5681).
    for window in ((1 << 20) - 1, (1 << 20) - 2, (1 << 20) - 3):
        h.ack(1, window=window)
    assert not h.sock._in_recovery
    assert h.sock._dupacks == 0


def test_dupacks_ignored_with_nothing_in_flight():
    h = Harness()
    h.establish()
    for _ in range(5):
        h.ack(1)
    assert h.sock._dupacks == 0


def test_ack_beyond_high_water_ignored():
    h = Harness()
    h.establish()
    h.sock.send(1000)
    h.ack(999_999)
    assert h.sock.snd_una == 1  # bogus ack did not move anything


def test_sack_blocks_populate_scoreboard():
    h = Harness()
    h.establish()
    h.sock.send(50_000)  # initial window: segments cover [1, 4381)
    h.ack(1, sack=((1_461, 4_381),))
    assert h.sock._scoreboard == [(1_461, 4_381)]


def test_cumulative_ack_trims_scoreboard():
    h = Harness()
    h.establish()
    h.sock.send(50_000)
    h.ack(1, sack=((1_461, 4_381),))
    h.ack(2_921)  # partially overlaps the sacked range
    assert h.sock._scoreboard == [(2_921, 4_381)]


def test_stray_segment_to_closed_port_gets_reset():
    net = Network()
    node = net.add_node("a")
    stack = TcpStack(node)
    sent = []
    node.send = lambda packet: sent.append(packet.payload)
    from repro.simnet.packet import Packet

    stray = Packet(
        src="peer", dst="a", protocol="tcp", size_bytes=40,
        payload=Segment(src_port=1234, dst_port=999, seq=5, ack_flag=True,
                        ack=10),
    )
    stack.deliver(stray)
    assert len(sent) == 1
    assert sent[0].rst
    assert stack.resets_sent == 1


def test_reset_not_answered_with_reset():
    net = Network()
    node = net.add_node("a")
    stack = TcpStack(node)
    sent = []
    node.send = lambda packet: sent.append(packet.payload)
    from repro.simnet.packet import Packet

    stray = Packet(
        src="peer", dst="a", protocol="tcp", size_bytes=40,
        payload=Segment(src_port=1234, dst_port=999, rst=True),
    )
    stack.deliver(stray)
    assert sent == []  # RST storms are not a thing here


def test_duplicate_synack_is_reacked():
    h = Harness()
    h.establish()
    h.sock.handle_segment(
        Segment(src_port=80, dst_port=h.sock.local_port,
                seq=0, ack=1, syn=True, ack_flag=True, window=1 << 20)
    )
    # The stray handshake segment elicits a pure ACK, not a state change.
    assert h.sock.state == ESTABLISHED
    assert h.sent[-1].ack_flag and h.sent[-1].length == 0
