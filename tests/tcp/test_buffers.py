"""Unit tests for send/receive stream buffers."""

import pytest
from hypothesis import given, strategies as st

from repro.simnet.errors import ProtocolError
from repro.tcp.buffers import ReceiveAssembler, SendBuffer


class TestSendBuffer:
    def test_write_accumulates(self):
        buf = SendBuffer()
        buf.write(100)
        buf.write(50)
        assert buf.stream_length == 150
        assert buf.available_from(0) == 150
        assert buf.available_from(120) == 30
        assert buf.available_from(150) == 0
        assert buf.available_from(200) == 0

    def test_write_rejects_nonpositive(self):
        with pytest.raises(ProtocolError):
            SendBuffer().write(0)

    def test_markers_ride_completing_range(self):
        buf = SendBuffer()
        buf.write(100, message="a")   # completes at 100
        buf.write(100, message="b")   # completes at 200
        assert buf.markers_in(0, 100) == [(100, "a")]
        assert buf.markers_in(100, 200) == [(200, "b")]
        assert buf.markers_in(0, 99) == []
        assert buf.markers_in(0, 200) == [(100, "a"), (200, "b")]

    def test_markers_survive_until_released(self):
        buf = SendBuffer()
        buf.write(100, message="a")
        # A retransmission of the same range still carries the marker.
        assert buf.markers_in(0, 100) == [(100, "a")]
        assert buf.markers_in(0, 100) == [(100, "a")]
        buf.release_through(100)
        assert buf.markers_in(0, 100) == []
        assert buf.pending_markers == 0

    def test_untagged_writes_have_no_markers(self):
        buf = SendBuffer()
        buf.write(100)
        assert buf.markers_in(0, 100) == []


class TestReceiveAssembler:
    def test_in_order_delivery(self):
        delivered = []
        asm = ReceiveAssembler(1000, on_data=delivered.append)
        assert asm.accept(0, 100, [])
        assert asm.accept(100, 100, [])
        assert asm.rcv_nxt == 200
        assert asm.bytes_delivered == 200
        assert delivered == [100, 100]

    def test_duplicate_ignored(self):
        asm = ReceiveAssembler(1000)
        asm.accept(0, 100, [])
        assert not asm.accept(0, 100, [])
        assert asm.bytes_delivered == 100

    def test_out_of_order_held_then_merged(self):
        asm = ReceiveAssembler(1000)
        assert not asm.accept(100, 100, [])  # hole at [0,100)
        assert asm.rcv_nxt == 0
        assert asm.out_of_order_bytes == 100
        assert asm.accept(0, 100, [])        # fills the hole
        assert asm.rcv_nxt == 200
        assert asm.out_of_order_bytes == 0

    def test_overlapping_segments(self):
        asm = ReceiveAssembler(1000)
        asm.accept(0, 150, [])
        asm.accept(100, 100, [])  # overlaps delivered data
        assert asm.rcv_nxt == 200
        assert asm.bytes_delivered == 200

    def test_multiple_ooo_ranges_merge(self):
        asm = ReceiveAssembler(10000)
        asm.accept(200, 100, [])
        asm.accept(400, 100, [])
        asm.accept(100, 100, [])   # merges with [200,300)
        assert asm.out_of_order_bytes == 300
        asm.accept(0, 100, [])
        assert asm.rcv_nxt == 300
        asm.accept(300, 100, [])
        assert asm.rcv_nxt == 500

    def test_window_constant_despite_ooo_bytes(self):
        # The app consumes in-order data instantly, so the full buffer is
        # always advertised; ooo bytes are bounded by the window itself.
        asm = ReceiveAssembler(1000)
        asm.accept(500, 200, [])
        assert asm.window() == 1000
        assert asm.out_of_order_bytes == 200

    def test_messages_delivered_in_order(self):
        messages = []
        asm = ReceiveAssembler(10000, on_message=messages.append)
        asm.accept(100, 100, [(200, "second")])
        assert messages == []  # held: stream hasn't passed offset 200
        asm.accept(0, 100, [(100, "first")])
        assert messages == ["first", "second"]

    def test_message_on_exact_boundary(self):
        messages = []
        asm = ReceiveAssembler(10000, on_message=messages.append)
        asm.accept(0, 100, [(100, "m")])
        assert messages == ["m"]

    def test_duplicate_marker_from_retransmission_not_redelivered(self):
        messages = []
        asm = ReceiveAssembler(10000, on_message=messages.append)
        asm.accept(0, 100, [(100, "m")])
        # Retransmission arrives later carrying the same marker; the offset
        # key was consumed, so nothing is delivered twice.
        asm.accept(0, 100, [])
        assert messages == ["m"]

    def test_no_message_callback_discards_markers(self):
        asm = ReceiveAssembler(10000)
        asm.accept(0, 100, [(100, "m")])
        assert asm._pending_messages == {}

    def test_invalid_buffer_size(self):
        with pytest.raises(ProtocolError):
            ReceiveAssembler(0)

    @given(
        st.permutations(
            [(i * 100, 100) for i in range(8)]
        )
    )
    def test_property_any_arrival_order_reassembles(self, order):
        asm = ReceiveAssembler(100000)
        for seq, length in order:
            asm.accept(seq, length, [])
        assert asm.rcv_nxt == 800
        assert asm.bytes_delivered == 800
        assert asm.out_of_order_bytes == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 10)),
            min_size=1,
            max_size=60,
        )
    )
    def test_property_delivery_never_exceeds_contiguous_coverage(self, chunks):
        """bytes_delivered equals the contiguous prefix covered so far."""
        asm = ReceiveAssembler(100000)
        covered = set()
        for start_unit, len_units in chunks:
            seq, length = start_unit * 10, len_units * 10
            asm.accept(seq, length, [])
            covered.update(range(seq, seq + length))
        prefix = 0
        while prefix in covered:
            prefix += 1
        assert asm.rcv_nxt == prefix
