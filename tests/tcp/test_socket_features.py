"""Feature tests: Nagle, delayed ACKs, half-close, simultaneous open."""

import pytest

from repro.simnet.units import mbps, ms
from repro.tcp import CLOSE_WAIT, ESTABLISHED, FIN_WAIT_2, TcpOptions
from tests.helpers import Collector, two_hosts


class TestNagle:
    def capture_data_segments(self, nagle, writes, until=2.0):
        net, a, b, sa, sb, link = two_hosts(
            bandwidth_bps=mbps(10), delay_s=ms(20),
            tcp_options=TcpOptions(nagle=nagle),
        )
        events = Collector()
        sb.listen(80, events.on_accept, on_data=events.on_data)
        segments = []
        link.a_to_b.add_tap(
            lambda kind, t, p: segments.append(p.payload)
            if kind == "tx" and p.payload.length > 0 else None
        )
        client = sa.connect("b", 80, on_connected=lambda s: None)

        def write_all():
            for size in writes:
                client.send(size)

        net.run(until=0.5)  # establish first
        write_all()
        net.run(until=until)
        return segments, events

    def test_nagle_coalesces_small_writes(self):
        # 20 tiny writes; with Nagle only the first goes out sub-MSS, the
        # rest wait and coalesce into far fewer segments.
        segments, events = self.capture_data_segments(True, [100] * 20)
        assert events.total_bytes == 2000
        small = [s for s in segments if s.length < 1460]
        coalesced = [s for s in segments if s.length > 100]
        assert len(segments) < 20
        assert coalesced

    def test_without_nagle_each_write_is_a_segment(self):
        segments, events = self.capture_data_segments(False, [100] * 20)
        assert events.total_bytes == 2000
        assert len([s for s in segments if s.length == 100]) == 20


class TestDelayedAck:
    def count_acks(self, delayed_ack_timeout, payload=1460, writes=1):
        net, a, b, sa, sb, link = two_hosts(
            bandwidth_bps=mbps(10), delay_s=ms(5),
            tcp_options=TcpOptions(delayed_ack_timeout=delayed_ack_timeout),
        )
        events = Collector()
        sb.listen(80, events.on_accept, on_data=events.on_data)
        acks = []
        link.b_to_a.add_tap(
            lambda kind, t, p: acks.append((t, p.payload))
            if kind == "tx" and p.payload.length == 0 and not p.payload.syn
            else None
        )
        client = sa.connect("b", 80)
        net.run(until=0.5)
        for _ in range(writes):
            client.send(payload)
        net.run(until=2.0)
        return acks, events

    def test_single_segment_ack_is_delayed(self):
        acks, _ = self.count_acks(delayed_ack_timeout=0.040)
        # The data ACK comes ~40 ms after the segment arrived, not at once.
        data_acks = [t for t, s in acks if s.ack > 1]
        assert data_acks
        # Arrival at ~0.5 + prop+ser; the ACK fires one delack later.
        assert data_acks[0] > 0.5 + 0.005 + 0.030

    def test_second_segment_forces_immediate_ack(self):
        acks_two, _ = self.count_acks(delayed_ack_timeout=0.040, writes=2)
        data_acks = [t for t, s in acks_two if s.ack > 1]
        assert data_acks
        assert data_acks[0] < 0.5 + 0.040  # no delack wait

    def test_zero_timeout_acks_everything_immediately(self):
        acks, _ = self.count_acks(delayed_ack_timeout=0.0, writes=3)
        data_acks = [s for t, s in acks if s.ack > 1]
        assert len(data_acks) >= 3


class TestHalfClose:
    def test_sender_closes_receiver_keeps_talking(self):
        """Client FINs; the server may still stream data back (half-close),
        then close its own side."""
        net, a, b, sa, sb, _ = two_hosts(tcp_options=TcpOptions(msl=0.1))
        server_side = {}
        client_events = Collector()

        def on_accept(sock):
            server_side["sock"] = sock

        def on_close_server(sock):
            # Client finished sending; stream our response, then close.
            sock.send(50_000)
            sock.close()

        sb.listen(80, on_accept, on_close=on_close_server)
        client = sa.connect("b", 80, on_data=client_events.on_data,
                            on_close=client_events.on_close)
        client.send(1000)
        client.close()
        net.run(until=1.0)
        assert client.state in (FIN_WAIT_2, "TIME_WAIT", "CLOSED")
        net.run(until=10.0)
        assert client_events.total_bytes == 50_000
        assert len(client_events.closed) == 1
        assert client.state == "CLOSED"

    def test_close_wait_side_can_send(self):
        net, a, b, sa, sb, _ = two_hosts()
        holder = {}
        sb.listen(80, lambda s: holder.setdefault("sock", s))
        client_events = Collector()
        client = sa.connect("b", 80, on_data=client_events.on_data)
        client.close()
        net.run(until=0.5)
        server_sock = holder["sock"]
        assert server_sock.state == CLOSE_WAIT
        server_sock.send(2000)  # legal in CLOSE_WAIT
        net.run(until=2.0)
        assert client_events.total_bytes == 2000


class TestSimultaneousOpen:
    def test_both_ends_connect_at_once(self):
        net, a, b, sa, sb, _ = two_hosts()
        events_a, events_b = Collector(), Collector()
        # Both actively connect to each other's fixed port at t=0.
        sock_a = sa.connect("b", 7000, local_port=7000,
                            on_connected=events_a.on_connected)
        sock_b = sb.connect("a", 7000, local_port=7000,
                            on_connected=events_b.on_connected)
        net.run(until=5.0)
        assert sock_a.state == ESTABLISHED
        assert sock_b.state == ESTABLISHED
