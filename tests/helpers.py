"""Shared fixtures/builders for integration tests."""

from repro.simnet.link import Link
from repro.simnet.queues import DropTailQueue
from repro.simnet.topology import Network
from repro.tcp.stack import TcpStack


def two_hosts(
    bandwidth_bps=10e6,
    delay_s=0.010,
    queue_packets=100,
    tcp_options=None,
):
    """Two directly linked hosts with TCP stacks installed.

    Returns ``(net, host_a, host_b, stack_a, stack_b, link)``.
    """
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    link = net.add_link(
        a, b, bandwidth_bps, delay_s,
        queue_factory=lambda: DropTailQueue(capacity_packets=queue_packets),
    )
    net.finalize()
    stack_a = TcpStack(a, default_options=tcp_options)
    stack_b = TcpStack(b, default_options=tcp_options)
    return net, a, b, stack_a, stack_b, link


class Collector:
    """Callback recorder for socket events."""

    def __init__(self):
        self.connected = []
        self.data = []
        self.messages = []
        self.closed = []
        self.errors = []
        self.accepted = []

    def on_connected(self, sock):
        self.connected.append(sock)

    def on_data(self, sock, n):
        self.data.append(n)

    def on_message(self, sock, message):
        self.messages.append(message)

    def on_close(self, sock):
        self.closed.append(sock)

    def on_error(self, sock, error):
        self.errors.append(error)

    def on_accept(self, sock):
        self.accepted.append(sock)

    @property
    def total_bytes(self):
        return sum(self.data)
