"""Exact virtual<->physical rescaling — fractional TDFs, runtime epochs.

The pcap exporter re-expresses recorded physical timestamps in a clock's
virtual time. These tests pin the exactness claim: mapping through the
epoch history in ``Fraction`` arithmetic round-trips *bit-exactly* for
awkward TDFs (7/3) and across runtime TDF changes, and the final
rounding to integer pcap nanoseconds is monotone.
"""

from fractions import Fraction

import pytest

from repro.core.clock import DilatedClock
from repro.simnet.engine import Simulator
from repro.trace.events import TraceEvent
from repro.trace.pcap import export_pcap, pcap_timestamp, read_pcap

AWKWARD_TIMES = [
    0.0, 1e-9, 0.1, 0.3333333333333333, 0.9999999999999999,
    1.0, 1.5000000000000002, 2.718281828459045, 3.141592653589793, 10.0,
]


def test_exact_round_trip_fractional_tdf():
    sim = Simulator()
    clock = DilatedClock(sim, tdf=Fraction(7, 3))
    for physical in AWKWARD_TIMES:
        virtual = clock.to_local_exact(physical)
        assert clock.to_physical_exact(virtual) == Fraction(physical)


def test_exact_round_trip_across_runtime_epochs():
    sim = Simulator()
    clock = DilatedClock(sim, tdf=Fraction(7, 3))
    sim.schedule(1.0, lambda: clock.set_tdf(10))
    sim.schedule(2.5, lambda: clock.set_tdf(Fraction(1, 3)))
    sim.schedule(4.0, lambda: None)
    sim.run()
    assert len(clock._epochs) == 3
    for physical in AWKWARD_TIMES + [1.0, 2.5, 2.5000000001, 4.0, 7.7]:
        virtual = clock.to_local_exact(physical)
        assert clock.to_physical_exact(virtual) == Fraction(physical)


def test_exact_matches_float_mapping():
    """The exact mapping agrees with the float fast path to float precision."""
    sim = Simulator()
    clock = DilatedClock(sim, tdf=Fraction(7, 3))
    sim.schedule(1.0, lambda: clock.set_tdf(5))
    sim.run()
    for physical in AWKWARD_TIMES:
        assert float(clock.to_local_exact(physical)) == pytest.approx(
            clock.to_local(physical), abs=1e-12
        )


def test_pcap_timestamp_is_exact_at_fractional_tdf():
    sim = Simulator()
    clock = DilatedClock(sim, tdf=Fraction(7, 3))
    event = TraceEvent(category="packet", kind="tx", physical_time=7.0)
    # virtual = 7 / (7/3) = 3 seconds, exactly.
    assert pcap_timestamp(event, clock=clock) == (3, 0)
    event = TraceEvent(category="packet", kind="tx", physical_time=1.0)
    # virtual = 3/7 s; nanoseconds round to the nearest integer.
    assert pcap_timestamp(event, clock=clock) == (0, round(Fraction(3, 7) * 10**9))


def test_pcap_timestamps_monotone_across_epochs(tmp_path):
    sim = Simulator()
    clock = DilatedClock(sim, tdf=Fraction(7, 3))
    sim.schedule(1.0, lambda: clock.set_tdf(Fraction(22, 7)))
    sim.schedule(2.0, lambda: clock.set_tdf(1))
    sim.run()
    events = [
        TraceEvent(category="packet", kind="tx",
                   physical_time=0.0001 * i + (0.9995 if i > 10 else 0),
                   site="bn", src="a", dst="b", protocol="raw",
                   size_bytes=100)
        for i in range(30)
    ]
    path = tmp_path / "mono.pcap"
    count = export_pcap(events, str(path), clock=clock)
    assert count == len(events)
    _, records = read_pcap(str(path))
    stamps = [(r["ts_sec"], r["ts_nsec"]) for r in records]
    assert stamps == sorted(stamps)


def test_virtual_base_uses_captured_timestamp():
    event = TraceEvent(category="packet", kind="tx", physical_time=10.0,
                       virtual_time=2.5)
    assert pcap_timestamp(event, time_base="virtual") == (2, 500_000_000)
    bare = TraceEvent(category="packet", kind="tx", physical_time=10.0)
    with pytest.raises(ValueError, match="no virtual timestamp"):
        pcap_timestamp(bare, time_base="virtual")
