"""Trace-diff engine: alignment, first divergence, uid blindness."""

import dataclasses

from repro.trace.diff import diff_traces, summarize_events
from repro.trace.events import TraceEvent


def _stream(kind="tx", n=5, site="bn", flow="flow0", uid_base=0,
            virtual_scale=None, t0=1.0, gap=0.01):
    events = []
    for index in range(n):
        t = t0 + index * gap
        events.append(TraceEvent(
            category="packet", kind=kind, physical_time=t,
            virtual_time=(t / virtual_scale) if virtual_scale else None,
            site=site, flow_id=flow, packet_uid=uid_base + index,
            size_bytes=1500, src="snd0", dst="rcv0", protocol="tcp",
            src_port=40000, dst_port=5001, seq=1460 * index, ack=1,
            payload_len=1460, flags=".", window=65535,
        ))
    return events


def test_identical_traces():
    result = diff_traces(_stream(), _stream())
    assert result.identical
    assert result.streams_compared == 1
    assert result.events_compared == 5
    assert "equivalent" in result.render()


def test_uids_never_compared():
    """Packet uids come from process-global counters; two equivalent runs
    number packets differently and must still diff clean."""
    result = diff_traces(_stream(uid_base=0), _stream(uid_base=10_000))
    assert result.identical


def test_field_divergence_located():
    a = _stream()
    b = _stream()
    b[3] = dataclasses.replace(b[3], seq=b[3].seq + 1460)
    result = diff_traces(a, b)
    assert not result.identical
    first = result.first
    assert first.kind == "field"
    assert first.detail == "seq"
    assert first.index == 3
    assert first.stream.startswith("packet/bn/flow0")
    # Context brackets the divergence from both sides.
    assert a[3] in result.context_a
    assert b[3] in result.context_b
    assert "first divergence" in result.render()


def test_drop_reason_divergence():
    a = _stream(kind="drop")
    b = _stream(kind="drop")
    a[1] = dataclasses.replace(a[1], reason="queue")
    b[1] = dataclasses.replace(b[1], reason="loss")
    first = diff_traces(a, b).first
    assert first.kind == "field" and first.detail == "reason"
    assert (first.a_value, first.b_value) == ("queue", "loss")


def test_time_divergence_on_virtual_axis():
    # TDF-10 run vs baseline: same virtual times -> equivalent...
    a = _stream(virtual_scale=10.0, t0=10.0, gap=0.1)
    b = [dataclasses.replace(e, physical_time=e.virtual_time,
                             virtual_time=e.virtual_time)
         for e in a]
    assert diff_traces(a, b).identical
    # ...until one virtual timestamp slips beyond tolerance.
    b[2] = dataclasses.replace(b[2], virtual_time=b[2].virtual_time + 1e-3)
    result = diff_traces(a, b)
    assert result.first.kind == "time"
    assert result.first.detail == "virtual time"
    assert result.first.index == 2
    # A loose tolerance accepts the slip.
    assert diff_traces(a, b, time_tolerance=0.01).identical


def test_physical_time_fallback_without_virtual():
    a = _stream()
    b = [dataclasses.replace(e, physical_time=e.physical_time + 5e-7)
         for e in _stream()]
    assert diff_traces(a, b).identical  # inside the 1e-6 default
    b = [dataclasses.replace(e, physical_time=e.physical_time + 5e-3)
         for e in _stream()]
    result = diff_traces(a, b)
    assert result.first.kind == "time" and result.first.detail == "time"
    assert diff_traces(a, b, compare_time=False).identical


def test_length_divergence_and_one_sided_streams():
    result = diff_traces(_stream(n=5), _stream(n=3))
    assert result.first.kind == "length"
    assert result.first.index == 3
    assert (result.first.a_value, result.first.b_value) == (5, 3)
    # A stream present only in one recording is a length divergence too.
    result = diff_traces(_stream(), _stream() + _stream(kind="rx", n=2))
    assert len(result.divergences) == 1
    assert result.first.kind == "length"
    assert (result.first.a_value, result.first.b_value) == (0, 2)


def test_category_filter():
    a = _stream() + [TraceEvent(category="timer", kind="fire",
                                physical_time=0.5, site="A.cb")]
    b = _stream() + [TraceEvent(category="timer", kind="fire",
                                physical_time=0.5, site="B.cb")]
    assert not diff_traces(a, b).identical  # timer sites differ
    assert diff_traces(a, b, categories=("packet",)).identical


def test_divergences_ordered_by_time():
    a = _stream(kind="tx") + _stream(kind="rx", t0=2.0)
    b = _stream(kind="tx") + _stream(kind="rx", t0=2.0)
    # Later divergence in the tx stream, earlier one in the rx stream.
    a[4] = dataclasses.replace(a[4], size_bytes=9000)     # tx[4] @ t=1.04
    a[6] = dataclasses.replace(a[6], size_bytes=9000)     # rx[1] @ t=2.01
    a[2] = dataclasses.replace(a[2], size_bytes=9000)     # tx[2] @ t=1.02
    result = diff_traces(a, b)
    assert [d.index for d in result.divergences] == [2, 4, 1]
    assert result.first.stream.endswith("/tx")


def test_summarize_events():
    events = (_stream(kind="tx", n=3) + _stream(kind="drop", n=2)
              + [TraceEvent(category="tcp", kind="cwnd", physical_time=9.0)])
    events[3] = dataclasses.replace(events[3], reason="queue")
    events[4] = dataclasses.replace(events[4], reason="loss")
    summary = summarize_events(events)
    assert summary["events"] == 6
    assert summary["by_kind"] == {"packet/drop": 2, "packet/tx": 3,
                                  "tcp/cwnd": 1}
    assert summary["drops_by_reason"] == {"loss": 1, "queue": 1}
    assert summary["flows"] == {"flow0": 5}
    assert summary["packet_bytes"] == 5 * 1500
    assert summary["span_physical_s"] > 0
