"""``repro-trace`` CLI: capture -> export -> diff -> summarize."""

import json
import struct

import pytest

from repro.core.dilation import NetworkProfile
from repro.harness import figures
from repro.harness.report import FigureResult, Table
from repro.harness.runner import CellSpec, FigureCells
from repro.simnet.units import mbps, ms
from repro.trace import cli as trace_cli

PERCEIVED = NetworkProfile.from_rtt(mbps(5), ms(10))


def _tiny_cells():
    return [
        CellSpec("figtest", f"tdf{k}", "run_bulk",
                 {"perceived": PERCEIVED, "tdf": k,
                  "duration_s": 0.6, "warmup_s": 0.1})
        for k in (1, 10)
    ]


def _tiny_assemble(results):
    table = Table(["cell"])
    for key in results:
        table.add_row(key)
    return FigureResult("figtest", "tiny", table)


@pytest.fixture()
def tiny_figure(monkeypatch):
    monkeypatch.setitem(
        figures.CELL_MODEL, "figtest",
        FigureCells(enumerate=_tiny_cells, assemble=_tiny_assemble),
    )


def _tiny_swarm_cells():
    return [
        CellSpec("swarmtest", "n4", "run_bittorrent",
                 {"perceived_leaf": PERCEIVED, "tdf": 1, "leechers": 4,
                  "file_bytes": 64 * 1024, "seed": 99}),
    ]


@pytest.fixture()
def tiny_swarm_figure(monkeypatch):
    monkeypatch.setitem(
        figures.CELL_MODEL, "swarmtest",
        FigureCells(enumerate=_tiny_swarm_cells, assemble=_tiny_assemble),
    )


def test_capture_export_diff_summarize(tmp_path, tiny_figure, capsys):
    rc = trace_cli.main([
        "capture", "figtest", "--out", str(tmp_path),
        "--spec", "bottleneck:tcp=1",
    ])
    assert rc == 0
    baseline = tmp_path / "figtest-tdf1.jsonl"
    dilated = tmp_path / "figtest-tdf10.jsonl"
    assert baseline.exists() and dilated.exists()
    out = capsys.readouterr().out
    assert "figtest-tdf1.jsonl" in out and "events" in out

    # Dilated vs scaled baseline: zero divergences.
    rc = trace_cli.main(["diff", str(dilated), str(baseline)])
    assert rc == 0
    assert "equivalent" in capsys.readouterr().out

    # pcap export, with valid nanosecond magic bytes.
    pcap_path = tmp_path / "dilated.pcap"
    rc = trace_cli.main(["export", str(dilated), "-o", str(pcap_path)])
    assert rc == 0
    with open(pcap_path, "rb") as handle:
        assert struct.unpack("<I", handle.read(4))[0] == 0xA1B23C4D

    # Virtual-time export works (the recorder owned the receiver's clock).
    rc = trace_cli.main(["export", str(dilated), "-o",
                         str(tmp_path / "virtual.pcap"),
                         "--time-base", "virtual"])
    assert rc == 0

    rc = trace_cli.main(["summarize", str(baseline)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "events" in out and "inter-event gaps" in out


def test_diff_detects_doctored_recording(tmp_path, tiny_figure, capsys):
    rc = trace_cli.main([
        "capture", "figtest", "--cells", "tdf1", "--out", str(tmp_path),
    ])
    assert rc == 0
    original = tmp_path / "figtest-tdf1.jsonl"
    doctored = tmp_path / "doctored.jsonl"
    lines = original.read_text().splitlines()
    broken = False
    records = []
    for line in lines:
        record = json.loads(line)
        if not broken and record.get("kind") == "tx":
            record["size_bytes"] = record.get("size_bytes", 0) + 1
            broken = True
        records.append(json.dumps(record))
    doctored.write_text("\n".join(records) + "\n")
    assert broken
    rc = trace_cli.main(["diff", str(original), str(doctored)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "first divergence" in out
    assert "size_bytes" in out


def test_capture_cell_filter(tmp_path, tiny_figure):
    rc = trace_cli.main([
        "capture", "figtest", "--cells", "tdf10", "--out", str(tmp_path),
    ])
    assert rc == 0
    assert (tmp_path / "figtest-tdf10.jsonl").exists()
    assert not (tmp_path / "figtest-tdf1.jsonl").exists()


def test_capture_error_paths(tmp_path, tiny_figure, capsys):
    assert trace_cli.main(["capture", "nope", "--out", str(tmp_path)]) == 2
    assert "unknown figure" in capsys.readouterr().err
    assert trace_cli.main([
        "capture", "figtest", "--cells", "tdf99", "--out", str(tmp_path),
    ]) == 2
    assert "unknown cell" in capsys.readouterr().err
    assert trace_cli.main([
        "capture", "figtest", "--spec", "warpcore", "--out", str(tmp_path),
    ]) == 2
    assert "unknown trace point" in capsys.readouterr().err


def test_capture_salt_rejected_for_bulk_cells(tmp_path, tiny_figure, capsys):
    assert trace_cli.main([
        "capture", "figtest", "--salt", "1e-6", "--out", str(tmp_path),
    ]) == 2
    assert "only applies to swarm cells" in capsys.readouterr().err


def test_capture_fidelity_hybrid_plumbs_through(tmp_path, tiny_figure):
    """``--fidelity hybrid`` reaches the runner. At this tiny scale the
    fluid engine never engages (startup-dominated), so the hybrid capture
    is bit-exact with the packet one — pinning that the flag itself does
    not perturb fallback cells."""
    rc = trace_cli.main([
        "capture", "figtest", "--cells", "tdf1",
        "--out", str(tmp_path / "packet"),
    ])
    assert rc == 0
    rc = trace_cli.main([
        "capture", "figtest", "--cells", "tdf1", "--fidelity", "hybrid",
        "--out", str(tmp_path / "hybrid"),
    ])
    assert rc == 0
    rc = trace_cli.main([
        "diff",
        str(tmp_path / "hybrid" / "figtest-tdf1.jsonl"),
        str(tmp_path / "packet" / "figtest-tdf1.jsonl"),
    ])
    assert rc == 0


def test_capture_fidelity_rejected_for_non_fluid_cells(
    tmp_path, tiny_figure, monkeypatch, capsys,
):
    from repro.harness import experiments

    monkeypatch.setattr(experiments, "FLUID_RUNNERS", frozenset())
    assert trace_cli.main([
        "capture", "figtest", "--fidelity", "hybrid",
        "--out", str(tmp_path),
    ]) == 2
    assert "not fluid-capable" in capsys.readouterr().err


def test_capture_salted_baseline_matches_sharded_swarm(
    tmp_path, tiny_swarm_figure,
):
    """The CI shard tier's swarm gate: ``--salt`` makes the --shards 1
    baseline the same salted simulation the sharded capture runs, so the
    recordings diff to zero divergence."""
    rc = trace_cli.main([
        "capture", "swarmtest", "--salt", "1e-6",
        "--out", str(tmp_path / "one"),
    ])
    assert rc == 0
    rc = trace_cli.main([
        "capture", "swarmtest", "--salt", "1e-6", "--shards", "2",
        "--out", str(tmp_path / "two"),
    ])
    assert rc == 0
    rc = trace_cli.main([
        "diff",
        str(tmp_path / "two" / "swarmtest-n4.jsonl"),
        str(tmp_path / "one" / "swarmtest-n4.jsonl"),
    ])
    assert rc == 0


def test_capture_schedule_sharded_diff_zero_divergence(
    tmp_path, tiny_figure,
):
    """The CI schedule tier's gate: the same scheduled cell captured at
    --shards 1 and 2 diffs to zero divergence (replicated schedule timers
    step the per-shard link copies in lockstep)."""
    spec = "leo:period=0.2,count=2,outage=0.02"
    rc = trace_cli.main([
        "capture", "figtest", "--cells", "tdf1", "--schedule", spec,
        "--out", str(tmp_path / "one"),
    ])
    assert rc == 0
    rc = trace_cli.main([
        "capture", "figtest", "--cells", "tdf1", "--schedule", spec,
        "--shards", "2", "--out", str(tmp_path / "two"),
    ])
    assert rc == 0
    rc = trace_cli.main([
        "diff",
        str(tmp_path / "two" / "figtest-tdf1.jsonl"),
        str(tmp_path / "one" / "figtest-tdf1.jsonl"),
    ])
    assert rc == 0


def test_capture_schedule_rejects_bad_spec(tmp_path, tiny_figure, capsys):
    assert trace_cli.main([
        "capture", "figtest", "--schedule", "geo", "--out", str(tmp_path),
    ]) == 2
    assert "unknown schedule kind" in capsys.readouterr().err


def test_capture_schedule_rejected_for_incapable_cells(
    tmp_path, tiny_figure, monkeypatch, capsys,
):
    from repro.harness import experiments

    monkeypatch.setattr(experiments, "SCHEDULE_RUNNERS", frozenset())
    assert trace_cli.main([
        "capture", "figtest", "--schedule", "leo", "--out", str(tmp_path),
    ]) == 2
    assert "not schedule-capable" in capsys.readouterr().err


def test_diff_missing_file(tmp_path, capsys):
    missing = tmp_path / "nope.jsonl"
    present = tmp_path / "yes.jsonl"
    present.write_text("")
    assert trace_cli.main(["diff", str(missing), str(present)]) == 2
