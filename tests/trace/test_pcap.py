"""pcap export: header synthesis, readability, lengths, flags."""

import struct

import pytest

from repro.trace.events import TraceEvent
from repro.trace.pcap import PCAP_MAGIC_NS, export_pcap, read_pcap


def _tcp_event(kind="tx", t=1.0, seq=1000, payload=1460, flags=".",
               src="snd0", dst="rcv0"):
    return TraceEvent(
        category="packet", kind=kind, physical_time=t, site="bn",
        flow_id="flow0", packet_uid=7, size_bytes=payload + 40,
        src=src, dst=dst, protocol="tcp", src_port=40000, dst_port=5001,
        seq=seq, ack=555, payload_len=payload, flags=flags, window=65535,
    )


def test_global_header(tmp_path):
    path = tmp_path / "empty.pcap"
    assert export_pcap([], str(path)) == 0
    header, records = read_pcap(str(path))
    assert header["magic"] == PCAP_MAGIC_NS
    assert header["version"] == (2, 4)
    assert header["linktype"] == 1  # Ethernet
    assert records == []


def test_magic_bytes_on_disk(tmp_path):
    path = tmp_path / "magic.pcap"
    export_pcap([_tcp_event()], str(path))
    with open(path, "rb") as handle:
        assert struct.unpack("<I", handle.read(4))[0] == 0xA1B23C4D


def test_tcp_fields_survive_round_trip(tmp_path):
    path = tmp_path / "tcp.pcap"
    events = [
        _tcp_event(t=1.0, seq=0, payload=0, flags="S"),
        _tcp_event(t=1.1, seq=1, payload=1460, flags="."),
        _tcp_event(t=1.2, seq=1461, payload=0, flags="F"),
    ]
    assert export_pcap(events, str(path)) == 3
    _, records = read_pcap(str(path))
    assert [r["src_port"] for r in records] == [40000] * 3
    assert [r["dst_port"] for r in records] == [5001] * 3
    assert [r["seq"] for r in records] == [0, 1, 1461]
    assert [r["ack"] for r in records] == [555] * 3
    # SYN; ACK+PSH (data); FIN.
    assert records[0]["tcp_flags"] & 0x02
    assert records[1]["tcp_flags"] & 0x10 and records[1]["tcp_flags"] & 0x08
    assert records[2]["tcp_flags"] & 0x01
    assert all(r["proto"] == 6 for r in records)


def test_lengths_snap_capture_semantics(tmp_path):
    path = tmp_path / "len.pcap"
    event = _tcp_event(payload=1460)  # wire size 1500
    export_pcap([event], str(path))
    _, [record] = read_pcap(str(path))
    assert record["incl_len"] == 14 + 20 + 20  # synthesized headers only
    assert record["orig_len"] == event.size_bytes + 14  # true frame size
    assert record["ip_total_len"] == 20 + 20 + 1460


def test_deterministic_addressing(tmp_path):
    path = tmp_path / "addr.pcap"
    events = [
        _tcp_event(src="snd0", dst="rcv0"),
        _tcp_event(src="rcv0", dst="snd0"),
        _tcp_event(src="snd0", dst="rcv0"),
    ]
    export_pcap(events, str(path))
    _, records = read_pcap(str(path))
    # First-seen order: snd0 -> 10.0.0.1, rcv0 -> 10.0.0.2; stable after.
    assert records[0]["src_ip"] == "10.0.0.1"
    assert records[0]["dst_ip"] == "10.0.0.2"
    assert records[1]["src_ip"] == "10.0.0.2"
    assert records[2]["src_ip"] == "10.0.0.1"


def test_kind_selection(tmp_path):
    path = tmp_path / "kinds.pcap"
    events = [_tcp_event(kind="enqueue"), _tcp_event(kind="tx"),
              _tcp_event(kind="rx"), _tcp_event(kind="drop")]
    assert export_pcap(events, str(path)) == 2  # default: tx+rx
    assert export_pcap(events, str(path), kinds=("drop",)) == 1


def test_non_packet_events_never_exported(tmp_path):
    path = tmp_path / "mixed.pcap"
    events = [
        TraceEvent(category="tcp", kind="cwnd", physical_time=0.5),
        _tcp_event(t=1.0),
        TraceEvent(category="timer", kind="fire", physical_time=1.5),
        TraceEvent(category="clock", kind="epoch", physical_time=2.0),
    ]
    assert export_pcap(events, str(path)) == 1


def test_non_tcp_payload_gets_ip_frame(tmp_path):
    path = tmp_path / "raw.pcap"
    event = TraceEvent(category="packet", kind="rx", physical_time=0.25,
                       site="if0", src="a", dst="b", protocol="raw",
                       size_bytes=500)
    export_pcap([event], str(path), kinds=("rx",))
    _, [record] = read_pcap(str(path))
    assert record["proto"] == 253  # RFC 3692 experimental
    assert record["ip_total_len"] == 500
    assert "src_port" not in record


def test_read_rejects_foreign_files(tmp_path):
    path = tmp_path / "bogus.pcap"
    path.write_bytes(b"\xd4\xc3\xb2\xa1" + b"\x00" * 20)  # microsecond magic
    with pytest.raises(ValueError, match="bad magic"):
        read_pcap(str(path))
    short = tmp_path / "short.pcap"
    short.write_bytes(b"\x01\x02")
    with pytest.raises(ValueError, match="truncated"):
        read_pcap(str(short))
