"""Unit tests for the flight recorder (ring, filters, attachment)."""

import pytest

from repro.core.clock import DilatedClock
from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.node import Node
from repro.simnet.packet import Packet
from repro.trace.events import event_from_dict, event_to_dict, load_jsonl, save_jsonl
from repro.trace.recorder import FlightRecorder


class Sink:
    def deliver(self, packet):
        pass


def wired_pair(sim):
    a, b = Node(sim, "a"), Node(sim, "b")
    link = Link(sim, a, b, bandwidth_bps=1e6, delay_s=0.0)
    a.set_route("b", link.a_to_b)
    b.register_protocol("raw", Sink())
    return a, b, link


def send_n(a, n, flow_id=None, size=1250):
    for _ in range(n):
        a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=size,
                      flow_id=flow_id))


def test_default_off():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    assert link.a_to_b.recorder is None
    assert link.b_to_a.recorder is None
    assert sim._recorder is None
    send_n(a, 3)
    sim.run()  # nothing records, nothing breaks


def test_records_packet_lifecycle():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    recorder = FlightRecorder().attach_interface(link.a_to_b)
    send_n(a, 2)
    sim.run()
    kinds = [event.kind for event in recorder]
    assert kinds.count("enqueue") == 2
    assert kinds.count("tx") == 2
    assert all(event.category == "packet" for event in recorder)
    assert all(event.site == link.a_to_b.name for event in recorder)


def test_ring_evicts_oldest():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    recorder = FlightRecorder(capacity=4, packet_kinds=("enqueue",))
    recorder.attach_interface(link.a_to_b)
    send_n(a, 10)
    sim.run()
    assert len(recorder) == 4
    assert recorder.recorded == 10
    assert recorder.evicted == 6
    # Oldest-first snapshot of the *most recent* four events.
    stamps = [event.physical_time for event in recorder.snapshot()]
    assert stamps == sorted(stamps)


def test_kind_and_flow_filters():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    recorder = FlightRecorder(packet_kinds=("rx",), flow_id="wanted")
    recorder.attach_interface(link.b_to_a)
    send_n(a, 2, flow_id="wanted")
    send_n(a, 5, flow_id="other")
    sim.run()
    assert len(recorder) == 2
    assert all(event.kind == "rx" and event.flow_id == "wanted"
               for event in recorder)


def test_one_recorder_per_interface():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    FlightRecorder(name="first").attach_interface(link.a_to_b)
    with pytest.raises(ValueError, match="already has a recorder"):
        FlightRecorder(name="second").attach_interface(link.a_to_b)


def test_drop_reason_captured():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    recorder = FlightRecorder(packet_kinds=("drop",))
    recorder.attach_interface(link.a_to_b)
    link.a_to_b.set_loss(lambda packet: True)
    send_n(a, 3)
    sim.run()
    assert len(recorder) == 3
    assert all(event.kind == "drop" and event.reason == "injected"
               for event in recorder)


def test_attach_network_covers_every_interface():
    sim = Simulator()
    a, b, link = wired_pair(sim)

    class FakeNet:
        nodes = {"a": a, "b": b}

    recorder = FlightRecorder().attach_network(FakeNet())
    assert link.a_to_b.recorder is recorder
    assert link.b_to_a.recorder is recorder


def test_engine_timer_events():
    sim = Simulator()
    recorder = FlightRecorder().attach_engine(sim)
    fired = []
    sim.schedule(0.5, lambda: fired.append(1))
    sim.schedule(1.0, lambda: fired.append(2))
    sim.run()
    assert len(fired) == 2
    assert [event.kind for event in recorder] == ["fire", "fire"]
    assert [event.physical_time for event in recorder] == [0.5, 1.0]
    assert recorder.recorded == sim.events_processed


def test_clock_epoch_events():
    sim = Simulator()
    clock = DilatedClock(sim, tdf=1)
    recorder = FlightRecorder().attach_clock(clock, label="guest0")
    sim.schedule(1.0, lambda: clock.set_tdf(10))
    sim.schedule(1.5, lambda: clock.set_tdf(10))  # no-op: same TDF
    sim.schedule(2.0, lambda: clock.set_tdf(3))
    sim.run()
    events = recorder.snapshot()
    assert [event.kind for event in events] == ["epoch", "epoch"]
    assert events[0].site == "guest0"
    assert events[0].reason == "1->10"
    assert events[0].value == 10.0
    assert events[1].physical_time == 2.0
    assert events[1].value == 3.0


def test_virtual_timestamps_with_owning_clock():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    clock = DilatedClock(sim, tdf=10)
    recorder = FlightRecorder(clock=clock).attach_interface(link.b_to_a)
    send_n(a, 2)
    sim.run()
    for event in recorder:
        assert event.virtual_time == pytest.approx(event.physical_time / 10)


def test_clear_keeps_recorded_count():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    recorder = FlightRecorder().attach_interface(link.a_to_b)
    send_n(a, 3)
    sim.run()
    seen = recorder.recorded
    assert seen > 0
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.recorded == seen


def test_jsonl_round_trip(tmp_path):
    sim = Simulator()
    a, b, link = wired_pair(sim)
    recorder = FlightRecorder(clock=DilatedClock(sim, tdf=7))
    recorder.attach_interface(link.a_to_b)
    link.a_to_b.set_loss(lambda packet: packet.uid % 2 == 0)
    send_n(a, 6, flow_id="f0")
    sim.run()
    path = tmp_path / "recording.jsonl"
    count = save_jsonl(recorder.snapshot(), str(path))
    assert count == len(recorder)
    loaded = load_jsonl(str(path))
    assert loaded == recorder.snapshot()


def test_event_dict_omits_defaults_and_ignores_unknown_keys():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    recorder = FlightRecorder().attach_interface(link.a_to_b)
    send_n(a, 1)
    sim.run()
    event = recorder.snapshot()[0]
    data = event_to_dict(event)
    assert "seq" not in data  # defaulted fields omitted
    data["cell"] = "rtt40-tdf10"  # merged-trace tag must be tolerated
    assert event_from_dict(data) == event
