"""Sharded runs must reproduce the single-process engine.

The contract has two tiers (see ``repro/parallel/shard.py``):

* **event-for-event identity** — every result field bit-equal, and the
  flight recorder sees zero divergence — whenever the topology is free
  of cross-leaf float-time ties (``delay_salt`` guarantees that for the
  swarm's symmetric star; the dumbbell's cut carries a single channel
  per direction so it needs no salt);
* **aggregate exactness** — event counts, byte totals, announce counts —
  for *any* configuration, salted or not, because staged injection
  replaces scheduled delivery 1:1 and sums are order-free.
"""

import dataclasses

import pytest

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bittorrent, run_bulk
from repro.simnet.errors import ConfigurationError
from repro.simnet.units import mbps, ms
from repro.trace.diff import diff_traces
from repro.trace.spec import TraceSpec

PROFILE = NetworkProfile.from_rtt(mbps(10), ms(20))
BULK_PROFILE = NetworkProfile.from_rtt(mbps(10), ms(40))


def _fields(result):
    """Result as a dict minus the legitimately shard-dependent extras."""
    out = dataclasses.asdict(result)
    out.pop("shard_stats")
    # Merged trace events are compared through diff_traces (packet uids
    # are per-process debugging handles, not semantic identity).
    out.pop("trace_events", None)
    return out


def test_bulk_two_shards_event_for_event_identical():
    kwargs = dict(perceived=BULK_PROFILE, tdf=1, duration_s=10.0, flows=2)
    single = run_bulk(**kwargs)
    sharded = run_bulk(**kwargs, shards=2)
    assert _fields(sharded) == _fields(single)
    assert sharded.events_processed == single.events_processed
    # The per-shard counters account for every executed event exactly.
    assert sum(s["events_processed"] for s in sharded.shard_stats) == (
        single.events_processed
    )
    assert [s["shard"] for s in sharded.shard_stats] == [0, 1]
    assert all(s["rounds"] > 0 for s in sharded.shard_stats)


def test_unsalted_symmetric_bulk_event_for_event_identical():
    """Regression for the ``shard_cell_kwargs`` default-salt gap: sharded
    ``run_bulk`` cells get no ``delay_salt`` (the kwarg does not even
    exist for bulk), so this pins the reason that is safe — a multi-flow
    dumbbell's flows are perfectly symmetric, yet every cross-shard
    channel (one per bottleneck direction) carries FIFO-ordered traffic
    whose (arrival, tx_finish) keys never tie across channels, so the
    unsalted run is exact to the trace level, not just in aggregates."""
    kwargs = dict(perceived=BULK_PROFILE, tdf=1, duration_s=8.0, flows=3,
                  trace=TraceSpec(point="bottleneck"))
    single = run_bulk(**kwargs)
    sharded = run_bulk(**kwargs, shards=2)
    assert _fields(sharded) == _fields(single)
    assert sharded.events_processed == single.events_processed
    assert len(sharded.trace_events) == len(single.trace_events)
    report = diff_traces(single.trace_events, sharded.trace_events)
    assert report.identical, report.render(
        label_a="shards=1", label_b="shards=2"
    )
    assert report.events_compared > 0


@pytest.mark.parametrize("shards", [2, 3])
def test_salted_swarm_identical_across_shard_counts(shards):
    kwargs = dict(perceived_leaf=PROFILE, tdf=1, leechers=4,
                  file_bytes=128 * 1024, seed=99, delay_salt=1e-6)
    single = run_bittorrent(**kwargs)
    sharded = run_bittorrent(**kwargs, shards=shards)
    assert _fields(sharded) == _fields(single)
    assert sharded.download_times_s == single.download_times_s
    assert len(sharded.shard_stats) == shards


def test_salted_swarm_trace_diff_pins_zero_divergence():
    kwargs = dict(perceived_leaf=PROFILE, tdf=1, leechers=4,
                  file_bytes=128 * 1024, seed=99, delay_salt=1e-6,
                  trace=TraceSpec(point="bottleneck"))
    single = run_bittorrent(**kwargs)
    sharded = run_bittorrent(**kwargs, shards=2)
    assert len(sharded.trace_events) == len(single.trace_events)
    report = diff_traces(single.trace_events, sharded.trace_events)
    assert report.identical, report.render(
        label_a="shards=1", label_b="shards=2"
    )
    assert report.events_compared > 0


def test_unsalted_symmetric_swarm_aggregates_exact():
    """A perfectly symmetric star phase-locks onto same-float ties whose
    single-process order no bounded key reproduces — but the 1:1 event
    replacement still makes every order-free aggregate exact."""
    kwargs = dict(perceived_leaf=PROFILE, tdf=1, leechers=4,
                  file_bytes=128 * 1024, seed=99)
    single = run_bittorrent(**kwargs)
    sharded = run_bittorrent(**kwargs, shards=2)
    assert sharded.events_processed == single.events_processed
    assert sharded.completed == single.completed
    assert sharded.total_downloaded_bytes == single.total_downloaded_bytes
    assert sharded.seed_uploaded_bytes == single.seed_uploaded_bytes
    assert sharded.tracker_announces == single.tracker_announces
    # Download times may reorder same-float deliveries; they must still
    # agree to well under a round-trip.
    assert sharded.download_times_s == pytest.approx(
        single.download_times_s, abs=0.05
    )


def test_timer_salt_applies_identically_sharded_and_single():
    """``timer_salt`` (the symmetry-breaking fallback for specs that keep
    link delays exact) must derive from the full roster, not from shard
    ownership: a salted-timer sharded run stays event-for-event identical
    to its single-process twin."""
    kwargs = dict(perceived_leaf=PROFILE, tdf=1, leechers=4,
                  file_bytes=128 * 1024, seed=99, delay_salt=1e-6,
                  timer_salt=1e-3)
    single = run_bittorrent(**kwargs)
    sharded = run_bittorrent(**kwargs, shards=2)
    assert _fields(sharded) == _fields(single)
    # And the salt is real: it perturbs the run relative to unsalted
    # timers (otherwise this test would pass vacuously).
    unsalted = run_bittorrent(
        perceived_leaf=PROFILE, tdf=1, leechers=4,
        file_bytes=128 * 1024, seed=99, delay_salt=1e-6,
    )
    assert single.events_processed != unsalted.events_processed


def test_shards_one_is_the_plain_engine():
    kwargs = dict(perceived_leaf=PROFILE, tdf=1, leechers=2,
                  file_bytes=64 * 1024, seed=7)
    plain = run_bittorrent(**kwargs)
    explicit = run_bittorrent(**kwargs, shards=1)
    assert _fields(plain) == _fields(explicit)
    assert explicit.shard_stats == []


def test_timer_tracing_rejected_under_sharding():
    """timers=1 records engine-internal events whose global interleaving
    is unobservable across processes; refuse instead of mis-merging."""
    with pytest.raises(ConfigurationError, match="timers"):
        run_bittorrent(
            perceived_leaf=PROFILE, tdf=1, leechers=2,
            file_bytes=64 * 1024, seed=7,
            trace=TraceSpec(point="bottleneck", timers=True),
            shards=2,
        )


def test_swarm_needs_enough_leechers_for_the_stripe():
    with pytest.raises(ConfigurationError):
        run_bittorrent(
            perceived_leaf=PROFILE, tdf=1, leechers=1,
            file_bytes=64 * 1024, seed=7, shards=3,
        )
