"""YAWNS window batching: fewer barrier rounds, bit-identical results.

PR 6's conservative loop paid one full-mesh advert exchange per lookahead
window — 4.7k rounds on the 250-peer swarm. Batching grants up to
``REPRO_SHARD_WINDOW_BATCH`` consecutive windows per round (separated by
neighbor-only outbox swaps), which must change *nothing* about the
simulation: the tie-rank channel makes event order independent of where
window boundaries fall, so these tests pin both halves — the round count
collapses, and every result field stays bit-equal to the unbatched engine.
"""

import pytest

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bulk
from repro.parallel.shard import ShardContext
from repro.simnet.units import mbps, ms

#: The fig3 sharded-capture cell (rtt40-tdf1): 40 ms RTT dumbbell, 6
#: virtual seconds — the topology/duration the CI zero-divergence gate
#: captures, and the issue's ">= 3x fewer rounds" acceptance surface.
BULK_PROFILE = NetworkProfile.from_rtt(mbps(10), ms(40))
BULK_KWARGS = dict(perceived=BULK_PROFILE, tdf=1, duration_s=6.0,
                   warmup_s=2.0, flows=1)

#: Acceptance bar: batched rounds must be at least this factor below the
#: one-window-per-round engine, on any machine (it is a counting
#: property, not a wall-clock one).
REQUIRED_ROUNDS_DROP = 3.0


def _rounds(result):
    return result.shard_stats[0]["rounds"]


def test_batched_windows_identical_results_and_3x_fewer_rounds(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_WINDOW_BATCH", "1")
    unbatched = run_bulk(**BULK_KWARGS, shards=2)
    monkeypatch.delenv("REPRO_SHARD_WINDOW_BATCH")
    batched = run_bulk(**BULK_KWARGS, shards=2)

    assert batched.per_flow_goodput_bps == unbatched.per_flow_goodput_bps
    assert batched.events_processed == unbatched.events_processed
    assert batched.retransmits == unbatched.retransmits

    drop = _rounds(unbatched) / _rounds(batched)
    assert drop >= REQUIRED_ROUNDS_DROP, (
        f"batching only cut rounds {drop:.2f}x "
        f"({_rounds(unbatched)} -> {_rounds(batched)}; required "
        f"{REQUIRED_ROUNDS_DROP}x)"
    )
    # The new counters tell the story: every round ran multiple windows.
    stats = batched.shard_stats[0]
    assert stats["windows"] > stats["rounds"]
    assert stats["windows_per_round"] >= REQUIRED_ROUNDS_DROP
    # Both shards march the same window sequence by construction.
    assert batched.shard_stats[1]["windows"] == stats["windows"]
    assert batched.shard_stats[1]["rounds"] == stats["rounds"]


def test_unbatched_engine_rounds_track_windows(monkeypatch):
    """With the batch cap at 1 the engine is PR 6's: one window per
    round, so the two counters coincide."""
    monkeypatch.setenv("REPRO_SHARD_WINDOW_BATCH", "1")
    result = run_bulk(**BULK_KWARGS, shards=2)
    for stats in result.shard_stats:
        assert stats["windows"] == stats["rounds"]
        assert stats["windows_per_round"] == 1.0


@pytest.mark.parametrize(
    ("raw", "expected"),
    [("8", 8), ("1", 1), ("0", 1), ("-3", 1), ("", 8)],
)
def test_window_batch_env_parsing(monkeypatch, raw, expected):
    """The env knob floors at 1 (a zero-window round cannot progress)
    and an empty value means the default."""
    monkeypatch.setenv("REPRO_SHARD_WINDOW_BATCH", raw)
    ctx = ShardContext(0, 1, {}, {})
    assert ctx.window_batch == expected
