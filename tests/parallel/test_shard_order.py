"""Deterministic cross-scheduler ordering: the tie-key audit.

Every packet that crosses a scheduler boundary (cross-shard pipe or
same-shard window boundary) carries the explicit ordering key
``(arrival, tx_finish, channel_id, channel_seq)``. These tests pin the
property the whole determinism argument rests on: the order in which
staged packets are injected into the destination engine is a pure
function of the simulation — identical however the packets arrived
(which pipe, which barrier round, which interleaving).
"""

import heapq
import itertools
import random

import pytest

from repro.parallel.shard import (
    ShardContext,
    _ForeignChannel,
    _LocalChannel,
    _RemoteChannel,
)


class _FakeSim:
    """Just enough Simulator for staging/injection: a clock and a log."""

    def __init__(self):
        self.now = 0.0
        self.injected = []

    def call_at(self, time, fn, *args, tie_key=None):
        self.injected.append((time, fn, args, tie_key))


class _FakeIface:
    def __init__(self, label):
        self.label = label

    def _deliver(self, packet):  # pragma: no cover - never executed here
        raise AssertionError("tests inspect the schedule, not delivery")


def _context():
    ctx = ShardContext(0, 1, {}, {})
    ctx.sim = _FakeSim()
    return ctx


def _stage(ctx, items):
    """Feed pre-keyed items straight into the staging heap, as the
    barrier exchange does with a received bundle."""
    for item in items:
        heapq.heappush(ctx._staged, item)


def _injection_order(items, targets):
    """Stage ``items`` (one interleaving) and return the injected keys."""
    ctx = _context()
    ctx._targets = targets
    _stage(ctx, items)
    ctx._inject(limit=float("inf"))
    return [time for time, _fn, _args, _key in ctx.sim.injected], [
        args[0] for _t, _fn, args, _key in ctx.sim.injected
    ]


def test_same_time_events_merge_identically_for_every_interleaving():
    """Same-arrival packets from different channels (as if from different
    shards): every arrival interleaving must inject identically."""
    targets = {3: _FakeIface("a"), 7: _FakeIface("b"), 9: _FakeIface("c")}
    items = [
        # (arrival, tx_finish, channel_id, channel_seq, packet)
        (1.0, 0.99, 7, 1, "b1"),
        (1.0, 0.99, 3, 1, "a1"),   # tx tie -> lower channel first
        (1.0, 0.98, 9, 1, "c1"),   # earlier transmit -> first overall
        (1.0, 0.99, 3, 2, "a2"),   # same channel -> FIFO by seq
        (0.5, 0.49, 9, 2, "c0"),   # earlier arrival dominates everything
    ]
    expected_packets = ["c0", "c1", "a1", "a2", "b1"]
    for perm in itertools.permutations(items):
        times, packets = _injection_order(list(perm), targets)
        assert packets == expected_packets
        assert times == sorted(times)


def test_barrier_round_split_does_not_change_order():
    """The same traffic arriving over one round or split across two
    rounds (different pipe bundles) injects identically."""
    targets = {1: _FakeIface("x"), 2: _FakeIface("y")}
    traffic = [
        (2.0, 1.9, 1, 1, "x1"),
        (2.0, 1.9, 2, 1, "y1"),
        (2.0, 1.95, 1, 2, "x2"),
        (3.0, 2.9, 2, 2, "y2"),
    ]
    _times, one_round = _injection_order(list(traffic), targets)

    ctx = _context()
    ctx._targets = targets
    _stage(ctx, traffic[2:])          # "second round" data arrives first
    _stage(ctx, traffic[:2])
    ctx._inject(limit=float("inf"))
    split_rounds = [args[0] for _t, _fn, args, _key in ctx.sim.injected]
    assert split_rounds == one_round == ["x1", "y1", "x2", "y2"]


def test_injection_respects_window_limit():
    """Only arrivals at or below the grant are injected; the rest stay
    staged for a later window, still in key order."""
    targets = {0: _FakeIface("t")}
    ctx = _context()
    ctx._targets = targets
    _stage(ctx, [
        (1.0, 0.9, 0, 1, "in"),
        (2.0, 1.9, 0, 2, "out"),
    ])
    ctx._inject(limit=1.5)
    assert [args[0] for _t, _fn, args, _key in ctx.sim.injected] == ["in"]
    assert len(ctx._staged) == 1
    ctx._inject(limit=2.5)
    assert [args[0] for _t, _fn, args, _key in ctx.sim.injected] == ["in", "out"]


def test_local_channel_stages_beyond_window_and_schedules_within():
    ctx = _context()
    target = _FakeIface("peer")
    channel = _LocalChannel(ctx, channel_id=5, target=target)
    ctx._targets = {5: target}
    ctx._window_limit = 1.0
    ctx.sim.now = 0.8

    channel.send(0.9, "inside")     # within the executing window
    assert [args[0] for _t, _fn, args, _key in ctx.sim.injected] == ["inside"]

    channel.send(1.5, "beyond")     # crosses the window boundary
    assert len(ctx._staged) == 1
    arrival, tx_finish, channel_id, seq, packet = ctx._staged[0]
    assert (arrival, tx_finish, channel_id, seq, packet) == (
        1.5, 0.8, 5, 1, "beyond"
    )


def test_remote_channel_ships_full_key_and_fifo_seq():
    ctx = ShardContext(0, 2, {}, {1: object()})
    ctx.sim = _FakeSim()
    channel = _RemoteChannel(ctx, channel_id=4, to_shard=1)
    ctx.sim.now = 2.0
    channel.send(2.5, "p1")
    ctx.sim.now = 2.1
    channel.send(2.6, "p2")
    assert ctx._outbox[1] == [
        (2.5, 2.0, 4, 1, "p1"),
        (2.6, 2.1, 4, 2, "p2"),
    ]


def test_foreign_channel_poisons_non_owned_egress():
    channel = _ForeignChannel("h3->hub", owner=1)
    with pytest.raises(RuntimeError, match="does not own"):
        channel.send(1.0, "packet")


def test_fuzzed_interleavings_converge():
    """Randomised bulk check: any shuffle of a traffic mix injects the
    same sequence (seeded, so failures reproduce)."""
    rng = random.Random(20260808)
    targets = {c: _FakeIface(str(c)) for c in range(6)}
    items = []
    for channel in range(6):
        for seq in range(1, 6):
            arrival = rng.choice([1.0, 1.0, 1.5, 2.0])
            items.append((arrival, arrival - 0.1, channel, seq, (channel, seq)))
    # Per-channel seqs must ascend to be a legal FIFO history.
    items.sort(key=lambda item: (item[2], item[3]))
    _times, reference = _injection_order(list(items), targets)
    for _ in range(25):
        shuffled = list(items)
        rng.shuffle(shuffled)
        _t, packets = _injection_order(shuffled, targets)
        assert packets == reference


class _RecordingIface:
    """Delivery target whose log is the observable execution order."""

    def __init__(self, log):
        self._log = log

    def _deliver(self, packet):
        self._log.append(packet)


def test_mixed_timer_and_delivery_ties_resolve_by_creation_rank():
    """The tie-key channel end to end, on the real engine: same-timestamp
    periodic timers and injected cross-shard deliveries must execute in
    single-process creation order — timers rank at their arming instant,
    deliveries at their original transmit-finish — for every staging
    interleaving of the delivery bundle."""
    from repro.simnet.engine import Simulator

    # Deliveries all arrive at t=5.0; their transmits finished at 0.5,
    # 2.5 and 4.5. Timers fire at t=5.0 too, armed at 1.0 and 3.0. The
    # single-process creation order is therefore strictly by instant:
    expected = ["d@0.5", "t@1.0", "d@2.5", "t@3.0", "d@4.5"]
    items = [
        # (arrival, tx_finish, channel_id, channel_seq, packet)
        (5.0, 4.5, 2, 1, "d@4.5"),
        (5.0, 0.5, 7, 1, "d@0.5"),
        (5.0, 2.5, 4, 1, "d@2.5"),
    ]
    for perm in itertools.permutations(items):
        log = []
        sim = Simulator()
        ctx = ShardContext(0, 1, {}, {})
        ctx.sim = sim
        ctx._targets = {
            channel: _RecordingIface(log) for _, _, channel, _, _ in items
        }
        sim.call_at(1.0, sim.call_at, 5.0, log.append, "t@1.0")
        sim.call_at(3.0, sim.call_at, 5.0, log.append, "t@3.0")
        sim.run(until=4.75)           # timers armed; window start reached
        _stage(ctx, list(perm))
        ctx._inject(limit=5.0)        # injection order: staged key order
        sim.run(until=5.0)
        assert log == expected, f"perm={perm} -> {log}"


def test_injected_delivery_carries_tx_finish_as_tie_key():
    targets = {3: _FakeIface("a")}
    ctx = _context()
    ctx._targets = targets
    _stage(ctx, [(2.0, 1.25, 3, 1, "pkt")])
    ctx._inject(limit=2.0)
    [(time, _fn, args, tie_key)] = ctx.sim.injected
    assert (time, args[0], tie_key) == (2.0, "pkt", 1.25)
