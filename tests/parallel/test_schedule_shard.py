"""Scheduled links under the sharded engine: zero-divergence equivalence.

A schedule is replicated, not partitioned: every worker holds the full
topology and arms the same timers at the same instants, so per-shard link
copies step in lockstep and a scheduled sharded run reproduces its
single-process twin to the packet-trace level. The one legitimate
difference is ``events_processed`` — each worker fires its own copy of
every schedule timer — so these tests gate on metrics and trace diffs,
never on event counts.
"""

import dataclasses

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bulk
from repro.simnet.schedule import ScheduleSpec
from repro.simnet.units import mbps, ms
from repro.trace.diff import diff_traces
from repro.trace.spec import TraceSpec

PROFILE = NetworkProfile.from_rtt(mbps(8), ms(60))
SCHEDULE = ScheduleSpec(kind="leo", period_s=1.0, count=4, outage_s=0.03,
                        amplitude=0.5)


def _fields(result):
    """Result minus the legitimately shard-dependent extras."""
    out = dataclasses.asdict(result)
    out.pop("shard_stats")
    out.pop("trace_events", None)
    # Per-worker schedule-timer copies inflate the sharded event count;
    # everything semantic is compared through the remaining fields.
    out.pop("events_processed")
    return out


def test_scheduled_bulk_two_shards_metrics_identical():
    kwargs = dict(perceived=PROFILE, tdf=1, duration_s=6.0, flows=2,
                  schedule=SCHEDULE)
    single = run_bulk(**kwargs)
    sharded = run_bulk(**kwargs, shards=2)
    assert _fields(sharded) == _fields(single)
    assert len(sharded.shard_stats) == 2


def test_scheduled_bulk_trace_diff_pins_zero_divergence():
    """The cut link itself is the scheduled one (run_bulk schedules the
    bottleneck, which the dumbbell assignment cuts), so this pins both
    the replayed schedule and the re-derived lookahead."""
    kwargs = dict(perceived=PROFILE, tdf=1, duration_s=6.0, flows=2,
                  schedule=SCHEDULE,
                  trace=TraceSpec(point="bottleneck", tcp=True))
    single = run_bulk(**kwargs)
    sharded = run_bulk(**kwargs, shards=2)
    assert len(sharded.trace_events) == len(single.trace_events)
    report = diff_traces(single.trace_events, sharded.trace_events)
    assert report.identical, report.render(
        label_a="shards=1", label_b="shards=2"
    )
    assert report.events_compared > 0
    # The schedule bit: outage windows really dropped traffic dark.
    assert single.bottleneck_drops.get("down", 0) > 0
