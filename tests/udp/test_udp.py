"""Unit tests for the UDP layer."""

import pytest

from repro.simnet.errors import AddressError
from repro.simnet.topology import Network
from repro.udp.socket import UdpStack


def wired_pair():
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    net.add_link(a, b, 1e6, 0.005)
    net.finalize()
    return net, UdpStack(a), UdpStack(b)


def test_datagram_delivery():
    net, ua, ub = wired_pair()
    received = []
    ub.bind(5000, lambda sock, dgram: received.append(dgram))
    sender = ua.bind(None)
    sender.sendto("b", 5000, 100, payload={"x": 1})
    net.run()
    assert len(received) == 1
    assert received[0].payload == {"x": 1}
    assert received[0].src_addr == "a"
    assert received[0].src_port == sender.port


def test_reply_to_source():
    net, ua, ub = wired_pair()
    replies = []

    def echo(sock, dgram):
        sock.sendto(dgram.src_addr, dgram.src_port, 50, payload="pong")

    ub.bind(7, echo)
    client = ua.bind(None, lambda sock, dgram: replies.append(dgram.payload))
    client.sendto("b", 7, 50, payload="ping")
    net.run()
    assert replies == ["pong"]


def test_unbound_port_counted_dropped():
    net, ua, ub = wired_pair()
    ua.bind(None).sendto("b", 12345, 10)
    net.run()
    assert ub.dropped_unbound == 1


def test_double_bind_rejected():
    _, ua, _ = wired_pair()
    ua.bind(5000)
    with pytest.raises(AddressError):
        ua.bind(5000)


def test_close_releases_port():
    _, ua, _ = wired_pair()
    sock = ua.bind(5000)
    sock.close()
    ua.bind(5000)  # no error


def test_send_after_close_rejected():
    _, ua, _ = wired_pair()
    sock = ua.bind(None)
    sock.close()
    with pytest.raises(AddressError):
        sock.sendto("b", 7, 10)


def test_negative_size_rejected():
    _, ua, _ = wired_pair()
    sock = ua.bind(None)
    with pytest.raises(AddressError):
        sock.sendto("b", 7, -1)


def test_ephemeral_ports_distinct():
    _, ua, _ = wired_pair()
    ports = {ua.bind(None).port for _ in range(10)}
    assert len(ports) == 10


def test_counters():
    net, ua, ub = wired_pair()
    received = []
    server = ub.bind(5000, lambda sock, dgram: received.append(dgram))
    client = ua.bind(None)
    for _ in range(3):
        client.sendto("b", 5000, 10)
    net.run()
    assert client.datagrams_sent == 3
    assert server.datagrams_received == 3
