"""Tests for netem-style delay jitter on interfaces."""

import random

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.errors import ConfigurationError
from repro.simnet.nic import Interface
from repro.simnet.node import Node
from repro.simnet.packet import Packet


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.times = []

    def deliver(self, packet):
        self.times.append(self.sim.now)


def wire(sim, jitter_s=0.0, rng=None, delay_s=0.010):
    a, b = Node(sim, "a"), Node(sim, "b")
    iface_ab = Interface(sim, a, 1e9, delay_s, jitter_s=jitter_s,
                         jitter_rng=rng, name="a>b")
    iface_ba = Interface(sim, b, 1e9, delay_s, name="b>a")
    iface_ab.connect(iface_ba)
    a.set_route("b", iface_ab)
    sink = Sink(sim)
    b.register_protocol("raw", sink)
    return a, sink


def test_zero_jitter_is_deterministic_delay():
    sim = Simulator()
    a, sink = wire(sim)
    a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=100))
    sim.run()
    assert sink.times[0] == pytest.approx(0.010, abs=1e-5)


def test_jitter_spreads_delays_within_bounds():
    sim = Simulator()
    a, sink = wire(sim, jitter_s=0.005, rng=random.Random(4))
    for _ in range(200):
        a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=100))
    sim.run()
    base = 100 * 8 / 1e9
    latencies = [t - i * base for i, t in enumerate(sorted(sink.times))]
    assert min(sink.times) >= 0.005  # delay - jitter
    spread = max(sink.times) - min(sink.times)
    assert spread > 0.004  # jitter really is applied


def test_jitter_reproducible_with_seed():
    def run(seed):
        sim = Simulator()
        a, sink = wire(sim, jitter_s=0.005, rng=random.Random(seed))
        for _ in range(20):
            a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=100))
        sim.run()
        return sink.times

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_jitter_can_reorder_packets():
    sim = Simulator()
    a, b = Node(sim, "a"), Node(sim, "b")
    iface_ab = Interface(sim, a, 1e9, 0.010, jitter_s=0.009,
                         jitter_rng=random.Random(1))
    iface_ba = Interface(sim, b, 1e9, 0.010)
    iface_ab.connect(iface_ba)
    a.set_route("b", iface_ab)
    delivered = []

    class OrderSink:
        def deliver(self, packet):
            delivered.append(int(packet.flow_id))

    b.register_protocol("raw", OrderSink())
    for index in range(50):
        a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=100,
                      flow_id=str(index)))
    sim.run()
    assert sorted(delivered) == list(range(50))  # nothing lost
    assert delivered != list(range(50))          # but order scrambled


def test_jitter_validation():
    sim = Simulator()
    node = Node(sim, "a")
    with pytest.raises(ConfigurationError):
        Interface(sim, node, 1e9, 0.01, jitter_s=-1)
    with pytest.raises(ConfigurationError):
        Interface(sim, node, 1e9, 0.001, jitter_s=0.002)  # > delay
