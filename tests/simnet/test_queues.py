"""Unit tests for drop-tail and RED queueing disciplines."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.simnet.errors import ConfigurationError
from repro.simnet.packet import Packet
from repro.simnet.queues import DropTailQueue, REDQueue


def make_packet(size=1000):
    return Packet(src="a", dst="b", protocol="raw", size_bytes=size)


class TestDropTail:
    def test_fifo_order(self):
        queue = DropTailQueue(capacity_packets=10)
        packets = [make_packet() for _ in range(3)]
        for packet in packets:
            assert queue.offer(packet)
        assert [queue.poll() for _ in range(3)] == packets

    def test_poll_empty_returns_none(self):
        assert DropTailQueue().poll() is None

    def test_packet_capacity_enforced(self):
        queue = DropTailQueue(capacity_packets=2)
        assert queue.offer(make_packet())
        assert queue.offer(make_packet())
        assert not queue.offer(make_packet())
        assert queue.stats.dropped_packets == 1
        assert len(queue) == 2

    def test_byte_capacity_enforced(self):
        queue = DropTailQueue(capacity_packets=None, capacity_bytes=2500)
        assert queue.offer(make_packet(1000))
        assert queue.offer(make_packet(1000))
        assert not queue.offer(make_packet(1000))  # would exceed 2500
        assert queue.offer(make_packet(400))
        assert queue.byte_length == 2400

    def test_both_capacities_whichever_first(self):
        queue = DropTailQueue(capacity_packets=10, capacity_bytes=1500)
        assert queue.offer(make_packet(1000))
        assert not queue.offer(make_packet(1000))

    def test_byte_accounting_across_poll(self):
        queue = DropTailQueue()
        queue.offer(make_packet(700))
        queue.offer(make_packet(300))
        assert queue.byte_length == 1000
        queue.poll()
        assert queue.byte_length == 300

    def test_requires_some_capacity_limit(self):
        with pytest.raises(ConfigurationError):
            DropTailQueue(capacity_packets=None, capacity_bytes=None)

    @pytest.mark.parametrize("packets,bytes_", [(0, None), (-1, None), (None, 0)])
    def test_rejects_nonpositive_capacity(self, packets, bytes_):
        with pytest.raises(ConfigurationError):
            DropTailQueue(capacity_packets=packets, capacity_bytes=bytes_)

    def test_drop_rate(self):
        queue = DropTailQueue(capacity_packets=1)
        queue.offer(make_packet())
        queue.offer(make_packet())
        queue.offer(make_packet())
        assert queue.stats.drop_rate == pytest.approx(2 / 3)

    def test_drop_rate_no_arrivals_is_zero(self):
        assert DropTailQueue().stats.drop_rate == 0.0

    @given(st.lists(st.integers(min_value=1, max_value=1500), max_size=60))
    def test_property_conservation(self, sizes):
        """Everything offered is either queued, dropped, or dequeued."""
        queue = DropTailQueue(capacity_packets=20)
        for size in sizes:
            queue.offer(make_packet(size))
        drained = 0
        while queue.poll() is not None:
            drained += 1
        stats = queue.stats
        assert stats.enqueued_packets == drained
        assert stats.enqueued_packets + stats.dropped_packets == len(sizes)
        assert queue.byte_length == 0


class TestRed:
    def test_below_min_th_never_drops(self):
        queue = REDQueue(capacity_packets=100, min_th=50, max_th=80, rng=random.Random(1))
        for _ in range(30):
            assert queue.offer(make_packet())
        assert queue.stats.dropped_packets == 0

    def test_hard_capacity_always_drops(self):
        queue = REDQueue(capacity_packets=10, min_th=2, max_th=9, rng=random.Random(1))
        for _ in range(10):
            queue.offer(make_packet())
        # Queue now physically full; further arrivals must drop.
        assert not queue.offer(make_packet())

    def test_average_tracks_queue_slowly(self):
        queue = REDQueue(weight=0.5, rng=random.Random(1))
        queue.offer(make_packet())
        first = queue.average_queue
        queue.offer(make_packet())
        assert queue.average_queue > first

    def test_early_drops_happen_between_thresholds(self):
        rng = random.Random(42)
        queue = REDQueue(
            capacity_packets=1000, min_th=5, max_th=20, max_p=0.5, weight=0.5, rng=rng
        )
        outcomes = [queue.offer(make_packet()) for _ in range(400)]
        assert queue.stats.dropped_packets > 0
        assert any(outcomes)  # not everything dropped either

    def test_above_max_th_forces_drop(self):
        queue = REDQueue(
            capacity_packets=1000, min_th=1, max_th=3, max_p=1.0, weight=1.0,
            rng=random.Random(1),
        )
        for _ in range(10):
            queue.offer(make_packet())
        # With weight 1 the average equals the instantaneous queue, which is
        # beyond max_th; everything now early-drops.
        assert not queue.offer(make_packet())

    def test_deterministic_given_seed(self):
        def run(seed):
            queue = REDQueue(min_th=2, max_th=10, weight=0.9, rng=random.Random(seed))
            return [queue.offer(make_packet()) for _ in range(100)]

        assert run(7) == run(7)
        assert run(7) != run(8) or True  # different seeds may coincide; no assert

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_th": 0, "max_th": 10},
            {"min_th": 10, "max_th": 10},
            {"min_th": 5, "max_th": 300, "capacity_packets": 100},
            {"max_p": 0.0},
            {"max_p": 1.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            REDQueue(**kwargs)

    def test_fifo_order_preserved(self):
        queue = REDQueue(rng=random.Random(1))
        packets = [make_packet() for _ in range(5)]
        for packet in packets:
            queue.offer(packet)
        drained = []
        while True:
            item = queue.poll()
            if item is None:
                break
            drained.append(item)
        assert drained == packets
