"""Unit tests for interfaces and links: serialisation, delay, queueing."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.errors import ConfigurationError
from repro.simnet.link import Link
from repro.simnet.nic import Interface
from repro.simnet.node import Node
from repro.simnet.packet import Packet
from repro.simnet.queues import DropTailQueue


class Sink:
    """Protocol handler recording delivery times."""

    def __init__(self, sim):
        self.sim = sim
        self.deliveries = []

    def deliver(self, packet):
        self.deliveries.append((self.sim.now, packet))


def wire(sim, bandwidth=1e6, delay=0.01, queue_factory=None):
    a = Node(sim, "a")
    b = Node(sim, "b")
    link = Link(sim, a, b, bandwidth, delay, queue_factory)
    a.set_route("b", link.a_to_b)
    b.set_route("a", link.b_to_a)
    sink = Sink(sim)
    b.register_protocol("raw", sink)
    return a, b, link, sink


def test_delivery_time_is_serialisation_plus_propagation():
    sim = Simulator()
    a, b, link, sink = wire(sim, bandwidth=1e6, delay=0.01)
    # 1250 bytes = 10_000 bits at 1 Mbps -> 10 ms serialise + 10 ms propagate.
    a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1250))
    sim.run()
    assert len(sink.deliveries) == 1
    assert sink.deliveries[0][0] == pytest.approx(0.020)


def test_back_to_back_packets_serialise_sequentially():
    sim = Simulator()
    a, b, link, sink = wire(sim, bandwidth=1e6, delay=0.0)
    for _ in range(3):
        a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1250))
    sim.run()
    times = [t for t, _ in sink.deliveries]
    assert times == pytest.approx([0.010, 0.020, 0.030])


def test_pipelining_propagation_overlaps_serialisation():
    sim = Simulator()
    # Long pipe: 100 ms propagation, 10 ms serialisation per packet.
    a, b, link, sink = wire(sim, bandwidth=1e6, delay=0.100)
    for _ in range(2):
        a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1250))
    sim.run()
    times = [t for t, _ in sink.deliveries]
    # Second packet arrives one serialisation time after the first, not one RTT.
    assert times == pytest.approx([0.110, 0.120])


def test_queue_overflow_drops():
    sim = Simulator()
    a, b, link, sink = wire(
        sim, bandwidth=1e6, delay=0.0,
        queue_factory=lambda: DropTailQueue(capacity_packets=2),
    )
    # First packet starts serialising immediately (dequeued), two sit in the
    # queue, the rest drop.
    for _ in range(6):
        a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1250))
    sim.run()
    assert len(sink.deliveries) == 3
    assert link.a_to_b.queue.stats.dropped_packets == 3


def test_counters_and_utilisation():
    sim = Simulator()
    a, b, link, sink = wire(sim, bandwidth=1e6, delay=0.0)
    a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1250))
    sim.run()
    assert link.a_to_b.tx_packets == 1
    assert link.a_to_b.tx_bytes == 1250
    assert link.b_to_a.rx_packets == 1
    assert link.a_to_b.utilisation(elapsed_s=0.010) == pytest.approx(1.0)
    assert link.a_to_b.utilisation(elapsed_s=0.020) == pytest.approx(0.5)
    assert link.a_to_b.utilisation(elapsed_s=0.0) == 0.0


def test_full_duplex_no_contention():
    sim = Simulator()
    a, b, link, sink_b = wire(sim, bandwidth=1e6, delay=0.0)
    sink_a = Sink(sim)
    a.register_protocol("raw", sink_a)
    a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1250))
    b.send(Packet(src="b", dst="a", protocol="raw", size_bytes=1250))
    sim.run()
    # Both directions complete in one serialisation time: no shared medium.
    assert sink_b.deliveries[0][0] == pytest.approx(0.010)
    assert sink_a.deliveries[0][0] == pytest.approx(0.010)


def test_asymmetric_link_parameters():
    sim = Simulator()
    a = Node(sim, "a")
    b = Node(sim, "b")
    link = Link(
        sim, a, b, bandwidth_bps=1e6, delay_s=0.0,
        bandwidth_reverse_bps=2e6, delay_reverse_s=0.005,
    )
    assert link.a_to_b.bandwidth_bps == 1e6
    assert link.b_to_a.bandwidth_bps == 2e6
    assert link.b_to_a.delay_s == 0.005


def test_link_endpoint_helpers():
    sim = Simulator()
    a, b, link, _ = wire(sim)
    assert link.interface_from(a) is link.a_to_b
    assert link.interface_from(b) is link.b_to_a
    assert link.other_end(a) is b
    c = Node(sim, "c")
    with pytest.raises(ValueError):
        link.interface_from(c)
    with pytest.raises(ValueError):
        link.other_end(c)


def test_unconnected_interface_rejects_send():
    sim = Simulator()
    node = Node(sim, "a")
    interface = Interface(sim, node, 1e6, 0.0)
    with pytest.raises(ConfigurationError):
        interface.send(Packet(src="a", dst="b", protocol="raw", size_bytes=10))


def test_interface_validates_parameters():
    sim = Simulator()
    node = Node(sim, "a")
    with pytest.raises(ConfigurationError):
        Interface(sim, node, 0.0, 0.0)
    with pytest.raises(ConfigurationError):
        Interface(sim, node, 1e6, -1.0)


def test_taps_see_all_event_kinds():
    sim = Simulator()
    a, b, link, _ = wire(
        sim, queue_factory=lambda: DropTailQueue(capacity_packets=1)
    )
    events = []
    link.a_to_b.add_tap(lambda kind, t, p: events.append(kind))
    # Three sends: one serialises, one queues, one drops.
    for _ in range(3):
        a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1250))
    sim.run()
    assert events.count("enqueue") == 2
    assert events.count("drop") == 1
    assert events.count("tx") == 2
