"""Topology partitioning for the sharded engine.

The partitioner is pure topology analysis: validate a node→shard map,
derive the directed cut set with deterministic channel ids, and compute
the conservative lookahead (minimum cut propagation delay). These tests
pin island discovery on the three topologies the sharded runners use,
the zero-lookahead refusal, and the determinism of the generic
assignment helper.
"""

import pytest

from repro.simnet.errors import ConfigurationError
from repro.simnet.topology import (
    build_dumbbell,
    build_star,
    partition_network,
    suggest_assignment,
)
from repro.simnet.units import mbps, ms


def _star(leaves=6, delay=ms(10)):
    return build_star(leaves, mbps(10), delay)


def test_star_islands_and_cut_edges():
    star = _star(leaves=4)
    assignment = {"hub": 0, "h0": 0, "h1": 0, "h2": 1, "h3": 1}
    partition = partition_network(star.network, 2, assignment)
    islands = partition.islands()
    assert islands[0] == ["hub", "h0", "h1"]
    assert islands[1] == ["h2", "h3"]
    # Each leaf link contributes two directed edges; only the h2/h3 links
    # cross the cut, so 4 directed cut edges.
    assert len(partition.cut_edges) == 4
    assert {(e.src_node, e.dst_node) for e in partition.cut_edges} == {
        ("h2", "hub"), ("hub", "h2"), ("h3", "hub"), ("hub", "h3"),
    }
    assert partition.lookahead_s == pytest.approx(ms(10))


def test_channel_ids_follow_link_construction_order():
    """Channel ids number every directed edge (cut or not) in link
    construction order, forward direction first — the cross-engine merge
    key depends on this being a pure function of the topology."""
    star = _star(leaves=3)
    assignment = {"hub": 0, "h0": 0, "h1": 1, "h2": 1}
    partition = partition_network(star.network, 2, assignment)
    # Links in order: h0-hub (ids 0,1), h1-hub (2,3), h2-hub (4,5).
    by_edge = {(e.src_node, e.dst_node): e.channel_id
               for e in partition.cut_edges}
    assert by_edge == {
        ("h1", "hub"): 2, ("hub", "h1"): 3,
        ("h2", "hub"): 4, ("hub", "h2"): 5,
    }


def test_dumbbell_bulk_split():
    """The run_bulk assignment: senders + left router vs receivers +
    right router; only the bottleneck crosses."""
    bell = build_dumbbell(2, mbps(100), mbps(10), ms(20), access_delay_s=ms(1))
    assignment = {"rL": 0, "s0": 0, "s1": 0, "rR": 1, "d0": 1, "d1": 1}
    partition = partition_network(bell.network, 2, assignment)
    assert {(e.src_node, e.dst_node) for e in partition.cut_edges} == {
        ("rL", "rR"), ("rR", "rL"),
    }
    assert partition.lookahead_s == pytest.approx(ms(20))


def test_swarm_star_stripe():
    """Striping leaves over three shards cuts every off-hub leaf link."""
    star = _star(leaves=6)
    assignment = {"hub": 0}
    for index in range(6):
        assignment[f"h{index}"] = index % 3
    partition = partition_network(star.network, 3, assignment)
    islands = partition.islands()
    assert islands[0] == ["hub", "h0", "h3"]
    assert islands[1] == ["h1", "h4"]
    assert islands[2] == ["h2", "h5"]
    # h0/h3 share the hub's shard; the other 4 leaf links cross (x2 dirs).
    assert len(partition.cut_edges) == 8


def test_unassigned_and_unknown_nodes_refused():
    star = _star(leaves=2)
    with pytest.raises(ConfigurationError, match="assigns no shard"):
        partition_network(star.network, 2, {"hub": 0, "h0": 1})
    with pytest.raises(ConfigurationError, match="unknown node"):
        partition_network(
            star.network, 2,
            {"hub": 0, "h0": 0, "h1": 1, "ghost": 1},
        )
    with pytest.raises(ConfigurationError, match="valid: 0..1"):
        partition_network(
            star.network, 2, {"hub": 0, "h0": 1, "h1": 2}
        )


def test_zero_delay_cut_refused():
    """A cut with no lookahead cannot make conservative progress."""
    star = _star(leaves=2, delay=0.0)
    with pytest.raises(ConfigurationError, match="no.*lookahead|lookahead"):
        partition_network(
            star.network, 2, {"hub": 0, "h0": 0, "h1": 1}
        )


def test_all_in_one_shard_refused_for_multi_shard():
    star = _star(leaves=2)
    with pytest.raises(ConfigurationError, match="cuts no links"):
        partition_network(
            star.network, 2, {"hub": 0, "h0": 0, "h1": 0}
        )


def test_single_shard_partition_is_trivially_valid():
    star = _star(leaves=2)
    partition = partition_network(
        star.network, 1, {"hub": 0, "h0": 0, "h1": 0}
    )
    assert partition.cut_edges == []
    assert partition.lookahead_s == float("inf")


def _degree_loads(net, assignment, shards):
    """Per-shard summed link degree under ``assignment``."""
    loads = [0] * shards
    for link in net.links:
        for node in (link.node_a, link.node_b):
            loads[assignment[node.name]] += 1
    return loads


def test_suggest_assignment_is_deterministic_and_balanced():
    star = _star(leaves=5)
    first = suggest_assignment(star.network, 2)
    second = suggest_assignment(star.network, 2)
    assert first == second
    # Degree-weighted dealing: the hub (degree 5) is one shard's whole
    # load; all five leaves (degree 1 each) balance it exactly on the
    # other. Node-count balancing would have split "hub + 2 leaves" vs
    # "3 leaves" — a 7:3 degree (and event-load) skew.
    loads = sorted(_degree_loads(star.network, first, 2))
    assert loads == [5, 5]
    hub_shard = first["hub"]
    assert all(first[f"h{i}"] != hub_shard for i in range(5))
    # And the suggestion must survive its own validation.
    partition_network(star.network, 2, first)


def test_suggest_assignment_balance_ratio():
    """The heaviest shard's degree load stays within 1.5x of the ideal
    even split — unless a single unsplittable atom (a star's hub) is
    itself heavier than that, in which case the atom is the floor and
    the balancer must not exceed it."""
    cases = [
        (_star(leaves=12).network, 2),
        (_star(leaves=12).network, 3),
        (build_dumbbell(4, mbps(100), mbps(10), ms(20),
                        access_delay_s=ms(1)).network, 2),
    ]
    for net, shards in cases:
        assignment = suggest_assignment(net, shards)
        loads = _degree_loads(net, assignment, shards)
        heaviest_atom = max(
            sum(1 for link in net.links
                if node.name in (link.node_a.name, link.node_b.name))
            for node in (net.node(name) for name in net.nodes)
        )
        bound = max(heaviest_atom, 1.5 * sum(loads) / shards)
        assert max(loads) <= bound, (
            f"degree loads {loads} over {shards} shards (bound {bound})"
        )


def test_swarm_assignment_stripes_seed_off_hub_shard():
    """The workload-aware swarm split keeps the two traffic magnets —
    hub (forwards everything) and seed (transmits every original piece
    copy) — on different shards, and gives the hub's shard fewer
    leechers to compensate."""
    from repro.harness.experiments import _swarm_assignment

    for shards in (2, 3):
        assignment = _swarm_assignment(leechers=24, shards=shards)
        assert assignment["hub"] == 0
        assert assignment["h0"] == 0          # tracker rides with the hub
        assert assignment["h1"] == 1          # seed striped out
        leecher_counts = [0] * shards
        for index in range(24):
            leecher_counts[assignment[f"h{index + 2}"]] += 1
        assert all(count > 0 for count in leecher_counts)
        assert leecher_counts[0] == min(leecher_counts)


def test_suggest_assignment_contracts_zero_delay_links():
    """Nodes joined by a zero-lookahead link can never be separated."""
    star = _star(leaves=4, delay=0.0)
    assignment = suggest_assignment(star.network, 2)
    assert len(set(assignment.values())) == 1


def test_scheduled_cut_link_rederives_lookahead_from_schedule_min():
    """A schedule on a cut link lowers the conservative lookahead to the
    minimum delay the link will *ever* have, not the delay at partition
    time — the barrier must hold for the whole run."""
    from repro.simnet.schedule import LinkSchedule, ScheduleEntry

    star = _star(leaves=2, delay=ms(10))
    # h1's access link crosses the cut; its delay dips to 2 ms mid-run.
    link = star.network.links[1]
    LinkSchedule(link.a_to_b.sim, link, [
        ScheduleEntry(1.0, delay_s=ms(2)),
        ScheduleEntry(2.0, delay_s=ms(30)),
    ])
    partition = partition_network(
        star.network, 2, {"hub": 0, "h0": 0, "h1": 1}
    )
    assert partition.lookahead_s == pytest.approx(ms(2))


def test_scheduled_cut_link_with_zero_min_delay_refused():
    """A schedule that ever drives a cut link's delay to zero leaves the
    partition without lookahead — refuse it up front, loudly."""
    from repro.simnet.schedule import LinkSchedule, ScheduleEntry

    star = _star(leaves=2, delay=ms(10))
    link = star.network.links[1]
    LinkSchedule(link.a_to_b.sim, link, [ScheduleEntry(1.0, delay_s=0.0)])
    with pytest.raises(ConfigurationError, match="lookahead"):
        partition_network(star.network, 2, {"hub": 0, "h0": 0, "h1": 1})


def test_schedule_off_cut_does_not_change_lookahead():
    from repro.simnet.schedule import LinkSchedule, ScheduleEntry

    star = _star(leaves=2, delay=ms(10))
    # h0's link stays inside shard 0: its schedule must not leak into the
    # cut lookahead.
    link = star.network.links[0]
    LinkSchedule(link.a_to_b.sim, link, [ScheduleEntry(1.0, delay_s=ms(1))])
    partition = partition_network(
        star.network, 2, {"hub": 0, "h0": 0, "h1": 1}
    )
    assert partition.lookahead_s == pytest.approx(ms(10))


def test_suggest_assignment_contracts_scheduled_zero_delay_links():
    """The assignment helper must keep endpoints of a link that ever hits
    zero delay in one shard, exactly as for statically zero-delay links."""
    from repro.simnet.schedule import LinkSchedule, ScheduleEntry

    star = _star(leaves=4, delay=ms(10))
    link = star.network.links[2]  # h2's access link
    LinkSchedule(link.a_to_b.sim, link, [ScheduleEntry(1.0, delay_s=0.0)])
    assignment = suggest_assignment(star.network, 2)
    assert assignment[link.node_a.name] == assignment[link.node_b.name]
