"""Topology partitioning for the sharded engine.

The partitioner is pure topology analysis: validate a node→shard map,
derive the directed cut set with deterministic channel ids, and compute
the conservative lookahead (minimum cut propagation delay). These tests
pin island discovery on the three topologies the sharded runners use,
the zero-lookahead refusal, and the determinism of the generic
assignment helper.
"""

import pytest

from repro.simnet.errors import ConfigurationError
from repro.simnet.topology import (
    build_dumbbell,
    build_star,
    partition_network,
    suggest_assignment,
)
from repro.simnet.units import mbps, ms


def _star(leaves=6, delay=ms(10)):
    return build_star(leaves, mbps(10), delay)


def test_star_islands_and_cut_edges():
    star = _star(leaves=4)
    assignment = {"hub": 0, "h0": 0, "h1": 0, "h2": 1, "h3": 1}
    partition = partition_network(star.network, 2, assignment)
    islands = partition.islands()
    assert islands[0] == ["hub", "h0", "h1"]
    assert islands[1] == ["h2", "h3"]
    # Each leaf link contributes two directed edges; only the h2/h3 links
    # cross the cut, so 4 directed cut edges.
    assert len(partition.cut_edges) == 4
    assert {(e.src_node, e.dst_node) for e in partition.cut_edges} == {
        ("h2", "hub"), ("hub", "h2"), ("h3", "hub"), ("hub", "h3"),
    }
    assert partition.lookahead_s == pytest.approx(ms(10))


def test_channel_ids_follow_link_construction_order():
    """Channel ids number every directed edge (cut or not) in link
    construction order, forward direction first — the cross-engine merge
    key depends on this being a pure function of the topology."""
    star = _star(leaves=3)
    assignment = {"hub": 0, "h0": 0, "h1": 1, "h2": 1}
    partition = partition_network(star.network, 2, assignment)
    # Links in order: h0-hub (ids 0,1), h1-hub (2,3), h2-hub (4,5).
    by_edge = {(e.src_node, e.dst_node): e.channel_id
               for e in partition.cut_edges}
    assert by_edge == {
        ("h1", "hub"): 2, ("hub", "h1"): 3,
        ("h2", "hub"): 4, ("hub", "h2"): 5,
    }


def test_dumbbell_bulk_split():
    """The run_bulk assignment: senders + left router vs receivers +
    right router; only the bottleneck crosses."""
    bell = build_dumbbell(2, mbps(100), mbps(10), ms(20), access_delay_s=ms(1))
    assignment = {"rL": 0, "s0": 0, "s1": 0, "rR": 1, "d0": 1, "d1": 1}
    partition = partition_network(bell.network, 2, assignment)
    assert {(e.src_node, e.dst_node) for e in partition.cut_edges} == {
        ("rL", "rR"), ("rR", "rL"),
    }
    assert partition.lookahead_s == pytest.approx(ms(20))


def test_swarm_star_stripe():
    """Striping leaves over three shards cuts every off-hub leaf link."""
    star = _star(leaves=6)
    assignment = {"hub": 0}
    for index in range(6):
        assignment[f"h{index}"] = index % 3
    partition = partition_network(star.network, 3, assignment)
    islands = partition.islands()
    assert islands[0] == ["hub", "h0", "h3"]
    assert islands[1] == ["h1", "h4"]
    assert islands[2] == ["h2", "h5"]
    # h0/h3 share the hub's shard; the other 4 leaf links cross (x2 dirs).
    assert len(partition.cut_edges) == 8


def test_unassigned_and_unknown_nodes_refused():
    star = _star(leaves=2)
    with pytest.raises(ConfigurationError, match="assigns no shard"):
        partition_network(star.network, 2, {"hub": 0, "h0": 1})
    with pytest.raises(ConfigurationError, match="unknown node"):
        partition_network(
            star.network, 2,
            {"hub": 0, "h0": 0, "h1": 1, "ghost": 1},
        )
    with pytest.raises(ConfigurationError, match="valid: 0..1"):
        partition_network(
            star.network, 2, {"hub": 0, "h0": 1, "h1": 2}
        )


def test_zero_delay_cut_refused():
    """A cut with no lookahead cannot make conservative progress."""
    star = _star(leaves=2, delay=0.0)
    with pytest.raises(ConfigurationError, match="no.*lookahead|lookahead"):
        partition_network(
            star.network, 2, {"hub": 0, "h0": 0, "h1": 1}
        )


def test_all_in_one_shard_refused_for_multi_shard():
    star = _star(leaves=2)
    with pytest.raises(ConfigurationError, match="cuts no links"):
        partition_network(
            star.network, 2, {"hub": 0, "h0": 0, "h1": 0}
        )


def test_single_shard_partition_is_trivially_valid():
    star = _star(leaves=2)
    partition = partition_network(
        star.network, 1, {"hub": 0, "h0": 0, "h1": 0}
    )
    assert partition.cut_edges == []
    assert partition.lookahead_s == float("inf")


def test_suggest_assignment_is_deterministic_and_balanced():
    star = _star(leaves=5)
    first = suggest_assignment(star.network, 2)
    second = suggest_assignment(star.network, 2)
    assert first == second
    sizes = sorted(
        sum(1 for shard in first.values() if shard == s) for s in range(2)
    )
    assert sizes == [3, 3]  # 6 nodes balanced 3/3
    # And the suggestion must survive its own validation.
    partition_network(star.network, 2, first)


def test_suggest_assignment_contracts_zero_delay_links():
    """Nodes joined by a zero-lookahead link can never be separated."""
    star = _star(leaves=4, delay=0.0)
    assignment = suggest_assignment(star.network, 2)
    assert len(set(assignment.values())) == 1
