"""Unit and property tests for the fluid flow-level fast path.

The contract under test: with a :class:`~repro.simnet.fluid.FluidManager`
installed, a bulk flow's *delivered bytes* are identical to the packet-only
run (byte conservation across every mode switch), the ``fluid.*`` counters
tell the truth, non-transparent paths are never admitted, and randomly
timed impairment-triggered demotions/promotions never corrupt the stream.
"""

import random

import pytest

from repro.simnet.fluid import FluidManager
from repro.simnet.impairments import ImpairmentChain
from repro.simnet.units import mbps, ms
from repro.tcp import TcpOptions
from tests.helpers import Collector, two_hosts


def _bulk(
    total=6_000_000,
    fluid=False,
    bandwidth_bps=mbps(20),
    delay_s=ms(20),
    queue_packets=60,
    until=30.0,
):
    """One backlogged transfer; returns (net, link, events, client, done_at).

    ``done_at`` is a 1-element list that records the virtual time at which
    the final byte was delivered (None if the horizon cut the transfer).
    """
    options = TcpOptions(receive_buffer=1 << 20)
    net, a, b, sa, sb, link = two_hosts(
        bandwidth_bps=bandwidth_bps, delay_s=delay_s,
        queue_packets=queue_packets, tcp_options=options,
    )
    if fluid:
        FluidManager(net.sim)
    events = Collector()
    done_at = [None]

    def on_data(sock, n):
        events.data.append(n)
        if events.total_bytes >= total and done_at[0] is None:
            done_at[0] = net.sim.now

    sb.listen(80, events.on_accept, on_data=on_data)
    client = sa.connect("b", 80)
    client.send(total)
    net.run(until=until)
    return net, link, events, client, done_at


def test_delivered_bytes_identical_to_packet_run():
    _, _, packet_events, _, packet_done = _bulk(fluid=False)
    net, _, fluid_events, _, fluid_done = _bulk(fluid=True)
    assert fluid_events.total_bytes == packet_events.total_bytes
    assert net.sim.counters.get("fluid.entries", 0) >= 1
    assert packet_done[0] is not None and fluid_done[0] is not None


def test_completion_time_close_to_packet_run():
    _, _, _, _, packet_done = _bulk(fluid=False)
    _, _, _, _, fluid_done = _bulk(fluid=True)
    assert fluid_done[0] == pytest.approx(packet_done[0], rel=0.05)


def test_conservation_checked_and_never_violated():
    net, _, _, _, _ = _bulk(fluid=True)
    counters = net.sim.counters
    assert counters.get("fluid.conservation_checks", 0) > 0
    assert counters.get("fluid.conservation_failures", 0) == 0


def test_counters_taxonomy():
    net, _, _, _, _ = _bulk(fluid=True)
    counters = net.sim.counters
    entries = counters.get("fluid.entries", 0)
    exits = counters.get("fluid.exits", 0)
    assert entries >= 1
    # Every exit is attributed to exactly one reason.
    by_reason = sum(v for k, v in counters.items()
                    if k.startswith("fluid.exit."))
    assert by_reason == exits
    assert counters.get("fluid.events_saved", 0) > 0
    # The transfer finished packet-level (tail exit), so no flow remains.
    assert counters.get("fluid.flows_active", -1) == 0


def test_events_saved_is_real():
    """The hybrid run must execute far fewer engine events."""
    packet_net, _, _, _, _ = _bulk(fluid=False)
    fluid_net, _, _, _, _ = _bulk(fluid=True)
    assert fluid_net.sim.events_processed < packet_net.sim.events_processed
    saved = fluid_net.sim.counters.get("fluid.events_saved", 0)
    # The ledger's estimate should be in the ballpark of the true gap.
    true_gap = (packet_net.sim.events_processed
                - fluid_net.sim.events_processed)
    assert saved == pytest.approx(true_gap, rel=0.5)


def test_impaired_path_never_admitted():
    options = TcpOptions(receive_buffer=1 << 20)
    net, a, b, sa, sb, link = two_hosts(
        bandwidth_bps=mbps(20), delay_s=ms(10), queue_packets=60,
        tcp_options=options,
    )
    FluidManager(net.sim)
    # Any impairment chain — even an empty, no-op one — makes the hop
    # non-transparent: per-packet decisions cannot run in closed form.
    link.a_to_b.set_impairments(ImpairmentChain())
    events = Collector()
    sb.listen(80, events.on_accept, on_data=events.on_data)
    client = sa.connect("b", 80)
    client.send(1_000_000)
    net.run(until=20.0)
    assert events.total_bytes == 1_000_000
    assert net.sim.counters.get("fluid.entries", 0) == 0


def test_mid_run_impairment_demotes_flow():
    net, link, events, _, _ = _bulk(fluid=True, total=40_000_000, until=0.0)
    # Let the flow enter fluid mode, then impair the path mid-transfer
    # (t=2.0 sits inside the first fluid residency for this topology).
    net.run(until=2.0)
    assert net.sim.counters.get("fluid.flows_active", 0) == 1
    link.a_to_b.set_impairments(ImpairmentChain())
    net.run(until=60.0)
    counters = net.sim.counters
    assert counters.get("fluid.exit.path", 0) >= 1
    assert counters.get("fluid.fallbacks", 0) >= 1
    assert events.total_bytes == 40_000_000


def test_flight_recorder_sees_mode_transitions():
    """Every fluid entry/exit lands in an attached flight recorder as a
    ``tcp/fluid`` event, with exits carrying their reason string."""
    from repro.trace.recorder import FlightRecorder

    net, _, _, client, _ = _bulk(fluid=True, until=0.0)
    recorder = FlightRecorder(capacity=None, name="fluid-test")
    recorder.attach_socket(client)
    net.run(until=30.0)

    transitions = [e for e in recorder.snapshot()
                   if e.category == "tcp" and e.kind == "fluid"]
    enters = [e for e in transitions if e.reason == "enter"]
    exits = [e for e in transitions if e.reason.startswith("exit:")]
    counters = net.sim.counters
    assert len(enters) == counters["fluid.entries"] >= 1
    assert len(exits) == counters["fluid.exits"] >= 1
    # Transitions alternate: a flow cannot enter twice without exiting.
    kinds = ["enter" if e.reason == "enter" else "exit"
             for e in sorted(transitions, key=lambda e: e.physical_time)]
    assert kinds == ["enter", "exit"] * (len(kinds) // 2)
    # The recorded reasons match the counter taxonomy.
    for event in exits:
        reason = event.reason.split(":", 1)[1]
        assert counters.get(f"fluid.exit.{reason}", 0) >= 1


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_property_random_impairment_transitions_conserve_bytes(seed):
    """N randomly timed impairment toggles force mode transitions; the
    delivered byte count must be exactly the packet run's, completion
    within tolerance, and conservation never violated.

    The toggled chain is *empty* (drops nothing, delays nothing), so the
    packet-level truth is independent of the schedule — only the hybrid
    engine's mode switching is exercised by it.
    """
    rng = random.Random(seed)
    toggles = sorted(rng.uniform(1.0, 14.0) for _ in range(rng.randint(4, 8)))

    _, _, packet_events, _, packet_done = _bulk(
        fluid=False, total=40_000_000, until=60.0,
    )

    net, link, events, _, done_at = _bulk(fluid=True, total=40_000_000,
                                          until=0.0)
    impaired = [False]

    def toggle():
        impaired[0] = not impaired[0]
        chain = ImpairmentChain() if impaired[0] else None
        link.a_to_b.set_impairments(chain)

    for at in toggles:
        net.sim.schedule(at, toggle)
    net.run(until=60.0)

    counters = net.sim.counters
    assert events.total_bytes == packet_events.total_bytes
    assert counters.get("fluid.conservation_failures", 0) == 0
    assert counters.get("fluid.entries", 0) >= 1
    assert done_at[0] is not None
    assert done_at[0] == pytest.approx(packet_done[0], rel=0.10)
