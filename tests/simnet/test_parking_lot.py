"""Tests for the parking-lot topology and its classic fairness result."""

import pytest

from repro.simnet.errors import ConfigurationError
from repro.simnet.topology import build_parking_lot
from repro.simnet.units import mbps, ms
from repro.tcp.stack import TcpStack
from tests.helpers import Collector


def test_shape():
    lot = build_parking_lot(3, mbps(10), ms(5))
    assert len(lot.routers) == 4
    assert len(lot.bottlenecks) == 3
    assert len(lot.cross_sources) == 3
    # Through path crosses every router.
    from repro.simnet.routing import shortest_path

    paths = shortest_path(
        lot.through_source, lot.network.nodes.values(), lot.network.links
    )
    _, path = paths[lot.through_sink.name]
    assert path[1:-1] == [r.name for r in lot.routers]


def test_validates_hops():
    with pytest.raises(ConfigurationError):
        build_parking_lot(1, mbps(10), ms(5))


def test_through_flow_disadvantaged_against_cross_flows():
    """The classic parking-lot result: a flow crossing N bottlenecks gets
    less than the one-hop cross flows competing at each of them."""
    lot = build_parking_lot(3, mbps(10), ms(5))
    net = lot.network

    sinks = {}

    def attach_sink(node, label):
        events = Collector()
        TcpStack(node).listen(80, events.on_accept, on_data=events.on_data)
        sinks[label] = events

    attach_sink(lot.through_sink, "through")
    for index, node in enumerate(lot.cross_sinks):
        attach_sink(node, f"cross{index}")

    TcpStack(lot.through_source).connect(
        lot.through_sink.name, 80).send(1 << 30)
    for index, node in enumerate(lot.cross_sources):
        TcpStack(node).connect(
            lot.cross_sinks[index].name, 80).send(1 << 30)

    net.run(until=15.0)
    through = sinks["through"].total_bytes
    crosses = [sinks[f"cross{i}"].total_bytes for i in range(3)]
    assert through > 0
    for cross in crosses:
        assert cross > through  # each one-hop flow beats the through flow
    # Each bottleneck is saturated by its pair of flows.
    for index, cross in enumerate(crosses):
        carried = (cross + through) * 8 / 15.0
        assert carried > 0.7 * mbps(10)
