"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.simnet.engine import Simulator
from repro.simnet.errors import SchedulingError


def test_time_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_scheduling_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(1.0, lambda l=label: order.append(l))
    sim.run()
    assert order == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_zero_delay_event_runs_after_current_instant_events():
    sim = Simulator()
    order = []
    def first():
        order.append("first")
        sim.schedule(0.0, lambda: order.append("nested"))
    sim.schedule(1.0, first)
    sim.schedule(1.0, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "nested"]


def test_negative_delay_rejected():
    with pytest.raises(SchedulingError):
        Simulator().schedule(-0.1, lambda: None)


def test_call_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.call_at(1.0, lambda: None)


def test_cancelled_event_does_not_run():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.pending() == 0


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_run_until_exact_boundary_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run(until=2.0)
    assert fired == [2]


def test_max_events_guard():
    sim = Simulator()

    def rearm():
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(SchedulingError):
        sim.run(max_events=100)


def test_stop_halts_loop():
    sim = Simulator()
    fired = []
    def fire_and_stop():
        fired.append(1)
        sim.stop()

    sim.schedule(1.0, fire_and_stop)
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.pending() == 1


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SchedulingError):
        sim.run()


def test_peek_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek_time() == 2.0


def test_peek_time_empty_queue():
    assert Simulator().peek_time() is None


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 7


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_property_events_fire_in_sorted_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_cancellation_exactness(items):
    """Exactly the non-cancelled events run, regardless of interleaving."""
    sim = Simulator()
    ran = []
    expected = 0
    for index, (delay, keep) in enumerate(items):
        event = sim.schedule(delay, lambda i=index: ran.append(i))
        if keep:
            expected += 1
        else:
            event.cancel()
    sim.run()
    assert len(ran) == expected


# ------------------------------------------------------------- fast path


def test_schedule_passes_args_without_closure():
    sim = Simulator()
    got = []
    sim.schedule(1.0, lambda *a: got.append(a), "x", 42)
    sim.run()
    assert got == [("x", 42)]


def test_reschedule_moves_pending_event():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(sim.now))
    event.reschedule(5.0)
    sim.run()
    assert fired == [5.0]
    assert sim.pending() == 0


def test_reschedule_fires_exactly_once():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(sim.now))
    event.reschedule(3.0)
    event.reschedule(2.0)
    sim.run()
    assert fired == [2.0]


def test_reschedule_revives_cancelled_event():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(sim.now))
    event.cancel()
    assert not event.active
    event.reschedule(4.0)
    assert event.active
    sim.run()
    assert fired == [4.0]


def test_reschedule_rearms_fired_event():
    """The TCP delack/persist pattern: keep the Event, re-arm after firing."""
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.0]
    assert not event.active
    event.reschedule(sim.now + 2.0)
    sim.run()
    assert fired == [1.0, 3.0]


def test_reschedule_into_past_rejected():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        event.reschedule(2.0)


def test_reschedule_ties_like_cancel_and_recreate():
    """A rescheduled event gets a fresh seq: same-time ties fire it last,
    exactly as if the old event were cancelled and a new one scheduled."""
    sim = Simulator()
    order = []
    rearmed = sim.schedule(1.0, lambda: order.append("rearmed"))
    sim.schedule(2.0, lambda: order.append("other"))
    rearmed.reschedule(2.0)
    sim.run()
    assert order == ["other", "rearmed"]


def test_pending_counter_tracks_cancel_reschedule_and_run():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sim.pending() == 5
    events[0].cancel()
    assert sim.pending() == 4
    events[0].reschedule(10.0)  # revive
    assert sim.pending() == 5
    events[1].reschedule(20.0)  # re-key, still one live event
    assert sim.pending() == 5
    sim.run()
    assert sim.pending() == 0


def test_compaction_bounds_heap_growth():
    """Churning one timer thousands of times must not grow the heap."""
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    for i in range(5000):
        event.reschedule(1.0 + i * 1e-6)
    assert sim.compactions > 0
    # Far fewer than the 5000 dead entries churned through the heap.
    assert sim.heap_len() < 200
    assert sim.pending() == 1
    sim.run()
    assert sim.events_processed == 1


def test_compaction_preserves_firing_order():
    sim = Simulator()
    order = []
    keepers = []
    for i in range(50):
        keepers.append(sim.schedule(100.0 + i, lambda i=i: order.append(i)))
    churn = sim.schedule(1.0, lambda: None)
    for i in range(500):  # force several compaction sweeps
        churn.reschedule(1.0 + i * 1e-3)
    churn.cancel()
    sim.run()
    assert order == list(range(50))


def test_transient_event_fires_with_args():
    sim = Simulator()
    got = []
    assert sim.schedule_transient(1.0, lambda v: got.append((sim.now, v)), 7) is None
    sim.run()
    assert got == [(1.0, 7)]


def test_transient_events_are_pooled():
    sim = Simulator()
    seen = []

    def hop(n):
        seen.append(n)
        if n < 10:
            sim.schedule_transient(1.0, hop, n + 1)

    sim.schedule_transient(1.0, hop, 1)
    sim.run()
    assert seen == list(range(1, 11))
    # An event is recycled only after its callback returns, so a chain that
    # schedules its successor from the callback alternates between two
    # pooled events — not one, and certainly not ten fresh allocations.
    assert len(sim._event_pool) == 2
    # Recycled events must not pin callbacks or arguments.
    for pooled in sim._event_pool:
        assert pooled.args == ()


def test_transient_negative_delay_rejected():
    with pytest.raises(SchedulingError):
        Simulator().schedule_transient(-0.5, lambda: None)


def test_max_events_budget_checked_before_execution():
    """A run needing exactly max_events completes; the budget only trips
    when a further event would exceed it, and the error names the time."""
    sim = Simulator()
    fired = []
    for i in range(3):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]

    rearm = []

    def tick():
        rearm.append(sim.now)
        sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    with pytest.raises(SchedulingError, match=r"max_events=5 at t="):
        sim.run(max_events=5)
    assert len(rearm) == 5  # the budget itself was fully used


def test_peek_time_discards_dead_heads():
    sim = Simulator()
    doomed = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    sim.schedule(99.0, lambda: None)
    for event in doomed:
        event.cancel()
    assert sim.peek_time() == 99.0
    assert sim.heap_len() == 1  # the dead heads were popped, not scanned


def test_heap_len_counts_dead_entries():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.reschedule(2.0)
    assert sim.pending() == 1
    assert sim.heap_len() == 2  # live entry + stale re-keyed entry


# ------------------------------------------------------------ tie-key channel


def test_tie_key_outranks_later_created_same_time_events():
    """An explicit tie_key claims the event's original creation instant:
    a delivery re-created "now" with the key of an old transmit fires
    before a timer armed after that transmit, despite its younger seq."""
    sim = Simulator()
    order = []

    def arm():
        # A periodic-style timer armed at t=2 for t=5 (rank 2.0)...
        sim.call_at(5.0, order.append, "timer")
        # ...and an injected delivery whose original creation was t=1.
        sim.call_at(5.0, order.append, "delivery", tie_key=1.0)

    sim.schedule(2.0, arm)
    sim.run()
    assert order == ["delivery", "timer"]


def test_default_rank_reproduces_creation_order():
    """Without tie_key the rank is the scheduling instant, which is
    monotone in seq — ordering is exactly the historical (time, seq)."""
    sim = Simulator()
    order = []
    sim.call_at(5.0, order.append, "first")
    sim.call_at(5.0, order.append, "second")
    sim.schedule(1.0, lambda: sim.call_at(5.0, order.append, "third"))
    sim.run()
    assert order == ["first", "second", "third"]


def test_reschedule_preserves_explicit_tie_key():
    """Re-arming a keyed event must not lose its rank: the sharded
    engine's injected deliveries may be rescheduled by components (TCP
    RTO reuse), and a dropped key would re-introduce creation-seq skew."""
    sim = Simulator()
    order = []
    keyed = sim.call_at(3.0, order.append, "keyed", tie_key=0.5)
    assert keyed.tie_key == 0.5

    def rearm():
        keyed.reschedule(5.0)          # rank must stay 0.5, not become 2.0
        sim.call_at(5.0, order.append, "timer")  # rank 2.0

    sim.schedule(2.0, rearm)
    sim.run()
    assert keyed.tie_key == 0.5
    assert order == ["keyed", "timer"]


def test_reschedule_rederives_default_rank():
    """An unkeyed event re-keys its rank to the reschedule instant —
    identical to cancel-and-recreate, the reschedule contract."""
    sim = Simulator()
    order = []
    plain = sim.call_at(3.0, order.append, "rearmed")

    def rearm():
        plain.reschedule(5.0)                      # rank becomes 2.0
        sim.call_at(5.0, order.append, "keyed", tie_key=1.0)

    sim.schedule(2.0, rearm)
    sim.run()
    assert order == ["keyed", "rearmed"]


def test_tie_key_later_than_event_time_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError, match="tie_key"):
        sim.call_at(1.0, lambda: None, tie_key=2.0)
