"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.simnet.engine import Simulator
from repro.simnet.errors import SchedulingError


def test_time_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_scheduling_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(1.0, lambda l=label: order.append(l))
    sim.run()
    assert order == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_zero_delay_event_runs_after_current_instant_events():
    sim = Simulator()
    order = []
    def first():
        order.append("first")
        sim.schedule(0.0, lambda: order.append("nested"))
    sim.schedule(1.0, first)
    sim.schedule(1.0, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "nested"]


def test_negative_delay_rejected():
    with pytest.raises(SchedulingError):
        Simulator().schedule(-0.1, lambda: None)


def test_call_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.call_at(1.0, lambda: None)


def test_cancelled_event_does_not_run():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.pending() == 0


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_run_until_exact_boundary_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run(until=2.0)
    assert fired == [2]


def test_max_events_guard():
    sim = Simulator()

    def rearm():
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(SchedulingError):
        sim.run(max_events=100)


def test_stop_halts_loop():
    sim = Simulator()
    fired = []
    def fire_and_stop():
        fired.append(1)
        sim.stop()

    sim.schedule(1.0, fire_and_stop)
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.pending() == 1


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SchedulingError):
        sim.run()


def test_peek_time_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek_time() == 2.0


def test_peek_time_empty_queue():
    assert Simulator().peek_time() is None


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 7


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_property_events_fire_in_sorted_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_cancellation_exactness(items):
    """Exactly the non-cancelled events run, regardless of interleaving."""
    sim = Simulator()
    ran = []
    expected = 0
    for index, (delay, keep) in enumerate(items):
        event = sim.schedule(delay, lambda i=index: ran.append(i))
        if keep:
            expected += 1
        else:
            event.cancel()
    sim.run()
    assert len(ran) == expected
