"""Unit tests for packets."""

import pytest

from repro.simnet.errors import RoutingError
from repro.simnet.packet import DEFAULT_TTL, Packet


def test_size_bits():
    packet = Packet(src="a", dst="b", protocol="tcp", size_bytes=125)
    assert packet.size_bits == 1000.0


def test_uids_are_unique_and_increasing():
    first = Packet(src="a", dst="b", protocol="tcp", size_bytes=1)
    second = Packet(src="a", dst="b", protocol="tcp", size_bytes=1)
    assert second.uid > first.uid


def test_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        Packet(src="a", dst="b", protocol="tcp", size_bytes=0)


def test_default_ttl():
    packet = Packet(src="a", dst="b", protocol="tcp", size_bytes=1)
    assert packet.ttl == DEFAULT_TTL


def test_hop_decrements_ttl():
    packet = Packet(src="a", dst="b", protocol="tcp", size_bytes=1, ttl=3)
    packet.hop()
    assert packet.ttl == 2


def test_ttl_expiry_raises():
    packet = Packet(src="a", dst="b", protocol="tcp", size_bytes=1, ttl=1)
    with pytest.raises(RoutingError):
        packet.hop()
