"""Unit tests for nodes, forwarding, and shortest-path routing."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.errors import AddressError, ConfigurationError, RoutingError
from repro.simnet.packet import Packet
from repro.simnet.routing import compute_routes, shortest_path
from repro.simnet.topology import Network, build_chain, build_dumbbell, build_star


class Sink:
    def __init__(self):
        self.packets = []

    def deliver(self, packet):
        self.packets.append(packet)


def test_protocol_demux():
    net = Network()
    a = net.add_node("a")
    sink_tcp, sink_udp = Sink(), Sink()
    a.register_protocol("tcp", sink_tcp)
    a.register_protocol("udp", sink_udp)
    a.send(Packet(src="a", dst="a", protocol="udp", size_bytes=10))
    net.run()
    assert len(sink_udp.packets) == 1
    assert len(sink_tcp.packets) == 0


def test_duplicate_protocol_registration_rejected():
    net = Network()
    a = net.add_node("a")
    a.register_protocol("tcp", Sink())
    with pytest.raises(AddressError):
        a.register_protocol("tcp", Sink())


def test_protocol_lookup_missing_raises():
    net = Network()
    a = net.add_node("a")
    with pytest.raises(AddressError):
        a.protocol("nope")


def test_unhandled_packets_counted_not_raised():
    net = Network()
    a = net.add_node("a")
    a.send(Packet(src="a", dst="a", protocol="mystery", size_bytes=10))
    net.run()
    assert a.unhandled_packets == 1


def test_no_route_raises():
    net = Network()
    a = net.add_node("a")
    with pytest.raises(RoutingError):
        a.send(Packet(src="a", dst="b", protocol="tcp", size_bytes=10))


def test_duplicate_node_name_rejected():
    net = Network()
    net.add_node("a")
    with pytest.raises(ConfigurationError):
        net.add_node("a")


def test_node_lookup():
    net = Network()
    a = net.add_node("a")
    assert net.node("a") is a
    with pytest.raises(ConfigurationError):
        net.node("zzz")


def test_forwarding_through_chain():
    chain = build_chain(hops=3, bandwidth_bps=1e9, per_hop_delay_s=0.001)
    net = chain.network
    sink = Sink()
    chain.nodes[-1].register_protocol("raw", sink)
    chain.nodes[0].send(
        Packet(src=chain.nodes[0].name, dst=chain.nodes[-1].name,
               protocol="raw", size_bytes=100)
    )
    net.run()
    assert len(sink.packets) == 1
    # Three hops consumed two TTL decrements (intermediate nodes only).
    assert sink.packets[0].ttl == 64 - 2


def test_shortest_path_prefers_low_delay():
    net = Network()
    a, b, c = net.add_node("a"), net.add_node("b"), net.add_node("c")
    net.add_link(a, b, 1e6, delay_s=0.010)       # direct but slow path
    net.add_link(a, c, 1e6, delay_s=0.001)
    net.add_link(c, b, 1e6, delay_s=0.001)       # via c: 2 ms total
    paths = shortest_path(a, net.nodes.values(), net.links)
    cost, path = paths["b"]
    assert path == ["a", "c", "b"]
    assert cost == pytest.approx(0.002)


def test_compute_routes_next_hops():
    net = Network()
    a, b, c = net.add_node("a"), net.add_node("b"), net.add_node("c")
    net.add_link(a, b, 1e6, 0.001)
    net.add_link(b, c, 1e6, 0.001)
    tables = compute_routes(net.nodes.values(), net.links)
    assert tables["a"]["c"] == "b"
    assert tables["c"]["a"] == "b"
    assert tables["b"]["a"] == "a"


def test_shortest_path_unknown_source():
    net = Network()
    net.add_node("a")
    other = Network().add_node("x")
    with pytest.raises(RoutingError):
        shortest_path(other, net.nodes.values(), net.links)


def test_dumbbell_connectivity_all_pairs():
    bell = build_dumbbell(
        pairs=3, access_bandwidth_bps=1e9,
        bottleneck_bandwidth_bps=1e7, bottleneck_delay_s=0.01,
    )
    sink = Sink()
    bell.receivers[2].register_protocol("raw", sink)
    bell.senders[0].send(
        Packet(src="s0", dst="d2", protocol="raw", size_bytes=100)
    )
    bell.network.run()
    assert len(sink.packets) == 1


def test_dumbbell_validates_pairs():
    with pytest.raises(ConfigurationError):
        build_dumbbell(0, 1e9, 1e7, 0.01)


def test_star_leaf_to_leaf():
    star = build_star(leaves=4, leaf_bandwidth_bps=1e8, leaf_delay_s=0.002)
    sink = Sink()
    star.leaves[3].register_protocol("raw", sink)
    star.leaves[0].send(Packet(src="h0", dst="h3", protocol="raw", size_bytes=100))
    star.network.run()
    assert len(sink.packets) == 1
    # Two hops through the hub: 2x propagation + 2x serialisation.
    assert star.network.sim.now == pytest.approx(0.002 * 2 + (800 / 1e8) * 2)


def test_star_validates_leaves():
    with pytest.raises(ConfigurationError):
        build_star(0, 1e8, 0.001)


def test_chain_validates_hops():
    with pytest.raises(ConfigurationError):
        build_chain(0, 1e8, 0.001)


def test_loopback_send_to_self():
    net = Network()
    a = net.add_node("a")
    sink = Sink()
    a.register_protocol("raw", sink)
    a.send(Packet(src="a", dst="a", protocol="raw", size_bytes=10))
    net.run()
    assert len(sink.packets) == 1
