"""Unit tests for packet tracing."""

import pytest

from repro.core.clock import DilatedClock
from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.node import Node
from repro.simnet.packet import Packet
from repro.simnet.trace import PacketTrace


class Sink:
    def deliver(self, packet):
        pass


def wired_pair(sim):
    a, b = Node(sim, "a"), Node(sim, "b")
    link = Link(sim, a, b, bandwidth_bps=1e6, delay_s=0.0)
    a.set_route("b", link.a_to_b)
    b.register_protocol("raw", Sink())
    return a, b, link


def send_n(a, n, flow_id=None, size=1250):
    for _ in range(n):
        a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=size, flow_id=flow_id))


def test_records_rx_by_default():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.b_to_a)
    send_n(a, 3)
    sim.run()
    assert len(trace) == 3
    assert all(record.kind == "rx" for record in trace.records)


def test_interarrivals_physical():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.b_to_a)
    send_n(a, 3)  # back-to-back at 1 Mbps, 1250 B -> 10 ms spacing
    sim.run()
    assert trace.interarrivals() == pytest.approx([0.010, 0.010])


def test_interarrivals_in_virtual_time():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.b_to_a)
    clock = DilatedClock(sim, tdf=10)
    send_n(a, 3)
    sim.run()
    assert trace.interarrivals(clock) == pytest.approx([0.001, 0.001])


def test_flow_filter():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.b_to_a, flow_id="wanted")
    send_n(a, 2, flow_id="wanted")
    send_n(a, 5, flow_id="other")
    sim.run()
    assert len(trace) == 2


def test_kind_filter_and_total_bytes():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.a_to_b, kinds=("tx",))
    send_n(a, 4, size=500)
    sim.run()
    assert len(trace) == 4
    assert trace.total_bytes() == 2000
