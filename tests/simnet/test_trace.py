"""Unit tests for packet tracing."""

import pytest

from repro.core.clock import DilatedClock
from repro.simnet.engine import Simulator
from repro.simnet.link import Link
from repro.simnet.node import Node
from repro.simnet.packet import Packet
from repro.simnet.trace import PacketTrace


class Sink:
    def deliver(self, packet):
        pass


def wired_pair(sim):
    a, b = Node(sim, "a"), Node(sim, "b")
    link = Link(sim, a, b, bandwidth_bps=1e6, delay_s=0.0)
    a.set_route("b", link.a_to_b)
    b.register_protocol("raw", Sink())
    return a, b, link


def send_n(a, n, flow_id=None, size=1250):
    for _ in range(n):
        a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=size, flow_id=flow_id))


def test_records_rx_by_default():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.b_to_a)
    send_n(a, 3)
    sim.run()
    assert len(trace) == 3
    assert all(record.kind == "rx" for record in trace.records)


def test_interarrivals_physical():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.b_to_a)
    send_n(a, 3)  # back-to-back at 1 Mbps, 1250 B -> 10 ms spacing
    sim.run()
    assert trace.interarrivals() == pytest.approx([0.010, 0.010])


def test_interarrivals_in_virtual_time():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.b_to_a)
    clock = DilatedClock(sim, tdf=10)
    send_n(a, 3)
    sim.run()
    assert trace.interarrivals(clock) == pytest.approx([0.001, 0.001])


def test_flow_filter():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.b_to_a, flow_id="wanted")
    send_n(a, 2, flow_id="wanted")
    send_n(a, 5, flow_id="other")
    sim.run()
    assert len(trace) == 2


def test_kind_filter_and_total_bytes():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.a_to_b, kinds=("tx",))
    send_n(a, 4, size=500)
    sim.run()
    assert len(trace) == 4
    assert trace.total_bytes() == 2000


def test_virtual_time_captured_with_owning_clock():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    clock = DilatedClock(sim, tdf=10)
    trace = PacketTrace(link.b_to_a, clock=clock)
    send_n(a, 3)
    sim.run()
    for record in trace.records:
        assert record.virtual_time == pytest.approx(record.physical_time / 10)


def test_virtual_time_none_without_clock():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.b_to_a)
    send_n(a, 1)
    sim.run()
    assert trace.records[0].virtual_time is None


def test_drop_records_carry_taxonomy_reason():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.a_to_b, kinds=("drop", "rx"))
    link.a_to_b.set_loss(lambda packet: True)
    send_n(a, 2)
    sim.run()
    assert len(trace) == 2
    assert all(record.kind == "drop" and record.drop_reason == "injected"
               for record in trace.records)


def test_non_drop_records_have_no_reason():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.b_to_a)
    send_n(a, 1)
    sim.run()
    assert trace.records[0].drop_reason is None


def test_one_trace_per_interface():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    PacketTrace(link.b_to_a)
    with pytest.raises(ValueError, match="already has a recorder"):
        PacketTrace(link.b_to_a)


def test_clear_forgets_records():
    sim = Simulator()
    a, b, link = wired_pair(sim)
    trace = PacketTrace(link.b_to_a)
    send_n(a, 3)
    sim.run()
    assert len(trace) == 3
    trace.clear()
    assert len(trace) == 0
    assert trace.records == []
