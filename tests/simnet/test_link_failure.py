"""Tests for link failure, rerouting, and restoration."""

import pytest

from repro.simnet.errors import RoutingError
from repro.simnet.packet import Packet
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.tcp.stack import TcpStack
from tests.helpers import Collector


class Sink:
    def __init__(self):
        self.packets = []

    def deliver(self, packet):
        self.packets.append(packet)


def triangle():
    """a—b direct (fast) plus a—c—b detour."""
    net = Network()
    a, b, c = net.add_node("a"), net.add_node("b"), net.add_node("c")
    direct = net.add_link(a, b, mbps(100), ms(1))
    net.add_link(a, c, mbps(100), ms(5))
    net.add_link(c, b, mbps(100), ms(5))
    net.finalize()
    return net, a, b, c, direct


def test_failover_to_detour():
    net, a, b, c, direct = triangle()
    sink = Sink()
    b.register_protocol("raw", sink)
    a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=100))
    net.run()
    first_arrival = net.sim.now
    assert first_arrival < 0.002  # direct path

    net.fail_link(direct)
    a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=100))
    net.run()
    assert len(sink.packets) == 2
    # The detour is 10 ms of propagation.
    assert net.sim.now - first_arrival >= 0.010


def test_restore_returns_to_direct_path():
    net, a, b, c, direct = triangle()
    sink = Sink()
    b.register_protocol("raw", sink)
    net.fail_link(direct)
    net.restore_link(direct)
    a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=100))
    net.run()
    assert net.sim.now < 0.002


def test_partition_drops_transit_and_raises_at_origin():
    net = Network()
    a, r, b = net.add_node("a"), net.add_node("r"), net.add_node("b")
    first = net.add_link(a, r, mbps(10), ms(1))
    second = net.add_link(r, b, mbps(10), ms(1))
    net.finalize()
    sink = Sink()
    b.register_protocol("raw", sink)
    # Fail the far link *after* a packet is committed to the first hop:
    # the router must drop it (no route), not crash the simulation.
    a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=100))
    net.fail_link(second)
    net.run()
    assert sink.packets == []
    assert r.no_route_drops == 1
    # At the origin, the missing route is a host error.
    with pytest.raises(RoutingError):
        a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=100))


def test_downed_interface_counts_drops():
    net, a, b, c, direct = triangle()
    direct.a_to_b.up = False
    direct.a_to_b.send(Packet(src="a", dst="b", protocol="raw", size_bytes=50))
    assert direct.a_to_b.down_drops == 1


def test_tcp_flow_survives_failover():
    """A TCP transfer rides out a mid-flight link failure via RTO and the
    rerouted path."""
    net, a, b, c, direct = triangle()
    events = Collector()
    TcpStack(b).listen(80, events.on_accept, on_data=events.on_data)
    client = TcpStack(a).connect("b", 80)
    client.send(2_000_000)
    net.run(until=0.05)
    assert 0 < events.total_bytes < 2_000_000
    net.fail_link(direct)
    net.run(until=30.0)
    assert events.total_bytes == 2_000_000
    # The cut was felt: everything in flight on the dead link needed
    # retransmission (possibly repaired by SACK without any RTO).
    assert client.retransmits >= 1
