"""Unit tests for the impairment pipeline: models, chain, drop taxonomy."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.errors import ConfigurationError
from repro.simnet.impairments import (
    BernoulliLoss,
    Corrupt,
    Duplicate,
    GilbertElliott,
    ImpairmentChain,
    ImpairmentSpec,
    LinkFlap,
    Reorder,
)
from repro.simnet.link import Link
from repro.simnet.node import Node
from repro.simnet.packet import Packet


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.deliveries = []

    def deliver(self, packet):
        self.deliveries.append((self.sim.now, packet))


def wire(sim, bandwidth=1e6, delay=0.001, queue_factory=None):
    a = Node(sim, "a")
    b = Node(sim, "b")
    link = Link(sim, a, b, bandwidth, delay, queue_factory)
    a.set_route("b", link.a_to_b)
    b.set_route("a", link.b_to_a)
    sink = Sink(sim)
    b.register_protocol("raw", sink)
    return a, b, link, sink


def packet(size=1250):
    return Packet(src="a", dst="b", protocol="raw", size_bytes=size)


# ----------------------------------------------------------- loss models


def _drive(stage, n):
    """Feed n packets through a stage; return the boolean loss pattern."""
    pattern = []
    for _ in range(n):
        verdict = stage.apply(packet())
        pattern.append(verdict is not None and verdict[0] == "drop")
    return pattern


def test_bernoulli_rate_converges_under_fixed_seed():
    pattern = _drive(BernoulliLoss(0.05, seed=7), 100_000)
    rate = sum(pattern) / len(pattern)
    assert rate == pytest.approx(0.05, rel=0.1)


def test_bernoulli_same_seed_same_pattern_different_seed_differs():
    a = _drive(BernoulliLoss(0.05, seed=7), 5_000)
    b = _drive(BernoulliLoss(0.05, seed=7), 5_000)
    c = _drive(BernoulliLoss(0.05, seed=8), 5_000)
    assert a == b
    assert a != c


def test_gilbert_elliott_stationary_loss_rate_converges():
    # p_enter/(p_enter+p_exit) = 0.01/(0.01+0.19) = 5%.
    stage = GilbertElliott(p_enter_bad=0.01, p_exit_bad=0.19, seed=11)
    pattern = _drive(stage, 200_000)
    rate = sum(pattern) / len(pattern)
    assert rate == pytest.approx(0.01 / (0.01 + 0.19), rel=0.1)


def test_gilbert_elliott_mean_burst_length_converges():
    stage = GilbertElliott.from_loss_rate(0.05, mean_burst=4.0, seed=13)
    pattern = _drive(stage, 200_000)
    bursts = []
    run = 0
    for lost in pattern:
        if lost:
            run += 1
        elif run:
            bursts.append(run)
            run = 0
    if run:
        bursts.append(run)
    assert sum(pattern) / len(pattern) == pytest.approx(0.05, rel=0.1)
    assert sum(bursts) / len(bursts) == pytest.approx(4.0, rel=0.1)


def test_gilbert_elliott_from_loss_rate_solves_stationary_equations():
    stage = GilbertElliott.from_loss_rate(0.02, mean_burst=5.0)
    assert stage.p_exit_bad == pytest.approx(0.2)
    pi_bad = stage.p_enter_bad / (stage.p_enter_bad + stage.p_exit_bad)
    assert pi_bad == pytest.approx(0.02)


def test_gilbert_elliott_burstier_than_bernoulli_at_equal_rate():
    """Same average loss, very different texture — the point of the model."""

    def mean_burst(pattern):
        bursts, run = [], 0
        for lost in pattern:
            if lost:
                run += 1
            elif run:
                bursts.append(run)
                run = 0
        if run:
            bursts.append(run)
        return sum(bursts) / len(bursts)

    bern = mean_burst(_drive(BernoulliLoss(0.05, seed=3), 100_000))
    ge = mean_burst(
        _drive(GilbertElliott.from_loss_rate(0.05, mean_burst=6.0, seed=3),
               100_000)
    )
    assert bern < 1.3  # independent losses rarely chain
    assert ge > 3.0


def test_model_parameter_validation():
    with pytest.raises(ConfigurationError):
        BernoulliLoss(1.5)
    with pytest.raises(ConfigurationError):
        GilbertElliott(p_enter_bad=0.1, p_exit_bad=0.0)
    with pytest.raises(ConfigurationError):
        GilbertElliott.from_loss_rate(0.0)
    with pytest.raises(ConfigurationError):
        Reorder(0.5, hold_s=-1.0)
    with pytest.raises(ConfigurationError):
        ImpairmentSpec(kind="nonsense")


# ---------------------------------------------------- chain on an interface


def test_chain_drops_are_charged_to_the_taxonomy():
    sim = Simulator()
    a, b, link, sink = wire(sim)
    link.a_to_b.set_impairments(ImpairmentChain([BernoulliLoss(1.0, seed=1)]))
    for _ in range(5):
        a.send(packet())
    sim.run()
    assert sink.deliveries == []
    assert link.a_to_b.drops == {"loss": 5}
    assert link.a_to_b.total_drops == 5
    assert sim.counters["drop.loss"] == 5


def test_chain_default_off_leaves_no_trace():
    sim = Simulator()
    a, b, link, sink = wire(sim)
    for _ in range(5):
        a.send(packet())
    sim.run()
    assert len(sink.deliveries) == 5
    assert link.a_to_b.drops == {}
    assert sim.counters == {}


def test_reorder_holds_packets_past_their_successors():
    sim = Simulator()
    a, b, link, sink = wire(sim, bandwidth=1e7, delay=0.0001)
    # Deterministically hold every other packet well past the spacing.
    toggle = {"n": 0}

    class EveryOther(Reorder):
        def apply(self, pkt):
            toggle["n"] += 1
            if toggle["n"] % 2 == 1:
                self.held += 1
                return ("hold", self.hold_s)
            return None

    link.a_to_b.set_impairments(
        ImpairmentChain([EveryOther(1.0, hold_s=0.05)])
    )
    sent = [packet() for _ in range(6)]
    for pkt in sent:
        a.send(pkt)
    sim.run()
    assert len(sink.deliveries) == 6
    received_uids = [pkt.uid for _, pkt in sink.deliveries]
    sent_uids = [pkt.uid for pkt in sent]
    assert received_uids != sent_uids  # held packets were overtaken
    assert sorted(received_uids) == sorted(sent_uids)  # nothing lost


def test_duplicate_injects_a_distinct_copy():
    sim = Simulator()
    a, b, link, sink = wire(sim)
    link.a_to_b.set_impairments(ImpairmentChain([Duplicate(1.0, seed=1)]))
    a.send(packet())
    sim.run()
    assert len(sink.deliveries) == 2
    uids = {pkt.uid for _, pkt in sink.deliveries}
    assert len(uids) == 2  # the clone is a distinct packet to traces
    sizes = {pkt.size_bytes for _, pkt in sink.deliveries}
    assert sizes == {1250}


def test_corrupt_marks_packets_but_still_delivers_them():
    sim = Simulator()
    a, b, link, sink = wire(sim)
    link.a_to_b.set_impairments(ImpairmentChain([Corrupt(1.0, seed=1)]))
    a.send(packet())
    sim.run()
    # The wire carried it; detection happens at the receiving transport.
    assert len(sink.deliveries) == 1
    assert sink.deliveries[0][1].corrupted


def test_link_flap_windows_drop_with_their_own_reason():
    sim = Simulator()
    a, b, link, sink = wire(sim, bandwidth=1e8)
    flap = LinkFlap(sim, windows=[(0.010, 0.020)])
    link.a_to_b.set_impairments(ImpairmentChain([flap]))
    for t in (0.005, 0.012, 0.018, 0.025):
        sim.call_at(t, a.send, packet())
    sim.run()
    assert len(sink.deliveries) == 2  # before and after the outage
    assert link.a_to_b.drops == {"flap": 2}
    assert flap.transitions == 2
    with pytest.raises(ConfigurationError):
        LinkFlap(sim, windows=[(0.5, 0.5)])


def test_stages_compose_in_order():
    sim = Simulator()
    a, b, link, sink = wire(sim)
    chain = (
        ImpairmentChain()
        .add(BernoulliLoss(0.0, seed=1))  # passes everything
        .add(Corrupt(1.0, seed=2))
        .add(Duplicate(1.0, seed=3))
    )
    link.a_to_b.set_impairments(chain)
    a.send(packet())
    sim.run()
    assert len(sink.deliveries) == 2
    assert all(pkt.corrupted for _, pkt in sink.deliveries)


def test_legacy_loss_fn_and_down_state_share_the_taxonomy():
    sim = Simulator()
    a, b, link, sink = wire(sim)
    link.a_to_b.set_loss(lambda pkt: True)
    a.send(packet())
    link.a_to_b.set_loss(None)
    link.a_to_b.up = False
    a.send(packet())
    sim.run()
    assert link.a_to_b.injected_losses == 1  # legacy alias still works
    assert link.a_to_b.down_drops == 1
    assert link.a_to_b.drops == {"injected": 1, "down": 1}
    assert sim.counters == {"drop.injected": 1, "drop.down": 1}


def test_queue_overflow_lands_in_the_taxonomy():
    from repro.simnet.queues import DropTailQueue

    sim = Simulator()
    a, b, link, sink = wire(
        sim, bandwidth=1e4, queue_factory=lambda: DropTailQueue(capacity_packets=2)
    )
    for _ in range(6):
        a.send(packet())
    sim.run()
    # One on the wire, two queued, three dropped.
    assert link.a_to_b.drops == {"queue": 3}
    assert sim.counters["drop.queue"] == 3
    assert len(sink.deliveries) == 3


# ----------------------------------------------------------------- specs


def test_spec_parse_round_trip():
    spec = ImpairmentSpec.parse("gilbert:rate=0.02,burst=5,seed=9")
    assert spec.kind == "gilbert"
    assert spec.rate == 0.02
    assert spec.burst == 5.0
    assert spec.seed == 9
    flap = ImpairmentSpec.parse("flap:windows=1.0-1.5/3.0-3.25")
    assert flap.windows == ((1.0, 1.5), (3.0, 3.25))
    with pytest.raises(ConfigurationError):
        ImpairmentSpec.parse("bernoulli:frobnicate=1")


def test_spec_build_scales_time_knobs_by_tdf():
    sim = Simulator()
    reorder = ImpairmentSpec(kind="reorder", rate=0.5, hold_s=0.002)
    assert reorder.build(sim, tdf=1).stages[0].hold_s == pytest.approx(0.002)
    assert reorder.build(sim, tdf=10).stages[0].hold_s == pytest.approx(0.020)
    # Probability knobs are per-packet and must NOT scale.
    bern = ImpairmentSpec(kind="bernoulli", rate=0.01)
    assert bern.build(sim, tdf=10).stages[0].rate == 0.01


def test_spec_build_produces_independent_rng_state_per_chain():
    sim = Simulator()
    spec = ImpairmentSpec(kind="bernoulli", rate=0.5, seed=4)
    one = spec.build(sim).stages[0]
    two = spec.build(sim).stages[0]
    assert _drive(one, 100) == _drive(two, 100)  # fresh, identical streams


# ------------------------------------------------- stage lifecycle hooks


def test_link_flap_arms_no_timers_until_attached():
    """Building a flap must not touch the engine: timers are armed on
    first attach and cancelled when the last attachment is removed, so an
    uninstalled chain leaks no events and does not skew pending()."""
    sim = Simulator()
    a, b, link, sink = wire(sim, bandwidth=1e8)
    before = sim.pending()
    flap = LinkFlap(sim, windows=[(0.010, 0.020), (0.030, 0.040)])
    chain = ImpairmentChain([flap])
    assert sim.pending() == before  # construction armed nothing
    link.a_to_b.set_impairments(chain)
    assert sim.pending() == before + 4  # one timer per window edge
    link.a_to_b.set_impairments(None)
    # Detach cancelled every armed timer: the engine drains with no
    # transitions and the stage never fires.
    sim.run()
    assert flap.transitions == 0


def test_link_flap_detach_cancels_future_windows_mid_run():
    sim = Simulator()
    a, b, link, sink = wire(sim, bandwidth=1e8)
    flap = LinkFlap(sim, windows=[(0.010, 0.020), (0.030, 0.040)])
    link.a_to_b.set_impairments(ImpairmentChain([flap]))
    # Swap the chain out after the first window has begun.
    sim.call_at(0.015, link.a_to_b.set_impairments, None)
    sim.call_at(0.035, a.send, packet())
    sim.run()
    # Only the first down edge fired; the up edge and second window were
    # cancelled, and the (detached) stage no longer filters traffic.
    assert flap.transitions == 1
    assert len(sink.deliveries) == 1


def test_link_flap_reattach_rearms_remaining_edges():
    sim = Simulator()
    a, b, link, sink = wire(sim, bandwidth=1e8)
    flap = LinkFlap(sim, windows=[(0.010, 0.020)])
    chain = ImpairmentChain([flap])
    link.a_to_b.set_impairments(chain)
    link.a_to_b.set_impairments(None)
    link.a_to_b.set_impairments(chain)  # re-attach before any edge
    sim.call_at(0.015, a.send, packet())
    sim.run()
    assert flap.transitions == 2
    assert link.a_to_b.drops == {"flap": 1}


# ------------------------------------------------------------- handover


def test_handover_outage_then_delay_step():
    from repro.simnet.impairments import Handover

    sim = Simulator()
    a, b, link, sink = wire(sim, bandwidth=1e8, delay=0.010)
    handover = Handover(sim, times=[0.050], outage_s=0.010,
                        delays=[0.002])
    link.a_to_b.set_impairments(ImpairmentChain([handover]))
    sim.call_at(0.055, a.send, packet())  # during the outage: dropped
    sim.call_at(0.070, a.send, packet())  # after re-acquire: short delay
    sim.run()
    assert handover.handovers == 1
    assert link.a_to_b.drops == {"handover": 1}
    assert link.a_to_b.delay_s == 0.002
    assert len(sink.deliveries) == 1
    t, _ = sink.deliveries[0]
    assert t == pytest.approx(0.070 + 1250 * 8 / 1e8 + 0.002)


def test_handover_reorder_burst_holds_first_packets():
    from repro.simnet.impairments import Handover

    sim = Simulator()
    a, b, link, sink = wire(sim, bandwidth=1e8, delay=0.001)
    handover = Handover(sim, times=[0.010], outage_s=0.005,
                        burst=2, hold_s=0.004)
    link.a_to_b.set_impairments(ImpairmentChain([handover]))
    for t in (0.016, 0.0165, 0.017):
        sim.call_at(t, a.send, packet())
    sim.run()
    # First two post-acquisition packets were held 4 ms; the third sailed
    # through and arrives first — the handover's reorder burst.
    assert len(sink.deliveries) == 3
    uids = [p.uid for _, p in sink.deliveries]
    assert uids[0] == max(uids)


def test_handover_single_attachment_point_enforced():
    from repro.simnet.impairments import Handover

    sim = Simulator()
    a, b, link, sink = wire(sim)
    handover = Handover(sim, times=[1.0], outage_s=0.1)
    link.a_to_b.set_impairments(ImpairmentChain([handover]))
    with pytest.raises(ConfigurationError, match="one"):
        link.b_to_a.set_impairments(ImpairmentChain([handover]))


def test_handover_detach_cancels_timers():
    from repro.simnet.impairments import Handover

    sim = Simulator()
    a, b, link, sink = wire(sim, delay=0.010)
    handover = Handover(sim, times=[0.050, 0.100], outage_s=0.010,
                        delays=[0.001])
    link.a_to_b.set_impairments(ImpairmentChain([handover]))
    sim.call_at(0.020, link.a_to_b.set_impairments, None)
    sim.run()
    assert handover.handovers == 0
    assert link.a_to_b.delay_s == 0.010  # never stepped


def test_handover_validation():
    from repro.simnet.impairments import Handover

    sim = Simulator()
    with pytest.raises(ConfigurationError):
        Handover(sim, times=[1.0, 1.0], outage_s=0.1)
    with pytest.raises(ConfigurationError):
        Handover(sim, times=[1.0], outage_s=0.0)
    with pytest.raises(ConfigurationError):
        Handover(sim, times=[1.0], outage_s=0.1, delays=[-0.1])
    with pytest.raises(ConfigurationError):
        Handover(sim, times=[1.0], outage_s=0.1, hold_s=-0.1)


def test_handover_spec_parse_build_and_tdf_scaling():
    sim = Simulator()
    spec = ImpairmentSpec.parse(
        "handover:every=2.0,count=3,outage=0.05,delays=0.03+0.05,hold=0.004"
    )
    assert spec.kind == "handover"
    assert spec.every_s == 2.0
    assert spec.count == 3
    assert spec.delays == (0.03, 0.05)
    stage = spec.build(sim, tdf=10).stages[0]
    assert stage.times == (20.0, 40.0, 60.0)
    assert stage.outage_s == pytest.approx(0.5)
    assert stage.delays == (pytest.approx(0.3), pytest.approx(0.5))
    assert stage.hold_s == pytest.approx(0.04)
    with pytest.raises(ConfigurationError):
        ImpairmentSpec.parse("handover:every=0")
    with pytest.raises(ConfigurationError):
        ImpairmentSpec.parse("handover:every=1.0,outage=2.0")
