"""Unit tests for schedule-driven dynamic links.

Covers the :mod:`repro.simnet.schedule` layer cake (entries, LinkSchedule,
ScheduleSpec, CSV traces, LEO synthesis) plus the two NIC bugfix
regressions the schedule work exposed: a mid-run delay *decrease* must not
reorder in-flight packets (FIFO clamp), and a mid-packet bandwidth change
must not re-time a serialisation already in progress.
"""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.errors import ConfigurationError
from repro.simnet.link import Link
from repro.simnet.node import Node
from repro.simnet.packet import Packet
from repro.simnet.schedule import (
    LinkSchedule,
    ScheduleEntry,
    ScheduleSpec,
    load_trace,
    synthesize_leo,
)


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.deliveries = []

    def deliver(self, packet):
        self.deliveries.append((self.sim.now, packet))


def wire(sim, bandwidth=1e6, delay=0.010):
    a = Node(sim, "a")
    b = Node(sim, "b")
    link = Link(sim, a, b, bandwidth, delay)
    a.set_route("b", link.a_to_b)
    b.set_route("a", link.b_to_a)
    sink = Sink(sim)
    b.register_protocol("raw", sink)
    return a, b, link, sink


def packet(size=1250):
    return Packet(src="a", dst="b", protocol="raw", size_bytes=size)


# -------------------------------------------------------- LinkSchedule


def test_schedule_applies_to_both_directions():
    sim = Simulator()
    a, b, link, sink = wire(sim, delay=0.010)
    LinkSchedule(sim, link, [
        ScheduleEntry(1.0, delay_s=0.030, bandwidth_bps=2e6),
        ScheduleEntry(2.0, up=False),
        ScheduleEntry(2.5, up=True),
    ])
    sim.run()
    for iface in (link.a_to_b, link.b_to_a):
        assert iface.delay_s == 0.030
        assert iface.bandwidth_bps == 2e6
        assert iface.up is True


def test_schedule_counts_applied_entries_and_change_pending():
    sim = Simulator()
    a, b, link, sink = wire(sim)
    schedule = LinkSchedule(sim, link, [
        ScheduleEntry(1.0, delay_s=0.020),
        ScheduleEntry(2.0, delay_s=0.005),
    ])
    assert schedule.change_pending
    assert not link.a_to_b.fluid_transparent()
    sim.run(until=1.5)
    assert schedule.applied == 1
    assert schedule.change_pending
    sim.run()
    assert schedule.applied == 2
    assert not schedule.change_pending


def test_schedule_down_drops_with_reason_and_no_reroute():
    sim = Simulator()
    a, b, link, sink = wire(sim, bandwidth=1e8, delay=0.001)
    LinkSchedule(sim, link, [
        ScheduleEntry(0.010, up=False),
        ScheduleEntry(0.020, up=True),
    ])
    for t in (0.005, 0.012, 0.018, 0.025):
        sim.call_at(t, a.send, packet())
    sim.run()
    assert len(sink.deliveries) == 2  # before the outage and after
    assert link.a_to_b.drops == {"down": 2}


def test_schedule_min_delay_covers_initial_and_scheduled_values():
    sim = Simulator()
    a, b, link, _ = wire(sim, delay=0.010)
    schedule = LinkSchedule(sim, link, [
        ScheduleEntry(1.0, delay_s=0.002),
        ScheduleEntry(2.0, delay_s=0.050),
    ])
    assert schedule.min_delay_s == 0.002
    assert link.a_to_b.min_delay_s() == 0.002
    assert link.b_to_a.min_delay_s() == 0.002


def test_schedule_validation():
    sim = Simulator()
    a, b, link, _ = wire(sim)
    with pytest.raises(ConfigurationError, match="at least one entry"):
        LinkSchedule(sim, link, [])
    with pytest.raises(ConfigurationError, match="strictly increasing"):
        LinkSchedule(sim, link, [ScheduleEntry(1.0), ScheduleEntry(1.0)])
    with pytest.raises(ConfigurationError, match="non-negative"):
        LinkSchedule(sim, link, [ScheduleEntry(1.0, delay_s=-0.1)])
    with pytest.raises(ConfigurationError, match="positive"):
        LinkSchedule(sim, link, [ScheduleEntry(1.0, bandwidth_bps=0.0)])
    sim.run(until=1.0)
    with pytest.raises(ConfigurationError, match="in the past"):
        LinkSchedule(sim, link, [ScheduleEntry(0.5, delay_s=0.01)])


def test_second_schedule_on_same_link_refused():
    sim = Simulator()
    a, b, link, _ = wire(sim)
    LinkSchedule(sim, link, [ScheduleEntry(1.0, delay_s=0.02)])
    with pytest.raises(ConfigurationError, match="already has a schedule"):
        LinkSchedule(sim, link, [ScheduleEntry(2.0, delay_s=0.03)])


def test_cancel_releases_interfaces_and_timers():
    sim = Simulator()
    a, b, link, _ = wire(sim)
    before = sim.pending()
    schedule = LinkSchedule(sim, link, [
        ScheduleEntry(1.0, delay_s=0.020),
        ScheduleEntry(2.0, delay_s=0.030),
    ])
    schedule.cancel()
    assert link.a_to_b.schedule is None
    assert link.b_to_a.schedule is None
    assert not schedule.change_pending
    sim.run()
    assert link.a_to_b.delay_s == 0.010  # nothing fired
    assert sim.pending() == before
    # Released link can be rescheduled.
    LinkSchedule(sim, link, [ScheduleEntry(3.0, delay_s=0.040)])


# ------------------------------------------------ FIFO clamp regression


def test_delay_decrease_does_not_reorder_in_flight_packets():
    """A scheduled delay drop must not let later packets overtake earlier
    ones already propagating (dummynet clamps arrivals; so do we)."""
    sim = Simulator()
    # 10 ms serialisation per packet, 100 ms propagation.
    a, b, link, sink = wire(sim, bandwidth=1e6, delay=0.100)
    # Delay collapses to 1 ms while the first packets are still in flight.
    LinkSchedule(sim, link, [ScheduleEntry(0.015, delay_s=0.001)])
    for _ in range(3):
        a.send(packet())
    sim.run()
    times = [t for t, _ in sink.deliveries]
    seqs = [p.uid for _, p in sink.deliveries]
    # FIFO preserved: uids in send order, arrivals non-decreasing.
    assert seqs == sorted(seqs)
    assert times == sorted(times)
    # First packet: 10 ms serialise + 100 ms propagate. Second finishes
    # serialising at 20 ms, after the step, and would arrive at 21 ms —
    # the clamp holds it to the first packet's 110 ms arrival.
    assert times[0] == pytest.approx(0.110)
    assert times[1] == pytest.approx(0.110)
    # Third keeps the short delay once the pipe has drained: 30 ms + 1 ms
    # would be 31 ms, clamped to 110 ms as well.
    assert times[2] == pytest.approx(0.110)


def test_clamp_never_binds_under_constant_delay():
    """The static path is bit-identical: with a constant delay the clamp
    is inert and delivery times match the classic pipeline schedule."""
    sim = Simulator()
    a, b, link, sink = wire(sim, bandwidth=1e6, delay=0.100)
    for _ in range(2):
        a.send(packet())
    sim.run()
    times = [t for t, _ in sink.deliveries]
    assert times == pytest.approx([0.110, 0.120])


# ------------------------------------- bandwidth mid-packet regression


def test_bandwidth_change_mid_packet_keeps_old_rate_for_in_flight():
    """A rate step never re-times a serialisation in progress: the wire
    hold was computed at transmit start; the new rate applies from the
    next dequeue."""
    sim = Simulator()
    # 1250 B at 1 Mbps = 10 ms serialisation; zero propagation for clarity.
    a, b, link, sink = wire(sim, bandwidth=1e6, delay=0.0)
    # Rate doubles at t=5 ms, halfway through the first packet's hold.
    LinkSchedule(sim, link, [ScheduleEntry(0.005, bandwidth_bps=2e6)])
    a.send(packet())
    a.send(packet())
    sim.run()
    times = [t for t, _ in sink.deliveries]
    # First packet still completes at 10 ms (old rate); the second
    # serialises at 2 Mbps (5 ms) and completes at 15 ms.
    assert times == pytest.approx([0.010, 0.015])


def test_bandwidth_increase_applies_from_next_enqueue_when_idle():
    sim = Simulator()
    a, b, link, sink = wire(sim, bandwidth=1e6, delay=0.0)
    LinkSchedule(sim, link, [ScheduleEntry(0.020, bandwidth_bps=4e6)])
    a.send(packet())                       # 10 ms at the old rate
    sim.call_at(0.030, a.send, packet())   # 2.5 ms at the new rate
    sim.run()
    times = [t for t, _ in sink.deliveries]
    assert times == pytest.approx([0.010, 0.0325])


# ------------------------------------------------------------ CSV trace


def test_load_trace_parses_header_comments_and_sparse_cells(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text(
        "t_s,delay_s,bandwidth_bps,up\n"
        "# handover trace\n"
        "0.5,0.030,,\n"
        "1.0,,2000000,down\n"
        "\n"
        "1.5,0.020,,up\n"
    )
    entries = load_trace(str(path))
    assert entries == (
        ScheduleEntry(0.5, 0.030, None, None),
        ScheduleEntry(1.0, None, 2000000.0, False),
        ScheduleEntry(1.5, 0.020, None, True),
    )


def test_load_trace_rejects_bad_rows(tmp_path):
    bad_time = tmp_path / "bad_time.csv"
    bad_time.write_text("0.5,0.03\nnope,0.04\n")
    with pytest.raises(ConfigurationError, match="bad timestamp"):
        load_trace(str(bad_time))
    bad_up = tmp_path / "bad_up.csv"
    bad_up.write_text("0.5,0.03,,sideways\n")
    with pytest.raises(ConfigurationError, match="bad liveness"):
        load_trace(str(bad_up))
    empty = tmp_path / "empty.csv"
    empty.write_text("# nothing\n")
    with pytest.raises(ConfigurationError, match="no entries"):
        load_trace(str(empty))


# --------------------------------------------------------- LEO synthesis


def test_synthesize_leo_shape():
    entries = synthesize_leo(0.020, period_s=2.0, count=2, outage_s=0.05,
                             amplitude=0.5)
    # Two handovers, two entries each: dark, then re-acquire.
    assert len(entries) == 4
    assert entries[0] == ScheduleEntry(2.0, up=False)
    assert entries[1].at_s == pytest.approx(2.05)
    assert entries[1].delay_s == pytest.approx(0.030)  # 1 + 0.5*1.0
    assert entries[1].up is True
    assert entries[2] == ScheduleEntry(4.0, up=False)
    assert entries[3].delay_s == pytest.approx(0.015)  # 1 + 0.5*(-0.5)


def test_synthesize_leo_bandwidth_dip_alternates():
    entries = synthesize_leo(0.020, period_s=1.0, count=2, outage_s=0.1,
                             bandwidth_bps=8e6, dip=0.5)
    acquires = [e for e in entries if e.up]
    assert acquires[0].bandwidth_bps == pytest.approx(4e6)  # dipped beam
    assert acquires[1].bandwidth_bps == pytest.approx(8e6)  # restored


def test_synthesize_leo_validation():
    with pytest.raises(ConfigurationError):
        synthesize_leo(0.02, period_s=0.0, count=1, outage_s=0.05)
    with pytest.raises(ConfigurationError):
        synthesize_leo(0.02, period_s=1.0, count=1, outage_s=1.5)
    with pytest.raises(ConfigurationError):
        synthesize_leo(0.02, period_s=1.0, count=0, outage_s=0.05)
    with pytest.raises(ConfigurationError):
        synthesize_leo(0.02, period_s=1.0, count=1, outage_s=0.05,
                       amplitude=2.5)


# ---------------------------------------------------------- ScheduleSpec


def test_spec_parse_round_trip():
    spec = ScheduleSpec.parse("leo:period=1.5,count=4,outage=0.08,amp=0.25,"
                              "dip=0.6")
    assert spec == ScheduleSpec(kind="leo", period_s=1.5, count=4,
                                outage_s=0.08, amplitude=0.25, dip=0.6)
    assert ScheduleSpec.parse("leo") == ScheduleSpec(kind="leo")
    csv = ScheduleSpec.parse("csv:path=traces/starlink.csv")
    assert csv.kind == "csv" and csv.path == "traces/starlink.csv"


def test_spec_parse_rejects_unknown_kind_and_option():
    with pytest.raises(ConfigurationError, match="unknown schedule kind"):
        ScheduleSpec.parse("geo")
    with pytest.raises(ConfigurationError, match="unknown schedule option"):
        ScheduleSpec.parse("leo:phase=3")
    with pytest.raises(ConfigurationError, match="path"):
        ScheduleSpec.parse("csv")


def test_spec_horizon():
    assert ScheduleSpec.parse("leo:period=2.0,count=3,outage=0.05") \
        .horizon_s() == pytest.approx(6.05)


def test_spec_build_scales_instants_delays_and_bandwidths_by_tdf():
    """The virtual trace is TDF-portable: instants and delays multiply by
    the factor, bandwidths divide — exactly the physical_for scaling."""
    spec = ScheduleSpec(kind="leo", period_s=2.0, count=1, outage_s=0.05,
                        amplitude=0.5, dip=0.5)
    schedules = {}
    for tdf in (1, 10):
        sim = Simulator()
        # The physical link for this TDF: perceived 8 Mbps / 20 ms.
        a, b, link, _ = wire(sim, bandwidth=8e6 / tdf, delay=0.020 * tdf)
        schedules[tdf] = spec.build(link, tdf=tdf)
    base, dilated = schedules[1].entries, schedules[10].entries
    assert len(base) == len(dilated) == 2
    for b_entry, d_entry in zip(base, dilated):
        assert d_entry.at_s == pytest.approx(b_entry.at_s * 10)
        if b_entry.delay_s is not None:
            assert d_entry.delay_s == pytest.approx(b_entry.delay_s * 10)
        if b_entry.bandwidth_bps is not None:
            assert d_entry.bandwidth_bps == pytest.approx(
                b_entry.bandwidth_bps / 10
            )
        assert d_entry.up == b_entry.up
    # The perceived values the dilated entries encode match the baseline.
    assert dilated[1].delay_s / 10 == pytest.approx(base[1].delay_s)


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        ScheduleSpec(kind="leo", period_s=-1.0)
    with pytest.raises(ConfigurationError):
        ScheduleSpec(kind="leo", outage_s=5.0)  # outage >= period
    with pytest.raises(ConfigurationError):
        ScheduleSpec(kind="leo", dip=0.0)
    with pytest.raises(ConfigurationError):
        ScheduleSpec(kind="csv")


def test_spec_is_canonically_hashable():
    """ScheduleSpec must ride in cell kwargs: frozen dataclass, canonical
    serialisation stable, distinct specs produce distinct tokens."""
    from repro.harness.runner import canonical

    a = canonical(ScheduleSpec(kind="leo", count=3))
    b = canonical(ScheduleSpec(kind="leo", count=3))
    c = canonical(ScheduleSpec(kind="leo", count=4))
    assert a == b
    assert a != c
