"""Unit tests for the token bucket and shaped interfaces."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.errors import ConfigurationError
from repro.simnet.link import Link
from repro.simnet.node import Node
from repro.simnet.packet import Packet
from repro.simnet.shaper import ShapedInterface, TokenBucket


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(Simulator(), 1000, 5000)
        assert bucket.tokens == 5000

    def test_consume_and_refill(self):
        sim = Simulator()
        bucket = TokenBucket(sim, rate_bytes_per_s=1000, burst_bytes=5000)
        assert bucket.try_consume(5000)
        assert not bucket.try_consume(1)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert bucket.tokens == pytest.approx(2000)

    def test_refill_caps_at_burst(self):
        sim = Simulator()
        bucket = TokenBucket(sim, 1000, 5000)
        sim.schedule(100.0, lambda: None)
        sim.run()
        assert bucket.tokens == 5000

    def test_time_until(self):
        sim = Simulator()
        bucket = TokenBucket(sim, 1000, 5000)
        bucket.consume(5000)
        assert bucket.time_until(1000) == pytest.approx(1.0)
        assert bucket.time_until(0) == 0.0

    def test_overdraft_rejected(self):
        bucket = TokenBucket(Simulator(), 1000, 5000)
        with pytest.raises(ConfigurationError):
            bucket.consume(6000)

    @pytest.mark.parametrize("rate,burst", [(0, 100), (-1, 100), (100, 0)])
    def test_validation(self, rate, burst):
        with pytest.raises(ConfigurationError):
            TokenBucket(Simulator(), rate, burst)


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.times = []

    def deliver(self, packet):
        self.times.append(self.sim.now)


class TestShapedInterface:
    def build(self, shaper_rate_bytes, burst=None):
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        link = Link(sim, a, b, bandwidth_bps=1e9, delay_s=0.0)  # fast wire
        shaped = ShapedInterface(sim, link.a_to_b, shaper_rate_bytes, burst)
        a.set_route("b", shaped)
        sink = Sink(sim)
        b.register_protocol("raw", sink)
        return sim, a, shaped, sink

    def test_burst_passes_immediately(self):
        sim, a, shaped, sink = self.build(shaper_rate_bytes=1000, burst=5000)
        for _ in range(5):
            a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1000))
        sim.run()
        # All five fit the initial burst; arrive back-to-back at wire speed.
        assert len(sink.times) == 5
        assert sink.times[-1] < 0.001

    def test_sustained_rate_enforced(self):
        sim, a, shaped, sink = self.build(shaper_rate_bytes=1000, burst=1000)
        for _ in range(5):
            a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1000))
        sim.run()
        # First packet uses the initial burst; each further packet waits a
        # full second of token accumulation.
        assert len(sink.times) == 5
        gaps = [b - a for a, b in zip(sink.times, sink.times[1:])]
        for gap in gaps:
            assert gap == pytest.approx(1.0, rel=0.01)

    def test_backlog_counter(self):
        sim, a, shaped, sink = self.build(shaper_rate_bytes=1000, burst=1000)
        for _ in range(3):
            a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1000))
        assert shaped.backlog == 2  # one consumed the burst, two wait
        sim.run()
        assert shaped.backlog == 0
        assert shaped.shaped_packets == 3

    def test_default_burst_sized_from_rate(self):
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        link = Link(sim, a, b, 1e9, 0.0)
        shaped = ShapedInterface(sim, link.a_to_b, 1_000_000)
        assert shaped.bucket.burst == pytest.approx(10_000)  # 10 ms worth

    def test_finite_backlog_drops_excess(self):
        sim, a, shaped, sink = self.build(shaper_rate_bytes=1000, burst=1000)
        shaped.max_backlog_packets = 2
        for _ in range(10):
            a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1000))
        assert shaped.dropped_packets == 7  # 1 in flight + 2 queued kept
        sim.run()
        assert len(sink.times) == 3

    def test_no_event_pingpong_at_token_boundaries(self):
        """Float residue in the lazy refill must not generate storms of
        sub-nanosecond resume events (regression test)."""
        sim, a, shaped, sink = self.build(shaper_rate_bytes=125_000, burst=3000)
        for _ in range(100):
            a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=997))
        sim.run()
        assert len(sink.times) == 100
        # ~1 enqueue + ~1 resume + 2 link events per packet; a ping-pong
        # regression would be tens of thousands.
        assert sim.events_processed < 1000


class TestShaperDropTaxonomy:
    """Backlog-overflow drops must be first-class taxonomy citizens."""

    def build(self):
        sim = Simulator()
        a, b = Node(sim, "a"), Node(sim, "b")
        link = Link(sim, a, b, bandwidth_bps=1e9, delay_s=0.0)
        shaped = ShapedInterface(sim, link.a_to_b, 1000, 1000)
        shaped.max_backlog_packets = 2
        a.set_route("b", shaped)
        sink = Sink(sim)
        b.register_protocol("raw", sink)
        return sim, a, shaped, sink

    def test_overflow_charged_to_interface_taxonomy(self):
        sim, a, shaped, sink = self.build()
        for _ in range(10):
            a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1000))
        # Legacy attribute still counts (1 in flight + 2 queued kept).
        assert shaped.dropped_packets == 7
        # ...and the same drops land in the wrapped interface's taxonomy
        # under the "shaper" reason, mirrored into the engine counters.
        assert shaped.interface.drops == {"shaper": 7}
        assert shaped.interface.total_drops == 7
        assert sim.counters["drop.shaper"] == 7
        sim.run()
        assert len(sink.times) == 3

    def test_overflow_visible_to_flow_monitor(self):
        from repro.stats.flows import FlowMonitor

        sim, a, shaped, sink = self.build()
        monitor = FlowMonitor()
        monitor.watch(shaped.interface)
        for _ in range(10):
            a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1000))
        sim.run()
        assert monitor.drops_by_reason() == {"shaper": 7}
        assert monitor.interface_drops()[shaped.interface.name] == {"shaper": 7}
        assert monitor.total_drops() == 7

    def test_no_overflow_no_taxonomy_entry(self):
        sim, a, shaped, sink = self.build()
        a.send(Packet(src="a", dst="b", protocol="raw", size_bytes=1000))
        sim.run()
        assert shaped.dropped_packets == 0
        assert shaped.interface.drops == {}
        assert "drop.shaper" not in sim.counters
