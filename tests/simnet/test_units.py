"""Unit tests for unit helpers and quantity parsing."""

import pytest

from repro.simnet import units


def test_time_helpers():
    assert units.usec(5) == pytest.approx(5e-6)
    assert units.ms(40) == pytest.approx(0.040)
    assert units.seconds(3) == 3.0
    assert units.minutes(2) == 120.0


def test_rate_helpers():
    assert units.kbps(56) == 56_000
    assert units.mbps(100) == 100_000_000
    assert units.gbps(10) == 10_000_000_000


def test_size_helpers():
    assert units.kib(4) == 4096
    assert units.mib(1) == 1_048_576
    assert units.bytes_to_bits(100) == 800
    assert units.bits_to_bytes(800) == 100


@pytest.mark.parametrize(
    "text,expected",
    [
        ("100Mbps", 100e6),
        ("1.5gbps", 1.5e9),
        ("56 Kbps", 56e3),
        ("9600bps", 9600.0),
    ],
)
def test_parse_rate(text, expected):
    assert units.parse_rate(text) == pytest.approx(expected)


@pytest.mark.parametrize(
    "text,expected",
    [
        ("40ms", 0.040),
        ("1.5s", 1.5),
        ("250us", 250e-6),
        ("2 min", 120.0),
    ],
)
def test_parse_time(text, expected):
    assert units.parse_time(text) == pytest.approx(expected)


@pytest.mark.parametrize("bad", ["", "Mbps", "100", "100 furlongs", "-5Mbps"])
def test_parse_rate_rejects_garbage(bad):
    with pytest.raises(ValueError):
        units.parse_rate(bad)


@pytest.mark.parametrize("bad", ["", "ms", "10 lightyears"])
def test_parse_time_rejects_garbage(bad):
    with pytest.raises(ValueError):
        units.parse_time(bad)


def test_format_rate_picks_natural_unit():
    assert units.format_rate(12_000_000_000) == "12.00 Gbps"
    assert units.format_rate(100_000_000) == "100.00 Mbps"
    assert units.format_rate(56_000) == "56.00 Kbps"
    assert units.format_rate(300) == "300.00 bps"


def test_format_time_picks_natural_unit():
    assert units.format_time(2.5) == "2.500 s"
    assert units.format_time(0.040) == "40.000 ms"
    assert units.format_time(2e-5) == "20.0 us"


def test_parse_format_roundtrip():
    assert units.parse_rate(units.format_rate(units.mbps(250)).replace(" ", "")) == units.mbps(250)
