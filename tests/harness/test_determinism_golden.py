"""Golden determinism pins for the event engine's fast path.

The engine optimisations (reschedule re-keying, heap compaction, transient
event pooling) are only admissible if they are *invisible*: a seeded run
must execute the same events in the same order as before. These tests pin
two representative workloads — a Figure 3 bulk-TCP point and the Figure 9
BitTorrent swarm, each at TDF 1 and TDF 10 — to golden values captured
from the pre-optimisation engine.

``events_processed`` is the strictest fingerprint: any change to event
ordering, timer arming, or packet-chain structure shifts it. The goldens
are exact; the float comparisons allow only accumulated-rounding headroom
(1e-9 relative), far below any behavioural change.

If a deliberate protocol/workload change invalidates these numbers,
recapture them with the same recipe below and update the goldens in the
same commit — never loosen the tolerances.
"""

import pytest

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bittorrent, run_bulk
from repro.simnet.units import mbps, ms

# Captured from the seed engine (lazy-deletion heap, cancel-and-recreate
# timers) on the exact recipes below; the fast-path engine must reproduce
# them bit-for-bit.
FIG3_GOLDEN = {
    1: {
        "goodput_bps": 89938824.0,
        "delivered_bytes": 44969412,
        "retransmits": 367,
        "timeouts": 0,
        "srtt": 0.04195796511672792,
        "segments_sent": 67528,
        "events_processed": 608972,
    },
    10: {
        "goodput_bps": 89938824.0,
        "delivered_bytes": 44969412,
        "retransmits": 367,
        "timeouts": 0,
        "srtt": 0.0419579651166874,
        "segments_sent": 67528,
        "events_processed": 608972,
    },
}

# Recaptured for the swarm-at-scale protocol changes (announce retry with
# backoff, Have suppression, incremental rarest-first bookkeeping) with
# the same recipe; the numbers pin the *new* deliberate behaviour.
FIG9_GOLDEN = {
    1: {
        "download_times_s": [
            11.103410400000252, 11.359341600000183, 11.90994320000046,
            12.25878320000053, 12.438618400000715, 12.565406400000557,
            12.70218160000083, 16.902353600000847, 17.090708800000805,
            17.20430240000093, 17.287130400000954, 17.650041600001003,
        ],
        "completed": 12,
        "seed_uploaded_bytes": 7733248,
        "total_downloaded_bytes": 25165824,
        "events_processed": 168288,
    },
    10: {
        "download_times_s": [
            10.784804800000005, 11.091737599999997, 11.375815999999983,
            11.548040800000008, 12.721678399999984, 13.208117599999948,
            13.330799999999948, 13.514287199999941, 15.383483999999996,
            17.106747200000015, 19.017360800000024, 19.498648800000026,
        ],
        "completed": 12,
        "seed_uploaded_bytes": 7602176,
        "total_downloaded_bytes": 25165824,
        "events_processed": 167816,
    },
}


@pytest.mark.parametrize("tdf", [1, 10])
def test_fig3_bulk_point_matches_golden(tdf):
    golden = FIG3_GOLDEN[tdf]
    result = run_bulk(
        NetworkProfile.from_rtt(mbps(100), ms(40)),
        tdf,
        duration_s=6.0,
        warmup_s=2.0,
    )
    assert result.events_processed == golden["events_processed"]
    assert result.delivered_bytes == golden["delivered_bytes"]
    assert result.retransmits == golden["retransmits"]
    assert result.timeouts == golden["timeouts"]
    assert result.segments_sent == golden["segments_sent"]
    assert result.goodput_bps == pytest.approx(
        golden["goodput_bps"], rel=1e-9
    )
    assert result.srtt == pytest.approx(golden["srtt"], rel=1e-9)


@pytest.mark.parametrize("tdf", [1, 10])
def test_fig9_swarm_matches_golden(tdf):
    golden = FIG9_GOLDEN[tdf]
    result = run_bittorrent(
        perceived_leaf=NetworkProfile.from_rtt(mbps(10), ms(20)),
        tdf=tdf,
        leechers=12,
        file_bytes=2 << 20,
        seed=777,
    )
    assert result.events_processed == golden["events_processed"]
    assert result.completed == golden["completed"]
    assert result.seed_uploaded_bytes == golden["seed_uploaded_bytes"]
    assert result.total_downloaded_bytes == golden["total_downloaded_bytes"]
    assert result.download_times_s == pytest.approx(
        golden["download_times_s"], rel=1e-9
    )
