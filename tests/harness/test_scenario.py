"""Tests for the declarative scenario builder."""

import pytest

from repro.harness.scenario import build_scenario
from repro.simnet.errors import ConfigurationError
from tests.helpers import Collector


BASIC = {
    "links": [
        {"a": "client", "b": "server", "bandwidth": "10Mbps", "delay": "5ms"},
    ],
    "vms": [
        {"node": "client", "tdf": 10, "cpu_share": 0.5},
        {"node": "server", "tdf": 10, "cpu_share": 0.5},
    ],
}


def test_nodes_created_from_links():
    scenario = build_scenario(BASIC)
    assert scenario.node("client").name == "client"
    assert scenario.node("server").name == "server"
    assert len(scenario.links) == 1


def test_vms_dilate_their_nodes():
    scenario = build_scenario(BASIC)
    vm = scenario.vm("client")
    assert float(vm.tdf) == 10.0
    assert scenario.node("client").clock is vm.clock


def test_string_and_numeric_quantities():
    scenario = build_scenario({
        "links": [{"a": "x", "b": "y", "bandwidth": 5e6, "delay": 0.001}],
    })
    interface = scenario.links[0].a_to_b
    assert interface.bandwidth_bps == 5e6
    assert interface.delay_s == 0.001


def test_queue_override():
    scenario = build_scenario({
        "links": [{"a": "x", "b": "y", "bandwidth": "1Mbps",
                   "delay": "1ms", "queue": 7}],
    })
    assert scenario.links[0].a_to_b.queue.capacity_packets == 7


def test_end_to_end_transfer_through_scenario():
    scenario = build_scenario(BASIC)
    events = Collector()
    scenario.tcp("server").listen(80, events.on_accept, on_data=events.on_data)
    scenario.tcp("client").connect("server", 80).send(100_000)
    scenario.run(until=2.0, virtual="server")  # 2 virtual = 20 physical s
    assert events.total_bytes == 100_000


def test_stacks_are_cached():
    scenario = build_scenario(BASIC)
    assert scenario.tcp("client") is scenario.tcp("client")
    assert scenario.udp("client") is scenario.udp("client")


def test_run_physical_time():
    scenario = build_scenario(BASIC)
    scenario.run(until=1.5)
    assert scenario.sim.now == pytest.approx(1.5)


@pytest.mark.parametrize(
    "bad",
    [
        {},
        {"links": []},
        {"links": [{"a": "x", "b": "y", "bandwidth": "1Mbps"}]},  # no delay
        {"links": [{"a": "x", "b": "y", "bandwidth": "1Mbps",
                    "delay": "1ms"}], "mystery": True},
        {"links": [{"a": "x", "b": "y", "bandwidth": "1Mbps",
                    "delay": "1ms"}], "vms": [{"tdf": 2}]},  # no node
    ],
)
def test_validation(bad):
    with pytest.raises(ConfigurationError):
        build_scenario(bad)


def test_vm_lookup_for_undilated_node_raises():
    scenario = build_scenario({
        "links": [{"a": "x", "b": "y", "bandwidth": "1Mbps", "delay": "1ms"}],
    })
    with pytest.raises(KeyError):
        scenario.vm("x")
