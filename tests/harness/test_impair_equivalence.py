"""Dilation equivalence over lossy paths — the issue's acceptance matrix.

A TDF-k guest over an impaired physical path must reproduce the scaled
baseline's goodput and retransmit counts. Per-packet impairment decisions
are drawn from a seeded RNG in packet-arrival order — never from the
clock — so the dilated run and its baseline face the identical loss
pattern and the comparison comes out *bit-exact*, far inside the 5%
acceptance tolerance. The assertions below still use the 5% bar (the
stated acceptance criterion) plus equality checks on the discrete
counters, which is the stronger claim the substrate actually delivers.

CI runs this module as the impairment tier: the seeded matrix is
{Bernoulli, Gilbert–Elliott} × {TDF 1 (baseline), 5, 10}.

Set ``REPRO_TRACE_ARTIFACTS=<dir>`` to get a first-divergence artifact on
equivalence failure: the failing pair is re-run with a flight recorder at
the bottleneck, both recordings are saved as JSONL, and a
``repro-trace diff``-style report locates the first divergent event.
"""

import os

import pytest

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import relative_error, run_bulk
from repro.simnet.impairments import ImpairmentSpec
from repro.simnet.units import mbps, ms

PERCEIVED = NetworkProfile.from_rtt(mbps(20), ms(40))

SPECS = {
    "bernoulli": ImpairmentSpec(kind="bernoulli", rate=0.01, seed=42),
    # Same 1% stationary loss rate, concentrated into 4-packet bursts.
    "gilbert": ImpairmentSpec(kind="gilbert", rate=0.01, burst=4.0, seed=42),
}

_BASELINES = {}


def _run(model, tdf):
    return run_bulk(PERCEIVED, tdf, duration_s=1.5, warmup_s=0.25,
                    impair=SPECS[model])


def _baseline(model):
    if model not in _BASELINES:
        _BASELINES[model] = _run(model, 1)
    return _BASELINES[model]


@pytest.mark.parametrize("model", sorted(SPECS))
def test_impairment_actually_bites(model):
    base = _baseline(model)
    assert base.bottleneck_drops.get("loss", 0) > 0
    assert base.retransmits > 0


def _write_trace_artifact(model, tdf):
    """Opt-in failure artifact: re-run the failing pair traced and diff.

    Returns the report path, or None when ``REPRO_TRACE_ARTIFACTS`` is
    unset. The re-run is deterministic, so the traced recordings show the
    same divergence the aggregate assertions tripped on — but located at
    the first differing event instead of summed over the whole run.
    """
    out_dir = os.environ.get("REPRO_TRACE_ARTIFACTS")
    if not out_dir:
        return None
    from repro.trace.diff import diff_traces
    from repro.trace.events import save_jsonl
    from repro.trace.spec import TraceSpec

    spec = TraceSpec(point="bottleneck", tcp=True)
    base = run_bulk(PERCEIVED, 1, duration_s=1.5, warmup_s=0.25,
                    impair=SPECS[model], trace=spec)
    dilated = run_bulk(PERCEIVED, tdf, duration_s=1.5, warmup_s=0.25,
                       impair=SPECS[model], trace=spec)
    os.makedirs(out_dir, exist_ok=True)
    path_a = os.path.join(out_dir, f"{model}-tdf{tdf}.jsonl")
    path_b = os.path.join(out_dir, f"{model}-baseline.jsonl")
    save_jsonl(dilated.trace_events, path_a)
    save_jsonl(base.trace_events, path_b)
    report = diff_traces(dilated.trace_events, base.trace_events).render(
        label_a=f"tdf{tdf}", label_b="baseline"
    )
    report_path = os.path.join(out_dir, f"{model}-tdf{tdf}.diff.txt")
    with open(report_path, "w", encoding="utf-8") as handle:
        handle.write(report + "\n")
    return report_path


@pytest.mark.parametrize("model", sorted(SPECS))
@pytest.mark.parametrize("tdf", [5, 10])
def test_lossy_equivalence(model, tdf):
    base = _baseline(model)
    dilated = _run(model, tdf)
    try:
        # Acceptance bar: within 5%.
        assert relative_error(dilated.goodput_bps, base.goodput_bps) <= 0.05
        assert relative_error(dilated.retransmits, base.retransmits) <= 0.05
        # What the deterministic substrate actually delivers: identity.
        assert dilated.delivered_bytes == base.delivered_bytes
        assert dilated.retransmits == base.retransmits
        assert dilated.bottleneck_drops == base.bottleneck_drops
        assert dilated.dupacks == base.dupacks
        assert dilated.fast_recoveries == base.fast_recoveries
        assert dilated.events_processed == base.events_processed
    except AssertionError as error:
        artifact = _write_trace_artifact(model, tdf)
        if artifact is not None:
            pytest.fail(f"{error}\nfirst-divergence artifact: {artifact}")
        raise


@pytest.mark.parametrize("model", sorted(SPECS))
def test_lossy_runs_are_deterministic_per_seed(model):
    once = _run(model, 5)
    again = _run(model, 5)
    assert once.delivered_bytes == again.delivered_bytes
    assert once.retransmits == again.retransmits
    assert once.events_processed == again.events_processed
    # A different seed produces a different loss pattern.
    other = run_bulk(
        PERCEIVED, 5, duration_s=1.5, warmup_s=0.25,
        impair=ImpairmentSpec(kind=SPECS[model].kind, rate=0.01,
                              burst=4.0, seed=43),
    )
    assert other.bottleneck_drops != once.bottleneck_drops or \
        other.delivered_bytes != once.delivered_bytes


def test_burst_loss_hurts_differently_than_random_loss():
    """Equal average rate, different texture — the models are genuinely
    distinct traffic shapes, not two labels for the same thing."""
    bern = _baseline("bernoulli")
    ge = _baseline("gilbert")
    assert bern.bottleneck_drops != ge.bottleneck_drops


def test_corruption_equivalence_and_checksum_visibility():
    """Corruption burns wire time then dies at the receiver's checksum;
    it must also reproduce exactly under dilation."""
    spec = ImpairmentSpec(kind="corrupt", rate=0.01, seed=7)
    base = run_bulk(PERCEIVED, 1, duration_s=1.5, warmup_s=0.25, impair=spec)
    dilated = run_bulk(PERCEIVED, 10, duration_s=1.5, warmup_s=0.25,
                       impair=spec)
    assert base.checksum_drops > 0
    assert dilated.checksum_drops == base.checksum_drops
    assert dilated.delivered_bytes == base.delivered_bytes
    assert dilated.retransmits == base.retransmits
