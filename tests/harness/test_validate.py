"""Tests for the user-facing equivalence validator."""

import pytest

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bulk
from repro.harness.validate import assert_equivalent, check_equivalent
from repro.simnet.units import mbps, ms


def bulk_runner(perceived, tdf):
    result = run_bulk(perceived, tdf, duration_s=1.5, warmup_s=0.25)
    return {
        "goodput_bps": result.goodput_bps,
        "segments": result.segments_sent,
        "per_flow": result.per_flow_goodput_bps,
    }


def test_good_workload_passes():
    report = assert_equivalent(
        bulk_runner, NetworkProfile.from_rtt(mbps(10), ms(20)), tdf=10,
    )
    assert report.passed
    assert "ok" in report.summary()


def test_broken_workload_fails_with_report():
    def physical_time_runner(perceived, tdf):
        # A "workload" that (incorrectly) reports physical time: obviously
        # not dilation-safe.
        result = run_bulk(perceived, tdf, duration_s=1.0)
        return {"physical_goodput": result.goodput_bps / float(tdf)}

    with pytest.raises(AssertionError) as excinfo:
        assert_equivalent(
            physical_time_runner,
            NetworkProfile.from_rtt(mbps(10), ms(20)),
            tdf=10,
        )
    assert "physical_goodput" in str(excinfo.value)
    assert "FAIL" in str(excinfo.value)


def test_check_does_not_raise():
    def noisy_runner(perceived, tdf):
        return {"value": 1.0 if float(tdf) == 1 else 1.5}

    report = check_equivalent(
        noisy_runner, NetworkProfile.from_rtt(mbps(10), ms(20)), tdf=10,
    )
    assert not report.passed
    assert len(report.failures()) == 1
    assert report.failures()[0].name == "value"


def test_list_metrics_compared_elementwise():
    def runner(perceived, tdf):
        return {"shares": [1.0, 2.0, 3.0]}

    report = check_equivalent(
        runner, NetworkProfile.from_rtt(mbps(10), ms(20)), tdf=10,
    )
    assert report.passed


def test_mismatched_list_lengths_fail():
    calls = {"n": 0}

    def runner(perceived, tdf):
        calls["n"] += 1
        return {"xs": [1.0] * calls["n"]}

    report = check_equivalent(
        runner, NetworkProfile.from_rtt(mbps(10), ms(20)), tdf=10,
    )
    assert not report.passed


def test_differing_metric_sets_rejected():
    calls = {"n": 0}

    def runner(perceived, tdf):
        calls["n"] += 1
        return {"a": 1.0} if calls["n"] == 1 else {"b": 1.0}

    with pytest.raises(ValueError):
        check_equivalent(
            runner, NetworkProfile.from_rtt(mbps(10), ms(20)), tdf=10,
        )
