"""Tests for the user-facing equivalence validator."""

import math

import pytest

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bulk
from repro.harness.validate import (
    assert_equivalent,
    check_equivalent,
    compare_metrics,
)
from repro.simnet.units import mbps, ms


def bulk_runner(perceived, tdf):
    result = run_bulk(perceived, tdf, duration_s=1.5, warmup_s=0.25)
    return {
        "goodput_bps": result.goodput_bps,
        "segments": result.segments_sent,
        "per_flow": result.per_flow_goodput_bps,
    }


def test_good_workload_passes():
    report = assert_equivalent(
        bulk_runner, NetworkProfile.from_rtt(mbps(10), ms(20)), tdf=10,
    )
    assert report.passed
    assert "ok" in report.summary()


def test_broken_workload_fails_with_report():
    def physical_time_runner(perceived, tdf):
        # A "workload" that (incorrectly) reports physical time: obviously
        # not dilation-safe.
        result = run_bulk(perceived, tdf, duration_s=1.0)
        return {"physical_goodput": result.goodput_bps / float(tdf)}

    with pytest.raises(AssertionError) as excinfo:
        assert_equivalent(
            physical_time_runner,
            NetworkProfile.from_rtt(mbps(10), ms(20)),
            tdf=10,
        )
    assert "physical_goodput" in str(excinfo.value)
    assert "FAIL" in str(excinfo.value)


def test_check_does_not_raise():
    def noisy_runner(perceived, tdf):
        return {"value": 1.0 if float(tdf) == 1 else 1.5}

    report = check_equivalent(
        noisy_runner, NetworkProfile.from_rtt(mbps(10), ms(20)), tdf=10,
    )
    assert not report.passed
    assert len(report.failures()) == 1
    assert report.failures()[0].name == "value"


def test_list_metrics_compared_elementwise():
    def runner(perceived, tdf):
        return {"shares": [1.0, 2.0, 3.0]}

    report = check_equivalent(
        runner, NetworkProfile.from_rtt(mbps(10), ms(20)), tdf=10,
    )
    assert report.passed


def test_mismatched_list_lengths_fail():
    calls = {"n": 0}

    def runner(perceived, tdf):
        calls["n"] += 1
        return {"xs": [1.0] * calls["n"]}

    report = check_equivalent(
        runner, NetworkProfile.from_rtt(mbps(10), ms(20)), tdf=10,
    )
    assert not report.passed


def test_differing_metric_sets_rejected():
    calls = {"n": 0}

    def runner(perceived, tdf):
        calls["n"] += 1
        return {"a": 1.0} if calls["n"] == 1 else {"b": 1.0}

    with pytest.raises(ValueError):
        check_equivalent(
            runner, NetworkProfile.from_rtt(mbps(10), ms(20)), tdf=10,
        )


# --------------------------------------------------------------------------
# compare_metrics edge cases: degenerate distributions must neither divide
# by zero nor silently pass.
# --------------------------------------------------------------------------


def test_compare_metrics_empty_lists_both_sides_pass():
    # An experiment that produced no samples on either axis (e.g. a CDF of
    # zero completions) is vacuously equivalent — error 0, not 0/0.
    report = compare_metrics({"cdf": []}, {"cdf": []}, tdf=10)
    assert report.passed
    assert report.comparisons[0].error == 0.0


def test_compare_metrics_empty_vs_nonempty_fails():
    # Samples appearing on only one side is a divergence, not a pass: the
    # length mismatch maps to infinite error.
    report = compare_metrics({"cdf": []}, {"cdf": [1.0]}, tdf=10)
    assert not report.passed
    assert math.isinf(report.comparisons[0].error)


def test_compare_metrics_single_sample_lists():
    matched = compare_metrics({"cdf": [2.0]}, {"cdf": [2.0]}, tdf=10)
    assert matched.passed
    off = compare_metrics({"cdf": [2.0]}, {"cdf": [3.0]}, tdf=10)
    assert not off.passed
    assert off.comparisons[0].error == pytest.approx(0.5)


def test_compare_metrics_identical_constant_distributions():
    # All-equal samples (zero variance) must compare clean — and a
    # constant-zero distribution must not divide by the zero reference.
    constant = [5.0] * 4
    assert compare_metrics({"d": constant}, {"d": constant}, tdf=10).passed
    zeros = [0.0] * 4
    assert compare_metrics({"d": zeros}, {"d": zeros}, tdf=10).passed


def test_compare_metrics_zero_reference_scalar():
    # reference 0 / measured 0 is exact agreement; reference 0 / measured
    # nonzero is infinitely wrong (there is no scale to be "close" on).
    assert compare_metrics({"m": 0.0}, {"m": 0.0}, tdf=10).passed
    report = compare_metrics({"m": 0.0}, {"m": 1e-9}, tdf=10)
    assert not report.passed
    assert math.isinf(report.comparisons[0].error)


def test_compare_metrics_constant_shifted_distribution_fails():
    report = compare_metrics(
        {"d": [1.0, 1.0, 1.0]}, {"d": [2.0, 2.0, 2.0]}, tdf=10,
    )
    assert not report.passed
    assert report.comparisons[0].error == pytest.approx(1.0)
    assert "FAIL" in report.summary()
