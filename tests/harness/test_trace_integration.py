"""Tracing through the sweep runner and ``repro-figure --trace``."""

import pytest

from repro.core.dilation import NetworkProfile
from repro.harness import cli, figures
from repro.harness.report import FigureResult, Table
from repro.harness.runner import CellSpec, FigureCells, run_sweep
from repro.simnet.units import mbps, ms
from repro.trace.diff import diff_traces
from repro.trace.spec import TraceSpec

PERCEIVED = NetworkProfile.from_rtt(mbps(5), ms(10))


def _tiny_cells():
    return [
        CellSpec("figtest", f"tdf{k}", "run_bulk",
                 {"perceived": PERCEIVED, "tdf": k,
                  "duration_s": 0.6, "warmup_s": 0.1})
        for k in (1, 10)
    ]


def _tiny_assemble(results):
    table = Table(["cell"])
    for key in results:
        table.add_row(key)
    return FigureResult("figtest", "tiny", table)


@pytest.fixture()
def tiny_figure(monkeypatch):
    model = FigureCells(enumerate=_tiny_cells, assemble=_tiny_assemble)
    monkeypatch.setitem(figures.CELL_MODEL, "figtest", model)
    monkeypatch.setitem(figures.FIGURES, "figtest",
                        lambda **kwargs: _tiny_assemble({}))


def test_sweep_collects_traces_in_spec_order(tiny_figure):
    outcome = run_sweep(["figtest"], jobs=1, cache_dir=None,
                        trace=TraceSpec(tcp=True))
    assert [(fid, key) for fid, key, _ in outcome.traces] == [
        ("figtest", "tdf1"), ("figtest", "tdf10"),
    ]
    for _, _, events in outcome.traces:
        assert events
    # Dilated and baseline cells recorded equivalent streams.
    (_, _, base), (_, _, dilated) = outcome.traces
    assert diff_traces(dilated, base).identical
    # Per-cell recorder accounting rides on the timings.
    assert all(t.recorder_events == len(events)
               for t, (_, _, events) in zip(outcome.timings, outcome.traces))
    assert "recorder" in outcome.timings_table()


def test_traces_are_jobs_invariant(tiny_figure):
    sequential = run_sweep(["figtest"], jobs=1, cache_dir=None,
                           trace=TraceSpec())
    pooled = run_sweep(["figtest"], jobs=2, cache_dir=None,
                       trace=TraceSpec())
    assert len(sequential.traces) == len(pooled.traces) == 2
    for (fid_a, key_a, ev_a), (fid_b, key_b, ev_b) in zip(
        sequential.traces, pooled.traces
    ):
        assert (fid_a, key_a) == (fid_b, key_b)
        # Content-equivalent (uids are process-global and may differ).
        assert diff_traces(ev_a, ev_b).identical


def test_untraced_sweep_unchanged(tiny_figure):
    outcome = run_sweep(["figtest"], jobs=1, cache_dir=None)
    assert outcome.traces == []
    assert all(t.recorder_events is None for t in outcome.timings)
    assert "recorder" not in outcome.timings_table()


def test_traced_cell_is_a_different_cell():
    spec = _tiny_cells()[0]
    kwargs = dict(spec.kwargs)
    kwargs["trace"] = TraceSpec()
    traced = CellSpec(spec.figure_id, spec.key, spec.runner, kwargs)
    assert traced.token() != spec.token()
    # And different trace configurations hash apart too.
    kwargs2 = dict(spec.kwargs)
    kwargs2["trace"] = TraceSpec(point="receiver")
    assert CellSpec(spec.figure_id, spec.key, spec.runner,
                    kwargs2).token() != traced.token()


def test_trace_requires_traceable_cells(monkeypatch):
    cells = [CellSpec("figcpu", "only", "run_cpu_task",
                      {"tdf": 2, "cpu_share": 0.5})]
    monkeypatch.setitem(
        figures.CELL_MODEL, "figcpu",
        FigureCells(enumerate=lambda: cells,
                    assemble=lambda results: _tiny_assemble(results)),
    )
    with pytest.raises(ValueError, match="no traceable cells"):
        run_sweep(["figcpu"], jobs=1, cache_dir=None, trace=TraceSpec())


def test_figure_cli_trace_flag(tiny_figure, tmp_path, capsys):
    rc = cli.main([
        "figtest", "--jobs", "1", "--no-cache",
        "--trace", "bottleneck:tcp=1", "--trace-dir", str(tmp_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    trace_path = tmp_path / "figtest.jsonl"
    assert trace_path.exists()
    assert "trace:" in out
    # Merged recording: every line tagged with its cell, in spec order.
    import json

    cells = [json.loads(line)["cell"]
             for line in trace_path.read_text().splitlines()]
    assert set(cells) == {"tdf1", "tdf10"}
    assert cells == sorted(cells, key=["tdf1", "tdf10"].index)


def test_figure_cli_trace_rejects_profile_engine(tiny_figure, capsys):
    rc = cli.main(["figtest", "--trace", "bottleneck", "--profile-engine"])
    assert rc == 2
    assert "--profile-engine" in capsys.readouterr().err


def test_figure_cli_trace_bad_spec(tiny_figure, capsys):
    rc = cli.main(["figtest", "--trace", "holodeck"])
    assert rc == 2
    assert "unknown trace point" in capsys.readouterr().err
