"""Tests for the ASCII chart renderer."""

import pytest

from repro.harness.ascii_chart import line_chart


def test_single_series_renders():
    chart = line_chart({"a": [(0, 0), (1, 1), (2, 4)]})
    assert "*" in chart
    assert "* a" in chart
    assert "+" + "-" * 60 in chart


def test_multiple_series_distinct_glyphs():
    chart = line_chart({
        "baseline": [(0, 1), (1, 2)],
        "dilated": [(0, 2), (1, 1)],
    })
    assert "* baseline" in chart
    assert "o dilated" in chart
    assert "o" in chart.splitlines()[2]  # glyphs actually plotted


def test_labels_included():
    chart = line_chart({"a": [(0, 0), (1, 1)]},
                       x_label="RTT (ms)", y_label="Mbps")
    assert "RTT (ms)" in chart
    assert chart.splitlines()[0] == "Mbps"


def test_axis_limits_rendered():
    chart = line_chart({"a": [(10, 5), (160, 95)]})
    assert "10" in chart
    assert "160" in chart
    assert "95" in chart


def test_constant_series_does_not_divide_by_zero():
    chart = line_chart({"flat": [(0, 3), (1, 3), (2, 3)]})
    assert "*" in chart


def test_single_point():
    chart = line_chart({"dot": [(5, 5)]})
    assert "*" in chart


def test_empty_rejected():
    with pytest.raises(ValueError):
        line_chart({})
    with pytest.raises(ValueError):
        line_chart({"a": []})


def test_too_small_rejected():
    with pytest.raises(ValueError):
        line_chart({"a": [(0, 0)]}, width=5)
    with pytest.raises(ValueError):
        line_chart({"a": [(0, 0)]}, height=2)


def test_chart_width_respected():
    chart = line_chart({"a": [(0, 0), (1, 1)]}, width=30, height=8)
    plot_lines = [l for l in chart.splitlines() if "|" in l]
    assert len(plot_lines) == 8
    for line in plot_lines:
        body = line.split("|", 1)[1]
        assert len(body) == 30
