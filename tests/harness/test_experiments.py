"""Integration tests for the experiment runners (small configurations)."""

import pytest

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import (
    default_queue_packets,
    relative_error,
    run_bittorrent,
    run_bulk,
    run_cpu_task,
    run_web,
)
from repro.simnet.units import mbps, ms


class TestHelpers:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(1, 0) == float("inf")

    def test_queue_sizing_is_bdp(self):
        physical = NetworkProfile.from_rtt(mbps(100), ms(40))
        # BDP = 100e6 * 0.04 / 8 = 500 KB -> ~333 frames of 1500 B.
        assert default_queue_packets(physical) == 333

    def test_queue_sizing_respects_frame_size(self):
        physical = NetworkProfile.from_rtt(mbps(100), ms(40))
        assert default_queue_packets(physical, frame_bytes=9000) == 55

    def test_queue_sizing_clamped(self):
        tiny = NetworkProfile.from_rtt(mbps(0.1), ms(1))
        assert default_queue_packets(tiny) == 20

    def test_queue_sizing_dilation_invariant(self):
        from repro.core.dilation import physical_for

        target = NetworkProfile.from_rtt(mbps(100), ms(40))
        assert default_queue_packets(target) == default_queue_packets(
            physical_for(target, 10)
        )


class TestRunBulk:
    def test_goodput_near_bottleneck(self):
        result = run_bulk(
            NetworkProfile.from_rtt(mbps(20), ms(20)), 1,
            duration_s=4.0, warmup_s=1.5,
        )
        assert result.goodput_bps == pytest.approx(mbps(20), rel=0.15)
        assert result.delivered_bytes > 0
        assert result.segments_sent > 0

    def test_dilated_equals_baseline(self):
        target = NetworkProfile.from_rtt(mbps(20), ms(20))
        base = run_bulk(target, 1, duration_s=3.0, warmup_s=1.0)
        dilated = run_bulk(target, 10, duration_s=3.0, warmup_s=1.0)
        assert dilated.goodput_bps == pytest.approx(base.goodput_bps, rel=1e-6)
        assert dilated.segments_sent == base.segments_sent

    def test_multiple_flows_split_bottleneck(self):
        result = run_bulk(
            NetworkProfile.from_rtt(mbps(20), ms(20)), 1,
            duration_s=4.0, warmup_s=1.5, flows=2,
        )
        assert len(result.per_flow_goodput_bps) == 2
        assert sum(result.per_flow_goodput_bps) == pytest.approx(
            result.goodput_bps
        )
        for flow in result.per_flow_goodput_bps:
            assert flow > 0.2 * mbps(20)

    def test_interarrivals_collected_in_virtual_time(self):
        result = run_bulk(
            NetworkProfile.from_rtt(mbps(10), ms(20)), 10,
            duration_s=2.0, warmup_s=0.5, collect_interarrivals=True,
        )
        assert len(result.interarrivals) > 100
        # Spacing of full frames at the perceived 10 Mbps: 1.2 ms.
        median = sorted(result.interarrivals)[len(result.interarrivals) // 2]
        assert median == pytest.approx(1500 * 8 / mbps(10), rel=0.25)

    def test_srtt_matches_perceived_rtt(self):
        result = run_bulk(
            NetworkProfile.from_rtt(mbps(10), ms(60)), 100,
            duration_s=2.0, warmup_s=0.5,
        )
        assert result.srtt == pytest.approx(0.060, rel=0.5)


class TestRunWeb:
    def test_underload_completes_everything(self):
        result = run_web(
            NetworkProfile.from_rtt(mbps(100), ms(10)), 1,
            rate_rps=10, duration_s=3.0, seed=5,
        )
        assert result.completed == result.issued > 0
        assert result.failed == 0
        assert result.mean_latency_s > 0
        assert result.p95_latency_s >= result.mean_latency_s

    def test_dilated_equals_baseline(self):
        target = NetworkProfile.from_rtt(mbps(100), ms(10))
        base = run_web(target, 1, rate_rps=20, duration_s=4.0, seed=9)
        dilated = run_web(target, 10, rate_rps=20, duration_s=4.0, seed=9)
        assert dilated.completed == base.completed
        assert dilated.mean_latency_s == pytest.approx(
            base.mean_latency_s, rel=1e-6
        )


class TestRunBitTorrent:
    def test_small_swarm_completes(self):
        result = run_bittorrent(
            NetworkProfile.from_rtt(mbps(10), ms(10)), 1,
            leechers=3, file_bytes=256 * 1024, seed=2,
        )
        assert result.completed == 3
        assert len(result.download_times_s) == 3
        assert result.download_times_s == sorted(result.download_times_s)
        assert result.total_downloaded_bytes >= 3 * 256 * 1024


class TestRunCpu:
    def test_undilated(self):
        result = run_cpu_task(1, 1.0)
        assert result.virtual_duration_s == pytest.approx(2.0)
        assert result.perceived_speedup == pytest.approx(1.0)

    def test_dilated_full_share(self):
        result = run_cpu_task(10, 1.0)
        assert result.virtual_duration_s == pytest.approx(0.2)
        assert result.physical_duration_s == pytest.approx(2.0)
        assert result.perceived_speedup == pytest.approx(10.0)

    def test_compensated_share(self):
        result = run_cpu_task(10, 0.1)
        assert result.virtual_duration_s == pytest.approx(2.0)
        assert result.perceived_speedup == pytest.approx(1.0)
