"""Tests for the figure registry and CLI (cheap figures only)."""

import pytest

from repro.harness import cli
from repro.harness.figures import FIGURES, figure_ids, run_figure


def test_registry_covers_design_doc():
    expected = {
        "table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
        "fig9", "fig10", "ablation1", "ablation2", "ext1", "ext2", "ext3",
        "ext4", "ext5", "ext6",
    }
    assert set(figure_ids()) == expected


def test_run_figure_unknown_id():
    with pytest.raises(KeyError):
        run_figure("fig99")


def test_table1_runs_and_passes():
    result = run_figure("table1")
    assert result.all_passed
    assert result.table.rows


def test_table2_runs_and_passes():
    result = run_figure("table2")
    assert result.all_passed


def test_every_figure_has_docstring():
    for figure_id, fn in FIGURES.items():
        assert fn.__doc__, f"{figure_id} has no docstring"


def test_cli_list(capsys):
    assert cli.main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out
    assert "ablation2" in out


def test_cli_no_args_lists(capsys):
    assert cli.main([]) == 0
    assert "available experiments" in capsys.readouterr().out


def test_cli_unknown_figure(capsys):
    assert cli.main(["nope"]) == 2


def test_cli_runs_table1(capsys):
    assert cli.main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out
    assert "Perceived resources" in out


def test_cli_impair_rejected_for_figures_without_the_axis(capsys):
    assert cli.main(["fig3", "--impair", "bernoulli:rate=0.01"]) == 2
    assert "no --impair axis" in capsys.readouterr().err


def test_run_figure_impair_rejected_without_axis():
    with pytest.raises(ValueError):
        run_figure("table1", impair="bernoulli:rate=0.01")


def test_cli_csv_export(tmp_path, capsys):
    assert cli.main(["table1", "--csv", str(tmp_path)]) == 0
    csv_file = tmp_path / "table1.csv"
    assert csv_file.exists()
    header = csv_file.read_text().splitlines()[0]
    assert "TDF" in header
