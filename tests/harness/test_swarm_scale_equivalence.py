"""Swarm-scale integration: lossy tracker links, dilation equivalence
under impairment, and flight-recorder reproducibility.

These are the macro-benchmark counterparts to the unit-level lifecycle
tests in ``tests/apps/test_tracker_lifecycle.py``: the swarm must survive
a lossy tracker link (announce retry), a dilated lossy swarm must match
its TDF-1 baseline on the virtual-time axis (the ext5 check, shrunk to a
test-sized swarm), and two identically-seeded traced runs must diff to
zero divergence.
"""

import pytest

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bittorrent
from repro.harness.validate import compare_metrics
from repro.simnet.impairments import ImpairmentSpec
from repro.simnet.units import mbps, ms
from repro.stats.cdf import ks_distance, percentile
from repro.trace.diff import diff_traces
from repro.trace.spec import TraceSpec

PROFILE = NetworkProfile.from_rtt(mbps(10), ms(20))


def test_swarm_completes_with_lossy_tracker_link():
    """30% Bernoulli loss on the tracker link in both directions: the seed
    code's single-shot announce stranded most of the swarm; the retry
    machinery must still assemble it and finish."""
    result = run_bittorrent(
        PROFILE, 1, leechers=6, file_bytes=256 * 1024, seed=99,
        impair_tracker=ImpairmentSpec(kind="bernoulli", rate=0.3, seed=7),
    )
    assert result.completed == 6
    # Lost announces were retried: the tracker fielded more announces than
    # the 7 peers (seed + leechers) would need on a clean link.
    assert result.tracker_announces > 7


@pytest.mark.parametrize("impair", [
    None,
    ImpairmentSpec(kind="gilbert", rate=0.01, burst=4.0, seed=42),
], ids=["clean", "gilbert"])
def test_swarm_dilation_equivalence_mid_size(impair):
    """A mid-size swarm (with and without a Gilbert-Elliott chain on the
    seed's uplink) must produce the same completion-time CDF at TDF 10 as
    at TDF 1, compared on the virtual-time axis. Swarm event ordering is
    float-jitter sensitive, so the match is statistical: quantiles within
    5%, like ext5's acceptance bar."""
    runs = {}
    for tdf in (1, 10):
        result = run_bittorrent(
            PROFILE, tdf, leechers=8, file_bytes=512 * 1024, seed=2718,
            impair=impair,
        )
        assert result.completed == 8
        times = sorted(result.download_times_s)
        runs[tdf] = {
            f"p{q}_completion_s": percentile(times, q) for q in (10, 50, 90)
        }
        runs[tdf]["_times"] = times
    baseline = {k: v for k, v in runs[1].items() if not k.startswith("_")}
    dilated = {k: v for k, v in runs[10].items() if not k.startswith("_")}
    report = compare_metrics(baseline, dilated, tdf=10, tolerance=0.05)
    assert report.passed, report.summary()
    assert ks_distance(runs[1]["_times"], runs[10]["_times"]) <= 0.25


def test_identically_seeded_traced_swarms_diverge_nowhere():
    """Two runs of the same seeded swarm, both traced at the seed's uplink
    bottleneck, must produce byte-identical event streams — the flight
    recorder's first-divergence diff reports none."""
    def traced_run():
        return run_bittorrent(
            PROFILE, 1, leechers=4, file_bytes=256 * 1024, seed=31415,
            trace=TraceSpec(point="bottleneck"),
        )

    first = traced_run()
    second = traced_run()
    assert first.trace_events, "trace capture came back empty"
    diff = diff_traces(first.trace_events, second.trace_events)
    assert diff.identical, diff.render()
    assert first.download_times_s == second.download_times_s
