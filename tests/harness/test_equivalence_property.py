"""Property-based statement of the paper's headline claim.

For *randomly drawn* network profiles and dilation factors, a dilated run
must match its rescaled baseline. Short transfers keep each example fast;
the draw space covers two orders of magnitude of bandwidth and RTT plus
integer and fractional TDFs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bulk
from repro.simnet.units import mbps, ms


# derandomize: the draw space holds one known outlier (60 Mbps / 30 ms /
# TDF 7) where accumulated float rounding in the virtual<->physical map
# drifts past the 1e-6 tolerance — a limitation the repo inherits from the
# float time base, not a regression signal. A fixed example set keeps the
# suite deterministic; the outlier stays reachable via explicit runs.
@settings(max_examples=10, deadline=None, derandomize=True)
@given(
    bandwidth_mbps=st.sampled_from([2, 5, 10, 25, 60]),
    rtt_ms=st.sampled_from([4, 10, 30, 80]),
    tdf=st.sampled_from([2, 7, 10, 50, "1/2", "5/2"]),
)
def test_property_bulk_equivalence(bandwidth_mbps, rtt_ms, tdf):
    perceived = NetworkProfile.from_rtt(mbps(bandwidth_mbps), ms(rtt_ms))
    baseline = run_bulk(perceived, 1, duration_s=1.5, warmup_s=0.25)
    dilated = run_bulk(perceived, tdf, duration_s=1.5, warmup_s=0.25)
    assert dilated.delivered_bytes == pytest.approx(
        baseline.delivered_bytes, rel=1e-6
    )
    assert dilated.segments_sent == baseline.segments_sent
    assert dilated.retransmits == baseline.retransmits


@settings(max_examples=6, deadline=None, derandomize=True)
@given(
    tdf_a=st.sampled_from([2, 5, 20]),
    tdf_b=st.sampled_from([3, 10, 100]),
)
def test_property_all_tdfs_agree_with_each_other(tdf_a, tdf_b):
    """Not just dilated-vs-1: any two TDFs of the same target agree."""
    perceived = NetworkProfile.from_rtt(mbps(8), ms(20))
    run_a = run_bulk(perceived, tdf_a, duration_s=1.2, warmup_s=0.2)
    run_b = run_bulk(perceived, tdf_b, duration_s=1.2, warmup_s=0.2)
    assert run_a.delivered_bytes == pytest.approx(
        run_b.delivered_bytes, rel=1e-6
    )
    assert run_a.segments_sent == run_b.segments_sent
