"""Property-based statement of the paper's headline claim.

For *randomly drawn* network profiles and dilation factors, a dilated run
must match its rescaled baseline. Short transfers keep each example fast;
the draw space covers two orders of magnitude of bandwidth and RTT plus
integer and fractional TDFs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bulk
from repro.simnet.units import mbps, ms


# derandomize: a fixed example set keeps the suite deterministic. The
# seed-era outlier this comment used to carve out (60 Mbps / 30 ms / TDF 7)
# is fixed and pinned by the explicit regression test below: the drift was
# never in the virtual<->physical map but in queue sizing — the BDP queue
# was computed from the float-rescaled *physical* profile, whose product
# at TDF 7 lands one ulp below 150 packets and truncates to 149, giving
# the dilated run a one-packet-smaller buffer than its baseline.
# default_queue_packets is now fed the dilation-invariant perceived
# profile (plus a near-integer snap for direct physical-profile callers).
@settings(max_examples=10, deadline=None, derandomize=True)
@given(
    bandwidth_mbps=st.sampled_from([2, 5, 10, 25, 60]),
    rtt_ms=st.sampled_from([4, 10, 30, 80]),
    tdf=st.sampled_from([2, 7, 10, 50, "1/2", "5/2"]),
)
def test_property_bulk_equivalence(bandwidth_mbps, rtt_ms, tdf):
    perceived = NetworkProfile.from_rtt(mbps(bandwidth_mbps), ms(rtt_ms))
    baseline = run_bulk(perceived, 1, duration_s=1.5, warmup_s=0.25)
    dilated = run_bulk(perceived, tdf, duration_s=1.5, warmup_s=0.25)
    assert dilated.delivered_bytes == pytest.approx(
        baseline.delivered_bytes, rel=1e-6
    )
    assert dilated.segments_sent == baseline.segments_sent
    assert dilated.retransmits == baseline.retransmits


def test_seed_era_outlier_60mbps_30ms_tdf7_is_fixed():
    """Regression for the carved-out case: at TDF 7 the physical BDP is
    224999.99999999997 bytes (1 ulp low), so physical-profile queue sizing
    truncated to 149 packets against the baseline's 150 and the drop
    patterns diverged. Perceived-profile sizing restores bit-equivalence,
    so this asserts well inside the re-enabled rel=1e-6 tolerance."""
    perceived = NetworkProfile.from_rtt(mbps(60), ms(30))
    baseline = run_bulk(perceived, 1, duration_s=1.5, warmup_s=0.25)
    dilated = run_bulk(perceived, 7, duration_s=1.5, warmup_s=0.25)
    assert dilated.delivered_bytes == pytest.approx(
        baseline.delivered_bytes, rel=1e-6
    )
    assert dilated.delivered_bytes == baseline.delivered_bytes
    assert dilated.segments_sent == baseline.segments_sent
    assert dilated.retransmits == baseline.retransmits


@settings(max_examples=6, deadline=None, derandomize=True)
@given(
    tdf_a=st.sampled_from([2, 5, 20]),
    tdf_b=st.sampled_from([3, 10, 100]),
)
def test_property_all_tdfs_agree_with_each_other(tdf_a, tdf_b):
    """Not just dilated-vs-1: any two TDFs of the same target agree."""
    perceived = NetworkProfile.from_rtt(mbps(8), ms(20))
    run_a = run_bulk(perceived, tdf_a, duration_s=1.2, warmup_s=0.2)
    run_b = run_bulk(perceived, tdf_b, duration_s=1.2, warmup_s=0.2)
    assert run_a.delivered_bytes == pytest.approx(
        run_b.delivered_bytes, rel=1e-6
    )
    assert run_a.segments_sent == run_b.segments_sent
