"""Statistical-equivalence gates for the hybrid-fidelity engine.

Three contracts, each through the same :mod:`repro.harness.validate`
machinery user workloads certify themselves with:

* ``fidelity="hybrid"`` bulk cells land within tolerance of the packet
  run on every headline metric, while executing materially fewer engine
  events (the whole point of the fast path);
* hybrid runs obey *dilation equivalence* exactly — the fluid model is
  built from perceived (virtual-axis) quantities, so a TDF-10 hybrid run
  is bit-identical to its TDF-1 twin, just as the packet engine is;
* workloads whose flows never satisfy the steady-state predicate (the
  chatty BitTorrent swarm) are untouched: installing the hybrid engine
  is a bit-exact no-op there, not a small perturbation.

Cells are deliberately bulk-dominated moderate-BDP points where the
packet baseline itself is stable; short low-RTT cells amplify one
recovery-episode divergence into double-digit goodput swings (see
``benchmarks/test_fluid_reduction.py`` for the measured sensitivity) and
belong under the wider benchmark gates, not here.
"""

import pytest

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bittorrent, run_bulk
from repro.harness.validate import compare_metrics
from repro.simnet.units import mbps, ms

#: (bandwidth_mbps, rtt_ms, duration_s) — bulk-dominated cells where the
#: packet baseline is insensitive to single-episode perturbations.
CELLS = [
    (20, 40, 6.0),
    (50, 20, 6.0),
    (50, 40, 6.0),
]

TOLERANCE = 0.05

_RESULTS = {}


def _pair(bandwidth_mbps, rtt_ms, duration_s):
    """Run (and cache) the packet/hybrid result pair for one cell."""
    key = (bandwidth_mbps, rtt_ms, duration_s)
    if key not in _RESULTS:
        perceived = NetworkProfile.from_rtt(mbps(bandwidth_mbps), ms(rtt_ms))
        _RESULTS[key] = tuple(
            run_bulk(perceived, 1, duration_s=duration_s, warmup_s=0.5,
                     fidelity=fidelity)
            for fidelity in ("packet", "hybrid")
        )
    return _RESULTS[key]


def _metrics(result):
    return {
        "goodput_bps": result.goodput_bps,
        "delivered_bytes": float(result.delivered_bytes),
    }


@pytest.mark.parametrize("bandwidth_mbps,rtt_ms,duration_s", CELLS)
def test_hybrid_goodput_within_tolerance(bandwidth_mbps, rtt_ms, duration_s):
    packet, hybrid = _pair(bandwidth_mbps, rtt_ms, duration_s)
    report = compare_metrics(
        baseline=_metrics(packet),
        dilated=_metrics(hybrid),
        tdf=1,
        tolerance=TOLERANCE,
    )
    assert report.passed, report.summary()


@pytest.mark.parametrize("bandwidth_mbps,rtt_ms,duration_s", CELLS)
def test_hybrid_saves_engine_events(bandwidth_mbps, rtt_ms, duration_s):
    """The equivalence above must not be vacuous: the fast path has to
    actually engage on these cells (measured 2.1x-5.5x here)."""
    packet, hybrid = _pair(bandwidth_mbps, rtt_ms, duration_s)
    assert hybrid.events_processed * 3 < packet.events_processed * 2


def test_hybrid_dilation_equivalence_is_exact():
    """A hybrid run is bit-identical across TDFs, like the packet engine.

    The fluid model integrates perceived-axis rates over virtual time, so
    time dilation cannot move a single mode transition: every derived
    metric matches exactly, not merely within tolerance.
    """
    perceived = NetworkProfile.from_rtt(mbps(20), ms(40))

    def runner(tdf):
        return run_bulk(perceived, tdf, duration_s=4.0, warmup_s=0.5,
                        fidelity="hybrid")

    baseline, dilated = runner(1), runner(10)
    assert dilated.delivered_bytes == baseline.delivered_bytes
    assert dilated.segments_sent == baseline.segments_sent
    assert dilated.retransmits == baseline.retransmits
    assert dilated.timeouts == baseline.timeouts
    assert dilated.events_processed == baseline.events_processed
    assert dilated.goodput_bps == pytest.approx(baseline.goodput_bps,
                                                rel=1e-9)
    # And the formal report agrees at a tolerance far below any gate.
    report = compare_metrics(_metrics(baseline), _metrics(dilated),
                             tdf=10, tolerance=1e-9)
    assert report.passed, report.summary()


def test_swarm_hybrid_is_bit_exact_noop():
    """Chatty swarm transfers never meet the steady-state predicate, so
    the hybrid engine must leave the run untouched — same download
    times, same engine-event count, to the bit."""
    perceived = NetworkProfile.from_rtt(mbps(10), ms(20))
    kwargs = dict(perceived_leaf=perceived, tdf=1, leechers=8,
                  file_bytes=512 * 1024, piece_bytes=32768, seed=4242)
    packet = run_bittorrent(**kwargs)
    hybrid = run_bittorrent(fidelity="hybrid", **kwargs)
    assert hybrid.completed == packet.completed == 8
    assert hybrid.download_times_s == packet.download_times_s
    assert hybrid.events_processed == packet.events_processed
