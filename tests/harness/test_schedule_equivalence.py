"""Dilation equivalence on a time-varying topology (the ext6 claim).

The schedule is virtual-time indexed, so a TDF-10 run replays the same
perceived handover trace as the baseline — instants and delays x10,
bandwidths /10 — and the streaming/bulk metrics must agree on the
virtual axis. These tests pin the runner, the ``--schedule`` sweep axis,
and the ext6 registration.
"""

import pytest

from repro.core.dilation import NetworkProfile
from repro.harness import cli
from repro.harness.experiments import (
    SCHEDULE_RUNNERS,
    run_starlink,
)
from repro.harness.validate import compare_metrics
from repro.simnet.schedule import ScheduleSpec
from repro.simnet.units import mbps, ms
from repro.stats.cdf import ks_distance, percentile

PERCEIVED = NetworkProfile(mbps(8), ms(25))
SCHEDULE = ScheduleSpec(kind="leo", period_s=2.0, count=2, outage_s=0.05,
                        amplitude=0.5)


def _run(tdf):
    return run_starlink(perceived=PERCEIVED, tdf=tdf, duration_s=6.0,
                        schedule=SCHEDULE)


def test_starlink_dilation_equivalence_on_virtual_axis():
    base = _run(1)
    dilated = _run(10)
    # The schedule bit identically in both runs.
    assert base.schedule_changes == dilated.schedule_changes == 4
    assert base.outage_drops > 0
    assert dilated.outage_drops > 0
    # CDF-quantile gate, via the user-facing validation machinery.
    report = compare_metrics(
        baseline={f"p{q}": percentile(base.frame_delays_s, q)
                  for q in (10, 50, 90)},
        dilated={f"p{q}": percentile(dilated.frame_delays_s, q)
                 for q in (10, 50, 90)},
        tdf=10,
        tolerance=0.05,
    )
    assert report.passed, report.summary()
    assert ks_distance(base.frame_delays_s, dilated.frame_delays_s) <= 0.25
    # QoE aggregates ride along.
    assert dilated.playable_fraction == pytest.approx(
        base.playable_fraction, abs=0.05
    )
    assert dilated.stall_fraction == pytest.approx(
        base.stall_fraction, abs=0.05
    )
    assert dilated.jitter_s == pytest.approx(base.jitter_s, rel=0.05)


def test_starlink_static_path_has_no_schedule_artifacts():
    result = run_starlink(perceived=PERCEIVED, tdf=1, duration_s=2.0,
                          schedule=None, bulk=False)
    assert result.schedule_changes == 0
    assert result.outage_drops == 0
    assert result.frames_sent > 0
    assert result.playable_fraction == pytest.approx(1.0)
    assert result.bulk_goodput_bps == 0.0


def test_ext6_registered_with_schedule_capable_runners():
    from repro.harness.figures import CELL_MODEL, FIGURES

    assert "ext6" in FIGURES
    cells = CELL_MODEL["ext6"].cells()
    assert cells, "ext6 enumerates no cells"
    assert all(spec.runner in SCHEDULE_RUNNERS for spec in cells)
    runners = {spec.runner for spec in cells}
    assert runners == {"run_starlink", "run_bittorrent"}


def test_apply_schedule_rewrites_only_capable_cells():
    from repro.harness.runner import CellSpec, _apply_schedule

    cells = [
        CellSpec("f", "a", "run_starlink", {"tdf": 1}),
        CellSpec("f", "b", "run_web", {"tdf": 1}),
    ]
    out, rewritten = _apply_schedule(cells, SCHEDULE)
    assert rewritten == 1
    assert out[0].kwargs["schedule"] == SCHEDULE
    assert "schedule" not in out[1].kwargs
    # Distinct token from the static twin: no cache aliasing.
    assert out[0].token() != cells[0].token()


def test_cli_schedule_rejected_without_capable_cells(capsys):
    assert cli.main(["table1", "--no-cache", "--schedule", "leo"]) == 2
    assert "no schedule-capable cells" in capsys.readouterr().err


def test_cli_schedule_rejects_bad_spec(capsys):
    assert cli.main(["ext6", "--schedule", "geo"]) == 2
    assert "unknown schedule kind" in capsys.readouterr().err


def test_cli_schedule_incompatible_with_profile_engine(capsys):
    assert cli.main(
        ["ext6", "--profile-engine", "--schedule", "leo"]
    ) == 2
    assert "--schedule cannot be combined" in capsys.readouterr().err
