"""Unit tests for tables and figure results."""

import pytest

from repro.harness.report import Check, FigureResult, Table


class TestTable:
    def test_render_alignment(self):
        table = Table(["name", "value"], title="demo")
        table.add_row("alpha", 1)
        table.add_row("b", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        # All data lines have equal width.
        assert len(set(len(line) for line in lines[1:])) == 1

    def test_row_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_without_title(self):
        table = Table(["x"])
        table.add_row(5)
        assert table.render().splitlines()[0].strip() == "x"

    def test_to_csv(self):
        table = Table(["a", "b"])
        table.add_row(1, "x,y")
        csv_text = table.to_csv()
        assert csv_text.splitlines() == ["a,b", '1,"x,y"']


class TestFigureResult:
    def make(self):
        table = Table(["k"])
        table.add_row(1)
        return FigureResult("figX", "demo figure", table)

    def test_checks_accumulate(self):
        figure = self.make()
        figure.check("ok", True)
        figure.check("bad", False)
        assert not figure.all_passed
        assert [c.description for c in figure.failed_checks()] == ["bad"]

    def test_all_passed_empty(self):
        assert self.make().all_passed

    def test_render_includes_everything(self):
        figure = self.make()
        figure.notes.append("a note")
        figure.check("shape holds", True)
        text = figure.render()
        assert "figX" in text
        assert "a note" in text
        assert "[PASS] shape holds" in text

    def test_render_marks_failures(self):
        figure = self.make()
        figure.check("broken", False)
        assert "[FAIL] broken" in figure.render()

    def test_check_coerces_truthiness(self):
        figure = self.make()
        figure.check("coerced", 1)
        assert figure.checks[0].passed is True

    def test_write_csv(self, tmp_path):
        figure = self.make()
        path = figure.write_csv(tmp_path)
        assert path.endswith("figX.csv")
        with open(path) as handle:
            assert handle.read().splitlines() == ["k", "1"]
