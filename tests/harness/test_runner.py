"""The parallel sweep runner: determinism, dedup, caching, CLI surface.

The load-bearing claim is bit-exactness: ``run_sweep(jobs=N)`` must
produce byte-identical figure reports to ``jobs=1`` (and to the classic
``run_figure`` path), because cells are pure functions of their spec. The
pinned figures deliberately span the risk surface — fig3 (a wide
multi-TDF bulk sweep), fig9 (the seeded BitTorrent swarm, the most
event-ordering-sensitive experiment), ext4 (the impairment axis).
"""

import dataclasses
import pickle

import pytest

from repro.harness import cli
from repro.harness.figures import CELL_MODEL, FIGURES
from repro.harness.runner import (
    CellSpec,
    ResultCache,
    canonical,
    execute_cells_inline,
    run_sweep,
)


class TestCanonical:
    def test_primitives(self):
        assert canonical(1) == "1"
        assert canonical(True) == "True"
        assert canonical(None) == "None"
        assert canonical("a") == "'a'"
        assert canonical(0.1) == repr(0.1)

    def test_int_and_float_do_not_collide(self):
        assert canonical(1) != canonical(1.0)

    def test_dict_key_order_irrelevant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_dataclasses_recurse(self):
        @dataclasses.dataclass(frozen=True)
        class Point:
            x: float
            y: float

        assert canonical(Point(1.0, 2.0)) == canonical(Point(1.0, 2.0))
        assert canonical(Point(1.0, 2.0)) != canonical(Point(2.0, 1.0))

    def test_unknown_types_rejected(self):
        with pytest.raises(TypeError):
            canonical(object())


class TestTokens:
    def test_token_is_stable(self):
        spec = CellSpec("fig3", "rtt10-tdf1", "run_bulk", {"tdf": 1})
        assert spec.token() == spec.token()
        assert spec.token() == CellSpec(
            "fig3", "rtt10-tdf1", "run_bulk", {"tdf": 1}
        ).token()

    def test_token_ignores_address_but_not_work(self):
        a = CellSpec("fig7", "k", "run_web", {"seed": 1})
        b = CellSpec("fig8", "other", "run_web", {"seed": 1})
        c = CellSpec("fig7", "k", "run_web", {"seed": 2})
        assert a.token() == b.token()
        assert a.token() != c.token()

    def test_fig7_fig8_share_every_cell(self):
        fig7 = [spec.token() for spec in CELL_MODEL["fig7"].cells()]
        fig8 = [spec.token() for spec in CELL_MODEL["fig8"].cells()]
        assert fig7 == fig8

    def test_every_figure_enumerates_picklable_hashable_cells(self):
        seen = {}
        for figure_id, model in CELL_MODEL.items():
            for spec in model.cells():
                pickle.dumps(spec)
                token = spec.token()
                # Same token from different figures must mean same work.
                if token in seen:
                    assert seen[token].runner == spec.runner
                    assert canonical(seen[token].kwargs) == canonical(
                        spec.kwargs
                    )
                seen[token] = spec
                assert spec.figure_id == figure_id

    def test_cell_and_figure_registries_align(self):
        assert set(CELL_MODEL) == set(FIGURES)


class TestBitExactMerge:
    """jobs=N must be byte-identical to jobs=1 — the tentpole guarantee."""

    IDS = ["fig3", "fig9", "ext4"]

    @pytest.fixture(scope="class")
    def sequential(self):
        return run_sweep(self.IDS, jobs=1, cache_dir=None)

    @pytest.fixture(scope="class")
    def parallel(self):
        return run_sweep(self.IDS, jobs=2, cache_dir=None)

    def test_reports_byte_identical(self, sequential, parallel):
        assert [f.figure_id for f in sequential.figures] == self.IDS
        for seq, par in zip(sequential.figures, parallel.figures):
            assert seq.render() == par.render()

    def test_checks_pass_both_ways(self, sequential, parallel):
        assert sequential.all_passed
        assert parallel.all_passed

    def test_matches_classic_run_figure(self, parallel):
        from repro.harness.figures import run_figure

        for figure in parallel.figures:
            assert figure.render() == run_figure(figure.figure_id).render()

    def test_merge_is_in_request_order(self):
        out = run_sweep(["table2", "table1"], jobs=1, cache_dir=None)
        assert [f.figure_id for f in out.figures] == ["table2", "table1"]


class TestSweepMechanics:
    def test_table2_dedups_duplicate_cells(self):
        # tdf=1 enumerates share 1.0 twice (full == compensated): 6 cells,
        # 5 unique executions.
        out = run_sweep(["table2"], jobs=1, cache_dir=None)
        assert out.cells_total == 5
        assert out.cells_executed == 5
        assert out.figures[0].all_passed

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError):
            run_sweep(["fig99"], jobs=1, cache_dir=None)

    def test_impair_rejected_without_axis(self):
        with pytest.raises(ValueError, match="no --impair axis"):
            run_sweep(["table2"], jobs=1, impair="bernoulli:rate=0.01",
                      cache_dir=None)

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_sweep(["table2"], jobs=0, cache_dir=None)

    def test_timings_cover_every_unique_cell(self):
        out = run_sweep(["table2"], jobs=1, cache_dir=None,
                        collect_timings=True)
        assert len(out.timings) == out.cells_total
        assert all(t.events is not None for t in out.timings)
        assert "table2" in out.timings_table()

    def test_inline_memo_skips_repeat_work(self):
        specs = CELL_MODEL["table2"].cells()
        first = execute_cells_inline(specs)
        second = execute_cells_inline(specs)
        for token, value in first.items():
            assert second[token] is value  # memo returns the same object


class TestResultCache:
    def test_sweep_is_fully_cached_second_time(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run_sweep(["table2"], jobs=1, cache_dir=cache_dir)
        assert first.cells_cached == 0
        second = run_sweep(["table2"], jobs=1, cache_dir=cache_dir)
        assert second.cells_cached == second.cells_total
        assert second.cells_executed == 0
        assert "100.0%" in second.cache_summary()
        assert (
            second.figures[0].render() == first.figures[0].render()
        )

    def test_parallel_run_populates_cache_for_sequential(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_sweep(["table2"], jobs=2, cache_dir=cache_dir)
        second = run_sweep(["table2"], jobs=1, cache_dir=cache_dir)
        assert second.cells_executed == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store("deadbeef", {"ok": True})
        hit, value = cache.load("deadbeef")
        assert hit and value == {"ok": True}
        (tmp_path / "deadbeef.pkl").write_bytes(b"not a pickle")
        hit, value = cache.load("deadbeef")
        assert not hit and value is None

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        hit, value = cache.load("0" * 64)
        assert not hit

    def test_no_stray_tmp_files_after_store(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.store("aa", [1, 2, 3])
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestCliSweep:
    def test_jobs_flag_round_trip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert cli.main(["table2", "--jobs", "2",
                         "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "cells: 5 unique, 0 cached" in out
        assert cli.main(["table2", "--jobs", "2",
                         "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "5 cached (100.0%), 0 executed" in out

    def test_stdout_identical_across_jobs(self, capsys):
        assert cli.main(["table2", "table1", "--jobs", "1",
                         "--no-cache"]) == 0
        sequential = capsys.readouterr().out
        assert cli.main(["table2", "table1", "--jobs", "2",
                         "--no-cache"]) == 0
        parallel = capsys.readouterr().out
        assert sequential == parallel

    def test_timings_flag_prints_table(self, capsys):
        assert cli.main(["table2", "--no-cache", "--jobs", "1",
                         "--timings"]) == 0
        out = capsys.readouterr().out
        assert "Per-cell timings" in out
        assert "peak RSS (MiB)" in out

    def test_no_cache_leaves_no_directory(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cli.main(["table1", "--no-cache"]) == 0
        assert not (tmp_path / ".repro-cache").exists()

    def test_default_cache_dir_is_repro_cache(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert cli.main(["table2", "--jobs", "1"]) == 0
        assert (tmp_path / ".repro-cache").exists()

    def test_impair_misuse_still_exits_2(self, capsys):
        assert cli.main(["fig3", "--impair", "bernoulli:rate=0.01",
                         "--no-cache"]) == 2
        assert "no --impair axis" in capsys.readouterr().err

    def test_profile_engine_keeps_sequential_path(self, capsys):
        assert cli.main(["table2", "--profile-engine"]) == 0
        out = capsys.readouterr().out
        assert "s wall" in out
