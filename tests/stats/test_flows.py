"""Unit tests for the flow monitor."""

import pytest

from repro.core.clock import DilatedClock
from repro.simnet.queues import DropTailQueue
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.stats.flows import UNLABELLED, FlowMonitor
from repro.tcp.stack import TcpStack
from tests.helpers import Collector


def build(monitor_clock=None, queue_packets=100):
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    link = net.add_link(
        a, b, mbps(10), ms(5),
        queue_factory=lambda: DropTailQueue(capacity_packets=queue_packets),
    )
    net.finalize()
    monitor = FlowMonitor(clock=monitor_clock)
    monitor.watch(link.b_to_a, kinds=("rx",))       # data arriving at b
    monitor.watch(link.a_to_b, kinds=("drop",))     # drops on the way
    return net, a, b, link, monitor


def test_per_flow_rx_accounting():
    net, a, b, link, monitor = build()
    events = Collector()
    sb = TcpStack(b)
    sb.listen(80, events.on_accept, on_data=events.on_data)
    sa = TcpStack(a)
    sa.connect("b", 80, flow_id="flow-A").send(50_000)
    sa.connect("b", 80, flow_id="flow-B").send(20_000)
    net.run(until=5.0)
    assert monitor.flow("flow-A").rx_bytes > 50_000  # headers included
    assert monitor.flow("flow-B").rx_bytes > 20_000
    assert monitor.flow("flow-A").rx_packets > monitor.flow("flow-B").rx_packets


def test_unlabelled_flows_grouped():
    net, a, b, link, monitor = build()
    events = Collector()
    TcpStack(b).listen(80, events.on_accept, on_data=events.on_data)
    TcpStack(a).connect("b", 80).send(10_000)
    net.run(until=2.0)
    assert UNLABELLED in monitor.flows
    assert monitor.flow(UNLABELLED).rx_bytes > 10_000


def test_drop_accounting():
    net, a, b, link, monitor = build(queue_packets=5)
    events = Collector()
    TcpStack(b).listen(80, events.on_accept, on_data=events.on_data)
    TcpStack(a).connect("b", 80, flow_id="big").send(2_000_000)
    net.run(until=10.0)
    assert monitor.flow("big").drops > 0
    assert monitor.total_drops() == monitor.flow("big").drops


def test_rate_and_duration():
    net, a, b, link, monitor = build()
    events = Collector()
    TcpStack(b).listen(80, events.on_accept, on_data=events.on_data)
    TcpStack(a).connect("b", 80, flow_id="f").send(500_000)
    net.run(until=5.0)
    stats = monitor.flow("f")
    assert stats.duration() > 0
    assert stats.rx_rate_bps() == pytest.approx(
        stats.rx_bytes * 8 / stats.duration()
    )


def test_top_by_rx_bytes():
    net, a, b, link, monitor = build()
    events = Collector()
    sb = TcpStack(b)
    sb.listen(80, events.on_accept, on_data=events.on_data)
    sa = TcpStack(a)
    sa.connect("b", 80, flow_id="small").send(5_000)
    sa.connect("b", 80, flow_id="large").send(100_000)
    net.run(until=5.0)
    top = monitor.top_by_rx_bytes(1)
    assert top[0].flow_id == "large"


def test_dilated_monitor_reports_virtual_times():
    net, a, b, link, _ = build()
    sim = net.sim
    monitor = FlowMonitor(clock=DilatedClock(sim, tdf=10))
    monitor.watch(link.b_to_a, kinds=("rx",))
    events = Collector()
    TcpStack(b).listen(80, events.on_accept, on_data=events.on_data)
    TcpStack(a).connect("b", 80, flow_id="f").send(200_000)
    net.run(until=5.0)
    stats = monitor.flow("f")
    # 5 physical seconds = at most 0.5 virtual seconds of observation.
    assert stats.duration() < 0.5
    assert stats.rx_rate_bps() > mbps(10)  # perceived 10x


def test_missing_flow_raises():
    _, _, _, _, monitor = build()
    with pytest.raises(KeyError):
        monitor.flow("ghost")


def test_interface_drop_taxonomy_surfaced():
    from repro.simnet.impairments import BernoulliLoss, ImpairmentChain

    net, a, b, link, monitor = build()
    link.a_to_b.set_impairments(
        ImpairmentChain([BernoulliLoss(0.05, seed=2)])
    )
    events = Collector()
    TcpStack(b).listen(80, events.on_accept, on_data=events.on_data)
    TcpStack(a).connect("b", 80, flow_id="f").send(200_000)
    net.run(until=10.0)
    per_iface = monitor.interface_drops()
    assert per_iface[link.a_to_b.name].get("loss", 0) > 0
    assert per_iface[link.b_to_a.name] == {}
    assert monitor.drops_by_reason()["loss"] == \
        per_iface[link.a_to_b.name]["loss"]


def test_tcp_summary_aggregates_tracked_sockets():
    net, a, b, link, monitor = build()
    link.a_to_b.set_loss(
        lambda pkt: 20_000 < getattr(pkt.payload, "seq", 0) < 25_000
    )
    events = Collector()
    TcpStack(b).listen(80, events.on_accept, on_data=events.on_data)
    sock = TcpStack(a).connect("b", 80, flow_id="f")
    monitor.track_socket(sock)
    sock.send(100_000)
    net.run(until=10.0)
    summary = monitor.tcp_summary()
    assert summary["retransmits"] == sock.retransmits > 0
    assert summary["dupacks_received"] == sock.dupacks_received
    assert summary["fast_recoveries"] == sock.fast_recoveries
