"""Unit tests for the engine profiler."""

from repro.simnet import engine
from repro.simnet.engine import Simulator
from repro.stats.engineprof import EngineProfiler, profiled


def tick():
    pass


def tock():
    pass


def test_records_events_and_histogram():
    sim = Simulator()
    profiler = EngineProfiler()
    sim.attach_profiler(profiler)
    for i in range(3):
        sim.schedule(float(i + 1), tick)
    sim.schedule(4.0, tock)
    sim.run()
    assert profiler.events == 4
    assert profiler.by_component == {"tick": 3, "tock": 1}
    assert profiler.sims == [sim]


def test_aggregates_across_simulators():
    profiler = EngineProfiler()
    for count in (2, 5):
        sim = Simulator()
        sim.attach_profiler(profiler)
        for i in range(count):
            sim.schedule(float(i + 1), tick)
        sim.run()
    assert profiler.events == 7
    assert len(profiler.sims) == 2
    snap = profiler.snapshot()
    assert snap["events"] == 7
    assert snap["simulators"] == 2
    assert snap["by_component"] == {"tick": 7}


def test_snapshot_carries_heap_hygiene_counters():
    sim = Simulator()
    profiler = EngineProfiler()
    sim.attach_profiler(profiler)
    event = sim.schedule(1.0, tick)
    for i in range(200):  # force compaction sweeps
        event.reschedule(1.0 + i * 1e-6)
    sim.run()
    snap = profiler.snapshot()
    assert snap["compactions"] == sim.compactions > 0
    assert snap["dead_entries_reaped"] == sim.dead_entries_reaped > 0
    assert snap["max_heap_len"] == sim.max_heap_len
    assert snap["live_events"] == 0


def test_profiled_context_auto_attaches_and_clears():
    with profiled() as profiler:
        sim = Simulator()
        sim.schedule(1.0, tick)
        sim.run()
    assert profiler.events == 1
    assert engine._default_profiler is None
    assert Simulator()._profiler is None


def test_profiled_clears_default_on_error():
    try:
        with profiled():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert engine._default_profiler is None


def test_detach_stops_recording():
    sim = Simulator()
    profiler = EngineProfiler()
    sim.attach_profiler(profiler)
    sim.schedule(1.0, tick)
    sim.run()
    sim.attach_profiler(None)
    sim.schedule(1.0, tick)
    sim.run()
    assert profiler.events == 1


def test_profiling_does_not_perturb_results():
    def drive(sim):
        order = []

        def hop(n):
            order.append((sim.now, n))
            if n < 50:
                sim.schedule_transient(0.5, hop, n + 1)

        sim.schedule_transient(0.5, hop, 1)
        sim.run()
        return order, sim.events_processed

    plain = drive(Simulator())
    with profiled():
        observed = drive(Simulator())
    assert observed == plain


def test_render_mentions_throughput_and_components():
    sim = Simulator()
    profiler = EngineProfiler()
    sim.attach_profiler(profiler)
    sim.schedule(1.0, tick)
    sim.run()
    text = profiler.render()
    assert "events/sec" in text
    assert "tick" in text
    assert "compactions" in text


def test_named_counters_merged_across_sims_and_rendered():
    profiler = EngineProfiler()
    sims = [Simulator(), Simulator()]
    for index, sim in enumerate(sims):
        sim.attach_profiler(profiler)
        sim.counters["drop.loss"] = 3 + index
        sim.schedule(1.0, tick)
        sim.run()
    assert profiler.counters() == {"drop.loss": 7}
    snap = profiler.snapshot()
    assert snap["counters"] == {"drop.loss": 7}
    assert "drop.loss" in profiler.render()


def test_realtime_counters_split_into_own_section():
    profiler = EngineProfiler()
    sim = Simulator()
    sim.attach_profiler(profiler)
    sim.counters["realtime.deadline_miss"] = 2
    sim.counters["realtime.max_slip_ms"] = 7.5
    sim.counters["realtime.busy_frac"] = 0.42
    sim.counters["drop.loss"] = 1
    sim.schedule(1.0, tick)
    sim.run()
    assert profiler.realtime_counters() == {
        "deadline_miss": 2, "max_slip_ms": 7.5, "busy_frac": 0.42,
    }
    snap = profiler.snapshot()
    assert snap["realtime"]["deadline_miss"] == 2
    rendered = profiler.render()
    assert "realtime pacing:" in rendered
    assert "deadline_miss" in rendered
    # The generic counter section excludes the realtime namespace.
    generic_start = rendered.index("  counters:")
    assert "realtime." not in rendered[generic_start:]
