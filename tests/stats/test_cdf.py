"""Unit tests for percentiles, CDFs, and the KS statistic."""

import numpy
import pytest
from hypothesis import given, strategies as st
from scipy import stats as scipy_stats

from repro.stats.cdf import Cdf, ks_distance, percentile


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50) == 5.0

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_single_sample(self):
        assert percentile([7.0], 90) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100),
        st.floats(min_value=0, max_value=100),
    )
    def test_property_matches_numpy_linear(self, data, q):
        expected = float(numpy.percentile(data, q))
        assert percentile(data, q) == pytest.approx(expected, rel=1e-9, abs=1e-9)


class TestCdf:
    def test_evaluate(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(1.0) == 0.25
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(10.0) == 1.0

    def test_median_and_quantile(self):
        cdf = Cdf([1.0, 2.0, 3.0])
        assert cdf.median == 2.0
        assert cdf.quantile(1.0) == 3.0

    def test_points_monotone(self):
        cdf = Cdf([1.0, 5.0, 2.0, 8.0, 3.0])
        points = cdf.points(steps=20)
        probabilities = [p for _, p in points]
        assert probabilities == sorted(probabilities)
        assert probabilities[-1] == 1.0

    def test_points_degenerate(self):
        assert Cdf([2.0, 2.0]).points() == [(2.0, 1.0)]

    def test_points_needs_steps(self):
        with pytest.raises(ValueError):
            Cdf([1.0, 2.0]).points(steps=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf([])


class TestKs:
    def test_identical_samples_zero(self):
        data = [1.0, 2.0, 3.0]
        assert ks_distance(data, data) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_distance([1.0, 2.0], [10.0, 11.0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance([], [1.0])
        with pytest.raises(ValueError):
            ks_distance([1.0], [])
        with pytest.raises(ValueError):
            ks_distance([], [])

    def test_single_sample_each_side(self):
        assert ks_distance([1.0], [1.0]) == 0.0
        assert ks_distance([1.0], [2.0]) == 1.0

    def test_identical_constant_distributions_zero(self):
        # Zero-variance samples: every value ties, so the tie-handling
        # sweep must report exact agreement, not divide by zero or return
        # a spurious step.
        assert ks_distance([3.0] * 5, [3.0] * 7) == 0.0

    def test_shifted_constant_distributions_one(self):
        assert ks_distance([3.0] * 5, [4.0] * 7) == 1.0

    def test_constant_vs_spread_partial(self):
        # Half of the spread sample sits strictly below the constant, so
        # the sup gap is 0.5 just left of the constant's step.
        assert ks_distance([2.0, 2.0], [1.0, 3.0]) == 0.5

    @given(
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=80),
        st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=80),
    )
    def test_property_matches_scipy(self, a, b):
        expected = scipy_stats.ks_2samp(a, b, method="asymp").statistic
        assert ks_distance(a, b) == pytest.approx(float(expected), abs=1e-9)


class ComparisonCountingFloat(float):
    """Float that counts order comparisons — a sort shows up as count > 0."""

    comparisons = 0

    def __lt__(self, other):
        ComparisonCountingFloat.comparisons += 1
        return float.__lt__(self, other)

    def __gt__(self, other):
        ComparisonCountingFloat.comparisons += 1
        return float.__gt__(self, other)


class TestQuantileFastPath:
    def test_quantile_matches_percentile(self):
        data = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
        cdf = Cdf(data)
        for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
            assert cdf.quantile(q) == percentile(data, q * 100)

    def test_quantile_does_not_resort(self):
        data = [ComparisonCountingFloat(v) for v in (4.0, 1.0, 3.0, 2.0)]
        cdf = Cdf(data)  # construction sorts exactly once
        ComparisonCountingFloat.comparisons = 0
        assert cdf.quantile(0.5) == 2.5
        assert cdf.median == 2.5
        assert cdf.quantile(1.0) == 4.0
        assert ComparisonCountingFloat.comparisons == 0

    def test_percentile_sorted_fast_path_explicit(self):
        ordered = [1.0, 2.0, 3.0, 4.0]
        for q in (0, 37.5, 50, 100):
            assert percentile(ordered, q, is_sorted=True) == percentile(
                list(reversed(ordered)), q
            )
