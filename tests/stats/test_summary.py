"""Unit tests for the Welford summary."""

import statistics

import pytest
from hypothesis import given, strategies as st

from repro.stats.summary import Summary


def test_empty_summary():
    s = Summary()
    assert s.count == 0
    assert s.mean == 0.0
    assert s.variance == 0.0
    assert s.minimum == 0.0
    assert s.maximum == 0.0


def test_single_value():
    s = Summary()
    s.add(5.0)
    assert s.mean == 5.0
    assert s.variance == 0.0
    assert s.minimum == 5.0
    assert s.maximum == 5.0
    assert s.total == 5.0


def test_known_values():
    s = Summary()
    s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert s.mean == pytest.approx(5.0)
    assert s.stdev == pytest.approx(statistics.stdev([2, 4, 4, 4, 5, 5, 7, 9]))
    assert s.minimum == 2.0
    assert s.maximum == 9.0


def test_merge_equals_combined():
    left, right, combined = Summary(), Summary(), Summary()
    data_left = [1.0, 2.0, 3.0]
    data_right = [10.0, 20.0]
    left.extend(data_left)
    right.extend(data_right)
    combined.extend(data_left + data_right)
    merged = left.merge(right)
    assert merged.count == combined.count
    assert merged.mean == pytest.approx(combined.mean)
    assert merged.variance == pytest.approx(combined.variance)
    assert merged.minimum == combined.minimum
    assert merged.maximum == combined.maximum


def test_merge_with_empty():
    s = Summary()
    s.extend([1.0, 2.0])
    merged = s.merge(Summary())
    assert merged.count == 2
    assert merged.mean == pytest.approx(1.5)


def test_merge_two_empties():
    assert Summary().merge(Summary()).count == 0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=200))
def test_property_matches_statistics_module(values):
    s = Summary()
    s.extend(values)
    assert s.mean == pytest.approx(statistics.fmean(values), rel=1e-9, abs=1e-6)
    assert s.variance == pytest.approx(statistics.variance(values), rel=1e-6, abs=1e-6)
    assert s.minimum == min(values)
    assert s.maximum == max(values)


@given(
    st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=50),
    st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=50),
)
def test_property_merge_associative_with_extend(a, b):
    left, right, combined = Summary(), Summary(), Summary()
    left.extend(a)
    right.extend(b)
    combined.extend(a + b)
    merged = left.merge(right)
    assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-9)
    assert merged.variance == pytest.approx(combined.variance, rel=1e-6, abs=1e-9)
