"""Unit tests for clock-aware meters — including dilation behaviour."""

import pytest

from repro.core.clock import DilatedClock
from repro.simnet.clock import PhysicalClock
from repro.simnet.engine import Simulator
from repro.stats.meters import IntervalRecorder, LatencyMeter, ThroughputMeter


def advance(sim, seconds):
    sim.schedule(seconds, lambda: None)
    sim.run()


class TestThroughputMeter:
    def test_rate_physical(self):
        sim = Simulator()
        meter = ThroughputMeter(PhysicalClock(sim))
        meter.add(1250)
        advance(sim, 1.0)
        assert meter.rate_bps() == pytest.approx(10_000)

    def test_rate_zero_elapsed(self):
        sim = Simulator()
        meter = ThroughputMeter(PhysicalClock(sim))
        meter.add(100)
        assert meter.rate_bps() == 0.0

    def test_dilated_meter_reports_scaled_rate(self):
        """The paper's effect: a TDF-10 guest sees 10x the physical rate."""
        sim = Simulator()
        meter = ThroughputMeter(DilatedClock(sim, tdf=10))
        meter.add(12500)  # 100 kb over 10 physical seconds...
        advance(sim, 10.0)
        # ...is 1 virtual second -> 100 kbps perceived, 10x the physical rate.
        assert meter.rate_bps() == pytest.approx(100_000)

    def test_interval_rate(self):
        sim = Simulator()
        meter = ThroughputMeter(PhysicalClock(sim))
        meter.add(1000)
        advance(sim, 1.0)
        assert meter.interval_rate_bps() == pytest.approx(8000)
        meter.add(500)
        advance(sim, 1.0)
        assert meter.interval_rate_bps() == pytest.approx(4000)


class TestIntervalRecorder:
    def test_interarrivals(self):
        sim = Simulator()
        recorder = IntervalRecorder(PhysicalClock(sim))
        for t in (1.0, 1.5, 3.0):
            sim.call_at(t, recorder.mark)
        sim.run()
        assert recorder.interarrivals() == pytest.approx([0.5, 1.5])
        assert len(recorder) == 3

    def test_dilated_recorder_scales_gaps(self):
        sim = Simulator()
        recorder = IntervalRecorder(DilatedClock(sim, tdf=10))
        for t in (10.0, 20.0):
            sim.call_at(t, recorder.mark)
        sim.run()
        assert recorder.interarrivals() == pytest.approx([1.0])


class TestLatencyMeter:
    def test_start_stop(self):
        sim = Simulator()
        meter = LatencyMeter(PhysicalClock(sim))
        meter.start("op")
        advance(sim, 0.25)
        assert meter.stop("op") == pytest.approx(0.25)
        assert meter.summary.mean == pytest.approx(0.25)

    def test_stop_unknown_returns_none(self):
        sim = Simulator()
        meter = LatencyMeter(PhysicalClock(sim))
        assert meter.stop("ghost") is None

    def test_in_flight(self):
        sim = Simulator()
        meter = LatencyMeter(PhysicalClock(sim))
        meter.start(1)
        meter.start(2)
        assert meter.in_flight == 2
        meter.stop(1)
        assert meter.in_flight == 1

    def test_dilated_latency_is_virtual(self):
        sim = Simulator()
        meter = LatencyMeter(DilatedClock(sim, tdf=10))
        meter.start("op")
        advance(sim, 1.0)  # 1 physical second = 0.1 virtual
        assert meter.stop("op") == pytest.approx(0.1)


class TestZeroIntervalConservation:
    """A zero-width interval must not swallow the bytes marked inside it."""

    def test_zero_interval_does_not_consume_marks(self):
        sim = Simulator()
        meter = ThroughputMeter(PhysicalClock(sim))
        meter.add(1000)
        advance(sim, 1.0)
        assert meter.interval_rate_bps() == pytest.approx(8000)
        # Bytes land at the same instant as the next (degenerate) read...
        meter.add(500)
        assert meter.interval_rate_bps() == 0.0
        # ...and must still be reported by the next real interval.
        meter.add(250)
        advance(sim, 1.0)
        assert meter.interval_rate_bps() == pytest.approx(750 * 8)

    def test_interval_deltas_sum_to_total(self):
        sim = Simulator()
        meter = ThroughputMeter(PhysicalClock(sim))
        accounted = 0.0
        last = 0.0
        for chunk in (100, 200, 0, 300, 400):
            meter.add(chunk)
            if chunk != 0:
                advance(sim, 0.5)
            now = meter.clock.now()
            rate = meter.interval_rate_bps()
            accounted += rate * (now - last) / 8 if rate else 0.0
            if rate:
                last = now
        assert accounted == pytest.approx(meter.bytes)

    def test_dilated_zero_interval(self):
        sim = Simulator()
        meter = ThroughputMeter(DilatedClock(sim, tdf=10))
        meter.add(1250)
        assert meter.interval_rate_bps() == 0.0  # no virtual time elapsed
        advance(sim, 10.0)  # 1 virtual second
        assert meter.interval_rate_bps() == pytest.approx(10_000)


class TestLatencyMeterOverwrites:
    def test_restart_counts_overwrite(self):
        sim = Simulator()
        meter = LatencyMeter(PhysicalClock(sim))
        meter.start("op")
        advance(sim, 1.0)
        meter.start("op")  # discards the unfinished timing
        assert meter.overwrites == 1
        advance(sim, 0.5)
        # The measurement reflects the *restarted* timing, not the stale one.
        assert meter.stop("op") == pytest.approx(0.5)

    def test_clean_start_stop_never_counts(self):
        sim = Simulator()
        meter = LatencyMeter(PhysicalClock(sim))
        for key in ("a", "b"):
            meter.start(key)
            advance(sim, 0.1)
            meter.stop(key)
        assert meter.overwrites == 0
        assert meter.in_flight == 0

    def test_repr_exposes_audit_counts(self):
        sim = Simulator()
        meter = LatencyMeter(PhysicalClock(sim))
        meter.start("a")
        meter.start("a")
        meter.start("b")
        advance(sim, 0.2)
        meter.stop("b")
        assert repr(meter) == "LatencyMeter(samples=1, in_flight=1, overwrites=1)"
