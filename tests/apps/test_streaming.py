"""Tests for the media streaming workload and jitter buffer."""

import random

import pytest

from repro.apps.streaming import JitterBufferSink, MediaSource
from repro.core.vmm import Hypervisor
from repro.simnet.errors import ConfigurationError
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.udp.socket import UdpStack


def build_path(delay=ms(20), jitter=None, jitter_seed=5, tdf=None,
               bandwidth=mbps(10)):
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    link = net.add_link(a, b, bandwidth, delay)
    if jitter is not None:
        link.a_to_b.jitter_s = jitter
        link.a_to_b._jitter_rng = random.Random(jitter_seed)
    net.finalize()
    vm = None
    if tdf is not None:
        vmm = Hypervisor(net.sim)
        vmm.create_vm("vma", tdf=tdf, cpu_share=0.5, node=a)
        vm = vmm.create_vm("vmb", tdf=tdf, cpu_share=0.5, node=b)
    return net, UdpStack(a), UdpStack(b), vm


def test_clean_path_all_frames_on_time():
    net, ua, ub, _ = build_path()
    sink = JitterBufferSink(ub, 5004, playout_delay_s=0.060)
    source = MediaSource(ua, "b", 5004, total_frames=100)
    source.start()
    net.run(until=5.0)
    sink.finalize(source.frames_sent)
    assert source.frames_sent == 100
    assert sink.received == 100
    assert sink.on_time == 100
    assert sink.late == 0
    assert sink.lost == 0
    assert sink.playable_fraction() == 1.0
    # One-way delay = propagation + serialisation of a 172+28 byte packet.
    assert sink.delay.mean == pytest.approx(0.020, rel=0.05)


def test_tight_playout_deadline_marks_late():
    # Deadline shorter than the path delay: everything arrives, all late.
    net, ua, ub, _ = build_path(delay=ms(50))
    sink = JitterBufferSink(ub, 5004, playout_delay_s=0.010)
    source = MediaSource(ua, "b", 5004, total_frames=20)
    source.start()
    net.run(until=3.0)
    sink.finalize(source.frames_sent)
    assert sink.late == 20
    assert sink.on_time == 0
    assert all(miss > 0 for miss in sink.late_by)


def test_jitter_makes_some_frames_late():
    net, ua, ub, _ = build_path(delay=ms(30), jitter=ms(15))
    sink = JitterBufferSink(ub, 5004, playout_delay_s=0.038)
    source = MediaSource(ua, "b", 5004, total_frames=300)
    source.start()
    net.run(until=10.0)
    sink.finalize(source.frames_sent)
    assert sink.received == 300
    assert 0 < sink.late < 300  # jitter pushes a fraction past the deadline
    # A deeper buffer absorbs the same jitter.
    net2, ua2, ub2, _ = build_path(delay=ms(30), jitter=ms(15))
    deep = JitterBufferSink(ub2, 5004, playout_delay_s=0.100)
    source2 = MediaSource(ua2, "b", 5004, total_frames=300)
    source2.start()
    net2.run(until=10.0)
    deep.finalize(source2.frames_sent)
    assert deep.late == 0


def test_lost_frames_counted():
    net, ua, ub, _ = build_path()
    link = net.links[0]
    link.a_to_b.set_loss(lambda p: p.payload.payload.seq % 10 == 3)
    sink = JitterBufferSink(ub, 5004)
    source = MediaSource(ua, "b", 5004, total_frames=100)
    source.start()
    net.run(until=5.0)
    sink.finalize(source.frames_sent)
    assert sink.lost == 10
    assert sink.received == 90


def test_dilated_stream_statistics_match_baseline():
    """The figure-5 claim, app-level: playout statistics of a dilated
    stream over the rescaled (including jitter!) path match TDF 1."""
    def run(tdf):
        net, ua, ub, vm = build_path(
            delay=ms(30) * tdf, jitter=ms(10) * tdf, jitter_seed=9, tdf=tdf,
            bandwidth=mbps(10) / tdf,  # the full physical rescale
        )
        sink = JitterBufferSink(ub, 5004, playout_delay_s=0.040)
        source = MediaSource(ua, "b", 5004, total_frames=200)
        source.start()
        horizon = 6.0 if vm is None else vm.clock.to_physical(6.0)
        net.run(until=horizon)
        sink.finalize(source.frames_sent)
        return sink

    base = run(1)
    dilated = run(10)
    assert dilated.received == base.received
    # Frames whose jitter lands exactly on the deadline flip with the last
    # ulp of the scaled jitter draw; allow a couple of boundary frames.
    assert abs(dilated.on_time - base.on_time) <= 4
    assert abs(dilated.late - base.late) <= 4
    assert dilated.delay.mean == pytest.approx(base.delay.mean, rel=1e-6)


def test_source_stop():
    net, ua, ub, _ = build_path()
    sink = JitterBufferSink(ub, 5004)
    source = MediaSource(ua, "b", 5004)
    source.start()
    net.run(until=0.5)
    source.stop()
    at_stop = source.frames_sent
    net.run(until=2.0)
    assert source.frames_sent == at_stop


def test_validation():
    net, ua, ub, _ = build_path()
    with pytest.raises(ConfigurationError):
        MediaSource(ua, "b", 5004, frame_interval_s=0)
    with pytest.raises(ConfigurationError):
        MediaSource(ua, "b", 5004, frame_bytes=0)
    with pytest.raises(ConfigurationError):
        JitterBufferSink(ub, 5005, playout_delay_s=0)
