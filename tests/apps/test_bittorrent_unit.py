"""Unit-level BitTorrent tests: wire sizes, interest, selection, choking."""

import random

import pytest

from repro.apps.bittorrent.messages import (
    Bitfield,
    Choke,
    Handshake,
    Have,
    Interested,
    NotInterested,
    PieceData,
    Request,
    Unchoke,
)
from repro.apps.bittorrent.metainfo import TorrentMeta
from repro.apps.bittorrent.peer import Peer, PeerConfig
from repro.simnet.topology import build_star
from repro.simnet.units import mbps, ms
from repro.tcp.stack import TcpStack
from repro.udp.socket import UdpStack


class TestWireSizes:
    def test_handshake_is_68_bytes(self):
        assert Handshake(peer_name="x").wire_bytes == 68

    def test_bitfield_scales_with_pieces(self):
        assert Bitfield(have=frozenset(), num_pieces=8).wire_bytes == 5 + 1
        assert Bitfield(have=frozenset(), num_pieces=9).wire_bytes == 5 + 2
        assert Bitfield(have=frozenset(), num_pieces=64).wire_bytes == 5 + 8

    def test_control_messages(self):
        assert Have(piece=0).wire_bytes == 9
        assert Interested().wire_bytes == 5
        assert NotInterested().wire_bytes == 5
        assert Choke().wire_bytes == 5
        assert Unchoke().wire_bytes == 5
        assert Request(piece=3).wire_bytes == 17

    def test_piece_data_carries_payload(self):
        assert PieceData(piece=0, length=65536).wire_bytes == 13 + 65536


def make_peer(seed=False, leaves=3, pieces=8):
    star = build_star(leaves=leaves, leaf_bandwidth_bps=mbps(10),
                      leaf_delay_s=ms(1))
    meta = TorrentMeta("t", total_bytes=pieces * 1000, piece_size=1000)
    node = star.leaves[0]
    peer = Peer(
        tcp=TcpStack(node),
        udp=UdpStack(node),
        meta=meta,
        tracker_addr=star.leaves[-1].name,
        rng=random.Random(1),
        seed=seed,
        config=PeerConfig(),
    )
    return star.network, peer, meta


class TestPeerState:
    def test_seed_starts_complete(self):
        _, peer, meta = make_peer(seed=True)
        assert peer.complete
        assert peer.have == set(range(meta.num_pieces))

    def test_leecher_starts_empty(self):
        _, peer, _ = make_peer(seed=False)
        assert not peer.complete
        assert peer.have == set()

    def test_rarest_first_prefers_scarce_piece(self):
        from repro.apps.bittorrent.peer import _Connection

        net, peer, meta = make_peer()
        peer._send = lambda conn, msg: None
        # Two fake connections: piece 0 is common, piece 5 is rare. The
        # replica counts are maintained incrementally as pieces arrive.
        common = _Connection(socket=None)
        other = _Connection(socket=None)
        peer._connections = [common, other]
        peer._add_remote_pieces(common, {0, 5})
        peer._add_remote_pieces(other, {0})
        assert peer._avail[0] == 2
        assert peer._avail[5] == 1
        candidates = peer._needed_from(common)
        rarest = min(peer._avail[p] for p in candidates)
        pool = [p for p in candidates if peer._avail[p] == rarest]
        assert pool == [5]

    def test_availability_drops_with_disconnect(self):
        from repro.apps.bittorrent.peer import _Connection

        _, peer, _ = make_peer()
        peer._send = lambda conn, msg: None
        sock = object()
        connection = _Connection(socket=sock)
        peer._connections = [connection]
        peer._by_socket[id(sock)] = connection
        peer._add_remote_pieces(connection, {0, 5})
        assert peer._avail[5] == 1
        peer._drop_connection(sock)
        assert peer._avail[5] == 0

    def test_needed_excludes_held_and_pending(self):
        from repro.apps.bittorrent.peer import _Connection

        _, peer, _ = make_peer()
        peer._send = lambda conn, msg: None
        connection = _Connection(socket=None)
        peer._connections = [connection]
        peer.have.add(0)
        peer._add_remote_pieces(connection, {0, 1, 2})
        peer._pending[1] = connection
        assert peer._needed_from(connection) == [2]

    def test_download_time_none_while_leeching(self):
        _, peer, _ = make_peer()
        assert peer.download_time() is None


class TestChokerPolicy:
    def test_top_uploaders_unchoked(self):
        """Drive the choke round with crafted per-connection counters."""
        from repro.apps.bittorrent.peer import _Connection

        net, peer, _ = make_peer()
        sent = []
        peer._send = lambda conn, msg: sent.append((conn, type(msg).__name__))
        connections = []
        for index, gave_us in enumerate([5000, 100, 9000, 0, 4000]):
            connection = _Connection(socket=None, remote_name=f"p{index}")
            connection.peer_interested = True
            connection.downloaded_window = gave_us
            connections.append(connection)
        peer._connections = connections
        peer._choke_round(1)
        unchoked = {c.remote_name for c, m in sent if m == "Unchoke"}
        # Top 3 reciprocation slots: p2 (9000), p0 (5000), p4 (4000),
        # plus one optimistic from the rest.
        assert {"p2", "p0", "p4"} <= unchoked
        assert len(unchoked) == 4

    def test_windows_reset_each_round(self):
        from repro.apps.bittorrent.peer import _Connection

        _, peer, _ = make_peer()
        peer._send = lambda conn, msg: None
        connection = _Connection(socket=None, remote_name="p0")
        connection.peer_interested = True
        connection.downloaded_window = 777
        peer._connections = [connection]
        peer._choke_round(1)
        assert connection.downloaded_window == 0

    def test_uninterested_peers_stay_choked(self):
        from repro.apps.bittorrent.peer import _Connection

        _, peer, _ = make_peer()
        sent = []
        peer._send = lambda conn, msg: sent.append(type(msg).__name__)
        connection = _Connection(socket=None, remote_name="p0")
        connection.peer_interested = False
        peer._connections = [connection]
        peer._choke_round(1)
        assert "Unchoke" not in sent

    def test_choke_sent_when_falling_out_of_top(self):
        from repro.apps.bittorrent.peer import _Connection

        _, peer, _ = make_peer()
        sent = []
        peer._send = lambda conn, msg: sent.append((conn.remote_name,
                                                    type(msg).__name__))
        connection = _Connection(socket=None, remote_name="p0")
        connection.peer_interested = True
        connection.am_choking = False  # currently unchoked
        connection.peer_interested = False  # no longer interested
        peer._connections = [connection]
        peer._choke_round(1)
        assert ("p0", "Choke") in sent
