"""Tracker and peer lifecycle regression tests.

The seed code had three lifecycle bugs that only bit at swarm scale:
``announce()`` fired one datagram, never retried, and leaked its ephemeral
socket; ``TrackerServer`` never forgot a peer; and a seed's
``download_time()`` was an ill-defined ``completed_at - started_at`` pair.
These tests pin the fixes at the unit level; the swarm-scale integration
lives in ``tests/harness/test_swarm_scale_equivalence.py``.
"""

from repro.apps.bittorrent.tracker import (
    ANNOUNCE_MAX_TRIES,
    TrackerServer,
    announce,
)
from repro.simnet.topology import build_star
from repro.simnet.units import mbps, ms
from repro.udp.socket import UdpStack

from .test_bittorrent import make_swarm


def _star(leaves):
    return build_star(leaves=leaves, leaf_bandwidth_bps=mbps(10),
                      leaf_delay_s=ms(1))


class TestAnnounceRetry:
    def test_retries_with_backoff_until_reply_budget_exhausted(self):
        """With nothing listening on the tracker port, the client keeps
        retrying on its virtual clock — 2 s base doubling to the 16 s cap —
        then gives up and releases the socket."""
        star = _star(2)
        _, client = star.leaves
        stack = UdpStack(client)
        handle = announce(stack, star.leaves[0].name, "t", client.name, 6881,
                          lambda peers: None)
        assert handle.tries == 1
        # Transmissions land at t = 0, 2, 6, 14, 30, 46 (cap), ...
        star.network.run(until=1.0)
        assert handle.tries == 1
        star.network.run(until=2.5)
        assert handle.tries == 2
        star.network.run(until=6.5)
        assert handle.tries == 3
        star.network.run(until=14.5)
        assert handle.tries == 4
        star.network.run(until=500.0)
        assert handle.tries == ANNOUNCE_MAX_TRIES
        assert handle.done and not handle.replied
        # The ephemeral socket was closed when the budget ran out.
        assert not stack._sockets

    def test_reply_stops_retries_and_closes_socket(self):
        star = _star(3)
        tracker_node, _, client = star.leaves
        TrackerServer(UdpStack(tracker_node))
        stack = UdpStack(client)
        got = []
        handle = announce(stack, tracker_node.name, "t", client.name, 6881,
                          got.append)
        star.network.run(until=30.0)
        assert handle.replied and handle.done
        assert handle.tries == 1  # reply beat the first retry
        assert got == [[]]
        assert not stack._sockets  # socket closed on reply, not leaked

    def test_cancel_releases_socket(self):
        star = _star(2)
        _, client = star.leaves
        stack = UdpStack(client)
        handle = announce(stack, star.leaves[0].name, "t", client.name, 6881,
                          lambda peers: None)
        handle.cancel()
        assert handle.done
        assert not stack._sockets
        star.network.run(until=60.0)  # no retry timer left behind
        assert handle.tries == 1


class TestRegistryLifecycle:
    def test_stopped_announce_deregisters_peer(self):
        star = _star(4)
        tracker_node, p1, p2, p3 = star.leaves
        tracker = TrackerServer(UdpStack(tracker_node))
        stack1 = UdpStack(p1)
        announce(stack1, tracker_node.name, "t", p1.name, 6881, None)
        announce(UdpStack(p2), tracker_node.name, "t", p2.name, 6881, None)
        star.network.run(until=1.0)
        assert tracker.swarm_size("t") == 2
        announce(stack1, tracker_node.name, "t", p1.name, 6881, None,
                 event="stopped")
        star.network.run(until=2.0)
        assert tracker.swarm_size("t") == 1
        assert tracker.departed == 1
        # A later announcer must not be handed the departed peer.
        sample = []
        announce(UdpStack(p3), tracker_node.name, "t", p3.name, 6881,
                 sample.append)
        star.network.run(until=3.0)
        assert sample == [[(p2.name, 6881)]]

    def test_ttl_expires_silent_peers(self):
        star = _star(3)
        tracker_node, p1, p2 = star.leaves
        tracker = TrackerServer(UdpStack(tracker_node), peer_ttl_s=60.0)
        announce(UdpStack(p1), tracker_node.name, "t", p1.name, 6881, None)
        star.network.run(until=1.0)
        assert tracker.swarm_size("t") == 1
        # 100 virtual seconds later p1 has long exceeded its TTL: the next
        # announce prunes it and the sample excludes it.
        star.network.run(until=100.0)
        sample = []
        announce(UdpStack(p2), tracker_node.name, "t", p2.name, 6881,
                 sample.append)
        star.network.run(until=101.0)
        assert sample == [[]]
        assert tracker.expired == 1
        assert tracker.swarm_size("t") == 1  # just p2

    def test_peer_stop_reaches_tracker(self):
        net, swarm, _ = make_swarm(leechers=2)
        swarm.start()
        net.run(until=5.0)
        assert swarm.tracker.swarm_size("test.torrent") == 3
        leaver = swarm.leechers[0]
        leaver.stop()
        net.run(until=10.0)
        assert swarm.tracker.departed == 1
        assert leaver.name not in swarm.tracker.registry["test.torrent"]


class TestDownloadTimeGuard:
    def test_unstarted_seed_download_time_is_zero(self):
        """The seed-era bug: an unstarted seed had ``completed_at=0.0`` and
        ``started_at=None``, making download_time blow up or go negative
        depending on the caller. It is 0.0 by definition now."""
        _, swarm, _ = make_swarm(leechers=1)
        assert swarm.seeds[0].download_time() == 0.0

    def test_incomplete_leecher_download_time_is_none(self):
        _, swarm, _ = make_swarm(leechers=1)
        assert swarm.leechers[0].download_time() is None

    def test_download_times_calls_each_peer_once(self):
        net, swarm, _ = make_swarm(leechers=2)
        swarm.start()
        net.run(until=600.0)
        assert swarm.all_complete()
        calls = {}
        for peer in swarm.leechers:
            original = peer.download_time

            def counted(peer=peer, original=original):
                calls[peer.name] = calls.get(peer.name, 0) + 1
                return original()

            peer.download_time = counted
        times = swarm.download_times()
        assert len(times) == 2
        assert all(count == 1 for count in calls.values())


def test_swarm_survives_rng_shared_tracker():
    """The tracker's sampling rng must not perturb peer rngs (guards the
    deterministic-merge property the golden tests rely on)."""
    def run(seed):
        net, swarm, _ = make_swarm(leechers=3, seed_value=seed)
        swarm.start()
        net.run(until=600.0)
        return swarm.download_times()

    assert run(4321) == run(4321)
