"""Tests for the persistent (keep-alive) HTTP client."""

import random

import pytest

from repro.apps.httpclient import PersistentHttpClient
from repro.apps.httpd import WebServer
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.tcp.stack import TcpStack
from repro.workloads.specweb import SpecWebMix


def build_site(delay=ms(25)):
    net = Network()
    www = net.add_node("www")
    client_node = net.add_node("client")
    net.add_link(www, client_node, mbps(100), delay)
    net.finalize()
    mix = SpecWebMix(rng=random.Random(3))
    server = WebServer(TcpStack(www), mix)
    return net, client_node, mix, server


def test_all_requests_complete_on_one_connection():
    net, client_node, mix, server = build_site()
    done = []
    client = PersistentHttpClient(
        TcpStack(client_node), "www", mix=mix, request_count=10,
        on_complete=done.append,
    )
    client.start()
    net.run(until=10.0)
    assert client.completed == 10
    assert client.failed == 0
    assert done == [client]
    assert server.requests_served == 10
    # One connection total: the stack allocated exactly one ephemeral port.
    assert client._socket is not None


def test_keepalive_skips_the_per_request_handshake():
    """A small request on the persistent connection costs ~1 RTT; the
    per-connection client pays the handshake too (~2 RTT)."""
    net, client_node, mix, server = build_site(delay=ms(50))
    client = PersistentHttpClient(
        TcpStack(client_node), "www", mix=mix, request_count=8,
    )
    client.start()
    net.run(until=20.0)
    assert client.completed == 8
    keepalive_median = sorted(client.latencies)[len(client.latencies) // 2]
    assert keepalive_median == pytest.approx(0.100, rel=0.1)  # one RTT

    from repro.apps.httpclient import OpenLoopHttpLoad

    net2, client_node2, mix2, _ = build_site(delay=ms(50))
    load = OpenLoopHttpLoad(
        TcpStack(client_node2), "www", rate_per_second=2.0,
        mix=mix2, rng=random.Random(5), duration_s=4.0,
    )
    load.start()
    net2.run(until=20.0)
    assert load.completed > 0
    per_connection_min = load.latency.summary.minimum
    assert per_connection_min >= 0.200  # handshake + request, 2 RTT
    assert keepalive_median < per_connection_min


def test_request_count_validated():
    net, client_node, mix, _ = build_site()
    with pytest.raises(ValueError):
        PersistentHttpClient(TcpStack(client_node), "www", mix=mix,
                             request_count=0)


def test_error_counted_on_refused_connection():
    net = Network()
    www = net.add_node("www")
    client_node = net.add_node("client")
    net.add_link(www, client_node, mbps(10), ms(5))
    net.finalize()
    TcpStack(www)  # stack but no listener: SYN gets RST
    mix = SpecWebMix(rng=random.Random(1))
    client = PersistentHttpClient(
        TcpStack(client_node), "www", mix=mix, request_count=3,
    )
    client.start()
    net.run(until=5.0)
    assert client.failed == 1
    assert client.completed == 0
