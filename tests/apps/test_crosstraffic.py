"""Unit tests for cross-traffic sources."""

import random

import pytest

from repro.apps.crosstraffic import CbrSource, OnOffSource, UdpSink
from repro.core.vmm import Hypervisor
from repro.simnet.errors import ConfigurationError
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.udp.socket import UdpStack


def wired_pair(tdf=None):
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    net.add_link(a, b, mbps(100), ms(1))
    net.finalize()
    vm = None
    if tdf is not None:
        vmm = Hypervisor(net.sim)
        vmm.create_vm("vma", tdf=tdf, cpu_share=0.5, node=a)
        vm = vmm.create_vm("vmb", tdf=tdf, cpu_share=0.5, node=b)
    return net, UdpStack(a), UdpStack(b), vm


class TestCbr:
    def test_rate_is_constant(self):
        net, ua, ub, _ = wired_pair()
        sink = UdpSink(ub, 9000)
        source = CbrSource(ua, "b", 9000, rate_bps=mbps(1), packet_bytes=1250)
        source.start()
        net.run(until=10.0)
        # 1 Mbps for 10 s = 1.25 MB.
        assert sink.bytes_received == pytest.approx(1_250_000, rel=0.02)

    def test_stop_halts_emission(self):
        net, ua, ub, _ = wired_pair()
        sink = UdpSink(ub, 9000)
        source = CbrSource(ua, "b", 9000, rate_bps=mbps(1))
        source.start()
        net.run(until=1.0)
        source.stop()
        at_stop = source.packets_sent
        net.run(until=3.0)
        assert source.packets_sent == at_stop

    def test_dilated_source_emits_at_perceived_rate(self):
        """A TDF-10 guest's '1 Mbps' CBR stream is 0.1 Mbps on the wire."""
        net, ua, ub, vm = wired_pair(tdf=10)
        sink = UdpSink(ub, 9000)
        source = CbrSource(ua, "b", 9000, rate_bps=mbps(1), packet_bytes=1250)
        source.start()
        net.run(until=vm.clock.to_physical(5.0))  # 5 virtual = 50 physical s
        # 5 virtual seconds at a perceived 1 Mbps.
        assert sink.bytes_received == pytest.approx(625_000, rel=0.02)

    def test_validation(self):
        _, ua, _, _ = wired_pair()
        with pytest.raises(ConfigurationError):
            CbrSource(ua, "b", 9000, rate_bps=0)
        with pytest.raises(ConfigurationError):
            CbrSource(ua, "b", 9000, rate_bps=1e6, packet_bytes=0)


class TestOnOff:
    def test_average_rate_property(self):
        _, ua, _, _ = wired_pair()
        source = OnOffSource(
            ua, "b", 9000, peak_rate_bps=mbps(10),
            mean_on_s=1.0, mean_off_s=4.0, rng=random.Random(1),
        )
        assert source.average_rate_bps == pytest.approx(mbps(2))

    def test_longrun_rate_approaches_average(self):
        net, ua, ub, _ = wired_pair()
        sink = UdpSink(ub, 9000)
        source = OnOffSource(
            ua, "b", 9000, peak_rate_bps=mbps(4),
            mean_on_s=0.5, mean_off_s=0.5, rng=random.Random(7),
        )
        source.start()
        horizon = 60.0
        net.run(until=horizon)
        measured = sink.bytes_received * 8 / horizon
        assert measured == pytest.approx(source.average_rate_bps, rel=0.25)

    def test_bursts_alternate_with_silence(self):
        net, ua, ub, _ = wired_pair()
        times = []

        class RecordingSink:
            def __init__(self, udp):
                udp.bind(9000, lambda s, d: times.append(net.sim.now))

        RecordingSink(ub)
        source = OnOffSource(
            ua, "b", 9000, peak_rate_bps=mbps(8),
            mean_on_s=0.3, mean_off_s=0.7, rng=random.Random(3),
        )
        source.start()
        net.run(until=20.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        packet_slot = 1000 * 8 / mbps(8)
        long_gaps = [g for g in gaps if g > 5 * packet_slot]
        assert long_gaps, "no OFF periods observed"
        assert len(long_gaps) < len(gaps) / 2, "no sustained ON bursts"

    def test_validation(self):
        _, ua, _, _ = wired_pair()
        with pytest.raises(ConfigurationError):
            OnOffSource(ua, "b", 9000, peak_rate_bps=0, mean_on_s=1,
                        mean_off_s=1, rng=random.Random(0))
        with pytest.raises(ConfigurationError):
            OnOffSource(ua, "b", 9000, peak_rate_bps=1e6, mean_on_s=0,
                        mean_off_s=1, rng=random.Random(0))
