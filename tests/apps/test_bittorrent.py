"""Integration tests for the BitTorrent swarm."""

import random

import pytest

from repro.apps.bittorrent import PeerConfig, TorrentMeta, build_swarm
from repro.simnet.topology import build_star
from repro.simnet.units import mbps, ms
from repro.udp.socket import UdpStack


def make_swarm(leechers=4, total_bytes=512 * 1024, piece_size=64 * 1024,
               bandwidth=mbps(10), seed_value=1234):
    star = build_star(
        leaves=leechers + 2,  # tracker + seed + leechers
        leaf_bandwidth_bps=bandwidth,
        leaf_delay_s=ms(5),
    )
    nodes = star.leaves
    meta = TorrentMeta(name="test.torrent", total_bytes=total_bytes,
                       piece_size=piece_size)
    swarm = build_swarm(
        tracker_node=nodes[0],
        seed_nodes=[nodes[1]],
        leecher_nodes=nodes[2:],
        meta=meta,
        rng=random.Random(seed_value),
        config=PeerConfig(choke_interval_s=2.0, stall_timeout_s=10.0),
    )
    return star.network, swarm, meta


class TestMetainfo:
    def test_piece_count_and_lengths(self):
        meta = TorrentMeta("t", total_bytes=100, piece_size=30)
        assert meta.num_pieces == 4
        assert meta.piece_length(0) == 30
        assert meta.piece_length(3) == 10
        assert sum(meta.piece_length(i) for i in range(4)) == 100

    def test_exact_multiple(self):
        meta = TorrentMeta("t", total_bytes=90, piece_size=30)
        assert meta.num_pieces == 3
        assert meta.piece_length(2) == 30

    def test_bad_index(self):
        meta = TorrentMeta("t", total_bytes=90, piece_size=30)
        with pytest.raises(Exception):
            meta.piece_length(3)

    def test_validation(self):
        with pytest.raises(Exception):
            TorrentMeta("t", total_bytes=0)
        with pytest.raises(Exception):
            TorrentMeta("t", total_bytes=10, piece_size=0)


class TestTracker:
    def test_announce_returns_prior_peers(self):
        from repro.apps.bittorrent.tracker import TrackerServer, announce
        from repro.simnet.topology import build_star as star_builder

        star = star_builder(leaves=3, leaf_bandwidth_bps=mbps(10),
                            leaf_delay_s=ms(1))
        tracker_node, p1, p2 = star.leaves
        tracker = TrackerServer(UdpStack(tracker_node))
        results = {}
        announce(UdpStack(p1), tracker_node.name, "t", p1.name, 6881,
                 lambda peers: results.setdefault("p1", peers))
        star.network.run(until=0.1)
        announce(UdpStack(p2), tracker_node.name, "t", p2.name, 6881,
                 lambda peers: results.setdefault("p2", peers))
        star.network.run(until=0.2)
        assert results["p1"] == []
        assert results["p2"] == [(p1.name, 6881)]
        assert tracker.swarm_size("t") == 2


class TestSwarm:
    def test_single_leecher_downloads_from_seed(self):
        net, swarm, meta = make_swarm(leechers=1)
        swarm.start()
        net.run(until=300.0)
        assert swarm.all_complete()
        leecher = swarm.leechers[0]
        assert leecher.bytes_downloaded == meta.total_bytes
        assert leecher.download_time() > 0

    def test_multi_leecher_swarm_completes(self):
        net, swarm, meta = make_swarm(leechers=4)
        swarm.start()
        net.run(until=600.0)
        assert swarm.all_complete()
        times = swarm.download_times()
        assert len(times) == 4
        assert all(t > 0 for t in times)

    def test_leechers_exchange_pieces_not_just_seed(self):
        """With a slow seed and several leechers, peer-to-peer exchange must
        carry some of the load (the seed alone cannot have uploaded
        everything)."""
        net, swarm, meta = make_swarm(leechers=4, total_bytes=2 * 1024 * 1024)
        swarm.start()
        net.run(until=600.0)
        seed_uploaded = swarm.seeds[0].bytes_uploaded
        total_downloaded = sum(p.bytes_downloaded for p in swarm.leechers)
        # Wire bytes may slightly exceed the file size: a re-request racing
        # a choke can deliver a duplicate piece (wasted bandwidth, as in
        # real swarms) — but it must stay a small fraction.
        assert total_downloaded >= 4 * meta.total_bytes
        assert total_downloaded <= 4 * meta.total_bytes * 1.10
        assert seed_uploaded < total_downloaded

    def test_staggered_start(self):
        net, swarm, meta = make_swarm(leechers=2)
        swarm.start(stagger_s=1.0)
        net.run(until=600.0)
        assert swarm.all_complete()

    def test_determinism_same_seed(self):
        def run(seed):
            net, swarm, _ = make_swarm(leechers=3, seed_value=seed)
            swarm.start()
            net.run(until=600.0)
            return swarm.download_times()

        assert run(99) == run(99)

    def test_seed_completion_time_is_zero(self):
        net, swarm, _ = make_swarm(leechers=1)
        swarm.start()
        net.run(until=300.0)
        assert swarm.seeds[0].download_time() == 0.0
