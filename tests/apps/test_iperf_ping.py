"""Integration tests for iperf and ping, undilated and dilated."""

import pytest

from repro.apps.iperf import IperfClient, IperfServer
from repro.apps.ping import EchoResponder, Pinger
from repro.core.vmm import Hypervisor
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.tcp.stack import TcpStack
from repro.udp.socket import UdpStack


def build_pair(bandwidth=mbps(10), delay=ms(10), tdf=None):
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    net.add_link(a, b, bandwidth, delay)
    net.finalize()
    vms = None
    if tdf is not None:
        vmm = Hypervisor(net.sim)
        vms = (
            vmm.create_vm("vma", tdf=tdf, cpu_share=0.5, node=a),
            vmm.create_vm("vmb", tdf=tdf, cpu_share=0.5, node=b),
        )
    return net, a, b, vms


def test_iperf_measures_path_capacity():
    net, a, b, _ = build_pair()
    server = IperfServer(TcpStack(b))
    client = IperfClient(TcpStack(a), "b")
    client.start()
    net.run(until=10.0)
    # The 10 s average includes the slow-start overshoot and its recovery,
    # so allow the same slack the dilated variant gets.
    assert server.goodput_bps() == pytest.approx(mbps(10), rel=0.2)
    assert server.connections == 1
    assert server.total_bytes > 0


def test_iperf_bounded_transfer_completes():
    net, a, b, _ = build_pair()
    server = IperfServer(TcpStack(b))
    client = IperfClient(TcpStack(a), "b", total_bytes=100_000)
    client.start()
    net.run(until=5.0)
    assert server.total_bytes == 100_000
    assert client.bytes_acked >= 100_000


def test_dilated_iperf_reports_scaled_goodput():
    """The paper's core demo: TDF 10 over 10 Mbps physical looks like
    ~100 Mbps to the guest."""
    net, a, b, vms = build_pair(bandwidth=mbps(10), delay=ms(10), tdf=10)
    server = IperfServer(TcpStack(b))
    client = IperfClient(TcpStack(a), "b")
    client.start()
    # 2 virtual seconds = 20 physical seconds.
    net.run(until=vms[1].clock.to_physical(2.0))
    assert server.goodput_bps() == pytest.approx(mbps(100), rel=0.2)


def test_per_flow_meters():
    net, a, b, _ = build_pair()
    server = IperfServer(TcpStack(b))
    stack_a = TcpStack(a)
    IperfClient(stack_a, "b", total_bytes=50_000).start()
    IperfClient(stack_a, "b", total_bytes=70_000).start()
    net.run(until=10.0)
    assert len(server.per_flow) == 2
    assert sum(m.bytes for m in server.per_flow.values()) == 120_000


def test_ping_measures_rtt():
    net, a, b, _ = build_pair(bandwidth=mbps(100), delay=ms(25))
    EchoResponder(UdpStack(b))
    pinger = Pinger(UdpStack(a), "b", count=5, interval_s=0.2)
    pinger.start()
    net.run(until=5.0)
    assert pinger.sent == 5
    assert pinger.received == 5
    assert pinger.loss_rate == 0.0
    for rtt in pinger.rtts:
        assert rtt == pytest.approx(0.050, rel=0.1)


def test_dilated_ping_reports_divided_rtt():
    """Physical RTT 500 ms at TDF 10 pings as ~50 ms."""
    net, a, b, vms = build_pair(bandwidth=mbps(100), delay=ms(250), tdf=10)
    EchoResponder(UdpStack(b))
    pinger = Pinger(UdpStack(a), "b", count=3, interval_s=0.2)
    pinger.start()
    net.run(until=30.0)
    assert pinger.received == 3
    for rtt in pinger.rtts:
        assert rtt == pytest.approx(0.050, rel=0.1)


def test_ping_loss_accounting():
    net, a, b, _ = build_pair()
    # No responder bound: every probe is lost.
    pinger = Pinger(UdpStack(a), "b", count=4, interval_s=0.1)
    pinger.start()
    net.run(until=2.0)
    assert pinger.received == 0
    assert pinger.loss_rate == 1.0
