"""Integration tests for the web server and load generators."""

import random

import pytest

from repro.apps.httpclient import ClosedLoopHttpUser, OpenLoopHttpLoad
from repro.apps.httpd import WebServer
from repro.core.vmm import Hypervisor
from repro.simnet.topology import Network
from repro.simnet.units import mbps, ms
from repro.tcp.stack import TcpStack
from repro.workloads.specweb import SpecWebMix


def build_site(bandwidth=mbps(100), delay=ms(5), cpu=None, host_cps=1e9,
               cpu_share=1.0):
    net = Network()
    server_node = net.add_node("www")
    client_node = net.add_node("client")
    net.add_link(server_node, client_node, bandwidth, delay)
    net.finalize()
    mix = SpecWebMix(rng=random.Random(11))
    virtual_cpu = None
    if cpu:
        vmm = Hypervisor(net.sim, host_cycles_per_second=host_cps)
        vm = vmm.create_vm("web-vm", cpu_share=cpu_share, node=server_node)
        virtual_cpu = vm.cpu
    server = WebServer(TcpStack(server_node), mix, cpu=virtual_cpu)
    return net, server_node, client_node, mix, server


def test_single_request_response():
    net, _, client_node, mix, server = build_site()
    load = OpenLoopHttpLoad(
        TcpStack(client_node), "www", rate_per_second=5.0, mix=mix,
        rng=random.Random(1), duration_s=1.0,
    )
    load.start()
    net.run(until=5.0)
    assert load.completed == load.issued > 0
    assert load.failed == 0
    assert server.requests_served == load.completed
    assert load.latency.summary.mean > 0


def test_response_time_includes_network_rtt():
    net, _, client_node, mix, server = build_site(delay=ms(50))
    load = OpenLoopHttpLoad(
        TcpStack(client_node), "www", rate_per_second=3.0, mix=mix,
        rng=random.Random(2), duration_s=2.0,
    )
    load.start()
    net.run(until=10.0)
    # Handshake (1 RTT) + request/response (1 RTT) = at least 200 ms.
    assert load.latency.summary.minimum >= 0.2


def test_cpu_bound_server_saturates():
    """With an expensive per-request CPU cost the completion rate caps at
    the CPU service rate even though the network has headroom."""
    net, _, client_node, mix, server = build_site(cpu=True, host_cps=1e8)
    # base cycles 2e6 at 1e8 Hz -> 20 ms/request -> ~50 req/s ceiling.
    load = OpenLoopHttpLoad(
        TcpStack(client_node), "www", rate_per_second=200.0, mix=mix,
        rng=random.Random(3), duration_s=4.0,
    )
    load.start()
    net.run(until=8.0)
    served_rate = server.requests_served / 8.0
    assert served_rate < 60  # pinned near the 50/s CPU ceiling


def test_underloaded_cpu_server_keeps_up():
    net, _, client_node, mix, server = build_site(cpu=True, host_cps=1e9)
    load = OpenLoopHttpLoad(
        TcpStack(client_node), "www", rate_per_second=20.0, mix=mix,
        rng=random.Random(4), duration_s=2.0,
    )
    load.start()
    net.run(until=6.0)
    assert load.completed == load.issued
    assert load.failed == 0


def test_closed_loop_user_cycles():
    net, _, client_node, mix, server = build_site()
    user = ClosedLoopHttpUser(
        TcpStack(client_node), "www", mix=mix, rng=random.Random(5),
        mean_think_time_s=0.1,
    )
    user.start()
    net.run(until=5.0)
    user.stop()
    assert user.completed > 5
    assert user.failed == 0


def test_load_stop_halts_arrivals():
    net, _, client_node, mix, server = build_site()
    load = OpenLoopHttpLoad(
        TcpStack(client_node), "www", rate_per_second=50.0, mix=mix,
        rng=random.Random(6),
    )
    load.start()
    net.run(until=1.0)
    load.stop()
    issued_at_stop = load.issued
    net.run(until=3.0)
    assert load.issued == issued_at_stop


def test_server_404_on_bad_path():
    net, server_node, client_node, mix, server = build_site()
    from repro.apps.httpd import REQUEST_BYTES, HttpRequest, HttpResponse

    responses = []
    stack = TcpStack(client_node)

    def on_connected(sock):
        sock.send(REQUEST_BYTES, message=HttpRequest.get("/class9/file9"))

    stack.connect(
        "www", 80,
        on_connected=on_connected,
        on_message=lambda sock, msg: responses.append(msg),
    )
    net.run(until=2.0)
    assert len(responses) == 1
    assert responses[0].status == 404
    assert server.errors == 1


def test_throughput_reporting():
    net, _, client_node, mix, server = build_site()
    load = OpenLoopHttpLoad(
        TcpStack(client_node), "www", rate_per_second=30.0, mix=mix,
        rng=random.Random(7), duration_s=3.0,
    )
    load.start()
    net.run(until=6.0)
    assert load.throughput_rps() == pytest.approx(
        load.completed / load.observed_duration()
    )
    assert load.bytes_received > 0
