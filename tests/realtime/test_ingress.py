"""Live UDP gateway: loopback clients against the paced echo scenario.

These tests open real OS sockets on 127.0.0.1. The driver runs in the
main thread (it owns the simulator); external clients run in background
threads and talk plain UDP — exactly the deployment shape of
``repro-realtime serve``.
"""

import socket
import threading
import time

import pytest

from repro.core.dilation import NetworkProfile
from repro.realtime.ingress import GatewayPayload, UdpEchoServer
from repro.realtime.scenario import build_echo_scenario
from repro.simnet.topology import Network
from repro.udp.socket import UdpStack

#: The scenario's perceived RTT for these tests, seconds.
RTT_S = 0.040

PROFILE = NetworkProfile.from_rtt(10e6, RTT_S)


def _run_service(scenario, horizon_virtual):
    """Drive the scenario in the main thread for a virtual horizon."""
    scenario.driver.run(until=scenario.clock.to_physical(horizon_virtual))


def test_loopback_echo_latency_within_2x_rtt():
    scenario = build_echo_scenario(perceived=PROFILE, tdf=1)
    addr = scenario.gateway.address
    wall_rtts = []

    def client():
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.settimeout(3.0)
        try:
            for seq in range(3):
                start = time.monotonic()
                sock.sendto(b"ping-%d" % seq, addr)
                data, _ = sock.recvfrom(65535)
                wall_rtts.append(time.monotonic() - start)
                assert data == b"ping-%d" % seq
        finally:
            sock.close()
            scenario.driver.stop()

    thread = threading.Thread(target=client)
    thread.start()
    try:
        _run_service(scenario, 2.0)
    finally:
        thread.join()
        scenario.close()
    assert len(wall_rtts) == 3
    latencies = scenario.gateway.virtual_latencies_s
    assert len(latencies) == 3
    for latency in latencies:
        # Virtual latency: at least the propagation RTT, within 2x of it
        # (the acceptance bound; serialization adds a fraction of a ms).
        assert RTT_S <= latency <= 2 * RTT_S
    for rtt in wall_rtts:
        # Wall RTT at TDF 1 tracks the virtual RTT plus pacing slack.
        assert RTT_S - 0.005 <= rtt <= 2 * RTT_S + 0.1
    assert scenario.echo.echoed == 3
    assert scenario.gateway.stats.ingress_datagrams == 3
    assert scenario.gateway.stats.egress_datagrams == 3
    assert scenario.net.sim.counters["realtime.injected"] == 3


def test_dilation_stretches_wall_rtt_not_virtual_rtt():
    tdf = 5
    scenario = build_echo_scenario(perceived=PROFILE, tdf=tdf)
    addr = scenario.gateway.address
    result = {}

    def client():
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.settimeout(5.0)
        try:
            start = time.monotonic()
            sock.sendto(b"dilated", addr)
            sock.recvfrom(65535)
            result["wall_rtt"] = time.monotonic() - start
        finally:
            sock.close()
            scenario.driver.stop()

    thread = threading.Thread(target=client)
    thread.start()
    try:
        _run_service(scenario, 0.5)
    finally:
        thread.join()
        scenario.close()
    # The guest-perceived (virtual) latency is unchanged by dilation...
    latency = scenario.gateway.virtual_latencies_s[0]
    assert RTT_S <= latency <= 2 * RTT_S
    # ...but the external client waits TDF times the virtual RTT of wall
    # time: the paper's time-warp, observed from outside the warp.
    assert result["wall_rtt"] >= RTT_S * tdf - 0.01
    assert result["wall_rtt"] <= 2 * RTT_S * tdf + 0.2


def test_late_client_still_pays_wall_rtt():
    # A client that first talks after the service has sat idle must still
    # see the emulated wall RTT: the driver advances the engine clock
    # through event-free idle time, so injection happens at the
    # wall-equivalent virtual instant — not at the last executed event's
    # timestamp, which would put the reply's deadline in the past and
    # echo it back immediately.
    scenario = build_echo_scenario(perceived=PROFILE, tdf=1)
    addr = scenario.gateway.address
    result = {}

    def client():
        time.sleep(0.3)  # connect well after the service went idle
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.settimeout(3.0)
        try:
            start = time.monotonic()
            sock.sendto(b"late", addr)
            sock.recvfrom(65535)
            result["wall_rtt"] = time.monotonic() - start
        finally:
            sock.close()
            scenario.driver.stop()

    thread = threading.Thread(target=client)
    thread.start()
    try:
        _run_service(scenario, 5.0)
    finally:
        thread.join()
        scenario.close()
    latency = scenario.gateway.virtual_latencies_s[0]
    assert RTT_S <= latency <= 2 * RTT_S
    # The discriminating bound: with a stale injection instant the echo
    # returns in ~1 ms of wall time instead of the link RTT.
    assert result["wall_rtt"] >= RTT_S - 0.005
    assert result["wall_rtt"] <= 2 * RTT_S + 0.2


def test_gateway_nat_demultiplexes_concurrent_clients():
    scenario = build_echo_scenario(perceived=PROFILE, tdf=1)
    addr = scenario.gateway.address
    replies = {}

    done = threading.Semaphore(0)

    def client(tag):
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.settimeout(3.0)
        try:
            sock.sendto(tag, addr)
            data, _ = sock.recvfrom(65535)
            replies[tag] = data
        finally:
            sock.close()
            done.release()

    def stopper():
        for _ in range(3):
            done.acquire()
        scenario.driver.stop()

    threading.Thread(target=stopper, daemon=True).start()

    threads = [threading.Thread(target=client, args=(b"client-%d" % i,))
               for i in range(3)]
    for thread in threads:
        thread.start()
    try:
        _run_service(scenario, 1.0)
    finally:
        for thread in threads:
            thread.join()
        # One NAT mapping (simulated ephemeral socket) per external client.
        nat_mappings = len(scenario.gateway._clients)
        scenario.close()
    # Every client got its own bytes back — replies were not cross-wired.
    for i in range(3):
        tag = b"client-%d" % i
        assert replies[tag] == tag
    assert nat_mappings == 3


def test_echo_server_in_pure_simulation():
    # The simulated half works without any OS socket: batch-drive a
    # client socket against the echo server.
    net = Network()
    a = net.add_node("a")
    b = net.add_node("b")
    net.add_link(a, b, 10e6, 0.005)
    net.finalize()
    echo = UdpEchoServer(UdpStack(b), port=7)
    got = []
    client = UdpStack(a).bind(
        on_datagram=lambda sock, d: got.append(d))
    client.sendto("b", 7, 100, payload=b"direct")
    net.run(until=1.0)
    assert echo.echoed == 1
    assert len(got) == 1
    assert got[0].payload == b"direct"
    assert got[0].size_bytes == 100


def test_gateway_close_is_idempotent_and_stops_polling():
    scenario = build_echo_scenario(perceived=PROFILE, tdf=1)
    scenario.close()
    scenario.close()
    assert scenario.gateway.poll() == 0


def test_gateway_payload_fields():
    payload = GatewayPayload(b"x", ingress_virtual=0, ingress_physical=0.0)
    assert payload.data == b"x"
