"""The CI realtime tier: short wall-clock-budget pacing pins.

Two pins, sized to a ~3 s total wall budget on a 1-CPU runner:

* a fig3-profile bulk-TCP run (100 Mbps / 40 ms RTT) at TDF 10 under the
  realtime driver — zero deadline misses above a generous 50 ms slip
  threshold. At TDF 10 the engine has 10x the wall time per virtual
  second, so a run that saturates a CPU in batch mode paces comfortably —
  the paper's "beyond line rate" headroom, spent on deadlines instead of
  bandwidth. The assertion self-gates on measured ``busy_frac``: a runner
  so loaded that event execution alone ate most of the wall has no pacing
  headroom to test.
* a loopback ingress echo smoke: one live datagram through the dilated
  network and back, virtual latency within 2x the configured RTT.
"""

import socket
import threading
import time

import pytest

from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bulk
from repro.realtime.driver import RealtimeConfig
from repro.realtime.scenario import build_echo_scenario
from repro.simnet.units import mbps, ms

#: Slip a miss must exceed before the tier fails — generous, because the
#: tier pins "the schedule basically holds", not sub-millisecond jitter.
MISS_THRESHOLD_S = 0.050

#: busy_frac above which the runner is too loaded to judge pacing.
BUSY_GATE = 0.8


def test_fig3_profile_bulk_at_tdf10_holds_deadlines():
    # The fig3 point's profile, at a duration sized so TDF 10 costs 2 s
    # of wall clock (0.2 virtual s x 10).
    result = run_bulk(
        NetworkProfile.from_rtt(mbps(100), ms(40)),
        tdf=10,
        duration_s=0.2,
        warmup_s=0.05,
        realtime=RealtimeConfig(miss_threshold_s=MISS_THRESHOLD_S),
    )
    stats = result.realtime_stats
    assert stats["events"] == result.events_processed
    assert stats["wall_s"] >= 1.9  # genuinely paced: 0.2 virtual x TDF 10
    if stats["busy_frac"] > BUSY_GATE:
        pytest.skip(
            f"runner too loaded to judge pacing "
            f"(busy_frac={stats['busy_frac']:.2f})"
        )
    assert stats["deadline_misses"] == 0
    assert stats["miss_rate"] < 0.01


def test_loopback_ingress_echo_smoke_at_tdf10():
    rtt_s = 0.040
    tdf = 10
    scenario = build_echo_scenario(
        perceived=NetworkProfile.from_rtt(mbps(10), rtt_s), tdf=tdf,
    )
    addr = scenario.gateway.address
    result = {}

    def client():
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.settimeout(5.0)
        try:
            start = time.monotonic()
            sock.sendto(b"ci-smoke", addr)
            data, _ = sock.recvfrom(65535)
            result["wall_rtt"] = time.monotonic() - start
            result["data"] = data
        finally:
            sock.close()
            scenario.driver.stop()

    thread = threading.Thread(target=client)
    thread.start()
    try:
        scenario.driver.run(until=scenario.clock.to_physical(1.0))
    finally:
        thread.join()
        scenario.close()
    assert result["data"] == b"ci-smoke"
    latency = scenario.gateway.virtual_latencies_s[0]
    # Virtual-time-correct: within 2x the configured link RTT.
    assert rtt_s <= latency <= 2 * rtt_s
    # And the external client actually waited through the dilation.
    assert result["wall_rtt"] >= rtt_s * tdf - 0.01
