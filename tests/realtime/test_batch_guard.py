"""Guard: the realtime driver is an observer/pacer, never a mutator.

Enabling the driver for part of a run and then resuming batch execution
must leave the event heap and every result bit-exact — the driver only
decides *when* ``sim.run`` is called, never what it executes. These pins
are what make ``realtime=True`` admissible at all: the paced goldens are
definitionally the batch goldens.
"""

from repro.apps.crosstraffic import CbrSource, UdpSink
from repro.core.dilation import NetworkProfile
from repro.harness.experiments import run_bulk
from repro.realtime.driver import RealtimeConfig, RealtimeDriver
from repro.simnet.topology import Network
from repro.udp.socket import UdpStack


def _build_cbr_world():
    """A deterministic CBR-over-one-link world (no RNG, no wall clock)."""
    net = Network()
    src = net.add_node("src")
    dst = net.add_node("dst")
    net.add_link(src, dst, 1e6, 0.01)
    net.finalize()
    sink = UdpSink(UdpStack(dst), 9000)
    cbr = CbrSource(UdpStack(src), "dst", 9000, rate_bps=4e5,
                    packet_bytes=500)
    cbr.start()
    return net, sink, cbr


def _live_heap(sim):
    """The live (non-cancelled) heap entries as comparable keys."""
    return sorted(
        (time, rank, seq)
        for time, rank, seq, event in sim._queue
        if not event.cancelled
    )


def test_realtime_then_batch_resume_is_bit_exact():
    # World A: pure batch. World B: paced to the midpoint, batch after.
    net_a, sink_a, cbr_a = _build_cbr_world()
    net_b, sink_b, cbr_b = _build_cbr_world()

    net_a.run(until=0.25)
    driver = RealtimeDriver(net_b.sim)
    driver.run(until=0.25)

    # At the switchover instant the two worlds are indistinguishable:
    # same clock, same executed-event count, same live heap keys.
    assert net_b.sim.now == net_a.sim.now == 0.25
    assert net_b.sim.events_processed == net_a.sim.events_processed
    assert _live_heap(net_b.sim) == _live_heap(net_a.sim)
    assert sink_b.bytes_received == sink_a.bytes_received

    # Batch resume: world B continues without the driver.
    net_a.run(until=0.6)
    net_b.run(until=0.6)
    assert net_b.sim.events_processed == net_a.sim.events_processed
    assert _live_heap(net_b.sim) == _live_heap(net_a.sim)
    assert sink_b.bytes_received == sink_a.bytes_received
    assert cbr_b.packets_sent == cbr_a.packets_sent

    # And the driver can take over again mid-stream (batch -> realtime ->
    # batch -> realtime), still bit-exact.
    net_a.run(until=0.8)
    driver.run(until=0.8)
    assert net_b.sim.events_processed == net_a.sim.events_processed
    assert _live_heap(net_b.sim) == _live_heap(net_a.sim)


def test_run_bulk_realtime_matches_batch_exactly():
    # The harness-level version of the same guard: a paced run_bulk is
    # field-for-field identical to the batch run (small enough that the
    # paced run costs well under a second of wall clock at TDF 1).
    profile = NetworkProfile.from_rtt(5e6, 0.02)
    kwargs = dict(duration_s=0.4, warmup_s=0.1)
    batch = run_bulk(profile, 1, **kwargs)
    paced = run_bulk(profile, 1, realtime=True, **kwargs)
    assert paced.events_processed == batch.events_processed
    assert paced.goodput_bps == batch.goodput_bps
    assert paced.delivered_bytes == batch.delivered_bytes
    assert paced.segments_sent == batch.segments_sent
    assert paced.retransmits == batch.retransmits
    assert paced.srtt == batch.srtt
    assert batch.realtime_stats == {}
    assert paced.realtime_stats["events"] > 0
    assert paced.realtime_stats["wall_s"] > 0.3  # genuinely wall-paced


def test_run_bulk_accepts_realtime_config():
    profile = NetworkProfile.from_rtt(5e6, 0.02)
    config = RealtimeConfig(miss_threshold_s=0.05, catchup="drop")
    batch = run_bulk(profile, 1, duration_s=0.2)
    paced = run_bulk(profile, 1, duration_s=0.2, realtime=config)
    assert paced.events_processed == batch.events_processed
    assert paced.realtime_stats["wall_s"] > 0.15
