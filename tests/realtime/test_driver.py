"""RealtimeDriver: pacing accuracy, catch-up policies, observability.

Wall-clock assertions use generous tolerances (tens of milliseconds):
the point is that the driver holds the schedule to OS-sleep accuracy, not
that the test box is an RTOS. Anything timing-critical additionally gates
on ``busy_frac`` so an overloaded CI runner skips rather than flakes.
"""

import threading
import time

import pytest

from repro.core.clock import DilatedClock
from repro.realtime.driver import (
    CATCHUP_POLICIES,
    RealtimeConfig,
    RealtimeDriver,
    RealtimeStats,
)
from repro.simnet.engine import Simulator
from repro.simnet.errors import ConfigurationError, SchedulingError
from repro.trace.recorder import FlightRecorder

#: Generous wall-clock slack for CI boxes, seconds.
SLACK = 0.08


def test_config_validation():
    with pytest.raises(ConfigurationError):
        RealtimeConfig(catchup="panic")
    with pytest.raises(ConfigurationError):
        RealtimeConfig(spin_threshold_s=-1e-3)
    with pytest.raises(ConfigurationError):
        RealtimeConfig(miss_threshold_s=0.0)
    with pytest.raises(ConfigurationError):
        RealtimeConfig(io_poll_interval_s=0.0)
    assert CATCHUP_POLICIES == ("run", "drop")


def test_paces_events_to_wall_deadlines():
    sim = Simulator()
    fired = {}
    start = time.monotonic()
    for t in (0.02, 0.05, 0.1):
        sim.call_at(t, lambda t=t: fired.__setitem__(t, time.monotonic()))
    # Misses are judged at the test's own slack, not the 5 ms default: a
    # transient OS stall must not fail the zero-miss pin on a shared box.
    driver = RealtimeDriver(sim, RealtimeConfig(miss_threshold_s=SLACK))
    stats = driver.run(until=0.12)
    elapsed = time.monotonic() - start
    # The horizon itself is paced: an 0.12 s physical run takes 0.12 s wall.
    assert 0.12 - 0.01 <= elapsed <= 0.12 + SLACK
    # Each event fired at (about) its own deadline, not en bloc.
    for t, wall in fired.items():
        assert wall - start == pytest.approx(t, abs=SLACK)
    assert stats.batches == 3
    assert stats.events == 3
    assert stats.deadline_misses == 0
    assert sim.now == 0.12


def test_pacing_is_continuous_across_run_calls():
    # Warmup advance + measurement advance ride one wall anchor: the
    # second run() does not re-zero the offset, so total wall time is the
    # total physical span, not the sum of per-call spans plus a reset.
    sim = Simulator()
    sim.call_at(0.03, lambda: None)
    sim.call_at(0.09, lambda: None)
    driver = RealtimeDriver(sim)
    start = time.monotonic()
    driver.run(until=0.05)
    driver.run(until=0.12)
    elapsed = time.monotonic() - start
    assert 0.12 - 0.01 <= elapsed <= 0.12 + SLACK
    assert driver.stats.events == 2


def test_empty_queue_returns_without_horizon():
    sim = Simulator()
    driver = RealtimeDriver(sim)
    start = time.monotonic()
    stats = driver.run(until=None)
    assert time.monotonic() - start < 0.05
    assert stats.batches == 0


def test_catchup_run_keeps_schedule_and_counts_misses():
    sim = Simulator()
    sim.call_at(0.01, lambda: time.sleep(0.06))  # blows the schedule
    late = [0.02, 0.03, 0.04, 0.05]
    for t in late:
        sim.call_at(t, lambda: None)
    driver = RealtimeDriver(
        sim, RealtimeConfig(miss_threshold_s=0.002, catchup="run")
    )
    stats = driver.run(until=0.06)
    # Everything inside the 60 ms stall window is late under "run".
    assert stats.deadline_misses >= len(late)
    assert stats.catchup_drops == 0
    assert stats.max_slip_s >= 0.04


def test_catchup_drop_reanchors_and_stops_cascading():
    sim = Simulator()
    sim.call_at(0.01, lambda: time.sleep(0.06))
    for t in (0.02, 0.03, 0.04, 0.05):
        sim.call_at(t, lambda: None)
    driver = RealtimeDriver(
        sim, RealtimeConfig(miss_threshold_s=0.002, catchup="drop")
    )
    stats = driver.run(until=0.06)
    # The first late event re-anchors; the rest are judged on-time again.
    assert stats.catchup_drops >= 1
    assert stats.deadline_misses <= 2
    assert stats.deadline_misses == stats.catchup_drops


def test_misses_record_slip_trace_events():
    sim = Simulator()
    recorder = FlightRecorder(name="rt-test")
    sim.call_at(0.005, lambda: time.sleep(0.03))
    sim.call_at(0.01, lambda: None)
    driver = RealtimeDriver(
        sim, RealtimeConfig(miss_threshold_s=0.002), recorder=recorder,
    )
    stats = driver.run(until=0.02)
    assert stats.deadline_misses >= 1
    slips = [e for e in recorder.snapshot() if e.category == "realtime"]
    assert len(slips) == stats.deadline_misses
    for event in slips:
        assert event.kind == "slip"
        assert event.site == "realtime"
        assert event.reason == "run"
        assert event.value > 0.002
        # stream_key works unchanged so diff/summarize can group them.
        assert event.stream_key() == "realtime/realtime/slip"


def test_counters_published_into_engine_namespace():
    sim = Simulator()
    sim.call_at(0.01, lambda: None)
    RealtimeDriver(sim, RealtimeConfig(miss_threshold_s=SLACK)).run(until=0.02)
    assert sim.counters["realtime.batches"] == 1
    assert sim.counters["realtime.events"] == 1
    assert sim.counters["realtime.deadline_miss"] == 0
    assert 0.0 <= sim.counters["realtime.busy_frac"] <= 1.0
    assert sim.counters["realtime.max_slip_ms"] >= 0.0
    assert sim.counters["realtime.injected"] == 0


def test_stop_from_another_thread_is_prompt():
    sim = Simulator()
    sim.call_at(30.0, lambda: None)  # far-future: the loop would sleep long
    driver = RealtimeDriver(sim)
    threading.Timer(0.1, driver.stop).start()
    start = time.monotonic()
    driver.run(until=None)
    # Bounded sleep quanta keep stop() latency well under the event gap.
    assert time.monotonic() - start < 2.0
    assert driver.stats.events == 0


def test_reentrant_run_is_rejected():
    sim = Simulator()
    driver = RealtimeDriver(sim)
    sim.call_at(0.005, lambda: driver.run(until=0.01))
    with pytest.raises(SchedulingError):
        driver.run(until=0.01)


def test_tdf_epoch_change_keeps_wall_pacing():
    # wall = physical + offset holds across set_tdf: the epoch re-anchors
    # the virtual axis, but event *physical* times are unchanged, so a
    # timer armed after the change lands at exactly the dilated instant.
    sim = Simulator()
    clock = DilatedClock(sim, tdf=1)
    fired = {}
    start = time.monotonic()

    def after_change():
        fired["epoch"] = time.monotonic() - start
        clock.call_in(0.05, lambda: fired.__setitem__(
            "dilated", time.monotonic() - start))

    clock.call_in(0.05, lambda: (clock.set_tdf(4), after_change()))
    driver = RealtimeDriver(sim)
    driver.run(until=0.3)
    elapsed = time.monotonic() - start
    # 0.05 physical at TDF 1, then 0.05 virtual x TDF 4 = 0.25 physical.
    assert fired["epoch"] == pytest.approx(0.05, abs=SLACK)
    assert fired["dilated"] == pytest.approx(0.25, abs=SLACK)
    assert 0.3 - 0.01 <= elapsed <= 0.3 + SLACK
    assert clock.now() == pytest.approx(0.05 + (0.3 - 0.05) / 4)


def test_stats_properties_and_dict():
    stats = RealtimeStats()
    assert stats.miss_rate == 0.0
    assert stats.busy_frac == 0.0
    assert stats.mean_slip_s == 0.0
    stats.batches = 4
    stats.deadline_misses = 1
    stats.total_slip_s = 0.02
    stats.busy_s = 0.5
    stats.wall_s = 2.0
    assert stats.miss_rate == 0.25
    assert stats.busy_frac == 0.25
    assert stats.mean_slip_s == 0.005
    d = stats.as_dict()
    assert d["miss_rate"] == 0.25
    assert d["busy_frac"] == 0.25
    assert set(d) >= {"batches", "events", "deadline_misses", "max_slip_s",
                      "wall_s", "catchup_drops", "injected"}


def test_wall_deadline_mapping():
    sim = Simulator()
    driver = RealtimeDriver(sim)
    assert driver.wall_deadline(1.0) is None  # not anchored yet
    driver.run(until=0.01)
    deadline = driver.wall_deadline(0.5)
    assert deadline is not None
    # 0.5 physical is ~0.49 s past the just-finished 0.01 horizon.
    assert deadline - time.monotonic() == pytest.approx(0.49, abs=SLACK)
