"""Legacy setup shim.

The environment this repository is developed in has no network access and
an older setuptools without native PEP 660 editable-wheel support, so
``pip install -e .`` falls back to this file (``setup.py develop``). All
real metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "repro-figure=repro.harness.cli:main",
            "repro-trace=repro.trace.cli:main",
        ]
    },
    python_requires=">=3.9",
)
