"""Bulk-transfer measurement (the emulator's iperf/netperf).

The paper's micro-benchmarks are iperf runs: one TCP flow filling a path,
goodput measured at the receiver. :class:`IperfServer` meters delivered
bytes against the *receiver's* clock — inside a dilated guest that is
virtual time, so a TDF-10 guest over a 100 Mbps physical path reports
~1 Gbps, which is precisely the paper's headline effect.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..simnet.node import Node
from ..stats.meters import ThroughputMeter
from ..tcp.options import TcpOptions
from ..tcp.socket import TcpSocket
from ..tcp.stack import TcpStack

__all__ = ["IperfServer", "IperfClient"]

DEFAULT_PORT = 5001


class IperfServer:
    """Accepts bulk flows and meters their goodput in local (virtual) time."""

    def __init__(self, stack: TcpStack, port: int = DEFAULT_PORT,
                 options: Optional[TcpOptions] = None) -> None:
        self.stack = stack
        self.node: Node = stack.node
        self.port = port
        self.meter = ThroughputMeter(self.node.clock)
        self.per_flow: Dict[str, ThroughputMeter] = {}
        self.connections = 0
        stack.listen(port, self._on_accept, options=options,
                     on_data=self._on_data)

    def _on_accept(self, sock: TcpSocket) -> None:
        self.connections += 1
        key = f"{sock.remote_addr}:{sock.remote_port}"
        self.per_flow[key] = ThroughputMeter(self.node.clock)

    def _on_data(self, sock: TcpSocket, n_bytes: int) -> None:
        self.meter.add(n_bytes)
        key = f"{sock.remote_addr}:{sock.remote_port}"
        flow_meter = self.per_flow.get(key)
        if flow_meter is not None:
            flow_meter.add(n_bytes)

    @property
    def total_bytes(self) -> int:
        """All bytes delivered across all flows."""
        return self.meter.bytes

    def goodput_bps(self) -> float:
        """Average goodput since the server started, bits per local second."""
        return self.meter.rate_bps()


class IperfClient:
    """Opens one flow and keeps the pipe full.

    ``total_bytes`` bounds the transfer; for open-ended "run for N seconds"
    experiments pass something larger than the path could move in that time
    and simply stop the simulation at the measurement horizon.
    """

    def __init__(
        self,
        stack: TcpStack,
        server_addr: str,
        server_port: int = DEFAULT_PORT,
        total_bytes: int = 1 << 30,
        options: Optional[TcpOptions] = None,
        flow_id: Optional[str] = None,
    ) -> None:
        self.stack = stack
        self.node: Node = stack.node
        self.server_addr = server_addr
        self.server_port = server_port
        self.total_bytes = total_bytes
        self.options = options
        self.flow_id = flow_id
        self.socket: Optional[TcpSocket] = None
        self.started_at: Optional[float] = None

    def start(self) -> TcpSocket:
        """Connect and queue the whole transfer (O(1) — bytes are counted)."""
        self.started_at = self.node.clock.now()
        self.socket = self.stack.connect(
            self.server_addr,
            self.server_port,
            options=self.options,
            on_connected=self._on_connected,
            flow_id=self.flow_id,
        )
        return self.socket

    def _on_connected(self, sock: TcpSocket) -> None:
        sock.send(self.total_bytes)
        sock.close()

    @property
    def bytes_acked(self) -> int:
        """Sender-side progress indicator."""
        return 0 if self.socket is None else self.socket.bytes_acked
