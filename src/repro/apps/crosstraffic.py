"""Cross-traffic generators: the background load of realistic experiments.

The paper's validation argument is only interesting if it holds when the
measured flow shares the path with other traffic. Two standard sources:

* :class:`CbrSource` — constant-bit-rate UDP (voice/video-like), the
  classic probe-disturbing background;
* :class:`OnOffSource` — exponential on/off UDP bursts (web-mice-like),
  which stress queues intermittently.

Both schedule in the owning node's clock, so dilated guests generate
dilated cross traffic — keeping the dilated and baseline worlds identical.
"""

from __future__ import annotations

import random
from typing import Optional

from ..simnet.errors import ConfigurationError
from ..simnet.node import Node
from ..udp.socket import UdpStack

__all__ = ["CbrSource", "OnOffSource", "UdpSink"]


class UdpSink:
    """Counts datagrams/bytes arriving on a port (the cross-traffic drain)."""

    def __init__(self, udp: UdpStack, port: int) -> None:
        self.bytes_received = 0
        self.datagrams = 0
        self.socket = udp.bind(port, self._on_datagram)

    def _on_datagram(self, sock, datagram) -> None:
        self.datagrams += 1
        self.bytes_received += datagram.size_bytes


class CbrSource:
    """Constant-bit-rate UDP: one ``packet_bytes`` datagram every
    ``packet_bytes * 8 / rate_bps`` local seconds."""

    def __init__(
        self,
        udp: UdpStack,
        dst_addr: str,
        dst_port: int,
        rate_bps: float,
        packet_bytes: int = 1000,
        flow_id: Optional[str] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigurationError("CBR rate must be positive")
        if packet_bytes <= 0:
            raise ConfigurationError("packet size must be positive")
        self.node: Node = udp.node
        self.dst_addr = dst_addr
        self.dst_port = dst_port
        self.rate_bps = rate_bps
        self.packet_bytes = packet_bytes
        self.flow_id = flow_id
        self.interval = packet_bytes * 8 / rate_bps
        self.packets_sent = 0
        self._socket = udp.bind(None)
        self._running = False

    def start(self) -> None:
        """Begin emitting (first packet goes out after one interval)."""
        self._running = True
        self.node.clock.call_in(self.interval, self._tick)

    def stop(self) -> None:
        """Stop after the current interval."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self._socket.sendto(
            self.dst_addr, self.dst_port, self.packet_bytes,
            flow_id=self.flow_id,
        )
        self.packets_sent += 1
        self.node.clock.call_in(self.interval, self._tick)


class OnOffSource:
    """Exponential on/off bursts: during ON, emits at ``peak_rate_bps``;
    ON and OFF durations are exponential with the given means.

    Long-run average rate = peak × on / (on + off).
    """

    def __init__(
        self,
        udp: UdpStack,
        dst_addr: str,
        dst_port: int,
        peak_rate_bps: float,
        mean_on_s: float,
        mean_off_s: float,
        rng: random.Random,
        packet_bytes: int = 1000,
        flow_id: Optional[str] = None,
    ) -> None:
        if peak_rate_bps <= 0 or mean_on_s <= 0 or mean_off_s <= 0:
            raise ConfigurationError("on/off parameters must be positive")
        self.node: Node = udp.node
        self.dst_addr = dst_addr
        self.dst_port = dst_port
        self.peak_rate_bps = peak_rate_bps
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self.rng = rng
        self.packet_bytes = packet_bytes
        self.flow_id = flow_id
        self.interval = packet_bytes * 8 / peak_rate_bps
        self.packets_sent = 0
        self._socket = udp.bind(None)
        self._running = False
        self._on = False
        self._phase_ends = 0.0

    @property
    def average_rate_bps(self) -> float:
        """The long-run mean emission rate."""
        duty = self.mean_on_s / (self.mean_on_s + self.mean_off_s)
        return self.peak_rate_bps * duty

    def start(self) -> None:
        """Begin with an OFF period (stagger against other sources)."""
        self._running = True
        self._enter_off()

    def stop(self) -> None:
        """Stop at the next phase boundary or packet slot."""
        self._running = False

    def _exponential(self, mean: float) -> float:
        return self.rng.expovariate(1.0 / mean)

    def _enter_on(self) -> None:
        if not self._running:
            return
        self._on = True
        self._phase_ends = self.node.clock.now() + self._exponential(self.mean_on_s)
        self._emit()

    def _enter_off(self) -> None:
        if not self._running:
            return
        self._on = False
        self.node.clock.call_in(self._exponential(self.mean_off_s), self._enter_on)

    def _emit(self) -> None:
        if not self._running or not self._on:
            return
        if self.node.clock.now() >= self._phase_ends:
            self._enter_off()
            return
        self._socket.sendto(
            self.dst_addr, self.dst_port, self.packet_bytes,
            flow_id=self.flow_id,
        )
        self.packets_sent += 1
        self.node.clock.call_in(self.interval, self._emit)
