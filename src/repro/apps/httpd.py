"""A static-content web server (the emulator's Apache).

The paper's first macro-benchmark is a web server under SPECweb99-like
load, chosen because its behaviour couples *all* the dilated resources:
network (responses), CPU (request processing) and timers (keep-alive,
client timeouts). The model here keeps exactly those couplings:

* requests arrive as TCP message markers carrying an
  :class:`HttpRequest`;
* each request costs CPU — a base cost plus a per-byte cost — executed on
  the VM's :class:`~repro.core.cpu.VirtualCpu` (single-core FIFO, i.e. an
  Apache worker bound to one core). Saturation therefore appears at the
  CPU or at the network, whichever the dilation scenario makes scarcer;
* the response is ``header + file size`` bytes tagged with an
  :class:`HttpResponse`.

If no CPU is supplied, request processing is free (pure network server).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..core.cpu import VirtualCpu
from ..simnet.node import Node
from ..tcp.options import TcpOptions
from ..tcp.socket import TcpSocket
from ..tcp.stack import TcpStack
from ..workloads.specweb import SpecWebMix

__all__ = ["HttpRequest", "HttpResponse", "WebServer",
           "REQUEST_BYTES", "RESPONSE_HEADER_BYTES"]

#: Wire size of a request (method + path + headers), paper-era typical.
REQUEST_BYTES = 350

#: Response header size.
RESPONSE_HEADER_BYTES = 250

_request_ids = itertools.count(1)


@dataclass(frozen=True)
class HttpRequest:
    """A GET for one file."""

    path: str
    request_id: int

    @classmethod
    def get(cls, path: str) -> "HttpRequest":
        return cls(path=path, request_id=next(_request_ids))


@dataclass(frozen=True)
class HttpResponse:
    """The server's answer, matched to the request by id."""

    request_id: int
    status: int
    body_bytes: int


class WebServer:
    """Accepts connections and serves the SPECweb document tree."""

    def __init__(
        self,
        stack: TcpStack,
        mix: SpecWebMix,
        port: int = 80,
        cpu: Optional[VirtualCpu] = None,
        base_cycles_per_request: float = 2e6,
        cycles_per_body_byte: float = 10.0,
        options: Optional[TcpOptions] = None,
    ) -> None:
        self.stack = stack
        self.node: Node = stack.node
        self.mix = mix
        self.port = port
        self.cpu = cpu
        self.base_cycles_per_request = base_cycles_per_request
        self.cycles_per_body_byte = cycles_per_body_byte
        self.requests_served = 0
        self.bytes_served = 0
        self.errors = 0
        stack.listen(port, self._on_accept, options=options,
                     on_message=self._on_message)

    def _on_accept(self, sock: TcpSocket) -> None:
        pass  # all work happens on request messages

    def _on_message(self, sock: TcpSocket, message) -> None:
        if not isinstance(message, HttpRequest):
            self.errors += 1
            return
        try:
            file = self.mix.file_by_name(message.path)
        except Exception:
            self.errors += 1
            self._respond(sock, message.request_id, 404, 0)
            return
        if self.cpu is None:
            self._respond(sock, message.request_id, 200, file.size_bytes)
            return
        cycles = (
            self.base_cycles_per_request
            + self.cycles_per_body_byte * file.size_bytes
        )
        self.cpu.run(
            cycles,
            on_complete=lambda: self._respond(
                sock, message.request_id, 200, file.size_bytes
            ),
        )

    def _respond(self, sock: TcpSocket, request_id: int, status: int,
                 body_bytes: int) -> None:
        if sock.state not in ("ESTABLISHED", "CLOSE_WAIT"):
            self.errors += 1
            return
        response = HttpResponse(request_id=request_id, status=status,
                                body_bytes=body_bytes)
        sock.send(RESPONSE_HEADER_BYTES + body_bytes, message=response)
        self.requests_served += 1
        self.bytes_served += body_bytes
