"""Real-time media streaming: the latency-sensitive workload class.

Bulk TCP and request/response cover throughput and latency averages; a
media stream cares about *per-packet timing* — exactly what figure 5
showed dilation preserves. :class:`MediaSource` emits a VoIP-like stream
(fixed-size frames at a fixed cadence, each stamped with the sender's
virtual time); :class:`JitterBufferSink` plays frames out at
``stamp + playout_delay`` and classifies each as on-time, late (missed its
playout slot), or lost.

Both endpoints read their own (dilated) clocks; with the usual scaling of
the physical path — including jitter, which is a duration and therefore
multiplies by the TDF — the playout statistics of a dilated run match the
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..simnet.errors import ConfigurationError
from ..simnet.node import Node
from ..stats.summary import Summary
from ..udp.socket import Datagram, UdpSocket, UdpStack

__all__ = ["MediaFrame", "MediaSource", "JitterBufferSink"]


@dataclass(frozen=True)
class MediaFrame:
    """One audio/video frame: sequence number plus the sender's stamp."""

    seq: int
    sent_at: float  # sender's local (virtual) time


class MediaSource:
    """Emits ``frame_bytes`` frames every ``frame_interval_s`` local seconds.

    Defaults model a G.711 voice stream: 160-byte payloads at 20 ms
    cadence (plus RTP-ish framing, charged as 12 bytes).
    """

    RTP_HEADER_BYTES = 12

    def __init__(
        self,
        udp: UdpStack,
        dst_addr: str,
        dst_port: int,
        frame_interval_s: float = 0.020,
        frame_bytes: int = 160,
        total_frames: Optional[int] = None,
        flow_id: Optional[str] = None,
    ) -> None:
        if frame_interval_s <= 0:
            raise ConfigurationError("frame interval must be positive")
        if frame_bytes <= 0:
            raise ConfigurationError("frame size must be positive")
        self.node: Node = udp.node
        self.dst_addr = dst_addr
        self.dst_port = dst_port
        self.frame_interval_s = frame_interval_s
        self.frame_bytes = frame_bytes
        self.total_frames = total_frames
        self.flow_id = flow_id
        self.frames_sent = 0
        self._socket = udp.bind(None)
        self._running = False

    def start(self) -> None:
        """Begin the frame train."""
        self._running = True
        self._emit()

    def stop(self) -> None:
        """Stop at the next frame slot."""
        self._running = False

    def _emit(self) -> None:
        if not self._running:
            return
        if self.total_frames is not None and self.frames_sent >= self.total_frames:
            self._running = False
            return
        frame = MediaFrame(seq=self.frames_sent,
                           sent_at=self.node.clock.now())
        self._socket.sendto(
            self.dst_addr, self.dst_port,
            self.frame_bytes + self.RTP_HEADER_BYTES,
            payload=frame, flow_id=self.flow_id,
        )
        self.frames_sent += 1
        self.node.clock.call_in(self.frame_interval_s, self._emit)


class JitterBufferSink:
    """Receives frames and judges them against a fixed playout deadline.

    A frame with stamp ``t`` must arrive before its playout instant
    ``t + playout_delay_s`` (both in this node's local clock; sender and
    receiver share a time base when they share a TDF, the usual
    experimental setup). Arrive in time → on-time; arrive after → late;
    never arrive by the end of the run → counted via :meth:`finalize`.
    """

    def __init__(
        self,
        udp: UdpStack,
        port: int,
        playout_delay_s: float = 0.060,
        keep_samples: bool = False,
    ) -> None:
        if playout_delay_s <= 0:
            raise ConfigurationError("playout delay must be positive")
        self.node: Node = udp.node
        self.playout_delay_s = playout_delay_s
        self.on_time = 0
        self.late = 0
        self.lost = 0
        self.delay = Summary()          # one-way network delay of arrivals
        self.late_by: List[float] = []  # how much each late frame missed by
        #: Per-frame one-way delays in arrival order (only kept when
        #: ``keep_samples``; distribution-level gates — CDF quantiles,
        #: KS distance — need the raw samples, not the Summary).
        self.delays: List[float] = []
        self._keep_samples = keep_samples
        self._prev_delay: Optional[float] = None
        self._jitter_sum = 0.0
        self._jitter_n = 0
        self._seen = set()
        self._highest_seq = -1
        self.socket = udp.bind(port, self._on_frame)

    def _on_frame(self, sock: UdpSocket, datagram: Datagram) -> None:
        frame = datagram.payload
        if not isinstance(frame, MediaFrame):
            return
        if frame.seq in self._seen:
            return  # duplicate
        self._seen.add(frame.seq)
        self._highest_seq = max(self._highest_seq, frame.seq)
        now = self.node.clock.now()
        delay = now - frame.sent_at
        self.delay.add(delay)
        if self._keep_samples:
            self.delays.append(delay)
        if self._prev_delay is not None:
            self._jitter_sum += abs(delay - self._prev_delay)
            self._jitter_n += 1
        self._prev_delay = delay
        deadline = frame.sent_at + self.playout_delay_s
        if now <= deadline:
            self.on_time += 1
        else:
            self.late += 1
            self.late_by.append(now - deadline)

    def finalize(self, frames_sent: int) -> None:
        """Account frames that never arrived (call once, at the end)."""
        self.lost = max(0, frames_sent - len(self._seen))

    @property
    def received(self) -> int:
        """Frames that arrived (on time or late)."""
        return len(self._seen)

    def playable_fraction(self) -> float:
        """Fraction of received frames that met their playout deadline."""
        if not self._seen:
            return 0.0
        return self.on_time / len(self._seen)

    def jitter_s(self) -> float:
        """Mean absolute delay variation between consecutive arrivals.

        The streaming-QoE jitter figure (a simplified RFC 3550 estimator
        without the 1/16 smoothing): 0 on a constant-delay path, and it
        grows with every handover delay step and queue excursion.
        """
        if self._jitter_n == 0:
            return 0.0
        return self._jitter_sum / self._jitter_n

    def stall_fraction(self, frames_sent: int) -> float:
        """Fraction of sent frames that missed playout (late or lost).

        The QoE stall proxy: every such frame is a gap the player must
        conceal or freeze over. Call after :meth:`finalize` so frames
        that never arrived are included.
        """
        if frames_sent <= 0:
            return 0.0
        return (self.late + self.lost) / frames_sent
