"""``repro.apps`` — the workloads the paper's evaluation runs.

* :mod:`repro.apps.iperf` — bulk-transfer micro-benchmarks;
* :mod:`repro.apps.ping` — RTT probing;
* :mod:`repro.apps.httpd` / :mod:`repro.apps.httpclient` — the web
  macro-benchmark (SPECweb99-like);
* :mod:`repro.apps.bittorrent` — the swarm macro-benchmark.
"""

from . import bittorrent
from .crosstraffic import CbrSource, OnOffSource, UdpSink
from .httpclient import ClosedLoopHttpUser, OpenLoopHttpLoad, PersistentHttpClient
from .httpd import HttpRequest, HttpResponse, WebServer
from .iperf import IperfClient, IperfServer
from .ping import EchoResponder, Pinger

__all__ = [
    "IperfServer",
    "IperfClient",
    "EchoResponder",
    "Pinger",
    "WebServer",
    "HttpRequest",
    "HttpResponse",
    "OpenLoopHttpLoad",
    "ClosedLoopHttpUser",
    "PersistentHttpClient",
    "CbrSource",
    "OnOffSource",
    "UdpSink",
    "bittorrent",
]
