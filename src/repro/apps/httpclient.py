"""HTTP load generation: open-loop (Poisson) and closed-loop clients.

The paper's web experiments sweep offered load and report server
throughput (requests/second) and client-observed response time — both in
the *clients'* virtual time, which is what makes the dilated and baseline
sweeps comparable. :class:`OpenLoopHttpLoad` is the primary tool (an
open-loop generator keeps offering load past saturation, which is what
exposes the knee); :class:`ClosedLoopHttpUser` models think-time users.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..core.timer import Timer
from ..simnet.node import Node
from ..stats.meters import LatencyMeter
from ..tcp.options import TcpOptions
from ..tcp.socket import TcpSocket
from ..tcp.stack import TcpStack
from ..workloads.distributions import exponential_interarrival
from ..workloads.specweb import SpecWebMix
from .httpd import REQUEST_BYTES, HttpRequest, HttpResponse

__all__ = ["OpenLoopHttpLoad", "ClosedLoopHttpUser", "PersistentHttpClient"]


class OpenLoopHttpLoad:
    """Poisson request arrivals, one connection per request.

    Each arrival opens a connection, sends one GET, waits for the full
    response, closes. Latency is first-SYN to response-complete, as a real
    HTTP benchmark client reports.
    """

    def __init__(
        self,
        stack: TcpStack,
        server_addr: str,
        rate_per_second: float,
        mix: SpecWebMix,
        rng: random.Random,
        server_port: int = 80,
        duration_s: Optional[float] = None,
        options: Optional[TcpOptions] = None,
    ) -> None:
        self.stack = stack
        self.node: Node = stack.node
        self.server_addr = server_addr
        self.server_port = server_port
        self.rate = rate_per_second
        self.mix = mix
        self.rng = rng
        self.duration_s = duration_s
        self.options = options
        self.latency = LatencyMeter(self.node.clock)
        self.issued = 0
        self.completed = 0
        self.failed = 0
        self.bytes_received = 0
        self._started_at: Optional[float] = None
        self._stopped = False

    def start(self) -> None:
        """Begin the arrival process (in local/virtual time)."""
        self._started_at = self.node.clock.now()
        self._schedule_next()

    def stop(self) -> None:
        """No further arrivals; in-flight requests run to completion."""
        self._stopped = True

    def _schedule_next(self) -> None:
        if self._stopped:
            return
        gap = exponential_interarrival(self.rate, self.rng)
        self.node.clock.call_in(gap, self._arrival)

    def _arrival(self) -> None:
        if self._stopped:
            return
        assert self._started_at is not None
        if (
            self.duration_s is not None
            and self.node.clock.now() - self._started_at >= self.duration_s
        ):
            self._stopped = True
            return
        self._issue_request()
        self._schedule_next()

    def _issue_request(self) -> None:
        file = self.mix.sample()
        request = HttpRequest.get(file.name)
        self.issued += 1
        self.latency.start(request.request_id)

        def on_connected(sock: TcpSocket) -> None:
            sock.send(REQUEST_BYTES, message=request)

        def on_message(sock: TcpSocket, message) -> None:
            if not isinstance(message, HttpResponse):
                return
            latency = self.latency.stop(message.request_id)
            if latency is not None:
                self.completed += 1
                self.bytes_received += message.body_bytes
            sock.close()

        def on_error(sock: TcpSocket, error: Exception) -> None:
            self.latency._open.pop(request.request_id, None)
            self.failed += 1

        self.stack.connect(
            self.server_addr,
            self.server_port,
            options=self.options,
            on_connected=on_connected,
            on_message=on_message,
            on_error=on_error,
        )

    # ------------------------------------------------------------- reporting

    def observed_duration(self) -> float:
        """Local seconds since ``start``."""
        if self._started_at is None:
            return 0.0
        return self.node.clock.now() - self._started_at

    def throughput_rps(self) -> float:
        """Completed requests per local second."""
        elapsed = self.observed_duration()
        return self.completed / elapsed if elapsed > 0 else 0.0


class PersistentHttpClient:
    """HTTP/1.1-style keep-alive: many requests over one connection.

    SPECweb99 drove servers with persistent connections; reusing the
    connection removes the per-request handshake RTT and lets the
    congestion window carry over, so later requests complete faster — a
    latency effect dilation must preserve like any other.

    Requests are issued sequentially (send next after the previous
    response completes). ``on_complete(client)`` fires after the last
    response, once the connection is closed.
    """

    def __init__(
        self,
        stack: TcpStack,
        server_addr: str,
        mix: SpecWebMix,
        request_count: int,
        server_port: int = 80,
        options: Optional[TcpOptions] = None,
        on_complete=None,
    ) -> None:
        if request_count < 1:
            raise ValueError("request_count must be at least 1")
        self.stack = stack
        self.node: Node = stack.node
        self.server_addr = server_addr
        self.server_port = server_port
        self.mix = mix
        self.request_count = request_count
        self.options = options
        self.on_complete = on_complete
        self.latency = LatencyMeter(self.node.clock)
        self.latencies: List[float] = []
        self.completed = 0
        self.failed = 0
        self._socket: Optional[TcpSocket] = None
        self._current_id: Optional[int] = None

    def start(self) -> None:
        """Open the connection and begin the request train."""
        self._socket = self.stack.connect(
            self.server_addr,
            self.server_port,
            options=self.options,
            on_connected=lambda sock: self._issue_next(),
            on_message=self._on_message,
            on_error=self._on_error,
        )

    def _issue_next(self) -> None:
        assert self._socket is not None
        file = self.mix.sample()
        request = HttpRequest.get(file.name)
        self._current_id = request.request_id
        self.latency.start(request.request_id)
        self._socket.send(REQUEST_BYTES, message=request)

    def _on_message(self, sock: TcpSocket, message) -> None:
        if not isinstance(message, HttpResponse):
            return
        if message.request_id != self._current_id:
            return
        elapsed = self.latency.stop(message.request_id)
        if elapsed is not None:
            self.latencies.append(elapsed)
            self.completed += 1
        if self.completed >= self.request_count:
            sock.close()
            if self.on_complete is not None:
                self.on_complete(self)
        else:
            self._issue_next()

    def _on_error(self, sock: TcpSocket, error: Exception) -> None:
        self.failed += 1
        if self._current_id is not None:
            self.latency._open.pop(self._current_id, None)


class ClosedLoopHttpUser:
    """One user: request, wait, think, repeat.

    ``think_time_s`` is exponential with the given mean; N users at mean
    think time T offer roughly ``N / (T + response_time)`` requests/second.
    """

    def __init__(
        self,
        stack: TcpStack,
        server_addr: str,
        mix: SpecWebMix,
        rng: random.Random,
        mean_think_time_s: float = 1.0,
        server_port: int = 80,
        options: Optional[TcpOptions] = None,
    ) -> None:
        self.stack = stack
        self.node: Node = stack.node
        self.server_addr = server_addr
        self.server_port = server_port
        self.mix = mix
        self.rng = rng
        self.mean_think_time_s = mean_think_time_s
        self.options = options
        self.latency = LatencyMeter(self.node.clock)
        self.completed = 0
        self.failed = 0
        self._running = False

    def start(self) -> None:
        """Enter the request/think loop."""
        self._running = True
        self._issue()

    def stop(self) -> None:
        """Leave the loop after the current request."""
        self._running = False

    def _think_then_issue(self) -> None:
        if not self._running:
            return
        gap = exponential_interarrival(1.0 / self.mean_think_time_s, self.rng)
        self.node.clock.call_in(gap, self._issue)

    def _issue(self) -> None:
        if not self._running:
            return
        file = self.mix.sample()
        request = HttpRequest.get(file.name)
        self.latency.start(request.request_id)

        def on_connected(sock: TcpSocket) -> None:
            sock.send(REQUEST_BYTES, message=request)

        def on_message(sock: TcpSocket, message) -> None:
            if not isinstance(message, HttpResponse):
                return
            if self.latency.stop(message.request_id) is not None:
                self.completed += 1
            sock.close()
            self._think_then_issue()

        def on_error(sock: TcpSocket, error: Exception) -> None:
            self.latency._open.pop(request.request_id, None)
            self.failed += 1
            self._think_then_issue()

        self.stack.connect(
            self.server_addr,
            self.server_port,
            options=self.options,
            on_connected=on_connected,
            on_message=on_message,
            on_error=on_error,
        )
