"""Swarm orchestration: build a tracker + seeds + leechers on a topology.

The paper's BitTorrent experiment puts a swarm on an emulated network and
measures the distribution of download completion times. :func:`build_swarm`
wires the tracker and peers onto the leaves of an existing star network
(every host needs its own TCP/UDP stacks) and returns handles for the
benchmark to start and observe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from ...simnet.node import Node
from ...tcp.options import TcpOptions
from ...tcp.stack import TcpStack
from ...udp.socket import UdpStack
from .metainfo import TorrentMeta
from .peer import Peer, PeerConfig
from .tracker import TRACKER_PORT, TrackerServer

__all__ = ["Swarm", "build_swarm", "salt_fraction"]


def salt_fraction(index: int) -> float:
    """Deterministic per-index fraction in [0, 1) for symmetry-breaking.

    Knuth's multiplicative hash spreads consecutive indices across the
    unit interval so no two roster slots (and no arithmetic combination of
    two slots' values) collide to the same float offset. Shared by the
    harness's per-link ``delay_salt`` and the swarm's per-peer
    ``timer_salt`` so both salts de-phase-lock the same way.
    """
    return ((index * 2654435761) & 0xFFFFFFFF) / 2.0 ** 32


@dataclass
class Swarm:
    """Handles to a constructed swarm.

    In a sharded run each worker builds the swarm with an ``include``
    filter, so peers (and possibly the tracker) it does not own are
    ``None`` placeholders — every accessor here skips them, and predicates
    like :meth:`all_complete` answer for the *locally owned* subset (the
    sharded driver combines them with a consensus barrier).
    """

    tracker: Optional[TrackerServer]
    seeds: List[Optional[Peer]]
    leechers: List[Optional[Peer]]

    @property
    def peers(self) -> List[Peer]:
        return [p for p in self.seeds + self.leechers if p is not None]

    def start(self, stagger_s: float = 0.0) -> None:
        """Start every peer; leechers may be staggered to avoid a
        thundering-herd announce (seeds always start first)."""
        for seed in self.seeds:
            if seed is not None:
                seed.start()
        # The stagger index comes from the full roster so a sharded
        # worker's leechers start at the same times as in one process.
        for index, leecher in enumerate(self.leechers):
            if leecher is None:
                continue
            delay = stagger_s * index
            if delay > 0:
                leecher.node.clock.call_in(delay, leecher.start)
            else:
                leecher.start()

    def all_complete(self) -> bool:
        """Whether every (locally owned) leecher finished its download."""
        return all(
            peer.complete for peer in self.leechers if peer is not None
        )

    def download_times(self) -> List[float]:
        """Completion times (local/virtual seconds) of finished leechers."""
        times = (
            peer.download_time()
            for peer in self.leechers
            if peer is not None
        )
        return [t for t in times if t is not None]


def build_swarm(
    tracker_node: Node,
    seed_nodes: List[Node],
    leecher_nodes: List[Node],
    meta: TorrentMeta,
    rng: random.Random,
    config: Optional[PeerConfig] = None,
    tcp_options: Optional[TcpOptions] = None,
    on_leecher_complete: Optional[Callable[[Peer], None]] = None,
    include: Optional[Callable[[Node], bool]] = None,
    timer_salt: float = 0.0,
) -> Swarm:
    """Install tracker and peers on prepared nodes.

    Each node gets fresh TCP/UDP stacks; per-peer RNGs are derived from the
    master ``rng`` so swarm randomness is reproducible yet per-peer
    independent.

    ``include`` is the sharded runner's ownership filter: excluded nodes
    get a ``None`` placeholder instead of a peer (or tracker). The master
    RNG is drawn for *every* roster slot regardless, so each constructed
    peer receives exactly the seed it would in a single-process build.

    ``timer_salt`` spreads the choke intervals by a relative per-peer
    offset (roster slot ``i`` gets ``interval * (1 + timer_salt *
    salt_fraction(i))``). The default 0.0 keeps every peer on the
    historical shared interval. It exists as the symmetry-breaking
    fallback for sharded runs whose specs cannot accept salted *link*
    delays: periodic timers otherwise fire at bit-equal copies of old
    arrival instants, the one tie class a bounded cross-shard key cannot
    order by creation genealogy (see :mod:`repro.parallel.shard`). The
    offset is derived from the full roster index, so a sharded build
    salts identically to a single-process one.
    """

    def wanted(node: Node) -> bool:
        return include is None or include(node)

    tracker_seed = rng.getrandbits(32)
    tracker = (
        TrackerServer(UdpStack(tracker_node), rng=random.Random(tracker_seed))
        if wanted(tracker_node)
        else None
    )
    base_config = config if config is not None else PeerConfig()

    def make_peer(node: Node, seed: bool, slot: int) -> Optional[Peer]:
        peer_seed = rng.getrandbits(32)  # always drawn: keeps streams aligned
        if not wanted(node):
            return None
        peer_config = base_config
        if timer_salt:
            peer_config = replace(
                base_config,
                choke_interval_s=base_config.choke_interval_s
                * (1.0 + timer_salt * salt_fraction(slot)),
            )
        return Peer(
            tcp=TcpStack(node, default_options=tcp_options),
            udp=UdpStack(node),
            meta=meta,
            tracker_addr=tracker_node.name,
            rng=random.Random(peer_seed),
            seed=seed,
            config=peer_config,
            tcp_options=tcp_options,
            on_complete=on_leecher_complete if not seed else None,
        )

    roster = [(node, True) for node in seed_nodes]
    roster += [(node, False) for node in leecher_nodes]
    peers = [
        make_peer(node, seed, slot)
        for slot, (node, seed) in enumerate(roster)
    ]
    seeds = peers[: len(seed_nodes)]
    leechers = peers[len(seed_nodes):]
    return Swarm(tracker=tracker, seeds=seeds, leechers=leechers)
