"""Swarm orchestration: build a tracker + seeds + leechers on a topology.

The paper's BitTorrent experiment puts a swarm on an emulated network and
measures the distribution of download completion times. :func:`build_swarm`
wires the tracker and peers onto the leaves of an existing star network
(every host needs its own TCP/UDP stacks) and returns handles for the
benchmark to start and observe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from ...simnet.node import Node
from ...tcp.options import TcpOptions
from ...tcp.stack import TcpStack
from ...udp.socket import UdpStack
from .metainfo import TorrentMeta
from .peer import Peer, PeerConfig
from .tracker import TRACKER_PORT, TrackerServer

__all__ = ["Swarm", "build_swarm"]


@dataclass
class Swarm:
    """Handles to a constructed swarm."""

    tracker: TrackerServer
    seeds: List[Peer]
    leechers: List[Peer]

    @property
    def peers(self) -> List[Peer]:
        return self.seeds + self.leechers

    def start(self, stagger_s: float = 0.0) -> None:
        """Start every peer; leechers may be staggered to avoid a
        thundering-herd announce (seeds always start first)."""
        for seed in self.seeds:
            seed.start()
        for index, leecher in enumerate(self.leechers):
            delay = stagger_s * index
            if delay > 0:
                leecher.node.clock.call_in(delay, leecher.start)
            else:
                leecher.start()

    def all_complete(self) -> bool:
        """Whether every leecher finished its download."""
        return all(peer.complete for peer in self.leechers)

    def download_times(self) -> List[float]:
        """Completion times (local/virtual seconds) of finished leechers."""
        times = (peer.download_time() for peer in self.leechers)
        return [t for t in times if t is not None]


def build_swarm(
    tracker_node: Node,
    seed_nodes: List[Node],
    leecher_nodes: List[Node],
    meta: TorrentMeta,
    rng: random.Random,
    config: Optional[PeerConfig] = None,
    tcp_options: Optional[TcpOptions] = None,
    on_leecher_complete: Optional[Callable[[Peer], None]] = None,
) -> Swarm:
    """Install tracker and peers on prepared nodes.

    Each node gets fresh TCP/UDP stacks; per-peer RNGs are derived from the
    master ``rng`` so swarm randomness is reproducible yet per-peer
    independent.
    """
    tracker_udp = UdpStack(tracker_node)
    tracker = TrackerServer(
        tracker_udp, rng=random.Random(rng.getrandbits(32))
    )

    def make_peer(node: Node, seed: bool) -> Peer:
        return Peer(
            tcp=TcpStack(node, default_options=tcp_options),
            udp=UdpStack(node),
            meta=meta,
            tracker_addr=tracker_node.name,
            rng=random.Random(rng.getrandbits(32)),
            seed=seed,
            config=config,
            tcp_options=tcp_options,
            on_complete=on_leecher_complete if not seed else None,
        )

    seeds = [make_peer(node, seed=True) for node in seed_nodes]
    leechers = [make_peer(node, seed=False) for node in leecher_nodes]
    return Swarm(tracker=tracker, seeds=seeds, leechers=leechers)
