"""The tracker: peer discovery over UDP.

A minimal UDP tracker in the spirit of BEP 15: peers announce themselves
and receive a sample of already-known peers. Announce/response sizes match
the real protocol's order of magnitude (~100 bytes + 6 per returned peer).

Announces are datagrams, and datagrams get lost — to queue overflow when
a swarm's worth of peers announce at once, or to an impairment chain on
the tracker link. The client side therefore retries with exponential
backoff on the announcing node's (virtual) clock until a reply arrives or
the try budget is exhausted, and closes its ephemeral socket either way.
The registry has a lifecycle too: a ``stopped`` announce deregisters the
peer, and an optional ``peer_ttl_s`` expires entries whose last announce
is older than the TTL, so late announcers are not handed departed peers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...core.timer import Timer
from ...udp.socket import Datagram, UdpSocket, UdpStack

__all__ = ["TrackerServer", "announce", "AnnounceHandle"]

TRACKER_PORT = 6969
ANNOUNCE_BYTES = 98
RESPONSE_BASE_BYTES = 20
BYTES_PER_PEER = 6

#: Client retry schedule: first retry after the base delay, doubling up to
#: the cap, giving up after ``ANNOUNCE_MAX_TRIES`` transmissions.
ANNOUNCE_RETRY_BASE_S = 2.0
ANNOUNCE_RETRY_CAP_S = 16.0
ANNOUNCE_MAX_TRIES = 8


@dataclass(frozen=True)
class AnnounceRequest:
    """Payload of an announce datagram."""

    torrent: str
    peer_name: str
    peer_port: int
    #: ``"started"`` registers the peer; ``"stopped"`` deregisters it.
    event: str = "started"


@dataclass(frozen=True)
class AnnounceResponse:
    """Payload of the tracker's reply."""

    torrent: str
    peers: Tuple[Tuple[str, int], ...]


class TrackerServer:
    """Keeps the peer registry per torrent and answers announces.

    ``peer_ttl_s`` (virtual seconds on the tracker node's clock) expires
    registry entries whose last announce is older than the TTL; ``None``
    (the default) keeps the seed behaviour of never expiring, which is
    correct for swarms whose peers announce once and stay for the run.
    """

    def __init__(
        self,
        udp: UdpStack,
        port: int = TRACKER_PORT,
        max_peers_returned: int = 50,
        rng: Optional[random.Random] = None,
        peer_ttl_s: Optional[float] = None,
    ) -> None:
        self.udp = udp
        self.port = port
        self.max_peers_returned = max_peers_returned
        self.peer_ttl_s = peer_ttl_s
        self._rng = rng if rng is not None else random.Random(0)
        #: torrent -> ordered dict of (peer_name, port)
        self.registry: Dict[str, Dict[str, int]] = {}
        #: torrent -> peer_name -> virtual time of the last announce.
        self._last_seen: Dict[str, Dict[str, float]] = {}
        self.announces = 0
        #: Peers removed by a ``stopped`` announce.
        self.departed = 0
        #: Peers removed by TTL expiry.
        self.expired = 0
        self.socket = udp.bind(port, self._on_datagram)

    def _on_datagram(self, sock: UdpSocket, datagram: Datagram) -> None:
        request = datagram.payload
        if not isinstance(request, AnnounceRequest):
            return
        self.announces += 1
        peers = self.registry.setdefault(request.torrent, {})
        seen = self._last_seen.setdefault(request.torrent, {})
        if request.event == "stopped":
            if peers.pop(request.peer_name, None) is not None:
                self.departed += 1
            seen.pop(request.peer_name, None)
            # Stopped announces are acknowledged with an empty sample so
            # the client's retry loop terminates and closes its socket.
            response = AnnounceResponse(torrent=request.torrent, peers=())
            sock.sendto(datagram.src_addr, datagram.src_port,
                        RESPONSE_BASE_BYTES, payload=response)
            return
        self._expire(peers, seen)
        known = [
            (name, port) for name, port in peers.items()
            if name != request.peer_name
        ]
        peers[request.peer_name] = request.peer_port
        seen[request.peer_name] = self.udp.node.clock.now()
        if len(known) > self.max_peers_returned:
            known = self._rng.sample(known, self.max_peers_returned)
        response = AnnounceResponse(torrent=request.torrent, peers=tuple(known))
        sock.sendto(
            datagram.src_addr,
            datagram.src_port,
            RESPONSE_BASE_BYTES + BYTES_PER_PEER * len(known),
            payload=response,
        )

    def _expire(self, peers: Dict[str, int], seen: Dict[str, float]) -> None:
        if self.peer_ttl_s is None:
            return
        now = self.udp.node.clock.now()
        stale = [name for name, at in seen.items()
                 if now - at > self.peer_ttl_s]
        for name in stale:
            peers.pop(name, None)
            seen.pop(name, None)
            self.expired += 1

    def swarm_size(self, torrent: str) -> int:
        """Registered peers for a torrent."""
        return len(self.registry.get(torrent, {}))


class AnnounceHandle:
    """One in-flight client announce: ephemeral socket plus retry timer.

    The handle owns its socket: it is closed when the reply arrives, when
    the try budget runs out, or when :meth:`cancel` is called — the seed
    code returned the raw socket "for the caller to close" and no caller
    ever did.
    """

    def __init__(self) -> None:
        self.tries = 0
        self.replied = False
        self.done = False
        self._socket: Optional[UdpSocket] = None
        self._timer: Optional[Timer] = None

    @property
    def active(self) -> bool:
        """Still waiting for a reply (retries may be pending)."""
        return not self.done

    def _finish(self) -> None:
        self.done = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def cancel(self) -> None:
        """Abandon the announce: stop retrying and release the socket."""
        if not self.done:
            self._finish()


def announce(
    udp: UdpStack,
    tracker_addr: str,
    torrent: str,
    peer_name: str,
    peer_port: int,
    on_peers,
    tracker_port: int = TRACKER_PORT,
    event: str = "started",
    retry_base_s: float = ANNOUNCE_RETRY_BASE_S,
    retry_cap_s: float = ANNOUNCE_RETRY_CAP_S,
    max_tries: int = ANNOUNCE_MAX_TRIES,
) -> AnnounceHandle:
    """Client-side announce with clock-driven retry.

    Sends the announce datagram, then retries with exponential backoff
    (``retry_base_s`` doubling up to ``retry_cap_s``, at most ``max_tries``
    transmissions) on the announcing node's clock until a matching reply
    arrives. ``on_peers(list_of_(name, port))`` is called on the first
    reply; the ephemeral socket is closed automatically when the exchange
    ends either way. Returns an :class:`AnnounceHandle` for observation or
    early cancellation.
    """
    handle = AnnounceHandle()
    clock = udp.node.clock

    def on_reply(sock: UdpSocket, datagram: Datagram) -> None:
        response = datagram.payload
        if handle.done:
            return
        if isinstance(response, AnnounceResponse) and response.torrent == torrent:
            handle.replied = True
            handle._finish()
            if on_peers is not None:
                on_peers(list(response.peers))

    sock = udp.bind(None, on_reply)
    handle._socket = sock
    request = AnnounceRequest(torrent=torrent, peer_name=peer_name,
                              peer_port=peer_port, event=event)

    def send_once() -> None:
        if handle.done:
            return
        if handle.tries >= max_tries:
            handle._finish()  # give up; release the ephemeral port
            return
        handle.tries += 1
        sock.sendto(tracker_addr, tracker_port, ANNOUNCE_BYTES, payload=request)
        delay = min(retry_base_s * (2 ** (handle.tries - 1)), retry_cap_s)
        if handle._timer is None:
            handle._timer = Timer(clock, delay, send_once)
        else:
            handle._timer.reset(delay)

    send_once()
    return handle
