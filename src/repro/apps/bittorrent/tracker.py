"""The tracker: peer discovery over UDP.

A minimal UDP tracker in the spirit of BEP 15: peers announce themselves
and receive a sample of already-known peers. Announce/response sizes match
the real protocol's order of magnitude (~100 bytes + 6 per returned peer).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...udp.socket import Datagram, UdpSocket, UdpStack

__all__ = ["TrackerServer", "announce"]

TRACKER_PORT = 6969
ANNOUNCE_BYTES = 98
RESPONSE_BASE_BYTES = 20
BYTES_PER_PEER = 6


@dataclass(frozen=True)
class AnnounceRequest:
    """Payload of an announce datagram."""

    torrent: str
    peer_name: str
    peer_port: int


@dataclass(frozen=True)
class AnnounceResponse:
    """Payload of the tracker's reply."""

    torrent: str
    peers: Tuple[Tuple[str, int], ...]


class TrackerServer:
    """Keeps the peer registry per torrent and answers announces."""

    def __init__(
        self,
        udp: UdpStack,
        port: int = TRACKER_PORT,
        max_peers_returned: int = 50,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.udp = udp
        self.port = port
        self.max_peers_returned = max_peers_returned
        self._rng = rng if rng is not None else random.Random(0)
        #: torrent -> ordered dict of (peer_name, port)
        self.registry: Dict[str, Dict[str, int]] = {}
        self.announces = 0
        self.socket = udp.bind(port, self._on_datagram)

    def _on_datagram(self, sock: UdpSocket, datagram: Datagram) -> None:
        request = datagram.payload
        if not isinstance(request, AnnounceRequest):
            return
        self.announces += 1
        peers = self.registry.setdefault(request.torrent, {})
        known = [
            (name, port) for name, port in peers.items()
            if name != request.peer_name
        ]
        peers[request.peer_name] = request.peer_port
        if len(known) > self.max_peers_returned:
            known = self._rng.sample(known, self.max_peers_returned)
        response = AnnounceResponse(torrent=request.torrent, peers=tuple(known))
        sock.sendto(
            datagram.src_addr,
            datagram.src_port,
            RESPONSE_BASE_BYTES + BYTES_PER_PEER * len(known),
            payload=response,
        )

    def swarm_size(self, torrent: str) -> int:
        """Registered peers for a torrent."""
        return len(self.registry.get(torrent, {}))


def announce(
    udp: UdpStack,
    tracker_addr: str,
    torrent: str,
    peer_name: str,
    peer_port: int,
    on_peers,
    tracker_port: int = TRACKER_PORT,
) -> UdpSocket:
    """Client-side announce; ``on_peers(list_of_(name, port))`` is called on reply.

    Returns the ephemeral socket (caller may close it after the reply).
    """

    def on_reply(sock: UdpSocket, datagram: Datagram) -> None:
        response = datagram.payload
        if isinstance(response, AnnounceResponse) and response.torrent == torrent:
            on_peers(list(response.peers))

    sock = udp.bind(None, on_reply)
    sock.sendto(
        tracker_addr,
        tracker_port,
        ANNOUNCE_BYTES,
        payload=AnnounceRequest(torrent=torrent, peer_name=peer_name,
                                peer_port=peer_port),
    )
    return sock
