"""Torrent metadata: the emulated .torrent file."""

from __future__ import annotations

from dataclasses import dataclass

from ...simnet.errors import ConfigurationError

__all__ = ["TorrentMeta"]


@dataclass(frozen=True)
class TorrentMeta:
    """Describes one single-file torrent.

    The last piece may be shorter than ``piece_size``, as in real torrents.
    """

    name: str
    total_bytes: int
    piece_size: int = 65536

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ConfigurationError("torrent must have positive size")
        if self.piece_size <= 0:
            raise ConfigurationError("piece size must be positive")

    @property
    def num_pieces(self) -> int:
        """Number of pieces (ceil division)."""
        return -(-self.total_bytes // self.piece_size)

    def piece_length(self, index: int) -> int:
        """Length of piece ``index`` in bytes."""
        if not 0 <= index < self.num_pieces:
            raise ConfigurationError(
                f"piece {index} out of range 0..{self.num_pieces - 1}"
            )
        if index == self.num_pieces - 1:
            remainder = self.total_bytes - self.piece_size * (self.num_pieces - 1)
            return remainder
        return self.piece_size

    def all_pieces(self) -> frozenset:
        """The complete piece set (what a seed holds)."""
        return frozenset(range(self.num_pieces))
