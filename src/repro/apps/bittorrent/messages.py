"""Peer-wire protocol messages.

Wire sizes follow the real BitTorrent peer protocol so traffic volume is
faithful: a 4-byte length prefix plus 1-byte id on every message, 68-byte
handshakes, 13-byte piece headers, bitfields of ``ceil(pieces / 8)`` bytes.
Piece payloads are transferred at whole-piece granularity (the real
protocol's 16 KiB blocks are a flow-control refinement below the fidelity
these experiments need; pipelining happens at the piece level instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

__all__ = [
    "Handshake",
    "Bitfield",
    "Have",
    "Interested",
    "NotInterested",
    "Choke",
    "Unchoke",
    "Request",
    "PieceData",
]

_PREFIX = 5  # 4-byte length + 1-byte message id


@dataclass(frozen=True)
class Handshake:
    """Identifies the sending peer (name stands in for the peer id)."""

    peer_name: str
    wire_bytes: int = 68


@dataclass(frozen=True)
class Bitfield:
    """The sender's complete piece set, sent right after the handshake."""

    have: FrozenSet[int]
    num_pieces: int

    @property
    def wire_bytes(self) -> int:
        return _PREFIX + -(-self.num_pieces // 8)


@dataclass(frozen=True)
class Have:
    """Announces one newly completed piece."""

    piece: int
    wire_bytes: int = _PREFIX + 4


@dataclass(frozen=True)
class Interested:
    wire_bytes: int = _PREFIX


@dataclass(frozen=True)
class NotInterested:
    wire_bytes: int = _PREFIX


@dataclass(frozen=True)
class Choke:
    wire_bytes: int = _PREFIX


@dataclass(frozen=True)
class Unchoke:
    wire_bytes: int = _PREFIX


@dataclass(frozen=True)
class Request:
    """Asks for one whole piece."""

    piece: int
    wire_bytes: int = _PREFIX + 12


@dataclass(frozen=True)
class PieceData:
    """Delivers one piece; ``length`` is the piece's byte count."""

    piece: int
    length: int

    @property
    def wire_bytes(self) -> int:
        return _PREFIX + 8 + self.length
