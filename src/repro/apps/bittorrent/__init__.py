"""``repro.apps.bittorrent`` — a swarm model over the emulated TCP stack."""

from .messages import (
    Bitfield,
    Choke,
    Handshake,
    Have,
    Interested,
    NotInterested,
    PieceData,
    Request,
    Unchoke,
)
from .metainfo import TorrentMeta
from .peer import Peer, PeerConfig
from .swarm import Swarm, build_swarm
from .tracker import TRACKER_PORT, TrackerServer, announce

__all__ = [
    "TorrentMeta",
    "Peer",
    "PeerConfig",
    "Swarm",
    "build_swarm",
    "TrackerServer",
    "announce",
    "TRACKER_PORT",
    "Handshake",
    "Bitfield",
    "Have",
    "Interested",
    "NotInterested",
    "Choke",
    "Unchoke",
    "Request",
    "PieceData",
]
