"""The BitTorrent peer: piece management, choking, and the request engine.

Implements the behaviours that drive swarm-level timing (what the paper's
BitTorrent macro-benchmark measures):

* **rarest-first** piece selection with seeded random tie-breaking;
* **tit-for-tat choking**: every choke interval the peer unchokes the
  ``upload_slots - 1`` interested peers that recently gave it the most
  data (seeds rank by what they recently *sent*), plus one optimistic
  unchoke rotated every third round;
* **piece-level request pipelining** with a configurable depth;
* re-request of pieces stranded by a choke or connection loss.

Every timer (choke rounds, stall re-requests) runs on the node's clock, so
a dilated swarm's dynamics play out in virtual time.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set

from ...core.timer import PeriodicTimer
from ...simnet.node import Node
from ...tcp.options import TcpOptions
from ...tcp.socket import TcpSocket
from ...tcp.stack import TcpStack
from ...udp.socket import UdpStack
from . import tracker as tracker_mod
from .messages import (
    Bitfield,
    Choke,
    Handshake,
    Have,
    Interested,
    NotInterested,
    PieceData,
    Request,
    Unchoke,
)
from .metainfo import TorrentMeta

__all__ = ["Peer", "PeerConfig"]

PEER_PORT = 6881


@dataclass
class PeerConfig:
    """Tunable peer behaviour (defaults follow the classic client)."""

    upload_slots: int = 4
    choke_interval_s: float = 10.0
    optimistic_every_rounds: int = 3
    request_pipeline: int = 2
    stall_timeout_s: float = 30.0
    #: Hard cap on simultaneous neighbours (the classic client's default
    #: ceiling). Inbound connections beyond the cap are refused and tracker
    #: samples are only dialled up to it — without a cap a 250-peer swarm
    #: degenerates into a full mesh and every per-neighbour loop pays O(N).
    max_connections: int = 80
    #: Re-announce to the tracker (at a choke-round edge) while leeching
    #: with fewer than this many neighbours — a late joiner whose entire
    #: tracker sample was capped peers would otherwise strand with zero
    #: connections, exactly like a real client that never re-announced.
    min_peers: int = 5


@dataclass(eq=False)  # identity semantics: connections live in sets
class _Connection:
    """Per-neighbour protocol state."""

    socket: TcpSocket
    remote_name: Optional[str] = None
    am_choking: bool = True
    am_interested: bool = False
    peer_choking: bool = True
    peer_interested: bool = False
    remote_have: Set[int] = field(default_factory=set)
    #: ``remote_have - peer.have``: the pieces this neighbour could give us,
    #: maintained incrementally so interest checks and rarest-first
    #: candidate scans never re-walk the whole bitfield.
    interesting: Set[int] = field(default_factory=set)
    outstanding: Set[int] = field(default_factory=set)
    #: Bytes received from this neighbour since the last choke round.
    downloaded_window: int = 0
    #: Bytes sent to this neighbour since the last choke round.
    uploaded_window: int = 0
    handshake_sent: bool = False


class Peer:
    """One participant in a swarm (seed if it starts with all pieces)."""

    def __init__(
        self,
        tcp: TcpStack,
        udp: UdpStack,
        meta: TorrentMeta,
        tracker_addr: str,
        rng: random.Random,
        seed: bool = False,
        config: Optional[PeerConfig] = None,
        port: int = PEER_PORT,
        tcp_options: Optional[TcpOptions] = None,
        on_complete: Optional[Callable[["Peer"], None]] = None,
    ) -> None:
        self.tcp = tcp
        self.udp = udp
        self.node: Node = tcp.node
        self.name = self.node.name
        self.meta = meta
        self.tracker_addr = tracker_addr
        self.rng = rng
        self.config = config if config is not None else PeerConfig()
        self.port = port
        self.tcp_options = tcp_options
        self.on_complete = on_complete

        self.is_seed = seed
        self.have: Set[int] = set(meta.all_pieces()) if seed else set()
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None if not seed else 0.0
        self.bytes_uploaded = 0
        self.bytes_downloaded = 0

        #: Pieces currently requested somewhere: piece -> connection.
        self._pending: Dict[int, _Connection] = {}
        self._pending_since: Dict[int, float] = {}
        self._connections: List[_Connection] = []
        self._by_socket: Dict[int, _Connection] = {}
        self._by_name: Dict[str, _Connection] = {}
        #: Swarm-wide replica count per piece (how many neighbours have it),
        #: kept in sync with every Bitfield/Have/disconnect so rarest-first
        #: never rebuilds a counts dict over all connections.
        self._avail: List[int] = [0] * meta.num_pieces
        self._choke_rounds = 0
        self._choke_timer: Optional[PeriodicTimer] = None
        self._optimistic: Optional[_Connection] = None
        self._announce: Optional[tracker_mod.AnnounceHandle] = None

    # ------------------------------------------------------------- lifecycle

    @property
    def complete(self) -> bool:
        """Whether every piece is held."""
        return len(self.have) == self.meta.num_pieces

    @property
    def connection_count(self) -> int:
        """Live neighbour connections."""
        return len(self._connections)

    def download_time(self) -> Optional[float]:
        """Local seconds from start to completion (None while leeching).

        A peer that began life complete (a seed) downloaded nothing: its
        download time is 0.0 by definition, whether or not it has been
        started — the seed era left ``completed_at=0.0, started_at=None``
        on an unstarted seed, an ill-defined pair.
        """
        if self.is_seed:
            return 0.0
        if self.completed_at is None or self.started_at is None:
            return None
        return self.completed_at - self.started_at

    def start(self) -> None:
        """Listen, announce, and begin the choke rounds."""
        self.started_at = self.node.clock.now()
        if self.complete:
            self.completed_at = self.started_at
        self.tcp.listen(
            self.port,
            self._on_accept,
            options=self.tcp_options,
            on_message=self._on_message,
            on_close=self._on_socket_close,
            on_error=self._on_socket_error,
        )
        self._announce = tracker_mod.announce(
            self.udp, self.tracker_addr, self.meta.name, self.name, self.port,
            self._on_tracker_peers,
        )
        self._choke_timer = PeriodicTimer(
            self.node.clock, self.config.choke_interval_s, self._choke_round
        )

    def stop(self) -> None:
        """Leave the swarm: stop timers and deregister from the tracker.

        Connections are left to the simulation's end; the ``stopped``
        announce lets the tracker drop us from future peer samples.
        """
        if self._choke_timer is not None:
            self._choke_timer.stop()
        if self._announce is not None:
            self._announce.cancel()
            self._announce = None
        if self.started_at is not None:
            tracker_mod.announce(
                self.udp, self.tracker_addr, self.meta.name, self.name,
                self.port, None, event="stopped", max_tries=3,
            )

    # ------------------------------------------------------------ connections

    def _on_tracker_peers(self, peers: List) -> None:
        for remote_name, remote_port in peers:
            if remote_name == self.name or remote_name in self._by_name:
                continue
            if len(self._connections) >= self.config.max_connections:
                break
            sock = self.tcp.connect(
                remote_name,
                remote_port,
                options=self.tcp_options,
                on_connected=self._on_connected,
                on_message=self._on_message,
                on_close=self._on_socket_close,
                on_error=self._on_socket_error,
            )
            self._set_remote_name(self._register(sock), remote_name)

    def _register(self, sock: TcpSocket) -> _Connection:
        connection = _Connection(socket=sock)
        self._connections.append(connection)
        self._by_socket[id(sock)] = connection
        return connection

    def _set_remote_name(self, connection: _Connection, name: str) -> None:
        connection.remote_name = name
        # First mapping wins: a simultaneous dial/accept pair keeps both
        # connections (as the seed code did), the index just answers the
        # "already connected to X?" question in O(1).
        self._by_name.setdefault(name, connection)

    def _on_accept(self, sock: TcpSocket) -> None:
        if len(self._connections) >= self.config.max_connections:
            sock.close()
            return
        connection = self._register(sock)
        self._set_remote_name(connection, sock.remote_addr)
        self._send_handshake(connection)

    def _on_connected(self, sock: TcpSocket) -> None:
        connection = self._by_socket.get(id(sock))
        if connection is not None:
            self._send_handshake(connection)

    def _send_handshake(self, connection: _Connection) -> None:
        if connection.handshake_sent:
            return
        connection.handshake_sent = True
        self._send(connection, Handshake(peer_name=self.name))
        self._send(
            connection,
            Bitfield(have=frozenset(self.have), num_pieces=self.meta.num_pieces),
        )

    def _on_socket_close(self, sock: TcpSocket) -> None:
        self._drop_connection(sock)

    def _on_socket_error(self, sock: TcpSocket, error: Exception) -> None:
        self._drop_connection(sock)

    def _drop_connection(self, sock: TcpSocket) -> None:
        connection = self._by_socket.pop(id(sock), None)
        if connection is None:
            return
        if connection in self._connections:
            self._connections.remove(connection)
            for piece in connection.remote_have:
                self._avail[piece] -= 1
        name = connection.remote_name
        if name is not None and self._by_name.get(name) is connection:
            del self._by_name[name]
        if self._optimistic is connection:
            self._optimistic = None
        for piece in list(connection.outstanding):
            self._unpend(piece)
        self._fill_pipelines()

    # --------------------------------------------------------------- messages

    def _send(self, connection: _Connection, message) -> None:
        if connection.socket.state not in ("ESTABLISHED", "CLOSE_WAIT",
                                           "SYN_SENT", "SYN_RCVD"):
            return
        connection.socket.send(message.wire_bytes, message=message)
        if isinstance(message, PieceData):
            self.bytes_uploaded += message.length
            connection.uploaded_window += message.length

    def _on_message(self, sock: TcpSocket, message) -> None:
        connection = self._by_socket.get(id(sock))
        if connection is None:
            return
        if isinstance(message, Handshake):
            self._set_remote_name(connection, message.peer_name)
        elif isinstance(message, Bitfield):
            self._add_remote_pieces(connection, message.have)
        elif isinstance(message, Have):
            self._add_remote_pieces(connection, (message.piece,))
            self._fill_pipeline(connection)
        elif isinstance(message, Interested):
            connection.peer_interested = True
        elif isinstance(message, NotInterested):
            connection.peer_interested = False
        elif isinstance(message, Choke):
            connection.peer_choking = True
            for piece in list(connection.outstanding):
                self._unpend(piece)
            connection.outstanding.clear()
        elif isinstance(message, Unchoke):
            connection.peer_choking = False
            self._fill_pipeline(connection)
        elif isinstance(message, Request):
            self._on_request(connection, message)
        elif isinstance(message, PieceData):
            self._on_piece(connection, message)

    def _on_request(self, connection: _Connection, message: Request) -> None:
        if connection.am_choking:
            return  # requests racing a choke are dropped, as in the protocol
        if message.piece not in self.have:
            return
        self._send(
            connection,
            PieceData(piece=message.piece,
                      length=self.meta.piece_length(message.piece)),
        )

    def _on_piece(self, connection: _Connection, message: PieceData) -> None:
        connection.outstanding.discard(message.piece)
        connection.downloaded_window += message.length
        self.bytes_downloaded += message.length
        self._unpend(message.piece)
        piece = message.piece
        if piece in self.have:
            return  # duplicate (e.g. raced a re-request)
        self.have.add(piece)
        for other in self._connections:
            # Have suppression, as real clients do: a neighbour that already
            # holds the piece learns nothing from our Have, and at swarm
            # scale the unsuppressed broadcast is an O(N^2 * pieces) storm.
            if piece not in other.remote_have:
                self._send(other, Have(piece=piece))
            if piece in other.interesting:
                other.interesting.discard(piece)
                self._update_interest(other)
        if self.complete and self.completed_at is None:
            self.completed_at = self.node.clock.now()
            if self.on_complete is not None:
                self.on_complete(self)
        self._fill_pipeline(connection)

    # ------------------------------------------------------------- requesting

    def _add_remote_pieces(
        self, connection: _Connection, pieces: Iterable[int]
    ) -> None:
        """Fold a Bitfield/Have delta into the incremental indexes."""
        remote = connection.remote_have
        interesting = connection.interesting
        avail = self._avail
        have = self.have
        for piece in pieces:
            if piece in remote:
                continue
            remote.add(piece)
            avail[piece] += 1
            if piece not in have:
                interesting.add(piece)
        self._update_interest(connection)

    def _needed_from(self, connection: _Connection) -> List[int]:
        pending = self._pending
        return [p for p in connection.interesting if p not in pending]

    def _update_interest(self, connection: _Connection) -> None:
        interesting = bool(connection.interesting)
        if interesting and not connection.am_interested:
            connection.am_interested = True
            self._send(connection, Interested())
        elif not interesting and connection.am_interested:
            connection.am_interested = False
            self._send(connection, NotInterested())

    def _fill_pipeline(self, connection: _Connection) -> None:
        if connection.peer_choking or not connection.interesting:
            return
        avail = self._avail
        while len(connection.outstanding) < self.config.request_pipeline:
            candidates = self._needed_from(connection)
            if not candidates:
                return
            # Rarest first; random tie-break keeps replicas spreading.
            rarest = min(avail[p] for p in candidates)
            pool = [p for p in candidates if avail[p] == rarest]
            piece = self.rng.choice(pool)
            self._request(connection, piece)

    def _fill_pipelines(self) -> None:
        for connection in self._connections:
            self._fill_pipeline(connection)

    def _request(self, connection: _Connection, piece: int) -> None:
        connection.outstanding.add(piece)
        self._pending[piece] = connection
        self._pending_since[piece] = self.node.clock.now()
        self._send(connection, Request(piece=piece))

    def _unpend(self, piece: int) -> None:
        self._pending.pop(piece, None)
        self._pending_since.pop(piece, None)

    def _retry_stalled(self) -> None:
        now = self.node.clock.now()
        stalled = [
            piece for piece, since in self._pending_since.items()
            if now - since > self.config.stall_timeout_s
        ]
        for piece in stalled:
            holder = self._pending.get(piece)
            if holder is not None:
                holder.outstanding.discard(piece)
            self._unpend(piece)
        if stalled:
            self._fill_pipelines()

    # ---------------------------------------------------------------- choking

    def _choke_round(self, round_index: int) -> None:
        self._choke_rounds += 1
        self._retry_stalled()
        if (
            not self.complete
            and len(self._connections) < self.config.min_peers
            and (self._announce is None or self._announce.done)
        ):
            self._announce = tracker_mod.announce(
                self.udp, self.tracker_addr, self.meta.name, self.name,
                self.port, self._on_tracker_peers,
            )
        interested = [c for c in self._connections if c.peer_interested]
        if self.complete:
            # Seeds reciprocate nothing: rank by recent upload throughput so
            # capacity goes where it is being drained fastest.
            key = lambda c: (-c.uploaded_window, c.remote_name or "")
        else:
            key = lambda c: (-c.downloaded_window, c.remote_name or "")
        # nsmallest(k, ...) is documented equivalent to sorted(...)[:k] but
        # O(n log k): the round only ever needs the top slots, not a full
        # ranking of every interested neighbour.
        slots = max(0, self.config.upload_slots - 1)
        regular = heapq.nsmallest(slots, interested, key=key)
        unchoke = set(regular)
        rotate = (self._choke_rounds % self.config.optimistic_every_rounds) == 1
        if rotate or self._optimistic is None:
            # Pool in stable connection order (dropped connections clear
            # ``_optimistic``), so the rng draw stays deterministic.
            choked_pool = [c for c in interested if c not in unchoke]
            self._optimistic = self.rng.choice(choked_pool) if choked_pool else None
        if self._optimistic is not None:
            unchoke.add(self._optimistic)
        for connection in self._connections:
            should_unchoke = connection in unchoke
            if should_unchoke and connection.am_choking:
                connection.am_choking = False
                self._send(connection, Unchoke())
            elif not should_unchoke and not connection.am_choking:
                connection.am_choking = True
                self._send(connection, Choke())
            connection.downloaded_window = 0
            connection.uploaded_window = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Peer({self.name}, {len(self.have)}/{self.meta.num_pieces} pieces, "
            f"{len(self._connections)} conns)"
        )
