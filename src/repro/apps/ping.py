"""RTT probing over UDP (the emulator's ping).

Used by validation experiments to confirm that a dilated guest measures
``physical RTT / TDF``. The prober times echo exchanges against its own
node's clock, so inside a VM the reported RTTs are virtual.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from ..core.timer import PeriodicTimer
from ..simnet.node import Node
from ..stats.meters import LatencyMeter
from ..udp.socket import Datagram, UdpSocket, UdpStack

__all__ = ["EchoResponder", "Pinger"]

ECHO_PORT = 7  # the classic echo service


class EchoResponder:
    """Bounces every datagram straight back to its source."""

    def __init__(self, udp: UdpStack, port: int = ECHO_PORT) -> None:
        self.socket = udp.bind(port, self._on_datagram)
        self.echoed = 0

    def _on_datagram(self, sock: UdpSocket, datagram: Datagram) -> None:
        self.echoed += 1
        sock.sendto(
            datagram.src_addr,
            datagram.src_port,
            datagram.size_bytes,
            payload=datagram.payload,
        )


class Pinger:
    """Sends periodic echo requests and records RTTs in local time."""

    def __init__(
        self,
        udp: UdpStack,
        target_addr: str,
        count: int = 10,
        interval_s: float = 1.0,
        payload_bytes: int = 56,
        target_port: int = ECHO_PORT,
    ) -> None:
        self.node: Node = udp.node
        self.target_addr = target_addr
        self.target_port = target_port
        self.count = count
        self.interval_s = interval_s
        self.payload_bytes = payload_bytes
        self.latency = LatencyMeter(self.node.clock)
        self.sent = 0
        self.received = 0
        self._seq = itertools.count()
        self._socket = udp.bind(None, self._on_reply)
        self._timer: Optional[PeriodicTimer] = None

    def start(self) -> None:
        """Send the first probe immediately, then one per interval."""
        self._send_probe()
        if self.count > 1:
            self._timer = PeriodicTimer(
                self.node.clock,
                self.interval_s,
                lambda tick: self._send_probe(),
                max_ticks=self.count - 1,
            )

    def _send_probe(self) -> None:
        seq = next(self._seq)
        self.sent += 1
        self.latency.start(seq)
        self._socket.sendto(
            self.target_addr, self.target_port, self.payload_bytes, payload=seq
        )

    def _on_reply(self, sock: UdpSocket, datagram: Datagram) -> None:
        latency = self.latency.stop(datagram.payload)
        if latency is not None:
            self.received += 1

    @property
    def rtts(self) -> List[float]:
        """All measured round-trip times, local seconds."""
        return list(self.latency.samples)

    @property
    def loss_rate(self) -> float:
        """Fraction of probes not (yet) answered."""
        if self.sent == 0:
            return 0.0
        return 1.0 - self.received / self.sent
