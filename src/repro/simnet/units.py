"""Unit helpers for time, data-size and data-rate quantities.

Internally the whole library uses SI base units stored as plain floats:

* time        — seconds
* data size   — bits (payload sizes in the packet layer are bytes; helpers
  here convert explicitly, never implicitly)
* data rate   — bits per second

These helpers exist so that experiment code reads the way the paper's tables
do (``mbps(100)``, ``ms(40)``) and so that human-entered strings such as
``"100Mbps"`` or ``"40ms"`` can be parsed in one well-tested place.
"""

from __future__ import annotations

import re

__all__ = [
    "KILO",
    "MEGA",
    "GIGA",
    "BYTE",
    "usec",
    "ms",
    "seconds",
    "minutes",
    "kbps",
    "mbps",
    "gbps",
    "kib",
    "mib",
    "bytes_to_bits",
    "bits_to_bytes",
    "parse_rate",
    "parse_time",
    "format_rate",
    "format_time",
]

KILO = 1_000.0
MEGA = 1_000_000.0
GIGA = 1_000_000_000.0

#: Bits per byte; data on the wire is measured in bits, payloads in bytes.
BYTE = 8


def usec(value: float) -> float:
    """Microseconds expressed in seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Milliseconds expressed in seconds."""
    return value * 1e-3


def seconds(value: float) -> float:
    """Seconds (identity — for symmetry in experiment configs)."""
    return float(value)


def minutes(value: float) -> float:
    """Minutes expressed in seconds."""
    return value * 60.0


def kbps(value: float) -> float:
    """Kilobits per second expressed in bits per second."""
    return value * KILO


def mbps(value: float) -> float:
    """Megabits per second expressed in bits per second."""
    return value * MEGA


def gbps(value: float) -> float:
    """Gigabits per second expressed in bits per second."""
    return value * GIGA


def kib(value: float) -> int:
    """Kibibytes expressed in bytes."""
    return int(value * 1024)


def mib(value: float) -> int:
    """Mebibytes expressed in bytes."""
    return int(value * 1024 * 1024)


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * BYTE


def bits_to_bytes(num_bits: float) -> float:
    """Convert a bit count to bytes."""
    return num_bits / BYTE


_RATE_UNITS = {
    "bps": 1.0,
    "kbps": KILO,
    "mbps": MEGA,
    "gbps": GIGA,
}

_TIME_UNITS = {
    "us": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "min": 60.0,
}

_QUANTITY_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]+)\s*$")


def parse_rate(text: str) -> float:
    """Parse a human-readable rate such as ``"100Mbps"`` into bits/second.

    Units are case-insensitive; ``bps``, ``Kbps``, ``Mbps`` and ``Gbps`` are
    accepted.

    >>> parse_rate("100Mbps")
    100000000.0
    """
    match = _QUANTITY_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse rate: {text!r}")
    value, unit = match.groups()
    scale = _RATE_UNITS.get(unit.lower())
    if scale is None:
        raise ValueError(f"unknown rate unit {unit!r} in {text!r}")
    return float(value) * scale


def parse_time(text: str) -> float:
    """Parse a human-readable duration such as ``"40ms"`` into seconds.

    >>> parse_time("40ms")
    0.04
    """
    match = _QUANTITY_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse time: {text!r}")
    value, unit = match.groups()
    scale = _TIME_UNITS.get(unit.lower())
    if scale is None:
        raise ValueError(f"unknown time unit {unit!r} in {text!r}")
    return float(value) * scale


def format_rate(bits_per_second: float) -> str:
    """Render a rate with the most natural unit (for reports and tables)."""
    magnitude = abs(bits_per_second)
    if magnitude >= GIGA:
        return f"{bits_per_second / GIGA:.2f} Gbps"
    if magnitude >= MEGA:
        return f"{bits_per_second / MEGA:.2f} Mbps"
    if magnitude >= KILO:
        return f"{bits_per_second / KILO:.2f} Kbps"
    return f"{bits_per_second:.2f} bps"


def format_time(time_seconds: float) -> str:
    """Render a duration with the most natural unit."""
    magnitude = abs(time_seconds)
    if magnitude >= 1.0:
        return f"{time_seconds:.3f} s"
    if magnitude >= 1e-3:
        return f"{time_seconds * 1e3:.3f} ms"
    return f"{time_seconds * 1e6:.1f} us"
