"""Packet tracing — the emulator's tcpdump.

A :class:`PacketTrace` attaches to an interface as a tap and records one
:class:`TraceRecord` per event. The figure-5 benchmark uses traces to
compare packet interarrival distributions between dilated and baseline
runs; traces can report interarrivals in either physical time or any
clock's local (virtual) time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from .clock import Clock
from .nic import Interface
from .packet import Packet

__all__ = ["TraceRecord", "PacketTrace"]


@dataclass(frozen=True)
class TraceRecord:
    """One observed packet event."""

    kind: str  # 'enqueue' | 'tx' | 'rx' | 'drop'
    physical_time: float
    size_bytes: int
    flow_id: Optional[str]
    packet_uid: int


class PacketTrace:
    """Record packet events on an interface, optionally filtered by kind/flow."""

    def __init__(
        self,
        interface: Interface,
        kinds: Iterable[str] = ("rx",),
        flow_id: Optional[str] = None,
    ) -> None:
        self._kinds = frozenset(kinds)
        self._flow_id = flow_id
        self.records: List[TraceRecord] = []
        interface.add_tap(self._observe)

    def _observe(self, kind: str, time: float, packet: Packet) -> None:
        if kind not in self._kinds:
            return
        if self._flow_id is not None and packet.flow_id != self._flow_id:
            return
        self.records.append(
            TraceRecord(
                kind=kind,
                physical_time=time,
                size_bytes=packet.size_bytes,
                flow_id=packet.flow_id,
                packet_uid=packet.uid,
            )
        )

    def __len__(self) -> int:
        return len(self.records)

    def timestamps(self, clock: Optional[Clock] = None) -> List[float]:
        """Event times — physical, or mapped through ``clock`` to local time."""
        if clock is None:
            return [record.physical_time for record in self.records]
        return [clock.to_local(record.physical_time) for record in self.records]

    def interarrivals(self, clock: Optional[Clock] = None) -> List[float]:
        """Gaps between consecutive events, in physical or local seconds."""
        stamps = self.timestamps(clock)
        return [b - a for a, b in zip(stamps, stamps[1:])]

    def total_bytes(self) -> int:
        """Sum of recorded packet sizes."""
        return sum(record.size_bytes for record in self.records)
