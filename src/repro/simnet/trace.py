"""Packet tracing — the emulator's tcpdump (compatibility shim).

A :class:`PacketTrace` records one :class:`TraceRecord` per packet event
on an interface. The figure-5 benchmark uses traces to compare packet
interarrival distributions between dilated and baseline runs; traces can
report interarrivals in either physical time or any clock's local
(virtual) time.

Since the flight-recorder subsystem landed, this module is a thin shim
over :class:`repro.trace.recorder.FlightRecorder`: the trace attaches to
the interface's single ``recorder`` slot (so attaching a second observer
to the same interface raises), captures the drop-taxonomy reason on
``'drop'`` records, and — when constructed with an owning ``clock`` —
stamps each record with the virtual time at capture. New code should use
:class:`~repro.trace.recorder.FlightRecorder` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from .clock import Clock
from .nic import Interface

__all__ = ["TraceRecord", "PacketTrace"]


@dataclass(frozen=True)
class TraceRecord:
    """One observed packet event."""

    kind: str  # 'enqueue' | 'tx' | 'rx' | 'drop'
    physical_time: float
    size_bytes: int
    flow_id: Optional[str]
    packet_uid: int
    #: Virtual time at capture (None unless the trace owns a clock).
    virtual_time: Optional[float] = None
    #: Taxonomy reason for 'drop' records ("queue", "loss", …); None else.
    drop_reason: Optional[str] = None


class PacketTrace:
    """Record packet events on an interface, optionally filtered by kind/flow.

    Parameters
    ----------
    interface:
        The observed interface; the trace claims its ``recorder`` slot.
    kinds / flow_id:
        Event filters, as before.
    clock:
        Optional owning clock; when given, every record also carries the
        virtual time at capture (``timestamps``/``interarrivals`` can
        still re-map through any other clock after the fact).
    """

    def __init__(
        self,
        interface: Interface,
        kinds: Iterable[str] = ("rx",),
        flow_id: Optional[str] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        from ..trace.recorder import FlightRecorder

        self.recorder = FlightRecorder(
            capacity=None,  # the legacy trace never evicted
            clock=clock,
            name=f"trace:{interface.name}",
            packet_kinds=kinds,
            flow_id=flow_id,
        )
        self.recorder.attach_interface(interface)

    @property
    def records(self) -> List[TraceRecord]:
        """The recorded events, oldest first, as legacy records."""
        return [
            TraceRecord(
                kind=event.kind,
                physical_time=event.physical_time,
                size_bytes=event.size_bytes,
                flow_id=event.flow_id,
                packet_uid=event.packet_uid,
                virtual_time=event.virtual_time,
                drop_reason=event.reason if event.kind == "drop" else None,
            )
            for event in self.recorder
        ]

    def events(self):
        """The underlying :class:`TraceEvent` list (full detail)."""
        return self.recorder.snapshot()

    def clear(self) -> None:
        """Forget everything recorded so far (e.g. at end of warmup)."""
        self.recorder.clear()

    def __len__(self) -> int:
        return len(self.recorder)

    def timestamps(self, clock: Optional[Clock] = None) -> List[float]:
        """Event times — physical, or mapped through ``clock`` to local time."""
        if clock is None:
            return [event.physical_time for event in self.recorder]
        return [clock.to_local(event.physical_time) for event in self.recorder]

    def interarrivals(self, clock: Optional[Clock] = None) -> List[float]:
        """Gaps between consecutive events, in physical or local seconds."""
        stamps = self.timestamps(clock)
        return [b - a for a, b in zip(stamps, stamps[1:])]

    def total_bytes(self) -> int:
        """Sum of recorded packet sizes."""
        return sum(event.size_bytes for event in self.recorder)
