"""Fluid flow-level fast path — hybrid-fidelity TCP emulation.

Packet-level emulation spends a handful of engine events on every segment
of every flow, which is exactly right while behaviour is *unpredictable*
(loss, recovery, competing traffic, impairments) and pure waste while a
bulk flow sits in steady state clocking one full window per RTT. This
module adds the fast path: a :class:`FluidManager` installed on a
:class:`~repro.simnet.engine.Simulator` watches ACK progress, and when a
flow satisfies the steady-state predicate it is *drained* (no new data
enters the network until the flight empties) and then switched to a
coarse-stepped fluid model that advances delivered bytes, cwnd and queue
occupancy analytically per interval — typically one event per
``min(rtt, 25 ms)`` of virtual time instead of ~6 per segment.

The abstraction switch is per flow and reversible. Any discontinuity the
closed form cannot express hands the flow back to packet level:

* **foreign traffic** — a transmit on any path interface while the fluid
  flow is silent means a competing flow arrived (detected via
  ``tx_packets`` snapshots, one integer compare per interface per step);
* **path change** — an impairment, tap, recorder, shaper, RED queue,
  jitter, link-down or cross-shard ``egress_channel`` appearing on the
  path (``Interface.fluid_transparent`` re-checked every step);
* **peer talkback** — the receiving application responding with data of
  its own (request/response traffic is never fluid);
* **state change** — close/FIN/RST progress on either socket;
* **tail** — the transfer approaching its end, so the final windows, FIN
  handshake and retransmissions (if any) run packet-level.

Loss is never modelled analytically: every real loss episode belongs to
the packet engine. The model tracks the bottleneck's occupancy (window
minus bandwidth-delay product) and hands the flow back *before* the
window reaches the overflow point (``loss-imminent``); packet level then
overflows the queue organically, pays the true recovery cost, and the
flow re-enters once the halved window clears the entry margin. The AIMD
sawtooth therefore alternates fluid climbs with real packet peaks, and
goodput keeps the convergence losses the packet baseline pays.

Byte conservation across the handoff is asserted, not assumed: bytes
acked at entry plus fluid-delivered bytes must equal bytes acked at exit,
and the receiver's reassembly cursor must agree — a mismatch raises and
bumps ``fluid.conservation_failures`` instead of silently skewing CDFs.

Everything here is opt-in. With no manager installed, ``sim.fluid`` is
``None`` and every socket hook is a single is-None check: packet-level
runs (and their goldens) are bit-exact with or without this module
imported.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from .packet import IP_HEADER_BYTES

__all__ = ["FluidManager", "FluidFlow"]

#: RTT samples required before the model trusts srtt (timestamps-off
#: connections sample once per flight, so this is ~4 RTTs of history).
MIN_RTT_SAMPLES = 4

#: Coarse-step ceiling in virtual seconds. One step per RTT is enough for
#: the dynamics; the cap bounds staircase error in goodput measured over
#: short windows (25 ms against a 4 s measurement span is < 1%).
STEP_CAP_S = 0.025

#: Coarse-step floor — sub-half-millisecond RTTs step at this instead.
STEP_FLOOR_S = 0.0005

#: Exit to packet level when the remaining stream is within this many
#: effective windows (the tail, FIN handshake and any real loss there
#: deserve real packets).
TAIL_WINDOWS = 2.0
TAIL_MIN_MSS = 8

#: New-data ACKs a flow must clock packet-level after a fallback before
#: it may re-enter fluid mode (damps mode thrash under bursty cross
#: traffic, e.g. swarms).
COOLDOWN_ACKS = 32

#: Loss quiet period: no fluid entry within this many srtts of the last
#: retransmission or timeout. Convergence is often a multi-episode
#: process (a slow-start overshoot's ssthresh can land right back at the
#: overflow point); entering between episodes would cancel the follow-up
#: loss the packet baseline pays for, overstating goodput.
QUIET_RTTS = 8.0

#: Paced handback: the window re-opens in this many slices over one srtt
#: so the resumed packet flow does not burst a full window into a queue
#: the fluid model kept near-empty.
PACE_TICKS = 8

#: Route-walk hop bound (defence against routing loops).
MAX_HOPS = 32

#: Overflow headroom in data packets: a flow may only *enter* fluid mode
#: with its window at least this far under the bottleneck overflow point,
#: and it *exits* (``loss-imminent``) once within EXIT_MARGIN_PKTS —
#: entry strictly tighter than exit so a freshly admitted flow cannot
#: bounce straight back out.
ENTRY_MARGIN_PKTS = 8
EXIT_MARGIN_PKTS = 4

#: With Nagle off, congestion avoidance interleaves full segments with
#: runts that absorb the fractional cwnd growth; they mature back into
#: full segments together once cumulative growth equals the post-loss
#: window, i.e. at cwnd = 2*ssthresh.  The maturation wave spawns a
#: fresh runt per pair in one RTT, nearly doubling the flight's packet
#: count, and it is this — not queue bytes — that overflows a
#: packet-bounded bottleneck queue.  Exit this many MSS of cwnd growth
#: *before* the wave so the packet engine replays the overflow (and the
#: chaotic drop mix that decides between clean SACK recovery and an
#: RTO cascade) natively.
WAVE_EXIT_MSS = 8.0

_TCP_HEADER_BYTES = 20
_TIMESTAMP_OPTION_BYTES = 12


def _segment_wire_bytes(options, payload: int) -> int:
    """Wire bytes of one segment under ``options`` (IP + TCP + payload)."""
    option_bytes = _TIMESTAMP_OPTION_BYTES if options.timestamps else 0
    return IP_HEADER_BYTES + _TCP_HEADER_BYTES + option_bytes + payload


def _path_constants(options, fwd: List, rev: List):
    """Wire sizes, physical base RTT and bottleneck of a traced path.

    Returns ``(data_wire, ack_wire, rtt_base_phys_s, bottleneck_iface)``.
    All quantities are physical; the BDP (bandwidth x base RTT) is
    TDF-invariant, so overflow geometry can be computed without the local
    clock's scale.
    """
    data_wire = _segment_wire_bytes(options, options.mss)
    ack_wire = _segment_wire_bytes(options, 0)
    base_phys = 0.0
    bottleneck = fwd[0]
    for iface in fwd:
        base_phys += iface.delay_s + data_wire * 8.0 / iface.bandwidth_bps
        if iface.bandwidth_bps < bottleneck.bandwidth_bps:
            bottleneck = iface
    for iface in rev:
        base_phys += iface.delay_s + ack_wire * 8.0 / iface.bandwidth_bps
    return data_wire, ack_wire, base_phys, bottleneck


def _queue_cap_bytes(queue) -> float:
    """Bottleneck queue *byte* capacity (inf when not byte-bounded).

    The packet-count bound is handled separately: queue slots are consumed
    per packet regardless of size, and with Nagle off the segment stream
    mixes full-MSS packets with sub-MSS runts, so the queue overflows at
    far fewer bytes than ``capacity_packets x full_frame``.
    """
    cap = getattr(queue, "capacity_bytes", None)
    return float(cap) if cap is not None else float("inf")


class FluidFlow:
    """One TCP flow currently advanced by the fluid model.

    Owns the per-step closed form; the sockets' real state (``snd_una``,
    cwnd, RTT estimator, receive assembler) is advanced in place so the
    handback needs no state copy — packet level resumes exactly where the
    model left the connection.
    """

    def __init__(
        self,
        manager: "FluidManager",
        sock,
        peer,
        fwd: List,
        rev: List,
    ) -> None:
        self.manager = manager
        self.sock = sock
        self.peer = peer
        self.fwd = fwd
        self.rev = rev
        self.active = True

        options = sock.options
        self.mss = options.mss
        self.ack_every = max(1, options.ack_every)
        data_wire, ack_wire, base_phys, bottleneck = _path_constants(
            options, fwd, rev
        )
        self.data_wire = data_wire
        self.ack_wire = ack_wire
        self.bottleneck = bottleneck

        # Virtual-time path constants. Interfaces carry *physical* delays
        # and bandwidths; the local clock's scale k (physical seconds per
        # virtual second) converts them into the flow's own time base, so
        # the model is TDF-invariant by construction.
        clock = sock.clock
        now_v = clock.now()
        k = clock.to_physical(now_v + 1.0) - clock.to_physical(now_v)
        if k <= 0:  # pragma: no cover - defensive; clocks are monotone
            k = 1.0
        self.rtt_base_v = base_phys / k
        #: Bottleneck capacity in wire bytes per *virtual* second.
        self.cap_wire_v = bottleneck.bandwidth_bps / 8.0 * k
        #: Wire bytes the path itself holds (bandwidth-delay product);
        #: pipeline bytes beyond this sit in the bottleneck queue.
        self.bdp_wire = self.cap_wire_v * self.rtt_base_v
        self.queue_cap_bytes = _queue_cap_bytes(bottleneck.queue)
        self.queue_cap_pkts = bottleneck.queue.capacity_packets

        # Conservation ledger: entry cursor + every materialised delta.
        self.entry_una = sock.snd_una
        self.entry_rcv_nxt = peer.assembler.rcv_nxt
        self.delivered = 0
        self.steps = 0
        self._events_saved = 0.0

        # ACK-cycle pipeline (see _step). The packet engine, with Nagle
        # off, emits each ACK's freed bytes as full-MSS segments plus one
        # sub-MSS runt; the receiver counts *segments* toward its delayed
        # ACK, so runts nearly double the ACK rate per byte — and with it
        # the per-byte cwnd growth — versus the textbook one-ACK-per-
        # 2xMSS law. A closed form misses that by design; instead each
        # coarse step replays the engine's per-ACK arithmetic over the
        # interval (a few dozen integer ops per ACK against ~a dozen
        # heap-managed engine events). Seeded with one window in flight;
        # the segment-size orbit self-organises within an RTT exactly as
        # the engine's does.
        self._overhead = data_wire - self.mss
        self._segq: deque = deque()
        self._flight_payload = 0
        self._flight_wire = 0
        self._seed_pipeline(int(self._window()))
        self._t_credit = 0.0

        self._snapshots: List[Tuple[object, int]] = [
            (iface, iface.tx_packets) for iface in fwd + rev
        ]
        self._dt = self._step_len()
        self._event = clock.call_in(self._dt, self._step)

    def _seed_pipeline(self, window: int) -> None:
        mss = self.mss
        cc = self.sock.cc
        ssthresh = float(getattr(cc, "ssthresh", float("inf")))
        m0 = 0
        if (
            not self.sock.options.nagle
            and 0.0 < ssthresh < float("inf")
            and window > ssthresh
        ):
            # Congestion avoidance interleaves full segments with "mid"
            # runts that absorb the fractional cwnd growth each RTT, so
            # a runt's size encodes how far the window has climbed since
            # the loss that set ssthresh: m = mss * (W - S) / S.  Seeding
            # that phase matters — the runts all mature to full segments
            # together at W = 2*ssthresh, doubling the packet count in
            # one RTT and overflowing a packet-bounded queue exactly
            # where the engine does.  An all-full seed would restart the
            # maturation clock at entry and push the overflow (and the
            # whole sawtooth amplitude) past the packet engine's.
            m0 = min(int(mss * (window - ssthresh) / ssthresh), mss - 1)
        if m0 > 0:
            # The engine's runt sizes carry ~±45 B of phase noise from
            # delayed-ACK pairing drift; a uniform seed would mature the
            # whole wave in a single RTT and hand the packet engine an
            # unnaturally clean drop burst (tinies only, always a tidy
            # SACK recovery).  Deterministic per-index jitter staggers
            # maturation over a few RTTs like the real flight does.
            remaining = window
            index = 0
            while True:
                jitter = ((index * 2654435761) >> 8) % 91 - 45
                mid = min(max(m0 + jitter, 1), mss - 1)
                if remaining < mss + mid:
                    break
                self._push_segment(mss)
                self._push_segment(mid)
                remaining -= mss + mid
                index += 1
            while remaining >= mss:
                self._push_segment(mss)
                remaining -= mss
            if remaining > 0:
                self._push_segment(remaining)
            return
        full, runt = divmod(window, mss)
        for _ in range(full):
            self._push_segment(mss)
        if runt > 0 and (not self.sock.options.nagle or full == 0):
            self._push_segment(runt)

    def _push_segment(self, payload: int) -> None:
        self._segq.append(payload)
        self._flight_payload += payload
        self._flight_wire += payload + self._overhead

    # ------------------------------------------------------------- model

    def _window(self) -> float:
        """Effective window: cwnd capped by the peer's advertised window."""
        return min(self.sock.cc.cwnd, float(self.sock.snd_wnd))

    def _rtt_eff(self) -> float:
        """RTT including modelled bottleneck queueing delay (virtual s)."""
        q_wire = max(0.0, self._flight_wire - self.cap_wire_v * self.rtt_base_v)
        return self.rtt_base_v + q_wire / self.cap_wire_v

    def _step_len(self) -> float:
        return min(max(self._rtt_eff(), STEP_FLOOR_S), STEP_CAP_S)

    def _remaining(self) -> int:
        sock = self.sock
        return sock.send_buffer.stream_length - (sock.snd_una - 1)

    def _step(self) -> None:
        if not self.active:  # pragma: no cover - cancelled events don't fire
            return
        sock = self.sock
        manager = self.manager

        # Discontinuities first; none of these advance the model.
        if sock.state not in manager._SENDER_STATES or self.peer.state not in (
            manager._RECEIVER_STATES
        ):
            manager._exit(self, "state", fallback=True)
            return
        for iface, tx in self._snapshots:
            if iface.tx_packets != tx:
                manager._exit(self, "traffic", fallback=True)
                return
        for iface in self.fwd:
            if not iface.fluid_transparent():
                manager._exit(self, "path", fallback=True)
                return
        for iface in self.rev:
            if not iface.fluid_transparent():
                manager._exit(self, "path", fallback=True)
                return

        window = self._window()
        remaining = self._remaining()
        if remaining <= max(TAIL_WINDOWS * window, TAIL_MIN_MSS * self.mss):
            manager._exit(self, "tail", fallback=False)
            return

        # Advance the flow by replaying ACK cycles over the interval. One
        # cycle: `ack_every` pipeline segments reach the receiver, one
        # cumulative ACK returns, the real cc object grows, and the sender
        # emits the freed window as full segments plus (Nagle off) a runt
        # — the packet engine's exact per-ACK arithmetic, minus its
        # events. Cycle duration is the ACK-clock spacing: window-limited
        # (payload x rtt / window) or bottleneck-limited (wire bytes /
        # capacity), whichever binds — so runt header overhead eats wire
        # capacity here just as it does on the real link.
        cc = sock.cc
        mss = self.mss
        nagle = sock.options.nagle
        ack_every = self.ack_every
        overhead = self._overhead
        budget = self._dt + self._t_credit
        byte_margin = (
            self.bdp_wire + self.queue_cap_bytes
            - EXIT_MARGIN_PKTS * self.data_wire
        )
        pkt_margin = (
            self.queue_cap_pkts - EXIT_MARGIN_PKTS
            if self.queue_cap_pkts is not None
            else None
        )
        wave_exit = None
        if pkt_margin is not None and not nagle:
            ssthresh = float(cc.ssthresh)
            if 0.0 < ssthresh < float("inf") and cc.cwnd >= ssthresh:
                wave_exit = 2.0 * ssthresh - WAVE_EXIT_MSS * mss
        t = 0.0
        delta = 0
        acks = 0
        segs = 0
        loss_imminent = False
        q = self._segq
        while t < budget:
            if len(q) < ack_every or delta + 2 * mss > remaining:
                break
            p = 0
            for _ in range(ack_every):
                p += q.popleft()
            segs += ack_every
            cycle_wire = p + ack_every * overhead
            self._flight_payload -= p
            self._flight_wire -= cycle_wire
            window = min(cc.cwnd, float(sock.snd_wnd))
            t += max(
                p * self.rtt_base_v / window, cycle_wire / self.cap_wire_v
            )
            delta += p
            acks += 1
            if cc.cwnd < cc.ssthresh:
                # Slow start with appropriate byte counting (RFC 3465).
                cc.cwnd += min(p, mss)
            else:
                cc.cwnd += mss * mss / cc.cwnd
            usable = int(min(cc.cwnd, float(sock.snd_wnd))) - self._flight_payload
            while usable >= mss:
                self._push_segment(mss)
                usable -= mss
            if usable > 0 and not nagle:
                self._push_segment(usable)
            # Loss-imminent: the pipeline is within the exit margin of the
            # bottleneck overflow point — by queue bytes, or by queue
            # *slots* (each packet occupies one slot whatever its size, so
            # the live segment mix sets the byte level at which a
            # packet-bounded queue fills). Packet level takes over,
            # overflows the queue organically and pays the true recovery
            # cost; the flow re-enters once the halved window clears the
            # entry margin.
            if self._flight_wire >= byte_margin:
                loss_imminent = True
                break
            if (
                wave_exit is not None
                and cc.cwnd >= wave_exit
                and float(sock.snd_wnd) > cc.cwnd
            ):
                # Runt maturation wave imminent (see WAVE_EXIT_MSS).
                loss_imminent = True
                break
            if pkt_margin is not None:
                queued_wire = self._flight_wire - self.bdp_wire
                if queued_wire > 0.0:
                    # The bottleneck queue holds the most recently emitted
                    # segments (FIFO drain), so walk the pipeline from the
                    # back accumulating wire bytes until the queued excess
                    # is covered; the segment count is the number of queue
                    # slots occupied by the live mix.
                    acc = 0.0
                    cnt = 0
                    for payload in reversed(q):
                        if acc >= queued_wire:
                            break
                        acc += payload + overhead
                        cnt += 1
                        if cnt >= pkt_margin:
                            loss_imminent = True
                            break
                    if loss_imminent:
                        break
        self._t_credit = min(max(budget - t, -STEP_CAP_S), STEP_CAP_S)

        if delta > 0:
            self._advance(delta)
        self.steps += 1
        counters = sock.node.sim.counters
        counters["fluid.steps"] = counters.get("fluid.steps", 0) + 1
        # Conservation is asserted on every step, not just at exit, so a
        # lossy handoff (or model bug) fails loudly even when the horizon
        # ends the run with the flow still in fluid mode.
        manager._assert_conserved(self, counters)

        if loss_imminent:
            manager._exit(self, "loss-imminent", fallback=False)
            return

        # RTT estimator keeps tracking the modelled path so RTO and the
        # handback pacing interval stay sane.
        sock.rtt.observe(self._rtt_eff())

        # Event-budget ledger: segments plus ACKs, each worth ~2 engine
        # events (transmit-finish + delivery) per hop, minus our 1 step.
        # Flushed into the counters incrementally so a flow that never
        # exits (horizon reached mid-fluid) still reports its savings.
        self._events_saved += (
            segs * 2.0 * len(self.fwd) + acks * 2.0 * len(self.rev) - 1.0
        )
        whole_saved = int(self._events_saved)
        if whole_saved > 0:
            counters["fluid.events_saved"] = (
                counters.get("fluid.events_saved", 0) + whole_saved
            )
            self._events_saved -= whole_saved

        # The receiving application may have responded to delivered
        # messages with data of its own — that traffic is real packets.
        peer = self.peer
        if peer.flight_size > 0 or peer.send_buffer.available_from(
            peer.snd_nxt - 1 if peer.snd_nxt > 0 else 0
        ) > 0:
            manager._exit(self, "talkback", fallback=True)
            return
        if not self.active:
            # A callback fired from _advance (app close, error) tore the
            # flow down already.
            return

        self._dt = self._step_len()
        sock.clock.reschedule_in(self._event, self._dt)

    def _advance(self, delta: int) -> None:
        """Materialise ``delta`` delivered bytes on both real sockets."""
        sock = self.sock
        peer = self.peer
        offset = sock.snd_una - 1
        end = offset + delta
        markers = sock.send_buffer.markers_in(offset, end)
        sock.snd_una += delta
        sock.snd_nxt = max(sock.snd_nxt, sock.snd_una)
        sock._high_water = max(sock._high_water, sock.snd_nxt)
        sock.bytes_acked += delta
        sock.send_buffer.release_through(end)
        self.delivered += delta
        # Receiver side: one in-order accept covering the interval carries
        # the message markers to the application at the right offsets.
        peer.assembler.accept(offset, delta, markers)
        if sock.on_acked is not None:
            stream_acked = min(
                sock.snd_una - 1, sock.send_buffer.stream_length
            )
            sock.on_acked(sock, stream_acked)



class FluidManager:
    """Per-simulator coordinator for the fluid fast path.

    Construct one against a simulator (``FluidManager(sim)``) *before*
    traffic starts and the TCP sockets on that simulator will consult it
    from their ACK path. The manager never forces a flow out of packet
    mode — it only promotes flows that satisfy the steady-state predicate
    and demotes them on the first discontinuity.
    """

    _SENDER_STATES = ("ESTABLISHED", "FIN_WAIT_1")
    _RECEIVER_STATES = ("ESTABLISHED",)

    def __init__(self, sim) -> None:
        self.sim = sim
        sim.fluid = self
        #: Flows currently advanced analytically, keyed by sender socket.
        self.flows: Dict[object, FluidFlow] = {}

    # ------------------------------------------------------- socket hooks

    def on_ack(self, sock) -> None:
        """Called by the socket after every new-data ACK it processes."""
        if sock in self.flows:
            return
        stat = (sock.fast_retransmits, sock.timeouts)
        if stat != sock._fluid_loss_stat:
            sock._fluid_loss_stat = stat
            sock._fluid_last_loss = sock.clock.now()
        if sock._fluid_hold:
            self._check_drain(sock)
            return
        if sock._fluid_cooldown > 0:
            sock._fluid_cooldown -= 1
            return
        if self._eligible(sock) is None:
            return
        # Steady state: park the sender and let the in-flight window
        # drain through real ACKs; _check_drain completes the switch.
        sock._fluid_hold = True
        self._count("fluid.drains")
        self._check_drain(sock)

    def on_timeout(self, sock) -> None:
        """Called by the socket when its RTO fires (drain rescue path)."""
        if sock._fluid_hold and sock not in self.flows:
            self._abort_drain(sock, "rto")

    def on_dupack(self, sock) -> None:
        """Called before the socket processes a duplicate ACK.

        Stale drops (e.g. from a handback burst just before re-entry) can
        dupack a flow that is back in fluid mode; the model cannot express
        loss, and letting recovery arithmetic run against the advanced
        ``snd_una`` would halve from a near-zero flight. Exit first so the
        episode plays out entirely at packet level.
        """
        flow = self.flows.get(sock)
        if flow is not None:
            self._exit(flow, "dupack", fallback=True)
        elif sock._fluid_hold:
            self._abort_drain(sock, "dupack")

    # --------------------------------------------------------- predicate

    def _eligible(self, sock) -> Optional[Tuple[object, List, List]]:
        """Steady-state predicate; returns (peer, fwd, rev) or None."""
        if sock.node.sim is not self.sim:
            return None
        if sock.state not in self._SENDER_STATES:
            return None
        cc = sock.cc
        if not getattr(type(cc), "supports_fluid", False):
            return None
        options = sock.options
        if options.ecn:
            return None
        if (
            sock._in_recovery
            or sock._dupacks
            or sock._retries
            or sock._scoreboard
            or sock._cwr_pending
        ):
            return None
        rtt = sock.rtt
        if rtt.srtt is None or rtt.samples < MIN_RTT_SAMPLES:
            return None
        if sock.clock.now() - sock._fluid_last_loss < QUIET_RTTS * rtt.srtt:
            return None  # let multi-episode convergence finish packet-level
        # Steady state means a smooth window trajectory: either the flow
        # is past slow start (a real loss episode set ssthresh), or the
        # peer's advertised window is the binding constraint (rwnd-limited
        # slow start inflates cwnd without ever touching the queue). A
        # pre-loss *congestion-limited* slow start stays packet-level: its
        # overshoot and recovery burst are exactly the discontinuity the
        # closed form cannot express, and skipping them would overstate
        # goodput against the packet baseline.
        if cc.cwnd < cc.ssthresh and float(sock.snd_wnd) > cc.cwnd:
            return None
        mss = options.mss
        if sock.snd_wnd < 2 * mss:
            return None
        window = min(cc.cwnd, float(sock.snd_wnd))
        offset_una = sock.snd_una - 1
        if offset_una < 0:
            return None
        remaining = sock.send_buffer.stream_length - offset_una
        if remaining < max(2 * TAIL_WINDOWS * window, 2 * TAIL_MIN_MSS * mss):
            return None
        if sock.send_buffer.available_from(offset_una) != remaining:
            return None  # app-limited: the model assumes a backlogged sender

        fwd = self._trace_path(sock.node, sock.remote_addr)
        if fwd is None:
            return None
        dst_node = fwd[-1].peer.node
        try:
            peer_stack = dst_node.protocol("tcp")
        except Exception:
            return None
        peer = peer_stack.connection(
            sock.remote_port, sock.node.name, sock.local_port
        )
        if peer is None or peer is sock:
            return None
        if peer.state not in self._RECEIVER_STATES:
            return None
        if peer._fluid_hold or peer in self.flows:
            return None
        if peer.assembler._ooo:
            return None
        if peer.flight_size > 0 or peer._fin_pending:
            return None
        peer_offset = peer.snd_nxt - 1 if peer.snd_nxt > 0 else 0
        if peer.send_buffer.available_from(peer_offset) > 0:
            return None  # two-way data: never fluid
        rev = self._trace_path(dst_node, sock.node.name)
        if rev is None:
            return None
        # The window must sit well under the bottleneck overflow point:
        # flows at the cliff belong to packet level, which owns every real
        # loss episode (fluid hands back loss-imminent and re-enters after
        # recovery halves the window below this same margin). Occupancy is
        # estimated against the *worst-case* segment mix: with Nagle off
        # the steady stream pairs every full segment with a sub-MSS runt,
        # roughly doubling the packet count per byte — a window admitted
        # under a full-segment estimate would bounce straight back out of
        # a packet-bounded queue once the mix develops.
        data_wire, _, base_phys, bottleneck = _path_constants(options, fwd, rev)
        bdp_wire = bottleneck.bandwidth_bps / 8.0 * base_phys
        est_segs = int(window) // mss + 1
        if not options.nagle:
            est_segs = 2 * est_segs - 1
        wire_window = window + est_segs * (data_wire - mss)
        queued_wire = wire_window - bdp_wire
        if queued_wire > (
            _queue_cap_bytes(bottleneck.queue) - ENTRY_MARGIN_PKTS * data_wire
        ):
            return None
        cap_pkts = bottleneck.queue.capacity_packets
        if cap_pkts is not None and queued_wire > (
            (cap_pkts - ENTRY_MARGIN_PKTS) * (wire_window / est_segs)
        ):
            return None
        # Too close to the runt maturation wave (cwnd = 2*ssthresh, see
        # WAVE_EXIT_MSS): the flow would exit loss-imminent within a few
        # RTTs, wasting the drain.  Entry strictly tighter than exit.
        if cap_pkts is not None and not options.nagle:
            ssthresh = float(cc.ssthresh)
            if (
                0.0 < ssthresh < float("inf")
                and cc.cwnd >= ssthresh
                and float(sock.snd_wnd) > cc.cwnd
                and cc.cwnd >= (
                    2.0 * ssthresh - (WAVE_EXIT_MSS + ENTRY_MARGIN_PKTS) * mss
                )
            ):
                return None
        return peer, fwd, rev

    def _trace_path(self, src_node, dst_name: str) -> Optional[List]:
        """Hop-by-hop route walk; every interface must be transparent."""
        node = src_node
        ifaces: List = []
        for _ in range(MAX_HOPS):
            if node.name == dst_name:
                return ifaces if ifaces else None
            iface = node.routes.get(dst_name)
            if iface is None:
                return None
            transparent = getattr(iface, "fluid_transparent", None)
            if transparent is None or not transparent():
                return None
            peer = iface.peer
            if peer is None:
                return None
            ifaces.append(iface)
            node = peer.node
        return None

    # ----------------------------------------------------- drain / enter

    def _check_drain(self, sock) -> None:
        if sock._in_recovery or sock._dupacks:
            self._abort_drain(sock, "recovery")
            return
        if sock.flight_size > 0:
            return  # still draining; the next ACK re-checks
        self._enter(sock)

    def _abort_drain(self, sock, reason: str) -> None:
        sock._fluid_hold = False
        sock._fluid_cooldown = COOLDOWN_ACKS
        self._count("fluid.drain_aborts")
        self._count(f"fluid.drain_abort.{reason}")
        sock._try_send()

    def _enter(self, sock) -> None:
        ready = self._eligible(sock)
        if ready is None:
            self._abort_drain(sock, "predicate")
            return
        peer, fwd, rev = ready
        # Entry-instant quiescence: the drained path must hold nothing of
        # ours and nothing of anyone else's, and the receiver must be
        # fully caught up (no pending delayed ACK, no reassembly holes).
        for iface in fwd + rev:
            if iface._busy or len(iface.queue) != 0:
                self._abort_drain(sock, "queue")
                return
        if peer._segments_since_ack != 0:
            self._abort_drain(sock, "delack")
            return
        if peer.assembler.rcv_nxt != sock.snd_una - 1:
            self._abort_drain(sock, "desync")
            return

        sock._pace_window = None  # cancel any in-progress handback pacing
        flow = FluidFlow(self, sock, peer, fwd, rev)
        self.flows[sock] = flow
        counters = self.sim.counters
        counters["fluid.entries"] = counters.get("fluid.entries", 0) + 1
        counters["fluid.flows_active"] = len(self.flows)
        if sock.recorder is not None:
            sock.recorder.record_tcp("fluid", sock, "enter", seq=sock.snd_una)

    # ------------------------------------------------------------- exit

    def _exit(self, flow: FluidFlow, reason: str, fallback: bool) -> None:
        sock = flow.sock
        flow.active = False
        flow._event.cancel()
        self.flows.pop(sock, None)

        counters = self.sim.counters
        self._assert_conserved(flow, counters)
        counters["fluid.exits"] = counters.get("fluid.exits", 0) + 1
        counters[f"fluid.exit.{reason}"] = (
            counters.get(f"fluid.exit.{reason}", 0) + 1
        )
        if fallback:
            counters["fluid.fallbacks"] = counters.get("fluid.fallbacks", 0) + 1
        counters["fluid.flows_active"] = len(self.flows)
        if sock.recorder is not None:
            sock.recorder.record_tcp(
                "fluid", sock, f"exit:{reason}", seq=sock.snd_una,
                length=flow.delivered,
            )

        sock._fluid_hold = False
        sock._fluid_cooldown = COOLDOWN_ACKS
        if sock.state not in self._SENDER_STATES:
            return
        self._begin_pace(sock, flow._segq, span=flow.rtt_base_v)
        sock._try_send()

    def _assert_conserved(self, flow: FluidFlow, counters: Dict) -> None:
        """Bytes in == bytes out across the abstraction boundary."""
        sock = flow.sock
        expected_una = flow.entry_una + flow.delivered
        expected_rcv = flow.entry_rcv_nxt + flow.delivered
        ok = (
            sock.snd_una == expected_una
            and flow.peer.assembler.rcv_nxt == expected_rcv
        )
        if ok:
            counters["fluid.conservation_checks"] = (
                counters.get("fluid.conservation_checks", 0) + 1
            )
            return
        counters["fluid.conservation_failures"] = (
            counters.get("fluid.conservation_failures", 0) + 1
        )
        raise RuntimeError(
            "fluid handoff violated byte conservation: "
            f"snd_una={sock.snd_una} expected={expected_una}, "
            f"rcv_nxt={flow.peer.assembler.rcv_nxt} expected={expected_rcv} "
            f"(entered at {flow.entry_una}, fluid delivered {flow.delivered})"
        )

    def _begin_pace(self, sock, segments=None, span=None) -> None:
        """Re-open the window over one RTT after a handback.

        When the exiting flow's modelled pipeline is available, the
        window re-opens one modelled segment per tick so the packet
        engine re-emits the exact full/runt mix the fluid model was
        tracking.  Segment boundaries matter: the flight's packet count
        (not just its bytes) decides when a packet-bounded bottleneck
        queue overflows, so a handback that re-chunked the window into
        clean MSS slices would hand the packet engine a flight that
        overflows later — and recovers more cleanly — than the one the
        packet-only engine would have carried.  ``span`` is the *base*
        RTT: emitting a window that exceeds the BDP over the base RTT
        deliberately rebuilds the bottleneck queue to the occupancy the
        model was tracking (pacing over the inflated srtt would drain
        it, handing the engine a half-empty queue it never had).
        """
        mss = sock.options.mss
        target = min(sock.cc.cwnd, float(sock.snd_wnd))
        srtt = sock.rtt.srtt if sock.rtt.srtt is not None else sock.rtt.rto
        if segments:
            sizes = [int(s) for s in segments]
            sock._pace_window = float(sizes[0])
            interval = max((span or srtt) / len(sizes), 1e-6)
            index = [1]

            def tick_segment() -> None:
                if sock._fluid_hold or sock._pace_window is None:
                    return  # re-entered fluid mode or pacing cancelled
                if sock.state == "CLOSED":
                    sock._pace_window = None
                    return
                if index[0] >= len(sizes):
                    sock._pace_window = None
                else:
                    sock._pace_window += sizes[index[0]]
                    index[0] += 1
                    sock.clock.call_in(interval, tick_segment)
                sock._try_send()

            sock.clock.call_in(interval, tick_segment)
            return
        slice_bytes = max(2.0 * mss, target / PACE_TICKS)
        if slice_bytes >= target:
            sock._pace_window = None
            return
        sock._pace_window = slice_bytes
        interval = max(srtt / PACE_TICKS, 1e-4)
        remaining_ticks = [PACE_TICKS - 1]

        def tick() -> None:
            if sock._fluid_hold or sock._pace_window is None:
                return  # re-entered fluid mode or pacing already finished
            if sock.state == "CLOSED":
                sock._pace_window = None
                return
            remaining_ticks[0] -= 1
            if remaining_ticks[0] <= 0:
                sock._pace_window = None
            else:
                sock._pace_window += slice_bytes
                sock.clock.call_in(interval, tick)
            sock._try_send()

        sock.clock.call_in(interval, tick)

    # ------------------------------------------------------------ helpers

    def _count(self, key: str) -> None:
        counters = self.sim.counters
        counters[key] = counters.get(key, 0) + 1
