"""Composable, seed-deterministic network impairments.

The paper's validation matters most where the network is *imperfect*: a
dilated guest must reproduce the scaled baseline's behaviour under packet
loss, burstiness, reordering and outages — not just on clean pipes. This
module is the emulator's netem/dummynet-style impairment layer: a chain of
stages attached to an :class:`~repro.simnet.nic.Interface` that every
egress packet passes through before queueing.

Stages
------
* :class:`BernoulliLoss` — i.i.d. loss with probability ``rate``.
* :class:`GilbertElliott` — two-state (good/bad) burst loss; the classic
  model for correlated loss on wireless/edge paths.
* :class:`Reorder` — holds selected packets back for ``hold_s`` seconds so
  later packets overtake them (netem's delay-jitter reordering).
* :class:`Duplicate` — injects a copy of selected packets.
* :class:`Corrupt` — flips the packet's ``corrupted`` flag; the receiving
  transport detects it (checksum) and discards, so corruption is visible
  as loss *plus* the wasted wire time.
* :class:`LinkFlap` — scheduled outage windows driven by engine timers;
  packets sent while down are dropped with reason ``"flap"``.

Determinism
-----------
Every probabilistic stage draws from an injected ``random.Random`` (or a
``seed``). Decisions are made **per packet in arrival order**, never from
the clock, so a dilated run and its scaled baseline — which present the
identical packet sequence — see the identical loss/reorder/duplication
pattern. Time-valued knobs (``hold_s``, flap windows) are physical
seconds; :meth:`ImpairmentSpec.build` scales virtual-time specs by the TDF
exactly as :func:`repro.core.dilation.physical_for` scales delays.

An interface with no chain attached pays one attribute check per packet
and schedules zero extra events — clean-path runs stay bit-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from .engine import Simulator
from .errors import ConfigurationError
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .nic import Interface

__all__ = [
    "Impairment",
    "BernoulliLoss",
    "GilbertElliott",
    "Reorder",
    "Duplicate",
    "Corrupt",
    "LinkFlap",
    "Handover",
    "FunctionLoss",
    "ImpairmentChain",
    "ImpairmentSpec",
]

#: Stage verdicts. ``None`` means pass; otherwise a tuple whose head is one
#: of these kinds (see :meth:`ImpairmentChain.send_through`).
_DROP = "drop"
_HOLD = "hold"
_DUP = "dup"


def _make_rng(rng: Optional[random.Random], seed: int) -> random.Random:
    return rng if rng is not None else random.Random(seed)


class Impairment:
    """One stage of an impairment chain.

    ``apply`` returns ``None`` to pass the packet unchanged, or a verdict
    tuple: ``("drop", reason)``, ``("hold", delay_s)``, or ``("dup",)``.
    Stages may also mutate the packet in place (corruption does).

    Stages additionally get lifecycle callbacks from
    :meth:`~repro.simnet.nic.Interface.set_impairments`: ``attach`` when
    the containing chain is installed on an egress, ``detach`` when it is
    replaced or cleared. Stages that arm engine timers (:class:`LinkFlap`,
    :class:`Handover`) defer arming to ``attach`` — a chain that is built
    but never attached must schedule nothing — and cancel on ``detach``.
    """

    #: Drop-taxonomy reason this stage charges (overridden per class).
    reason = "loss"

    def apply(self, packet: Packet) -> Optional[tuple]:  # pragma: no cover
        raise NotImplementedError

    def attach(self, iface: "Interface") -> None:
        """Lifecycle hook: the chain was installed on ``iface``'s egress."""

    def detach(self, iface: "Interface") -> None:
        """Lifecycle hook: the chain was removed from ``iface``'s egress."""


class BernoulliLoss(Impairment):
    """Independent (memoryless) loss: each packet dropped with ``rate``."""

    reason = "loss"

    def __init__(self, rate: float, rng: Optional[random.Random] = None,
                 seed: int = 0) -> None:
        if not 0 <= rate <= 1:
            raise ConfigurationError(f"loss rate must be in [0, 1]: {rate}")
        self.rate = rate
        self._rng = _make_rng(rng, seed)
        self.dropped = 0

    def apply(self, packet: Packet) -> Optional[tuple]:
        if self._rng.random() < self.rate:
            self.dropped += 1
            return (_DROP, self.reason)
        return None


class GilbertElliott(Impairment):
    """Two-state burst-loss model (Gilbert 1960 / Elliott 1963).

    The channel alternates between a *good* state (loss probability
    ``loss_good``, usually 0) and a *bad* state (``loss_bad``, usually 1).
    Per packet the stage first decides loss from the current state, then
    transitions: good→bad with ``p_enter_bad``, bad→good with
    ``p_exit_bad``. Long-run statistics (with ``loss_good=0``,
    ``loss_bad=1``):

    * stationary loss rate = ``p_enter_bad / (p_enter_bad + p_exit_bad)``
    * mean loss-burst length = ``1 / p_exit_bad`` packets
    """

    reason = "loss"

    def __init__(
        self,
        p_enter_bad: float,
        p_exit_bad: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        rng: Optional[random.Random] = None,
        seed: int = 0,
    ) -> None:
        for name, p in (("p_enter_bad", p_enter_bad), ("p_exit_bad", p_exit_bad),
                        ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0 <= p <= 1:
                raise ConfigurationError(f"{name} must be in [0, 1]: {p}")
        if p_exit_bad == 0:
            raise ConfigurationError("p_exit_bad=0 would trap the bad state")
        self.p_enter_bad = p_enter_bad
        self.p_exit_bad = p_exit_bad
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._rng = _make_rng(rng, seed)
        self.bad = False
        self.dropped = 0

    @classmethod
    def from_loss_rate(
        cls,
        loss_rate: float,
        mean_burst: float = 4.0,
        rng: Optional[random.Random] = None,
        seed: int = 0,
    ) -> "GilbertElliott":
        """A model with the given stationary loss rate and mean burst length.

        Solves the two-state stationary equations for ``loss_good=0``,
        ``loss_bad=1`` — the configuration whose *average* matches a
        Bernoulli channel of the same rate while concentrating the losses
        in bursts of ``mean_burst`` packets.
        """
        if not 0 < loss_rate < 1:
            raise ConfigurationError(f"loss_rate must be in (0, 1): {loss_rate}")
        if mean_burst < 1:
            raise ConfigurationError(f"mean_burst must be >= 1: {mean_burst}")
        p_exit = 1.0 / mean_burst
        p_enter = loss_rate * p_exit / (1.0 - loss_rate)
        return cls(p_enter, p_exit, rng=rng, seed=seed)

    def apply(self, packet: Packet) -> Optional[tuple]:
        rng = self._rng
        if self.bad:
            lost = rng.random() < self.loss_bad
            if rng.random() < self.p_exit_bad:
                self.bad = False
        else:
            lost = rng.random() < self.loss_good
            if rng.random() < self.p_enter_bad:
                self.bad = True
        if lost:
            self.dropped += 1
            return (_DROP, self.reason)
        return None


class Reorder(Impairment):
    """Delay-jitter hold-back reordering.

    Selected packets are held for ``hold_s`` extra seconds before entering
    the egress queue, letting packets sent after them overtake — netem's
    reordering mechanism. ``hold_s`` must exceed the packet spacing for
    visible reordering. ``hold_s`` is physical seconds at this layer;
    specs written in virtual time are scaled by
    :meth:`ImpairmentSpec.build`.
    """

    reason = "reorder"

    def __init__(self, rate: float, hold_s: float,
                 rng: Optional[random.Random] = None, seed: int = 0) -> None:
        if not 0 <= rate <= 1:
            raise ConfigurationError(f"reorder rate must be in [0, 1]: {rate}")
        if hold_s < 0:
            raise ConfigurationError(f"hold_s must be non-negative: {hold_s}")
        self.rate = rate
        self.hold_s = hold_s
        self._rng = _make_rng(rng, seed)
        self.held = 0

    def apply(self, packet: Packet) -> Optional[tuple]:
        if self._rng.random() < self.rate:
            self.held += 1
            return (_HOLD, self.hold_s)
        return None


class Duplicate(Impairment):
    """Packet duplication: selected packets are enqueued twice."""

    reason = "duplicate"

    def __init__(self, rate: float, rng: Optional[random.Random] = None,
                 seed: int = 0) -> None:
        if not 0 <= rate <= 1:
            raise ConfigurationError(f"duplicate rate must be in [0, 1]: {rate}")
        self.rate = rate
        self._rng = _make_rng(rng, seed)
        self.duplicated = 0

    def apply(self, packet: Packet) -> Optional[tuple]:
        if self._rng.random() < self.rate:
            self.duplicated += 1
            return (_DUP,)
        return None


class Corrupt(Impairment):
    """Payload corruption, checksum-visible at the receiver.

    The packet still occupies wire time and queue space; the receiving
    transport stack detects the bad checksum and silently discards it
    (counted as ``checksum_drops`` on the stack), exactly like a real NIC
    delivering a frame whose TCP checksum fails.
    """

    reason = "corrupt"

    def __init__(self, rate: float, rng: Optional[random.Random] = None,
                 seed: int = 0) -> None:
        if not 0 <= rate <= 1:
            raise ConfigurationError(f"corrupt rate must be in [0, 1]: {rate}")
        self.rate = rate
        self._rng = _make_rng(rng, seed)
        self.corrupted = 0

    def apply(self, packet: Packet) -> Optional[tuple]:
        if self._rng.random() < self.rate:
            self.corrupted += 1
            packet.corrupted = True
        return None


class LinkFlap(Impairment):
    """Scheduled outage windows driven by engine timers.

    ``windows`` is a sequence of ``(down_at, up_at)`` physical times. One
    timer per edge is armed when the chain is first attached to an
    interface — never at construction, so a chain that is built but never
    installed leaks no engine events and does not skew ``pending()`` —
    and every armed timer is cancelled when the last attachment is
    removed. While down, every packet through the stage is dropped with
    reason ``"flap"`` — in-flight packets already past the transmitter
    still arrive, as on a real cut.
    """

    reason = "flap"

    def __init__(self, sim: Simulator,
                 windows: Sequence[Tuple[float, float]]) -> None:
        self.down = False
        self.transitions = 0
        for down_at, up_at in windows:
            if up_at <= down_at:
                raise ConfigurationError(
                    f"flap window must have up_at > down_at: ({down_at}, {up_at})"
                )
        self.sim = sim
        self.windows: Tuple[Tuple[float, float], ...] = tuple(
            (down_at, up_at) for down_at, up_at in windows
        )
        self._timers: List[object] = []
        self._attached = 0

    def attach(self, iface: "Interface") -> None:
        self._attached += 1
        if self._attached == 1:
            now = self.sim.now
            for down_at, up_at in self.windows:
                # Edges already in the past (chain installed mid-run) are
                # skipped rather than rejected: the stage simply starts in
                # whatever state the remaining edges imply.
                if down_at >= now:
                    self._timers.append(self.sim.call_at(down_at, self._go_down))
                if up_at >= now:
                    self._timers.append(self.sim.call_at(up_at, self._go_up))

    def detach(self, iface: "Interface") -> None:
        self._attached -= 1
        if self._attached == 0:
            for timer in self._timers:
                if timer.active:
                    timer.cancel()
            self._timers.clear()

    def _go_down(self) -> None:
        self.down = True
        self.transitions += 1

    def _go_up(self) -> None:
        self.down = False
        self.transitions += 1

    def apply(self, packet: Packet) -> Optional[tuple]:
        if self.down:
            return (_DROP, self.reason)
        return None


class Handover(Impairment):
    """LEO-style satellite switch: outage + delay step + reorder burst.

    At each instant in ``times`` the egress goes dark for ``outage_s``
    (packets dropped with reason ``"handover"``) and then re-acquires
    with the interface's propagation delay stepped to the next value in
    ``delays`` (cycled; empty keeps the delay unchanged). Optionally the
    first ``burst`` packets after re-acquisition are each held ``hold_s``
    — the reorder burst real constellations show while the new path's
    queue drains. A delay *decrease* at a switch cannot reorder the pipe
    itself: the NIC clamps arrivals FIFO per direction.

    The stage needs its interface to step the delay, so timers are armed
    on attach and cancelled on detach; one stage serves exactly one
    attachment point (build a fresh chain per interface, as with every
    stateful stage). Times and delays are physical seconds at this layer;
    :meth:`ImpairmentSpec.build` scales virtual-second specs by the TDF.
    """

    reason = "handover"

    def __init__(
        self,
        sim: Simulator,
        times: Sequence[float],
        outage_s: float,
        delays: Sequence[float] = (),
        burst: int = 0,
        hold_s: float = 0.0,
    ) -> None:
        if outage_s <= 0:
            raise ConfigurationError(f"outage_s must be positive: {outage_s}")
        if hold_s < 0:
            raise ConfigurationError(f"hold_s must be non-negative: {hold_s}")
        if burst < 0:
            raise ConfigurationError(f"burst must be non-negative: {burst}")
        ordered = tuple(float(t) for t in times)
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ConfigurationError(
                f"handover times must be strictly increasing: {ordered}"
            )
        if any(d < 0 for d in delays):
            raise ConfigurationError(f"delays must be non-negative: {delays}")
        self.sim = sim
        self.times = ordered
        self.outage_s = outage_s
        self.delays = tuple(float(d) for d in delays)
        self.burst = burst
        self.hold_s = hold_s
        self.down = False
        self.handovers = 0
        self._burst_left = 0
        self._delay_index = 0
        self._iface: Optional["Interface"] = None
        self._timers: List[object] = []

    def attach(self, iface: "Interface") -> None:
        if self._iface is not None:
            raise ConfigurationError(
                "a Handover stage serves one interface; build one chain "
                "per attachment point"
            )
        self._iface = iface
        now = self.sim.now
        for at in self.times:
            if at >= now:
                self._timers.append(self.sim.call_at(at, self._switch))

    def detach(self, iface: "Interface") -> None:
        self._iface = None
        for timer in self._timers:
            if timer.active:
                timer.cancel()
        self._timers.clear()

    def _switch(self) -> None:
        self.down = True
        self.handovers += 1
        self._timers.append(
            self.sim.call_at(self.sim.now + self.outage_s, self._acquire)
        )

    def _acquire(self) -> None:
        self.down = False
        iface = self._iface
        if iface is not None and self.delays:
            iface.delay_s = self.delays[self._delay_index % len(self.delays)]
            self._delay_index += 1
        self._burst_left = self.burst

    def apply(self, packet: Packet) -> Optional[tuple]:
        if self.down:
            return (_DROP, self.reason)
        if self._burst_left > 0 and self.hold_s > 0:
            self._burst_left -= 1
            return (_HOLD, self.hold_s)
        return None


class FunctionLoss(Impairment):
    """Adapter subsuming the legacy ``Interface.loss_fn`` hook: drop every
    packet for which ``fn(packet)`` is true, charged as ``"injected"``."""

    reason = "injected"

    def __init__(self, fn) -> None:
        self.fn = fn

    def apply(self, packet: Packet) -> Optional[tuple]:
        if self.fn(packet):
            return (_DROP, self.reason)
        return None


class ImpairmentChain:
    """An ordered pipeline of stages attached to one interface's egress.

    Stages run in order per packet. A drop or hold verdict consumes the
    packet (remaining stages are skipped — a held packet re-enters the
    queue directly, not the chain, so it cannot be held twice); duplicate
    verdicts enqueue a fresh-uid clone immediately after the original.
    """

    def __init__(self, stages: Optional[Sequence[Impairment]] = None) -> None:
        self.stages: List[Impairment] = list(stages or [])

    def add(self, stage: Impairment) -> "ImpairmentChain":
        """Append a stage; returns self for chaining."""
        self.stages.append(stage)
        return self

    def attach(self, iface: "Interface") -> None:
        """Forward the install lifecycle event to every stage."""
        for stage in self.stages:
            stage.attach(iface)

    def detach(self, iface: "Interface") -> None:
        """Forward the removal lifecycle event to every stage."""
        for stage in self.stages:
            stage.detach(iface)

    def send_through(self, iface: "Interface", packet: Packet) -> None:
        """Run ``packet`` through the stages, then into the egress queue."""
        copies = 0
        for stage in self.stages:
            verdict = stage.apply(packet)
            if verdict is None:
                continue
            kind = verdict[0]
            if kind == _DROP:
                iface._drop(packet, verdict[1])
                return
            if kind == _HOLD:
                iface.sim.schedule_transient(verdict[1], iface._enqueue, packet)
                return
            if kind == _DUP:
                copies += 1
        iface._enqueue(packet)
        for _ in range(copies):
            iface._enqueue(_clone(packet))


def _clone(packet: Packet) -> Packet:
    """A wire-identical copy with a fresh uid (traces see two packets)."""
    return Packet(
        src=packet.src,
        dst=packet.dst,
        protocol=packet.protocol,
        size_bytes=packet.size_bytes,
        payload=packet.payload,
        flow_id=packet.flow_id,
        ttl=packet.ttl,
        created_at=packet.created_at,
        ecn_capable=packet.ecn_capable,
        ce=packet.ce,
        corrupted=packet.corrupted,
    )


#: Spec kinds understood by :meth:`ImpairmentSpec.build`.
_KINDS = (
    "bernoulli", "gilbert", "reorder", "duplicate", "corrupt", "flap",
    "handover",
)


@dataclass(frozen=True)
class ImpairmentSpec:
    """A declarative, TDF-portable impairment description.

    Time-valued fields (``hold_s``, ``windows``) are **virtual** seconds:
    :meth:`build` multiplies them by the TDF so a dilated run impairs the
    physically-stretched path at the same *perceived* instants as its
    baseline. Probability fields are per-packet and need no scaling.

    The string form (``parse``) is the harness' ``--impair`` axis::

        bernoulli:rate=0.01,seed=7
        gilbert:rate=0.01,burst=4
        reorder:rate=0.05,hold=0.002
        flap:windows=1.0-1.5/3.0-3.2
        handover:every=2.0,count=3,outage=0.05,delays=0.03+0.05,hold=0.004

    ``handover`` switches satellites every ``every`` virtual seconds,
    ``count`` times: each switch is a brief outage plus a delay step to
    the next value in ``delays`` (cycled), optionally followed by a
    reorder burst of ``int(burst)`` packets held ``hold`` seconds each
    (``hold=0`` disables the burst).
    """

    kind: str
    rate: float = 0.01
    burst: float = 4.0
    hold_s: float = 0.0
    windows: Tuple[Tuple[float, float], ...] = field(default_factory=tuple)
    seed: int = 1
    #: Handover cadence: virtual seconds between satellite switches.
    every_s: float = 0.0
    #: Handover count: number of switches over the run.
    count: int = 0
    #: Handover outage: virtual seconds of darkness per switch.
    outage_s: float = 0.05
    #: Handover delay steps: virtual one-way delays cycled per switch.
    delays: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown impairment kind {self.kind!r}; known: {_KINDS}"
            )
        if self.kind == "handover":
            if self.every_s <= 0:
                raise ConfigurationError(
                    "handover needs every=<seconds between switches> > 0"
                )
            if self.count < 1:
                raise ConfigurationError(
                    "handover needs count=<number of switches> >= 1"
                )
            if not 0 < self.outage_s < self.every_s:
                raise ConfigurationError(
                    f"handover outage ({self.outage_s}) must be positive and "
                    f"shorter than the cadence ({self.every_s})"
                )

    @classmethod
    def parse(cls, text: str) -> "ImpairmentSpec":
        """Parse the CLI form ``kind[:key=value,...]``."""
        kind, _, rest = text.partition(":")
        kwargs = {}
        if rest:
            for item in rest.split(","):
                key, _, value = item.partition("=")
                key = key.strip()
                if key == "rate":
                    kwargs["rate"] = float(value)
                elif key == "burst":
                    kwargs["burst"] = float(value)
                elif key == "hold":
                    kwargs["hold_s"] = float(value)
                elif key == "seed":
                    kwargs["seed"] = int(value)
                elif key == "every":
                    kwargs["every_s"] = float(value)
                elif key == "count":
                    kwargs["count"] = int(value)
                elif key == "outage":
                    kwargs["outage_s"] = float(value)
                elif key == "delays":
                    kwargs["delays"] = tuple(
                        float(d) for d in value.split("+") if d
                    )
                elif key == "windows":
                    pairs = []
                    for window in value.split("/"):
                        down, _, up = window.partition("-")
                        pairs.append((float(down), float(up)))
                    kwargs["windows"] = tuple(pairs)
                else:
                    raise ConfigurationError(
                        f"unknown impairment option {key!r} in {text!r}"
                    )
        return cls(kind=kind.strip(), **kwargs)

    def build(self, sim: Simulator, tdf: object = 1) -> ImpairmentChain:
        """Materialise a chain for one interface, scaled to ``tdf``.

        Construct one chain per interface per run: stages carry RNG and
        model state that must not be shared between attachment points.
        """
        from ..core.tdf import as_tdf

        factor = float(as_tdf(tdf).value)
        if self.kind == "bernoulli":
            stage: Impairment = BernoulliLoss(self.rate, seed=self.seed)
        elif self.kind == "gilbert":
            stage = GilbertElliott.from_loss_rate(
                self.rate, mean_burst=self.burst, seed=self.seed
            )
        elif self.kind == "reorder":
            stage = Reorder(self.rate, self.hold_s * factor, seed=self.seed)
        elif self.kind == "duplicate":
            stage = Duplicate(self.rate, seed=self.seed)
        elif self.kind == "corrupt":
            stage = Corrupt(self.rate, seed=self.seed)
        elif self.kind == "flap":
            scaled = tuple(
                (down * factor, up * factor) for down, up in self.windows
            )
            stage = LinkFlap(sim, scaled)
        else:  # handover
            stage = Handover(
                sim,
                times=tuple(
                    (index + 1) * self.every_s * factor
                    for index in range(self.count)
                ),
                outage_s=self.outage_s * factor,
                delays=tuple(d * factor for d in self.delays),
                burst=int(self.burst) if self.hold_s > 0 else 0,
                hold_s=self.hold_s * factor,
            )
        return ImpairmentChain([stage])
