"""Full-duplex links built from a symmetric pair of interfaces."""

from __future__ import annotations

import random
from typing import Callable, Optional

from .engine import Simulator
from .nic import Interface
from .node import Node
from .queues import DropTailQueue

__all__ = ["Link", "QueueFactory"]

#: Callable producing a fresh queue for one direction of a link.
QueueFactory = Callable[[], DropTailQueue]


class Link:
    """A bidirectional point-to-point link between two nodes.

    Each direction has its own transmitter and egress queue, so the two
    directions never contend (full duplex), matching switched Ethernet.

    Parameters mirror a dummynet pipe: ``bandwidth_bps`` and one-way
    ``delay_s`` apply to both directions unless the ``*_reverse`` overrides
    are given (asymmetric paths, e.g. ADSL-style scenarios).
    """

    def __init__(
        self,
        sim: Simulator,
        node_a: Node,
        node_b: Node,
        bandwidth_bps: float,
        delay_s: float,
        queue_factory: Optional[QueueFactory] = None,
        bandwidth_reverse_bps: Optional[float] = None,
        delay_reverse_s: Optional[float] = None,
        jitter_s: float = 0.0,
        jitter_rng: Optional[random.Random] = None,
    ) -> None:
        make_queue = queue_factory if queue_factory is not None else DropTailQueue
        self.node_a = node_a
        self.node_b = node_b
        self.a_to_b = Interface(
            sim,
            node_a,
            bandwidth_bps,
            delay_s,
            queue=make_queue(),
            name=f"{node_a.name}->{node_b.name}",
            jitter_s=jitter_s,
            jitter_rng=jitter_rng,
        )
        self.b_to_a = Interface(
            sim,
            node_b,
            bandwidth_reverse_bps if bandwidth_reverse_bps is not None else bandwidth_bps,
            delay_reverse_s if delay_reverse_s is not None else delay_s,
            queue=make_queue(),
            name=f"{node_b.name}->{node_a.name}",
            jitter_s=jitter_s,
            jitter_rng=jitter_rng,
        )
        self.a_to_b.connect(self.b_to_a)
        node_a.add_interface(self.a_to_b)
        node_b.add_interface(self.b_to_a)

    def fluid_transparent(self) -> bool:
        """True when *both* directions are pure delay+bandwidth pipes the
        fluid fast path can model (see :meth:`Interface.fluid_transparent`
        and :mod:`repro.simnet.fluid`). Links created with jitter, RED
        queues or later decorated with impairments report False."""
        return (
            self.a_to_b.fluid_transparent() and self.b_to_a.fluid_transparent()
        )

    def interface_from(self, node: Node) -> Interface:
        """The egress interface this link offers to ``node``."""
        if node is self.node_a:
            return self.a_to_b
        if node is self.node_b:
            return self.b_to_a
        raise ValueError(f"{node.name} is not an endpoint of this link")

    def other_end(self, node: Node) -> Node:
        """The node at the far end of the link from ``node``."""
        if node is self.node_a:
            return self.node_b
        if node is self.node_b:
            return self.node_a
        raise ValueError(f"{node.name} is not an endpoint of this link")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.node_a.name} <-> {self.node_b.name})"
