"""Nodes — hosts and routers of the emulated network.

A :class:`Node` owns interfaces, a static routing table, and a registry of
protocol handlers. When a packet addressed to the node arrives, it is handed
to the handler registered for ``packet.protocol``; packets addressed
elsewhere are forwarded (router behaviour).

The node also carries the :class:`~repro.simnet.clock.Clock` that every
protocol stack and application on the node must use. Making the node the
single source of the clock is what lets the VMM dilate an entire guest by
swapping one object.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

from .clock import Clock, PhysicalClock
from .engine import Simulator
from .errors import AddressError, RoutingError
from .nic import Interface
from .packet import Packet

__all__ = ["Node", "ProtocolHandler"]


class ProtocolHandler(Protocol):
    """Anything able to consume packets delivered to a node."""

    def deliver(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


class Node:
    """A host or router identified by a unique name (its address)."""

    def __init__(self, sim: Simulator, name: str, clock: Optional[Clock] = None) -> None:
        self.sim = sim
        self.name = name
        #: The clock every stack/app on this node observes. Replaced by the
        #: VMM with a DilatedClock when the node becomes a dilated guest.
        self.clock: Clock = clock if clock is not None else PhysicalClock(sim)
        self.interfaces: list[Interface] = []
        #: destination address -> egress interface
        self.routes: Dict[str, Interface] = {}
        self._protocols: Dict[str, ProtocolHandler] = {}
        #: Packets that arrived for a protocol nobody registered.
        self.unhandled_packets = 0
        #: Transit packets dropped for lack of a route (e.g. after a link
        #: failure partitions the topology) — routers drop, hosts raise.
        self.no_route_drops = 0

    # ------------------------------------------------------------------ wiring

    def add_interface(self, interface: Interface) -> None:
        """Attach an interface created by the topology layer."""
        self.interfaces.append(interface)

    def register_protocol(self, protocol: str, handler: ProtocolHandler) -> None:
        """Bind a transport stack (or raw sink) to a protocol tag."""
        if protocol in self._protocols:
            raise AddressError(f"protocol {protocol!r} already registered on {self.name}")
        self._protocols[protocol] = handler

    def protocol(self, name: str) -> ProtocolHandler:
        """Look up a registered protocol handler."""
        try:
            return self._protocols[name]
        except KeyError:
            raise AddressError(f"no protocol {name!r} on node {self.name}") from None

    def set_route(self, destination: str, interface: Interface) -> None:
        """Install a static route (normally done by the routing layer)."""
        self.routes[destination] = interface

    # --------------------------------------------------------------- data path

    def send(self, packet: Packet) -> None:
        """Originate a packet from this node.

        A missing route at the *origin* is a host configuration error and
        raises; in-transit packets that lose their route (link failure) are
        dropped like a real router drops them.
        """
        packet.created_at = self.sim.now
        if packet.dst == self.name:
            # Loopback: deliver without touching the wire.
            self.sim.schedule(0.0, lambda: self._demux(packet))
            return
        if packet.dst not in self.routes:
            raise RoutingError(f"{self.name}: no route to {packet.dst}")
        self._forward(packet)

    def receive(self, packet: Packet, arriving_interface: Interface) -> None:
        """Called by an interface when a packet arrives."""
        if packet.dst == self.name:
            self._demux(packet)
            return
        packet.hop()
        self._forward(packet)

    def _forward(self, packet: Packet) -> None:
        interface = self.routes.get(packet.dst)
        if interface is None:
            self.no_route_drops += 1
            return
        interface.send(packet)

    def _demux(self, packet: Packet) -> None:
        handler = self._protocols.get(packet.protocol)
        if handler is None:
            self.unhandled_packets += 1
            return
        handler.deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name}, ifaces={len(self.interfaces)})"
