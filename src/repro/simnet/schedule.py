"""Schedule-driven dynamic links: delay/bandwidth/liveness vs *virtual* time.

Real deployments — LEO constellations, mobile edges — have links whose
delay, capacity and liveness change continuously; dilation equivalence on
a *static* topology says nothing about that regime. This module drives any
:class:`~repro.simnet.link.Link` from a piecewise schedule indexed by
**virtual** time: the same perceived trace is replayed under every TDF by
scaling both the application instants and the values (delays stretch,
bandwidths shrink), exactly as :func:`repro.core.dilation.physical_for`
scales a static configuration. That the dilated runs still agree on the
virtual axis is the interesting new claim the ext6 experiment tests.

Three layers:

* :class:`ScheduleEntry` — one step of the piecewise function.
* :class:`LinkSchedule` — applies entries (physical at this layer) to both
  directions of a link via one engine timer per entry, armed at
  construction so a scheduled run is deterministic and identical at any
  shard count (every worker holds the full topology and arms the same
  timers at the same instants).
* :class:`ScheduleSpec` — the frozen, declarative, **virtual**-time form:
  the harness' ``--schedule`` axis, loadable from timestamped CSV traces
  (the Starlink-emulator format) or synthesized LEO handover patterns.

Interplay with the rest of simnet:

* **FIFO:** a delay decrease cannot reorder a pipe — the NIC clamps each
  arrival to the previous packet's (dummynet semantics).
* **Bandwidth:** a rate change never re-times a serialisation already in
  progress; the in-flight packet finishes at the old rate and the new
  rate applies from the next dequeue (the wire hold is computed when
  transmission starts).
* **Sharding:** a scheduled link may cross a shard cut; the partition's
  lookahead is derived from :attr:`LinkSchedule.min_delay_s` (the minimum
  over the whole schedule), not the delay at partition time.
* **Fluid:** a scheduled link is not ``fluid_transparent`` while a change
  is pending — a closed-form hold would integrate straight across the
  discontinuity.
* **Liveness:** ``up=False`` entries drop egress packets with reason
  ``"down"``; unlike :meth:`~repro.simnet.topology.Network.fail_link`
  they do *not* reroute — a handover outage is a dark pipe, not a
  topology change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from .engine import Simulator
from .errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .link import Link

__all__ = [
    "ScheduleEntry",
    "LinkSchedule",
    "ScheduleSpec",
    "load_trace",
    "synthesize_leo",
]


@dataclass(frozen=True)
class ScheduleEntry:
    """One piecewise step: fields left ``None`` keep their current value."""

    at_s: float
    delay_s: Optional[float] = None
    bandwidth_bps: Optional[float] = None
    up: Optional[bool] = None


def load_trace(path: str) -> Tuple[ScheduleEntry, ...]:
    """Parse a timestamped CSV trace into schedule entries.

    Row grammar (an optional non-numeric header row and ``#`` comment /
    blank lines are skipped)::

        t_s,delay_s[,bandwidth_bps[,up]]

    Empty cells keep the previous value; ``up`` accepts ``0/1``,
    ``true/false``, ``up/down``. Timestamps must be strictly increasing.
    This is the same shape the Starlink-emulator feeds Mininet — one
    latency sample per timestamp — with optional capacity and liveness
    columns.
    """
    entries: List[ScheduleEntry] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            cells = [cell.strip() for cell in line.split(",")]
            try:
                at = float(cells[0])
            except ValueError:
                if not entries and lineno <= 2:
                    continue  # header row
                raise ConfigurationError(
                    f"{path}:{lineno}: bad timestamp {cells[0]!r}"
                ) from None
            delay = float(cells[1]) if len(cells) > 1 and cells[1] else None
            bandwidth = float(cells[2]) if len(cells) > 2 and cells[2] else None
            up: Optional[bool] = None
            if len(cells) > 3 and cells[3]:
                token = cells[3].lower()
                if token in ("1", "true", "up"):
                    up = True
                elif token in ("0", "false", "down"):
                    up = False
                else:
                    raise ConfigurationError(
                        f"{path}:{lineno}: bad liveness {cells[3]!r} "
                        "(use 0/1, true/false, up/down)"
                    )
            entries.append(ScheduleEntry(at, delay, bandwidth, up))
    if not entries:
        raise ConfigurationError(f"trace {path!r} contains no entries")
    return tuple(entries)


#: Delay multipliers cycled per LEO handover (scaled by the spec's
#: amplitude): high elevation after re-acquisition, then a near pass,
#: then intermediate — includes both increases and *decreases* so the
#: FIFO clamp and shard lookahead are genuinely exercised.
_LEO_CYCLE = (1.0, -0.5, 0.5, 0.0)


def synthesize_leo(
    base_delay_s: float,
    period_s: float,
    count: int,
    outage_s: float,
    amplitude: float = 0.5,
    bandwidth_bps: Optional[float] = None,
    dip: float = 1.0,
) -> Tuple[ScheduleEntry, ...]:
    """A deterministic LEO handover pattern.

    Every ``period_s`` seconds the link goes dark for ``outage_s`` and
    re-acquires with its one-way delay stepped to
    ``base * (1 + amplitude * c)`` where ``c`` cycles through
    ``(1, -0.5, 0.5, 0)`` — alternating far and near satellites. When
    ``bandwidth_bps`` is given and ``dip < 1``, every other handover also
    lands on a ``dip``-fraction capacity beam (restored on the next).
    Purely a function of its arguments: the same spec synthesizes the
    same trace in every worker and at every TDF.
    """
    if period_s <= 0:
        raise ConfigurationError(f"period_s must be positive: {period_s}")
    if not 0 < outage_s < period_s:
        raise ConfigurationError(
            f"outage_s ({outage_s}) must be positive and shorter than the "
            f"period ({period_s})"
        )
    if not 0 <= amplitude < 2:
        raise ConfigurationError(f"amplitude must be in [0, 2): {amplitude}")
    if count < 1:
        raise ConfigurationError(f"count must be >= 1: {count}")
    entries: List[ScheduleEntry] = []
    for index in range(count):
        switch_at = (index + 1) * period_s
        factor = 1.0 + amplitude * _LEO_CYCLE[index % len(_LEO_CYCLE)]
        bandwidth = None
        if bandwidth_bps is not None and dip != 1.0:
            bandwidth = bandwidth_bps * (dip if index % 2 == 0 else 1.0)
        entries.append(ScheduleEntry(switch_at, up=False))
        entries.append(ScheduleEntry(
            switch_at + outage_s,
            delay_s=base_delay_s * factor,
            bandwidth_bps=bandwidth,
            up=True,
        ))
    return tuple(entries)


class LinkSchedule:
    """Applies a piecewise schedule to both directions of one link.

    Entries are **physical** seconds/bps at this layer
    (:meth:`ScheduleSpec.build` scales virtual-time specs by the TDF).
    One engine timer per entry is armed at construction; updates are
    plain attribute assignments on the two interfaces, so a scheduled
    run is exactly as deterministic as an unscheduled one.
    """

    def __init__(
        self,
        sim: Simulator,
        link: "Link",
        entries: Sequence[ScheduleEntry],
    ) -> None:
        ordered = tuple(entries)
        if not ordered:
            raise ConfigurationError("a LinkSchedule needs at least one entry")
        for prev, entry in zip(ordered, ordered[1:]):
            if entry.at_s <= prev.at_s:
                raise ConfigurationError(
                    f"schedule times must be strictly increasing: "
                    f"{prev.at_s} then {entry.at_s}"
                )
        for entry in ordered:
            if entry.at_s < sim.now:
                raise ConfigurationError(
                    f"schedule entry at {entry.at_s} is in the past "
                    f"(now {sim.now})"
                )
            if entry.delay_s is not None and entry.delay_s < 0:
                raise ConfigurationError(
                    f"scheduled delay must be non-negative: {entry.delay_s}"
                )
            if entry.bandwidth_bps is not None and entry.bandwidth_bps <= 0:
                raise ConfigurationError(
                    f"scheduled bandwidth must be positive: {entry.bandwidth_bps}"
                )
        self.sim = sim
        self.link = link
        self.entries = ordered
        self.applied = 0
        self._ifaces = (link.a_to_b, link.b_to_a)
        for iface in self._ifaces:
            if iface.schedule is not None:
                raise ConfigurationError(
                    f"interface {iface.name!r} already has a schedule"
                )
        #: Minimum one-way delay across the whole run — the initial
        #: configuration and every scheduled step. Partition lookahead
        #: must be derived from this, not the delay at partition time.
        self.min_delay_s = min(
            min(iface.delay_s for iface in self._ifaces),
            min(
                (e.delay_s for e in ordered if e.delay_s is not None),
                default=float("inf"),
            ),
        )
        for iface in self._ifaces:
            iface.schedule = self
        self._timers = [
            sim.call_at(entry.at_s, self._apply, entry) for entry in ordered
        ]

    @property
    def change_pending(self) -> bool:
        """True while any entry is still in the future; consulted by
        :meth:`~repro.simnet.nic.Interface.fluid_transparent` so the fluid
        fast path never integrates across a discontinuity."""
        return self.applied < len(self.entries)

    def _apply(self, entry: ScheduleEntry) -> None:
        for iface in self._ifaces:
            if entry.delay_s is not None:
                iface.delay_s = entry.delay_s
            if entry.bandwidth_bps is not None:
                # Never re-times a serialisation in progress: the wire
                # hold was computed when transmission started; the new
                # rate applies from the next dequeue.
                iface.bandwidth_bps = entry.bandwidth_bps
            if entry.up is not None:
                iface.up = entry.up
        self.applied += 1

    def cancel(self) -> None:
        """Cancel remaining timers and release the interfaces."""
        for timer in self._timers:
            if timer.active:
                timer.cancel()
        self._timers = []
        self.applied = len(self.entries)
        for iface in self._ifaces:
            iface.schedule = None


#: Spec kinds understood by :meth:`ScheduleSpec.build`.
_KINDS = ("leo", "csv")


@dataclass(frozen=True)
class ScheduleSpec:
    """A declarative, TDF-portable schedule — the ``--schedule`` axis.

    Time-valued fields are **virtual** seconds: :meth:`build` multiplies
    application instants and delays by the TDF and divides bandwidths,
    so the same spec replays the same *perceived* trace under every
    dilation factor. Frozen (and built from canonical-able field types)
    so the sweep runner's content-addressed cache hashing works
    unchanged — a scheduled cell is a different cell from its static
    twin. Note the ``csv`` kind hashes the *path*, not the file contents;
    regenerate the cache directory when a trace file changes in place.

    The string form (``parse``) mirrors ``--impair``::

        leo                                   # default handover pattern
        leo:period=2.0,count=3,outage=0.05,amp=0.5,dip=0.6
        csv:path=traces/starlink.csv
    """

    kind: str
    #: LEO: virtual seconds between handovers.
    period_s: float = 2.0
    #: LEO: number of handovers.
    count: int = 3
    #: LEO: virtual seconds of darkness per handover.
    outage_s: float = 0.05
    #: LEO: delay-step amplitude (fraction of the base delay).
    amplitude: float = 0.5
    #: LEO: capacity fraction on every other beam (1.0 = no dips).
    dip: float = 1.0
    #: CSV: trace file path (rows ``t_s,delay_s[,bandwidth_bps[,up]]``).
    path: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown schedule kind {self.kind!r}; known: {_KINDS}"
            )
        if self.kind == "csv":
            if not self.path:
                raise ConfigurationError("csv schedule needs path=<trace file>")
        else:
            if self.period_s <= 0:
                raise ConfigurationError(
                    f"period must be positive: {self.period_s}"
                )
            if self.count < 1:
                raise ConfigurationError(f"count must be >= 1: {self.count}")
            if not 0 < self.outage_s < self.period_s:
                raise ConfigurationError(
                    f"outage ({self.outage_s}) must be positive and shorter "
                    f"than the period ({self.period_s})"
                )
            if not 0 <= self.amplitude < 2:
                raise ConfigurationError(
                    f"amp must be in [0, 2): {self.amplitude}"
                )
            if not 0 < self.dip <= 1:
                raise ConfigurationError(
                    f"dip must be in (0, 1]: {self.dip}"
                )

    @classmethod
    def parse(cls, text: str) -> "ScheduleSpec":
        """Parse the CLI form ``kind[:key=value,...]``."""
        kind, _, rest = text.partition(":")
        kwargs = {}
        if rest:
            for item in rest.split(","):
                key, _, value = item.partition("=")
                key = key.strip()
                value = value.strip()
                if key == "period":
                    kwargs["period_s"] = float(value)
                elif key == "count":
                    kwargs["count"] = int(value)
                elif key == "outage":
                    kwargs["outage_s"] = float(value)
                elif key == "amp":
                    kwargs["amplitude"] = float(value)
                elif key == "dip":
                    kwargs["dip"] = float(value)
                elif key == "path":
                    kwargs["path"] = value
                else:
                    raise ConfigurationError(
                        f"unknown schedule option {key!r} in {text!r}; "
                        "known: period, count, outage, amp, dip, path"
                    )
        return cls(kind=kind.strip(), **kwargs)

    def virtual_entries(
        self,
        base_delay_s: float,
        base_bandwidth_bps: Optional[float] = None,
    ) -> Tuple[ScheduleEntry, ...]:
        """The virtual-time entry list this spec describes.

        ``base_delay_s``/``base_bandwidth_bps`` are the link's *perceived*
        parameters, used as the reference the LEO pattern steps around;
        CSV traces carry absolute values and ignore them.
        """
        if self.kind == "csv":
            return load_trace(self.path)
        return synthesize_leo(
            base_delay_s,
            period_s=self.period_s,
            count=self.count,
            outage_s=self.outage_s,
            amplitude=self.amplitude,
            bandwidth_bps=base_bandwidth_bps,
            dip=self.dip,
        )

    def build(self, link: "Link", tdf: object = 1) -> LinkSchedule:
        """Materialise the schedule on ``link``, scaled to ``tdf``.

        The link's current (physical) parameters divided by the TDF give
        the perceived base the virtual entries are generated against;
        each entry is then mapped back to physical: instants and delays
        × TDF, bandwidths ÷ TDF.
        """
        from ..core.tdf import as_tdf

        factor = float(as_tdf(tdf).value)
        iface = link.a_to_b
        virtual = self.virtual_entries(
            iface.delay_s / factor, iface.bandwidth_bps * factor
        )
        scaled = tuple(
            ScheduleEntry(
                at_s=entry.at_s * factor,
                delay_s=None if entry.delay_s is None else entry.delay_s * factor,
                bandwidth_bps=(
                    None if entry.bandwidth_bps is None
                    else entry.bandwidth_bps / factor
                ),
                up=entry.up,
            )
            for entry in virtual
        )
        return LinkSchedule(iface.sim, link, scaled)

    def horizon_s(self) -> float:
        """Last virtual instant the schedule touches (for run sizing)."""
        if self.kind == "csv":
            return load_trace(self.path)[-1].at_s
        return self.count * self.period_s + self.outage_s
