"""Topology construction: a network container plus the canonical shapes.

The paper's experiments all run on small, fixed topologies — a single
bottleneck (dumbbell) for the TCP micro-benchmarks, a star for the web and
BitTorrent macro-benchmarks. Builders here create the nodes, wire the links
and install static routes in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .engine import Simulator
from .errors import ConfigurationError
from .link import Link, QueueFactory
from .node import Node
from .routing import install_routes

__all__ = [
    "Network",
    "CutEdge",
    "TopologyPartition",
    "partition_network",
    "suggest_assignment",
    "build_dumbbell",
    "build_star",
    "build_chain",
    "build_parking_lot",
]


class Network:
    """A simulator plus the nodes and links living in it."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []

    def add_node(self, name: str) -> Node:
        """Create a node; names are unique addresses."""
        if name in self.nodes:
            raise ConfigurationError(f"duplicate node name {name!r}")
        node = Node(self.sim, name)
        self.nodes[name] = node
        return node

    def add_link(
        self,
        a: Node,
        b: Node,
        bandwidth_bps: float,
        delay_s: float,
        queue_factory: Optional[QueueFactory] = None,
    ) -> Link:
        """Wire a full-duplex link between two existing nodes."""
        link = Link(self.sim, a, b, bandwidth_bps, delay_s, queue_factory)
        self.links.append(link)
        return link

    def finalize(self) -> None:
        """Compute and install static shortest-path routes."""
        install_routes(self.nodes.values(), self.links)

    def fail_link(self, link: Link) -> None:
        """Take a link administratively down and reroute around it.

        Both directions stop forwarding (in-flight packets already past
        the transmitter still arrive, as on a real fiber cut); routes are
        recomputed over the surviving links. Destinations that become
        unreachable simply have no route — transit packets toward them are
        dropped and counted on the dropping node.
        """
        link.a_to_b.up = False
        link.b_to_a.up = False
        self._reroute()

    def restore_link(self, link: Link) -> None:
        """Bring a failed link back and reroute."""
        link.a_to_b.up = True
        link.b_to_a.up = True
        self._reroute()

    def _reroute(self) -> None:
        alive = [
            link for link in self.links
            if link.a_to_b.up and link.b_to_a.up
        ]
        for node in self.nodes.values():
            node.routes.clear()
        install_routes(self.nodes.values(), alive)

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigurationError(f"no node named {name!r}") from None

    def run(self, until: Optional[float] = None) -> None:
        """Convenience passthrough to the simulator."""
        self.sim.run(until=until)


# ----------------------------------------------------------- partitioning


@dataclass(frozen=True)
class CutEdge:
    """One directed link crossing a shard boundary.

    The sending interface (``src_node``'s egress toward ``dst_node``)
    lives in ``from_shard``; packets finishing serialisation there are
    handed to a cross-shard channel instead of being scheduled locally,
    and re-enter the destination shard at the peer interface after the
    link's propagation delay. ``channel_id`` is the edge's deterministic
    identity — assigned in link construction order, forward direction
    first — and doubles as the tie-key when same-time arrivals from
    different channels are merged into the destination engine.
    """

    channel_id: int
    src_node: str
    dst_node: str
    from_shard: int
    to_shard: int
    #: Conservative lookahead contributed by this edge: the *minimum*
    #: propagation delay a packet entering the channel can experience
    #: (base delay minus the worst-case jitter excursion).
    lookahead_s: float


@dataclass(frozen=True)
class TopologyPartition:
    """A validated node-to-shard assignment plus its derived cut set."""

    shards: int
    assignment: Dict[str, int]
    cut_edges: List[CutEdge]
    #: Global conservative lookahead: the minimum over every cut edge.
    #: No cross-shard packet can arrive sooner than this after it was
    #: sent, which is the window width the shard barrier may grant.
    lookahead_s: float

    def islands(self) -> Dict[int, List[str]]:
        """Node names per shard, in deterministic (insertion) order."""
        out: Dict[int, List[str]] = {s: [] for s in range(self.shards)}
        for name, shard in self.assignment.items():
            out[shard].append(name)
        return out


def partition_network(
    net: Network,
    shards: int,
    assignment: Dict[str, int],
) -> TopologyPartition:
    """Validate a node-to-shard assignment and derive the directed cut set.

    Every node must be assigned to exactly one shard in ``[0, shards)``.
    A link whose endpoints land in different shards becomes two directed
    :class:`CutEdge` s (one per direction); its propagation delay is the
    conservative lookahead, so a cut edge with **zero** minimum delay
    (zero-delay link, or jitter equal to the base delay) is refused — a
    conservative parallel simulation cannot make progress across a cut
    with no lookahead.
    """
    if shards < 1:
        raise ConfigurationError(f"shard count must be >= 1: {shards}")
    for name in net.nodes:
        if name not in assignment:
            raise ConfigurationError(
                f"partition assigns no shard to node {name!r}"
            )
    for name, shard in assignment.items():
        if name not in net.nodes:
            raise ConfigurationError(
                f"partition assigns unknown node {name!r}"
            )
        if not 0 <= shard < shards:
            raise ConfigurationError(
                f"node {name!r} assigned to shard {shard} "
                f"(valid: 0..{shards - 1})"
            )
    cut_edges: List[CutEdge] = []
    channel_id = 0
    for link in net.links:
        for iface in (link.a_to_b, link.b_to_a):
            src = iface.node.name
            dst = iface.peer.node.name
            from_shard = assignment[src]
            to_shard = assignment[dst]
            if from_shard != to_shard:
                # Conservative over the whole run: a scheduled interface
                # reports the minimum delay its schedule will ever apply,
                # so the lookahead derived here stays valid across every
                # delay step (partition after attaching schedules).
                lookahead = iface.min_delay_s()
                if lookahead <= 0:
                    raise ConfigurationError(
                        f"partition cuts link {iface.name!r} which has no "
                        f"lookahead (delay {iface.delay_s}s, jitter "
                        f"{iface.jitter_s}s, schedule min "
                        f"{iface.schedule.min_delay_s if iface.schedule is not None else 'n/a'}): "
                        "a link that can reach zero delay cannot cross "
                        "shards — co-locate its endpoints"
                    )
                cut_edges.append(CutEdge(
                    channel_id=channel_id,
                    src_node=src,
                    dst_node=dst,
                    from_shard=from_shard,
                    to_shard=to_shard,
                    lookahead_s=lookahead,
                ))
            channel_id += 1
    if shards > 1 and not cut_edges:
        raise ConfigurationError(
            f"partition into {shards} shards cuts no links — every node "
            "landed in one shard; use shards=1 for the in-process engine"
        )
    lookahead = min(
        (edge.lookahead_s for edge in cut_edges), default=float("inf")
    )
    return TopologyPartition(
        shards=shards,
        assignment=dict(assignment),
        cut_edges=cut_edges,
        lookahead_s=lookahead,
    )


def suggest_assignment(net: Network, shards: int) -> Dict[str, int]:
    """A deterministic default assignment: islands balanced by link degree.

    Nodes joined by a link with no lookahead (zero delay, or jitter equal
    to the delay) can never be separated, so they are first contracted
    into atoms (union-find); atoms are then dealt round-robin, heaviest
    first, to the currently lightest shard. Weight is the atom's summed
    *link degree*, not its node count: a shard's event load scales with
    the traffic its interfaces carry, and degree is the static proxy for
    that — a star's hub node alone outweighs any handful of leaves, so
    degree weighting stops the balancer from packing "one hub plus half
    the leaves" into one shard the way node counting did. Ties break on
    first-node construction order, so the result is a pure function of
    the topology. Workload-aware runners (the swarm, the dumbbell) pass
    their own assignment instead — this helper is the generic fallback.
    """
    if shards < 1:
        raise ConfigurationError(f"shard count must be >= 1: {shards}")
    order = {name: index for index, name in enumerate(net.nodes)}
    degree = {name: 0 for name in net.nodes}
    parent: Dict[str, str] = {name: name for name in net.nodes}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    for link in net.links:
        degree[link.node_a.name] += 1
        degree[link.node_b.name] += 1
        if min(
            link.a_to_b.min_delay_s(),
            link.b_to_a.min_delay_s(),
        ) <= 0:
            a, b = find(link.node_a.name), find(link.node_b.name)
            if a != b:
                # Representative = earliest-constructed node.
                keep, drop = (a, b) if order[a] <= order[b] else (b, a)
                parent[drop] = keep
    atoms: Dict[str, List[str]] = {}
    for name in net.nodes:
        atoms.setdefault(find(name), []).append(name)

    def weight(members: List[str]) -> int:
        return sum(degree[name] for name in members)

    ordered = sorted(
        atoms.values(),
        key=lambda members: (-weight(members), order[members[0]]),
    )
    loads = [0] * shards
    assignment: Dict[str, int] = {}
    for members in ordered:
        shard = min(range(shards), key=lambda s: (loads[s], s))
        loads[shard] += weight(members)
        for name in members:
            assignment[name] = shard
    return assignment


@dataclass
class Dumbbell:
    """Handles to the parts of a dumbbell topology."""

    network: Network
    senders: List[Node]
    receivers: List[Node]
    router_left: Node
    router_right: Node
    bottleneck: Link
    sender_links: List[Link] = field(default_factory=list)
    receiver_links: List[Link] = field(default_factory=list)


def build_dumbbell(
    pairs: int,
    access_bandwidth_bps: float,
    bottleneck_bandwidth_bps: float,
    bottleneck_delay_s: float,
    access_delay_s: float = 1e-4,
    queue_factory: Optional[QueueFactory] = None,
    sim: Optional[Simulator] = None,
) -> Dumbbell:
    """The classic single-bottleneck topology.

    ``pairs`` sender/receiver pairs hang off two routers joined by the
    bottleneck link. Access links are fast and near-zero delay by default so
    the bottleneck dominates, as in the paper's dummynet setup.
    """
    if pairs < 1:
        raise ConfigurationError("dumbbell needs at least one sender/receiver pair")
    net = Network(sim)
    left = net.add_node("rL")
    right = net.add_node("rR")
    bottleneck = net.add_link(
        left, right, bottleneck_bandwidth_bps, bottleneck_delay_s, queue_factory
    )
    senders: List[Node] = []
    receivers: List[Node] = []
    sender_links: List[Link] = []
    receiver_links: List[Link] = []
    for index in range(pairs):
        sender = net.add_node(f"s{index}")
        receiver = net.add_node(f"d{index}")
        sender_links.append(
            net.add_link(sender, left, access_bandwidth_bps, access_delay_s)
        )
        receiver_links.append(
            net.add_link(right, receiver, access_bandwidth_bps, access_delay_s)
        )
        senders.append(sender)
        receivers.append(receiver)
    net.finalize()
    return Dumbbell(
        network=net,
        senders=senders,
        receivers=receivers,
        router_left=left,
        router_right=right,
        bottleneck=bottleneck,
        sender_links=sender_links,
        receiver_links=receiver_links,
    )


@dataclass
class Star:
    """Handles to the parts of a star topology."""

    network: Network
    hub: Node
    leaves: List[Node]


def build_star(
    leaves: int,
    leaf_bandwidth_bps: float,
    leaf_delay_s: float,
    queue_factory: Optional[QueueFactory] = None,
    sim: Optional[Simulator] = None,
    leaf_prefix: str = "h",
) -> Star:
    """``leaves`` hosts around a central switch/router named ``hub``."""
    if leaves < 1:
        raise ConfigurationError("star needs at least one leaf")
    net = Network(sim)
    hub = net.add_node("hub")
    nodes: List[Node] = []
    for index in range(leaves):
        leaf = net.add_node(f"{leaf_prefix}{index}")
        net.add_link(leaf, hub, leaf_bandwidth_bps, leaf_delay_s, queue_factory)
        nodes.append(leaf)
    net.finalize()
    return Star(network=net, hub=hub, leaves=nodes)


@dataclass
class Chain:
    """Handles to the parts of a chain topology."""

    network: Network
    nodes: List[Node]


@dataclass
class ParkingLot:
    """Handles to the parts of a parking-lot topology."""

    network: Network
    routers: List[Node]
    through_source: Node
    through_sink: Node
    cross_sources: List[Node]
    cross_sinks: List[Node]
    bottlenecks: List[Link]


def build_parking_lot(
    hops: int,
    bottleneck_bandwidth_bps: float,
    per_hop_delay_s: float,
    access_bandwidth_bps: Optional[float] = None,
    access_delay_s: float = 1e-4,
    queue_factory: Optional[QueueFactory] = None,
    sim: Optional[Simulator] = None,
) -> ParkingLot:
    """The multi-bottleneck fairness topology.

    ``hops`` router-to-router bottleneck links in a chain; one *through*
    path crosses all of them, and each hop ``i`` has a *cross* pair whose
    flow uses only bottleneck ``i``. The classic question it poses: how
    badly is the through flow (facing loss at every hop) penalised against
    the single-hop cross flows?
    """
    if hops < 2:
        raise ConfigurationError("a parking lot needs at least two hops")
    if access_bandwidth_bps is None:
        access_bandwidth_bps = bottleneck_bandwidth_bps * 10
    net = Network(sim)
    routers = [net.add_node(f"r{index}") for index in range(hops + 1)]
    bottlenecks = [
        net.add_link(routers[index], routers[index + 1],
                     bottleneck_bandwidth_bps, per_hop_delay_s, queue_factory)
        for index in range(hops)
    ]
    through_source = net.add_node("tsrc")
    through_sink = net.add_node("tdst")
    net.add_link(through_source, routers[0], access_bandwidth_bps, access_delay_s)
    net.add_link(routers[-1], through_sink, access_bandwidth_bps, access_delay_s)
    cross_sources: List[Node] = []
    cross_sinks: List[Node] = []
    for index in range(hops):
        source = net.add_node(f"xsrc{index}")
        sink = net.add_node(f"xdst{index}")
        net.add_link(source, routers[index], access_bandwidth_bps, access_delay_s)
        net.add_link(routers[index + 1], sink, access_bandwidth_bps, access_delay_s)
        cross_sources.append(source)
        cross_sinks.append(sink)
    net.finalize()
    return ParkingLot(
        network=net,
        routers=routers,
        through_source=through_source,
        through_sink=through_sink,
        cross_sources=cross_sources,
        cross_sinks=cross_sinks,
        bottlenecks=bottlenecks,
    )


def build_chain(
    hops: int,
    bandwidth_bps: float,
    per_hop_delay_s: float,
    queue_factory: Optional[QueueFactory] = None,
    sim: Optional[Simulator] = None,
) -> Chain:
    """A linear chain of ``hops + 1`` nodes (multi-hop path experiments)."""
    if hops < 1:
        raise ConfigurationError("chain needs at least one hop")
    net = Network(sim)
    nodes = [net.add_node(f"n{index}") for index in range(hops + 1)]
    for index in range(hops):
        net.add_link(
            nodes[index], nodes[index + 1], bandwidth_bps, per_hop_delay_s, queue_factory
        )
    net.finalize()
    return Chain(network=net, nodes=nodes)
