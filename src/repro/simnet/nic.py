"""Network interfaces: serialisation, egress queueing, and delivery.

An :class:`Interface` is one direction-capable attachment point of a node.
Its transmit path models exactly what a physical NIC plus its drop-tail (or
RED) buffer does:

1. an arriving packet is appended to the egress queue (or dropped by the
   discipline);
2. when the transmitter is idle it dequeues the head packet and holds the
   wire for ``size_bits / bandwidth`` seconds (serialisation);
3. the packet then propagates for ``delay`` seconds and is delivered to the
   peer interface's node.

Serialisation and propagation always happen in **physical time** — that is
the point of the reproduction: the wire does not know about dilation; only
the guests' perception of it changes.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from .engine import Simulator
from .errors import ConfigurationError
from .packet import Packet
from .queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .impairments import ImpairmentChain
    from .node import Node

__all__ = ["Interface", "TapFn"]

#: Signature of a trace tap: (event kind, physical time, packet).
TapFn = Callable[[str, float, Packet], None]


class Interface:
    """One endpoint of a point-to-point link."""

    def __init__(
        self,
        sim: Simulator,
        node: "Node",
        bandwidth_bps: float,
        delay_s: float,
        queue: Optional[DropTailQueue] = None,
        name: str = "",
        jitter_s: float = 0.0,
        jitter_rng: Optional["random.Random"] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ConfigurationError(f"bandwidth must be positive: {bandwidth_bps}")
        if delay_s < 0:
            raise ConfigurationError(f"delay must be non-negative: {delay_s}")
        if jitter_s < 0:
            raise ConfigurationError(f"jitter must be non-negative: {jitter_s}")
        if jitter_s > delay_s:
            raise ConfigurationError(
                "jitter may not exceed the base delay (it would need "
                "negative propagation)"
            )
        self.sim = sim
        self.node = node
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        #: netem-style delay variation: each packet's propagation is
        #: ``delay ± U(0, jitter)``. Deterministic via the injected RNG.
        #: Note packets may be reordered when jitter exceeds the packet
        #: spacing, exactly as with netem.
        self.jitter_s = jitter_s
        self._jitter_rng = jitter_rng
        self.queue = queue if queue is not None else DropTailQueue()
        self.name = name or f"{node.name}-if"
        self.peer: Optional["Interface"] = None
        self._busy = False
        self._taps: List[TapFn] = []
        #: Optional :class:`repro.trace.recorder.FlightRecorder`. Default
        #: off; each packet-event site pays one is-None check and nothing
        #: else, so determinism pins and engine benchmarks are unchanged.
        self.recorder = None
        #: Optional fault injector: packets for which this returns True are
        #: dropped before queueing (used by loss experiments and tests).
        self.loss_fn: Optional[Callable[[Packet], bool]] = None
        #: Optional impairment pipeline (loss models, reordering,
        #: duplication, corruption, flaps); ``None`` costs one attribute
        #: check per packet and schedules no events.
        self._impairments: Optional["ImpairmentChain"] = None
        #: Administrative state: a downed interface drops everything
        #: (set via Network.fail_link / restore_link).
        self.up = True
        #: Unified drop taxonomy: reason -> count. Every egress drop on
        #: this interface lands here under exactly one reason — "down"
        #: (administratively down), "injected" (legacy ``loss_fn``),
        #: "queue" (discipline rejected it), "shaper" (a wrapping
        #: ShapedInterface's backlog overflowed), or an impairment-stage
        #: reason ("loss", "reorder"…, "flap"). Mirrored into
        #: ``sim.counters["drop.<reason>"]`` for engine-wide summaries.
        self.drops: Dict[str, int] = {}
        #: Bytes successfully put on the wire (serialised), for utilisation.
        self.tx_bytes = 0
        self.tx_packets = 0
        self.rx_bytes = 0
        self.rx_packets = 0
        #: Cross-shard egress: when the peer interface lives in another
        #: worker process, the sharded runner installs a
        #: :class:`repro.parallel.shard.ShardChannel` here and finished
        #: transmissions are handed to it (with the propagation delay
        #: already applied) instead of being scheduled on the local engine.
        #: ``None`` — the only state in a single-process run — costs one
        #: attribute check per transmitted packet.
        self.egress_channel = None
        #: Optional :class:`repro.simnet.schedule.LinkSchedule` driving this
        #: interface's delay/bandwidth/liveness as a function of time (set
        #: by the schedule on attach). Consulted by
        #: :meth:`fluid_transparent` and :meth:`min_delay_s`.
        self.schedule = None
        #: FIFO horizon: the latest arrival instant this direction has
        #: handed to the propagation pipe. A mid-run *decrease* of
        #: ``delay_s`` (schedule step, handover re-acquisition) must not
        #: let a later packet overtake one already in flight — dummynet
        #: clamps each arrival to the previous packet's, and so do we.
        #: Jittered interfaces are exempt: netem-style jitter reorders by
        #: design (pinned by test_jitter_can_reorder_packets).
        self._fifo_horizon_s = 0.0

    def connect(self, peer: "Interface") -> None:
        """Bind the remote endpoint; both directions are bound symmetrically."""
        self.peer = peer
        peer.peer = self

    def add_tap(self, tap: TapFn) -> None:
        """Attach a trace tap; called on 'enqueue', 'tx', 'rx' and 'drop'."""
        self._taps.append(tap)

    def _notify(self, kind: str, packet: Packet) -> None:
        for tap in self._taps:
            tap(kind, self.sim.now, packet)

    def set_loss(self, loss_fn: Optional[Callable[[Packet], bool]]) -> None:
        """Install (or clear) a deterministic loss injector."""
        self.loss_fn = loss_fn

    def set_impairments(self, chain: Optional["ImpairmentChain"]) -> None:
        """Attach (or clear) an impairment pipeline on this egress.

        Stages get lifecycle callbacks: the outgoing chain's stages are
        detached first (cancelling any engine timers they armed — see
        :class:`~repro.simnet.impairments.LinkFlap`), then the incoming
        chain's stages are attached. A chain that is built but never
        attached therefore schedules nothing.
        """
        old = self._impairments
        if old is not None:
            old.detach(self)
        self._impairments = chain
        if chain is not None:
            chain.attach(self)

    def fluid_transparent(self) -> bool:
        """True when this egress is a pure delay+bandwidth+droptail pipe.

        The fluid fast path (:mod:`repro.simnet.fluid`) may only model a
        hop it can express in closed form: no loss injector, impairment
        chain, tap, recorder or jitter (all per-packet decisions), no
        cross-shard egress channel (those packets must really cross the
        boundary inside the lookahead window), no schedule change still
        pending (a closed-form hold would integrate straight across the
        discontinuity), and a drop-tail queue. Re-checked every fluid
        step, so installing any of these mid-run demotes the flows riding
        this hop back to packet level.
        """
        return (
            self.up
            and self.egress_channel is None
            and self.loss_fn is None
            and self._impairments is None
            and not self._taps
            and self.recorder is None
            and self.jitter_s == 0
            and (self.schedule is None or not self.schedule.change_pending)
            and getattr(self.queue, "fluid_transparent", False)
        )

    def min_delay_s(self) -> float:
        """Conservative minimum propagation delay this egress can exhibit.

        Static interfaces: the base delay minus the worst-case jitter
        excursion. Scheduled interfaces additionally take the minimum over
        every delay the schedule will ever apply — a partition's lookahead
        must hold for the entire run, not just the initial configuration,
        so :func:`~repro.simnet.topology.partition_network` derives cut
        lookahead from this, not from ``delay_s``.
        """
        delay = self.delay_s
        if self.schedule is not None:
            delay = min(delay, self.schedule.min_delay_s)
        return delay - self.jitter_s

    @property
    def down_drops(self) -> int:
        """Packets dropped because the interface was administratively down."""
        return self.drops.get("down", 0)

    @property
    def injected_losses(self) -> int:
        """Packets dropped by the legacy ``loss_fn`` hook."""
        return self.drops.get("injected", 0)

    @property
    def total_drops(self) -> int:
        """All egress drops on this interface, every reason included."""
        return sum(self.drops.values())

    def _drop(self, packet: Packet, reason: str) -> None:
        """Charge one drop to the taxonomy and the engine-wide counters."""
        self.drops[reason] = self.drops.get(reason, 0) + 1
        counters = self.sim.counters
        key = "drop." + reason
        counters[key] = counters.get(key, 0) + 1
        if self.recorder is not None:
            # Unlike taps, the recorder gets the taxonomy reason.
            self.recorder.record_packet("drop", self, packet, reason)
        self._notify("drop", packet)

    def send(self, packet: Packet) -> None:
        """Entry point for the node: queue the packet and kick the transmitter."""
        if self.peer is None:
            raise ConfigurationError(f"interface {self.name} is not connected")
        if not self.up:
            self._drop(packet, "down")
            return
        if self.loss_fn is not None and self.loss_fn(packet):
            self._drop(packet, "injected")
            return
        chain = self._impairments
        if chain is not None:
            chain.send_through(self, packet)
            return
        self._enqueue(packet)

    def _enqueue(self, packet: Packet) -> None:
        """Post-impairment path: offer to the discipline, kick the wire.

        Held (reordered) packets re-enter here directly so a packet passes
        the impairment chain exactly once.
        """
        if not self.queue.offer(packet):
            self._drop(packet, "queue")
            return
        if self.recorder is not None:
            self.recorder.record_packet("enqueue", self, packet)
        if self._taps:
            self._notify("enqueue", packet)
        if not self._busy:
            self._transmit_next()

    def _transmit_next(self) -> None:
        packet = self.queue.poll()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        # Serialisation completion time is computable up front; a pooled
        # transient event (bound method + argument, no closure, recycled
        # Event object) carries the packet to the end of the wire hold.
        self.sim.schedule_transient(
            packet.size_bytes * 8.0 / self.bandwidth_bps,
            self._finish_transmit,
            packet,
        )

    def _finish_transmit(self, packet: Packet) -> None:
        self.tx_bytes += packet.size_bytes
        self.tx_packets += 1
        if self.recorder is not None:
            self.recorder.record_packet("tx", self, packet)
        if self._taps:
            self._notify("tx", packet)
        peer = self.peer
        assert peer is not None  # checked in send()
        delay = self.delay_s
        if self.jitter_s > 0 and self._jitter_rng is not None:
            # Jitter reorders by design (netem semantics) — no clamp.
            delay += self._jitter_rng.uniform(-self.jitter_s, self.jitter_s)
            arrival = self.sim.now + delay
        else:
            # FIFO per direction: clamp the arrival to the previous
            # packet's so a mid-run delay decrease cannot let this packet
            # overtake one still propagating (dummynet does the same).
            # Under a constant delay the clamp never binds, keeping the
            # static-path schedule bit-identical.
            arrival = self.sim.now + delay
            if arrival < self._fifo_horizon_s:
                arrival = self._fifo_horizon_s
            self._fifo_horizon_s = arrival
        channel = self.egress_channel
        if channel is not None:
            # The peer lives in another shard: ship (arrival time, packet)
            # to its engine. Jitter/clamping happened above, sender-side,
            # so the arrival time is final and deterministic.
            channel.send(arrival, packet)
        else:
            self.sim.schedule_transient_at(arrival, peer._deliver, packet)
        self._transmit_next()

    def _deliver(self, packet: Packet) -> None:
        self.rx_bytes += packet.size_bytes
        self.rx_packets += 1
        if self.recorder is not None:
            self.recorder.record_packet("rx", self, packet)
        if self._taps:
            self._notify("rx", packet)
        self.node.receive(packet, self)

    def utilisation(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` spent serialising (approximate)."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, (self.tx_bytes * 8.0) / (self.bandwidth_bps * elapsed_s))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interface({self.name}, {self.bandwidth_bps:.0f}bps, {self.delay_s}s)"
