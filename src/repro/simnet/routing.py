"""Static shortest-path routing.

Routes are computed once, after the topology is wired, with Dijkstra over
link propagation delays (ties broken lexicographically by node name for
determinism) and installed into each node's table. The benchmarks only use
static topologies, which matches the paper's testbed (ModelNet/dummynet
pipes configured up front).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Tuple

from .errors import RoutingError
from .link import Link
from .node import Node

__all__ = ["compute_routes", "install_routes", "shortest_path"]


def _adjacency(
    nodes: Iterable[Node], links: Iterable[Link]
) -> Dict[str, List[Tuple[str, float, Link]]]:
    adjacency: Dict[str, List[Tuple[str, float, Link]]] = {n.name: [] for n in nodes}
    for link in links:
        adjacency[link.node_a.name].append(
            (link.node_b.name, link.a_to_b.delay_s, link)
        )
        adjacency[link.node_b.name].append(
            (link.node_a.name, link.b_to_a.delay_s, link)
        )
    # Deterministic neighbour order regardless of wiring order.
    for neighbours in adjacency.values():
        neighbours.sort(key=lambda item: item[0])
    return adjacency


def shortest_path(
    source: Node, nodes: Iterable[Node], links: Iterable[Link]
) -> Dict[str, Tuple[float, List[str]]]:
    """Dijkstra from ``source``; returns ``{dst: (cost, path_names)}``."""
    adjacency = _adjacency(nodes, links)
    if source.name not in adjacency:
        raise RoutingError(f"source {source.name} is not in the topology")
    distances: Dict[str, float] = {source.name: 0.0}
    paths: Dict[str, List[str]] = {source.name: [source.name]}
    visited: set[str] = set()
    frontier: List[Tuple[float, str]] = [(0.0, source.name)]
    while frontier:
        cost, name = heapq.heappop(frontier)
        if name in visited:
            continue
        visited.add(name)
        for neighbour, weight, _ in adjacency[name]:
            candidate = cost + weight
            if neighbour not in distances or candidate < distances[neighbour] - 1e-15:
                distances[neighbour] = candidate
                paths[neighbour] = paths[name] + [neighbour]
                heapq.heappush(frontier, (candidate, neighbour))
    return {dst: (distances[dst], paths[dst]) for dst in distances}


def compute_routes(
    nodes: Iterable[Node], links: Iterable[Link]
) -> Dict[str, Dict[str, str]]:
    """For every node, the next hop toward every destination.

    Returns ``{node: {dst: next_hop_name}}``.
    """
    node_list = list(nodes)
    link_list = list(links)
    tables: Dict[str, Dict[str, str]] = {}
    for node in node_list:
        reachable = shortest_path(node, node_list, link_list)
        next_hops: Dict[str, str] = {}
        for dst, (_, path) in reachable.items():
            if dst == node.name:
                continue
            next_hops[dst] = path[1]
        tables[node.name] = next_hops
    return tables


def install_routes(nodes: Iterable[Node], links: Iterable[Link]) -> None:
    """Compute shortest paths and fill each node's routing table."""
    node_list = list(nodes)
    link_list = list(links)
    tables = compute_routes(node_list, link_list)
    by_name = {node.name: node for node in node_list}
    # Map (node, neighbour) -> egress interface.
    egress: Dict[Tuple[str, str], object] = {}
    for link in link_list:
        egress[(link.node_a.name, link.node_b.name)] = link.a_to_b
        egress[(link.node_b.name, link.node_a.name)] = link.b_to_a
    for name, next_hops in tables.items():
        node = by_name[name]
        for dst, hop in next_hops.items():
            interface = egress.get((name, hop))
            if interface is None:  # pragma: no cover - defensive
                raise RoutingError(f"no interface from {name} to {hop}")
            node.set_route(dst, interface)  # type: ignore[arg-type]
