"""Exception hierarchy for the simulation substrate.

All library errors derive from :class:`SimulationError` so that callers can
catch everything the emulator raises with a single ``except`` clause while
still being able to discriminate the common cases.
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "SchedulingError",
    "ConfigurationError",
    "RoutingError",
    "AddressError",
    "ProtocolError",
    "ConnectionReset",
]


class SimulationError(Exception):
    """Base class for every error raised by the repro library."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped engine."""


class ConfigurationError(SimulationError):
    """A component was constructed or wired with invalid parameters."""


class RoutingError(SimulationError):
    """No route exists between two nodes, or a routing table is malformed."""


class AddressError(SimulationError):
    """An address or port is invalid, unbound, or already in use."""


class ProtocolError(SimulationError):
    """A protocol state machine received a segment it cannot process."""


class ConnectionReset(ProtocolError):
    """The remote end aborted the connection."""
