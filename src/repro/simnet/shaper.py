"""Token-bucket traffic shaping.

Emulation testbeds (dummynet, ModelNet) rate-limit with token buckets
rather than raw link clocks; a bucket allows short bursts up to its depth
while enforcing a long-term rate. :class:`TokenBucket` is the policer /
shaper primitive, and :class:`ShapedInterface` wraps it around a node's
egress path so experiments can emulate a slower service rate than the
physical wire — with the burst tolerance real shapers have.

Everything here runs in physical time (shapers are infrastructure, not
guests); dilated guests perceive a shaped path exactly as they perceive a
slow link.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .engine import Simulator
from .errors import ConfigurationError
from .nic import Interface
from .packet import Packet

__all__ = ["TokenBucket", "ShapedInterface"]


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s, capacity ``burst``.

    Tokens are measured in bytes. The bucket is lazily refilled from the
    simulator clock on each interaction, so it costs nothing while idle.
    """

    def __init__(self, sim: Simulator, rate_bytes_per_s: float,
                 burst_bytes: float) -> None:
        if rate_bytes_per_s <= 0:
            raise ConfigurationError("token rate must be positive")
        if burst_bytes <= 0:
            raise ConfigurationError("burst size must be positive")
        self.sim = sim
        self.rate = rate_bytes_per_s
        self.burst = burst_bytes
        self._tokens = burst_bytes
        self._last_refill = sim.now

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(
            self.burst, self._tokens + (now - self._last_refill) * self.rate
        )
        self._last_refill = now

    @property
    def tokens(self) -> float:
        """Bytes currently available."""
        self._refill()
        return self._tokens

    def try_consume(self, n_bytes: float) -> bool:
        """Take ``n_bytes`` if available; False otherwise (policer use)."""
        self._refill()
        if self._tokens >= n_bytes:
            self._tokens -= n_bytes
            return True
        return False

    def time_until(self, n_bytes: float) -> float:
        """Seconds until ``n_bytes`` of tokens will be available."""
        self._refill()
        deficit = n_bytes - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate

    def consume(self, n_bytes: float) -> None:
        """Take tokens; callers must have checked :meth:`time_until` first.

        A microscopic float deficit (lazy-refill residue) is tolerated and
        clamped rather than being treated as an overdraft.
        """
        self._refill()
        if self._tokens < n_bytes - 1e-3:
            raise ConfigurationError(
                f"consuming {n_bytes} with only {self._tokens:.1f} tokens"
            )
        self._tokens = max(0.0, self._tokens - n_bytes)


class ShapedInterface:
    """Delay packets until the bucket allows them, then hand to an interface.

    Use in place of the raw interface on a node's route:

        shaped = ShapedInterface(sim, raw_interface, rate_bytes, burst_bytes)
        node.set_route("dst", shaped)

    Packets queue FIFO while waiting for tokens; the underlying interface
    still applies its own serialisation and propagation, so a shaper set
    *below* the line rate becomes the path's bottleneck, as with dummynet.
    """

    def __init__(
        self,
        sim: Simulator,
        interface: Interface,
        rate_bytes_per_s: float,
        burst_bytes: Optional[float] = None,
        max_backlog_packets: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.interface = interface
        if burst_bytes is None:
            burst_bytes = max(3000.0, rate_bytes_per_s * 0.01)  # ~10 ms burst
        self.bucket = TokenBucket(sim, rate_bytes_per_s, burst_bytes)
        #: Queue limit; None = unbounded (pure delay). Real shapers have a
        #: finite buffer — without one a TCP flow bufferbloats the shaper
        #: instead of receiving loss feedback.
        self.max_backlog_packets = max_backlog_packets
        self._backlog: Deque[Packet] = deque()
        self._draining = False
        self.shaped_packets = 0
        self.dropped_packets = 0

    def fluid_transparent(self) -> bool:
        """Never fluid-eligible: token-bucket pacing is a per-packet
        decision process the closed-form flow model cannot reproduce, so
        any route through a shaper keeps its flows packet-level (see
        :mod:`repro.simnet.fluid`)."""
        return False

    def send(self, packet: Packet) -> None:
        """Node-facing entry point (duck-typed like an Interface)."""
        if (
            self.max_backlog_packets is not None
            and len(self._backlog) >= self.max_backlog_packets
        ):
            # Keep the legacy attribute, but charge the drop to the wrapped
            # interface's unified taxonomy too: a "shaper" reason lands in
            # ``interface.drops``, mirrors into ``sim.counters["drop.shaper"]``
            # and fires the interface's drop taps, so FlowMonitor's
            # ``interface_drops``/``drops_by_reason`` see shaper overflows
            # like any other egress drop.
            self.dropped_packets += 1
            self.interface._drop(packet, "shaper")
            return
        self._backlog.append(packet)
        if not self._draining:
            self._drain()

    @property
    def backlog(self) -> int:
        """Packets waiting for tokens."""
        return len(self._backlog)

    #: Waits below this are float residue of the lazy refill (the deficit
    #: at a resume instant is ~1e-10 tokens); treating them as ready
    #: avoids an event ping-pong of ever-tinier sleeps.
    _EPSILON_S = 1e-9

    def _drain(self) -> None:
        while self._backlog:
            head = self._backlog[0]
            wait = self.bucket.time_until(head.size_bytes)
            if wait > self._EPSILON_S:
                self._draining = True
                # Fire-and-forget: the resume event is never cancelled, so
                # it can ride a pooled transient event.
                self.sim.schedule_transient(wait, self._resume)
                return
            self.bucket.consume(head.size_bytes)
            self._backlog.popleft()
            self.shaped_packets += 1
            self.interface.send(head)
        self._draining = False

    def _resume(self) -> None:
        self._draining = False
        self._drain()
