"""Queueing disciplines for link egress buffers.

Two disciplines are provided, matching what the paper's testbed used via
dummynet/netem:

* :class:`DropTailQueue` — bounded FIFO, drops arrivals when full.
* :class:`REDQueue` — Random Early Detection (Floyd & Jacobson 1993) with
  the standard EWMA average-queue estimator and linear drop probability
  between ``min_th`` and ``max_th``.

Queues are passive containers: the :class:`~repro.simnet.nic.Interface`
drains them as the link becomes free. Both disciplines account drops and
byte/packet counters for the statistics layer.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional

from .errors import ConfigurationError
from .packet import Packet

__all__ = ["QueueStats", "DropTailQueue", "REDQueue"]


class QueueStats:
    """Counters shared by all queue disciplines."""

    def __init__(self) -> None:
        self.enqueued_packets = 0
        self.enqueued_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.dequeued_packets = 0

    @property
    def drop_rate(self) -> float:
        """Fraction of arriving packets that were dropped."""
        arrivals = self.enqueued_packets + self.dropped_packets
        if arrivals == 0:
            return 0.0
        return self.dropped_packets / arrivals


class DropTailQueue:
    """A bounded FIFO that drops arrivals once ``capacity_packets`` is reached.

    Capacity may alternatively be expressed in bytes (``capacity_bytes``);
    if both are given, whichever limit is hit first causes the drop.
    """

    #: Drop-tail is the one discipline the fluid fast path can model in
    #: closed form (occupancy = window minus BDP, overflow = loss); any
    #: other discipline keeps its flows packet-level. See
    #: :mod:`repro.simnet.fluid`.
    fluid_transparent = True

    def __init__(
        self,
        capacity_packets: Optional[int] = 100,
        capacity_bytes: Optional[int] = None,
    ) -> None:
        if capacity_packets is None and capacity_bytes is None:
            raise ConfigurationError("queue needs at least one capacity limit")
        if capacity_packets is not None and capacity_packets <= 0:
            raise ConfigurationError("capacity_packets must be positive")
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ConfigurationError("capacity_bytes must be positive")
        self.capacity_packets = capacity_packets
        self.capacity_bytes = capacity_bytes
        self.stats = QueueStats()
        self._items: deque[Packet] = deque()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def byte_length(self) -> int:
        """Bytes currently queued."""
        return self._bytes

    def _would_overflow(self, packet: Packet) -> bool:
        if (
            self.capacity_packets is not None
            and len(self._items) >= self.capacity_packets
        ):
            return True
        if (
            self.capacity_bytes is not None
            and self._bytes + packet.size_bytes > self.capacity_bytes
        ):
            return True
        return False

    def offer(self, packet: Packet) -> bool:
        """Try to enqueue; returns ``False`` (and counts a drop) when full."""
        # The overflow test is inlined: offer() runs once per packet per
        # hop and the method-call indirection is measurable there.
        size = packet.size_bytes
        stats = self.stats
        if (
            self.capacity_packets is not None
            and len(self._items) >= self.capacity_packets
        ) or (
            self.capacity_bytes is not None
            and self._bytes + size > self.capacity_bytes
        ):
            stats.dropped_packets += 1
            stats.dropped_bytes += size
            return False
        self._items.append(packet)
        self._bytes += size
        stats.enqueued_packets += 1
        stats.enqueued_bytes += size
        return True

    def poll(self) -> Optional[Packet]:
        """Dequeue the head packet, or ``None`` when empty."""
        if not self._items:
            return None
        packet = self._items.popleft()
        self._bytes -= packet.size_bytes
        self.stats.dequeued_packets += 1
        return packet


class REDQueue:
    """Random Early Detection.

    Not ``fluid_transparent``: RED's probabilistic early drops depend on
    per-packet arrival history, which the fluid model cannot reproduce.

    The average queue length is tracked with an exponentially weighted
    moving average updated on every arrival. Between ``min_th`` and
    ``max_th`` packets, arrivals are dropped with probability rising
    linearly to ``max_p``; beyond ``max_th`` every arrival is dropped.
    The ``count``-based correction from the original paper (spacing drops
    roughly uniformly) is implemented, as is the paper's *idle-time decay*:
    when a packet arrives at an empty queue, the average is aged as if
    ``idle / mean_packet_time_s`` small packets had passed — without this,
    the average stays high after a drain and RED keeps early-dropping an
    empty queue (classic implementation bug). Supply ``clock`` (anything
    with a ``now`` attribute or method — a Simulator works) and
    ``mean_packet_time_s`` (the link's typical serialisation time) to
    enable it.

    The RNG is injected for determinism; experiments construct it from the
    experiment seed so dilated and baseline runs see identical drop choices.
    """

    def __init__(
        self,
        capacity_packets: int = 200,
        min_th: float = 20.0,
        max_th: float = 80.0,
        max_p: float = 0.1,
        weight: float = 0.002,
        rng: Optional[random.Random] = None,
        clock: Optional[object] = None,
        mean_packet_time_s: Optional[float] = None,
        ecn_marking: bool = False,
    ) -> None:
        if not 0 < min_th < max_th <= capacity_packets:
            raise ConfigurationError(
                f"need 0 < min_th < max_th <= capacity "
                f"(got {min_th}, {max_th}, {capacity_packets})"
            )
        if not 0 < max_p <= 1:
            raise ConfigurationError("max_p must be in (0, 1]")
        self.capacity_packets = capacity_packets
        self.min_th = min_th
        self.max_th = max_th
        self.max_p = max_p
        self.weight = weight
        self.stats = QueueStats()
        self._rng = rng if rng is not None else random.Random(0)
        self._clock = clock
        self._mean_packet_time_s = mean_packet_time_s
        #: RFC 3168 mode: probabilistic "drops" become CE marks for
        #: ECN-capable packets (hard overflow still drops).
        self.ecn_marking = ecn_marking
        self.marked_packets = 0
        self._idle_since: Optional[float] = None
        self._items: deque[Packet] = deque()
        self._bytes = 0
        self._avg = 0.0
        self._count = -1  # packets since last early drop

    def __len__(self) -> int:
        return len(self._items)

    @property
    def byte_length(self) -> int:
        return self._bytes

    @property
    def average_queue(self) -> float:
        """Current EWMA estimate of the queue length in packets."""
        return self._avg

    def _now(self) -> Optional[float]:
        if self._clock is None:
            return None
        now = getattr(self._clock, "now")
        return now() if callable(now) else now

    def _update_average(self) -> None:
        if (
            not self._items
            and self._idle_since is not None
            and self._mean_packet_time_s
        ):
            now = self._now()
            if now is not None:
                idle_packets = (now - self._idle_since) / self._mean_packet_time_s
                self._avg *= (1 - self.weight) ** max(0.0, idle_packets)
            self._idle_since = None
        self._avg = (1 - self.weight) * self._avg + self.weight * len(self._items)

    def _early_drop(self) -> bool:
        if self._avg < self.min_th:
            self._count = -1
            return False
        if self._avg >= self.max_th:
            self._count = 0
            return True
        self._count += 1
        base_p = self.max_p * (self._avg - self.min_th) / (self.max_th - self.min_th)
        denominator = 1 - self._count * base_p
        probability = base_p / denominator if denominator > 0 else 1.0
        if self._rng.random() < probability:
            self._count = 0
            return True
        return False

    def offer(self, packet: Packet) -> bool:
        """RED arrival processing: maybe early-drop (or CE-mark), else enqueue."""
        self._update_average()
        if len(self._items) >= self.capacity_packets:
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size_bytes
            return False
        if self._early_drop():
            if self.ecn_marking and packet.ecn_capable:
                packet.ce = True
                self.marked_packets += 1
            else:
                self.stats.dropped_packets += 1
                self.stats.dropped_bytes += packet.size_bytes
                return False
        self._items.append(packet)
        self._bytes += packet.size_bytes
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += packet.size_bytes
        return True

    def poll(self) -> Optional[Packet]:
        if not self._items:
            return None
        packet = self._items.popleft()
        self._bytes -= packet.size_bytes
        self.stats.dequeued_packets += 1
        if not self._items:
            self._idle_since = self._now()
        return packet
