"""``repro.simnet`` — the deterministic "physical testbed" substrate.

This package plays the role of the hardware in the original paper: hosts,
links with real serialisation and propagation behaviour, queues that drop,
and a single physical clock driving everything. The time-dilation layer
(:mod:`repro.core`) sits on top and only ever changes how *guests perceive*
this substrate, never the substrate itself.
"""

from .clock import Clock, PhysicalClock
from .engine import Event, Simulator
from .errors import (
    AddressError,
    ConfigurationError,
    ConnectionReset,
    ProtocolError,
    RoutingError,
    SchedulingError,
    SimulationError,
)
from .impairments import (
    BernoulliLoss,
    Corrupt,
    Duplicate,
    GilbertElliott,
    Handover,
    ImpairmentChain,
    ImpairmentSpec,
    LinkFlap,
    Reorder,
)
from .link import Link
from .schedule import LinkSchedule, ScheduleEntry, ScheduleSpec
from .nic import Interface
from .node import Node
from .packet import Packet
from .queues import DropTailQueue, REDQueue
from .shaper import ShapedInterface, TokenBucket
from .topology import Network, build_chain, build_dumbbell, build_star
from .trace import PacketTrace, TraceRecord

__all__ = [
    "Clock",
    "PhysicalClock",
    "Event",
    "Simulator",
    "SimulationError",
    "SchedulingError",
    "ConfigurationError",
    "RoutingError",
    "AddressError",
    "ProtocolError",
    "ConnectionReset",
    "BernoulliLoss",
    "GilbertElliott",
    "Reorder",
    "Duplicate",
    "Corrupt",
    "LinkFlap",
    "Handover",
    "ImpairmentChain",
    "ImpairmentSpec",
    "Link",
    "LinkSchedule",
    "ScheduleEntry",
    "ScheduleSpec",
    "Interface",
    "Node",
    "Packet",
    "DropTailQueue",
    "REDQueue",
    "TokenBucket",
    "ShapedInterface",
    "Network",
    "build_dumbbell",
    "build_star",
    "build_chain",
    "PacketTrace",
    "TraceRecord",
]
