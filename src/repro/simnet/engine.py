"""The discrete-event engine — the library's notion of *physical time*.

Everything in the emulated world is driven by a single event queue ordered
by physical (wall-clock-equivalent) time. Virtual, dilated time is never
stored in the queue: dilated components convert their virtual deadlines to
physical ones before scheduling (see :mod:`repro.core.clock`). Keeping one
time base in the engine is the design decision that makes the dilated and
baseline runs of an experiment comparable event-for-event.

Determinism
-----------
Two events at the same physical timestamp are ordered by a monotonically
increasing sequence number assigned at scheduling time. Combined with seeded
RNGs in the workloads, a simulation is a pure function of its configuration,
which is what lets the benchmark harness assert that a dilated run matches
its scaled baseline.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from .errors import SchedulingError

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback handle.

    The heap itself stores ``(time, seq, event)`` tuples so ordering
    comparisons run at C speed; the Event object is the cancellation
    handle. Cancelled events keep their place in the heap and are skipped
    when popped (lazy deletion).
    """

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call more than once."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}{state})"


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns physical time. Components schedule callbacks with
    :meth:`schedule` / :meth:`call_at` and the main loop (:meth:`run`)
    executes them in timestamp order.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        #: Number of events executed so far (observability / debugging).
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current physical time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback after
        all events already scheduled for the current instant.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn)

    def call_at(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at an absolute physical time.

        Scheduling in the past is an error: the world cannot be rewound.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time}; current time is {self._now}"
            )
        event = Event(time, next(self._seq), fn)
        heapq.heappush(self._queue, (time, event.seq, event))
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Execute events in order until the queue drains.

        Parameters
        ----------
        until:
            Stop once the next event would be strictly later than this
            physical time. The clock is advanced to ``until`` on exit so a
            subsequent ``run`` continues from there.
        max_events:
            Safety valve for runaway simulations; raises
            :class:`SchedulingError` when exceeded.
        """
        if self._running:
            raise SchedulingError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue and not self._stopped:
                time, _, event = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = time
                event.fn()
                self.events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SchedulingError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _, _, event in self._queue if not event.cancelled)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the queue is empty."""
        live = [entry for entry in self._queue if not entry[2].cancelled]
        return min(live)[0] if live else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending()}, "
            f"processed={self.events_processed})"
        )
