"""The discrete-event engine — the library's notion of *physical time*.

Everything in the emulated world is driven by a single event queue ordered
by physical (wall-clock-equivalent) time. Virtual, dilated time is never
stored in the queue: dilated components convert their virtual deadlines to
physical ones before scheduling (see :mod:`repro.core.clock`). Keeping one
time base in the engine is the design decision that makes the dilated and
baseline runs of an experiment comparable event-for-event.

Determinism
-----------
Two events at the same physical timestamp are ordered by their **tie rank**
and then by a monotonically increasing sequence number assigned at
scheduling time. The rank is, by default, the simulator clock at the moment
the event was scheduled (or last re-keyed), so in a single engine the full
key ``(time, rank, seq)`` orders exactly like ``(time, seq)`` did — the
rank is monotone in the seq and changes nothing. Its purpose is the
*multi-engine* case: a scheduler that re-creates an event on another
engine's queue (the sharded runner injecting a cross-shard delivery) may
pass an explicit ``tie_key`` — the event's **original** creation instant —
and the event then ties against same-timestamp locals (long-armed periodic
timers especially) exactly where creation order would have put it, even
though its local creation seq says "just now". Combined with seeded RNGs in
the workloads, a simulation is a pure function of its configuration, which
is what lets the benchmark harness assert that a dilated run matches its
scaled baseline. :meth:`Event.reschedule` deliberately assigns a fresh
sequence number (and, unless an explicit tie-key pins it, a fresh rank) on
every re-keying so that a rescheduled timer ties exactly like the
cancel-and-recreate pattern it replaces — optimisations must never change
event order.

Hot-path design
---------------
The heap stores ``(time, rank, seq, event)`` tuples so ordering comparisons
run at C speed. Cancellation and rescheduling are *lazy*: the heap entry stays
behind and is recognised as dead because its ``seq`` no longer matches the
event's current ``seq`` (cancel sets the event's seq to -1; reschedule
re-keys it). A live-event counter makes :meth:`Simulator.pending` O(1), and
when dead entries outnumber live ones the heap is compacted in one O(n)
pass — without this, workloads that cancel a timer per ACK (TCP does)
grow the heap without bound and every push/pop pays an inflated log n.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import SchedulingError

__all__ = ["Event", "Simulator"]

#: Compaction triggers only beyond this many dead entries, so small
#: simulations never pay the O(n) sweep.
_COMPACT_MIN_DEAD = 64

#: Profiler auto-attached to every Simulator constructed while set (see
#: :func:`set_default_profiler`). Duck-typed so the engine does not import
#: the stats layer.
_default_profiler = None


def set_default_profiler(profiler) -> None:
    """Auto-attach ``profiler`` to every Simulator constructed from now on.

    Experiment runners build their simulators internally; this hook is how
    the harness profiles a whole figure regeneration without threading a
    profiler through every runner signature. Pass ``None`` to clear.
    """
    global _default_profiler
    _default_profiler = profiler


class Event:
    """A scheduled callback handle.

    The heap itself stores ``(time, rank, seq, event)`` tuples; the Event
    object is the cancellation / rescheduling handle. A heap entry is live
    only while its ``seq`` matches the event's current ``seq``: cancelling
    sets the event's seq to -1 and rescheduling re-keys it, so stale entries
    are skipped when popped (lazy deletion) or swept out by compaction.

    ``tie_key`` is the optional explicit tie rank (see the module
    docstring): ``None`` means "rank = scheduling instant", assigned anew on
    every re-keying; a float pins the rank across :meth:`reschedule` calls.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "tie_key",
                 "_sim", "_live", "_transient")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., None],
        args: Tuple[Any, ...],
        sim: "Simulator",
        tie_key: Optional[float] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.tie_key = tie_key
        self._sim = sim
        #: True while the event is queued and will fire (the simulator's
        #: live counter includes it).
        self._live = True
        #: Pool-managed events are recycled after execution; user code never
        #: sees a handle to them (see :meth:`Simulator.schedule_transient`).
        self._transient = False

    @property
    def active(self) -> bool:
        """Armed and not yet fired or cancelled."""
        return self._live

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call more than once.

        The heap entry is left behind and reaped lazily (or by compaction);
        only the O(1) bookkeeping happens here.
        """
        if self._live:
            self._live = False
            self.cancelled = True
            self.seq = -1
            sim = self._sim
            sim._live -= 1
            if (
                len(sim._queue) - sim._live
                > max(_COMPACT_MIN_DEAD, sim._live)
            ):
                sim._compact()

    def reschedule(self, time: float) -> None:
        """Re-key the event to fire at absolute physical ``time``.

        This is the fast path for repeatedly re-armed timers (TCP RTO,
        delayed ACK, periodic ticks): it replaces a ``cancel()`` plus a
        fresh :meth:`Simulator.call_at` without allocating a new Event or
        closure. Works on pending, fired, *and* cancelled events — the
        latter two re-arm the timer. A fresh sequence number is assigned so
        same-timestamp ordering is identical to cancel-and-recreate; the tie
        rank is likewise re-derived from the current instant unless an
        explicit ``tie_key`` was assigned, which is preserved verbatim.
        """
        sim = self._sim
        if time < sim._now:
            raise SchedulingError(
                f"cannot reschedule at {time}; current time is {sim._now}"
            )
        if not self._live:
            self._live = True
            self.cancelled = False
            sim._live += 1
        # else: the stale heap entry (old seq) becomes garbage below.
        self.time = time
        self.seq = seq = sim._seq
        sim._seq = seq + 1
        tie_key = self.tie_key
        rank = sim._now if tie_key is None else tie_key
        heapq.heappush(sim._queue, (time, rank, seq, self))
        if len(sim._queue) - sim._live > max(_COMPACT_MIN_DEAD, sim._live):
            sim._compact()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}{state})"


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns physical time. Components schedule callbacks with
    :meth:`schedule` / :meth:`call_at` and the main loop (:meth:`run`)
    executes them in timestamp order.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, float, int, Event]] = []
        self._seq = 0
        self._live = 0
        self._running = False
        self._stopped = False
        #: Number of events executed so far (observability / debugging).
        self.events_processed = 0
        #: Number of O(n) heap compaction sweeps performed.
        self.compactions = 0
        #: Dead (cancelled / re-keyed) heap entries discarded, lazily or
        #: by compaction.
        self.dead_entries_reaped = 0
        #: Largest heap length observed at a push (includes dead entries).
        self.max_heap_len = 0
        #: Optional :class:`repro.stats.engineprof.EngineProfiler` hook;
        #: when attached, the run loop reports each executed event to it.
        self._profiler = None
        #: Optional :class:`repro.trace.recorder.FlightRecorder`; when
        #: attached, the run loop records one 'timer'/'fire' event per
        #: executed event. Default off: one is-None check per event.
        self._recorder = None
        #: Freelist of recycled transient events.
        self._event_pool: List[Event] = []
        #: Engine-wide named counters ("drop.queue", "tcp.retransmits"…)
        #: bumped by components; plain data, never scheduled, so bumping
        #: one can never perturb event ordering. Surfaced by
        #: :class:`repro.stats.engineprof.EngineProfiler` and
        #: :class:`repro.stats.flows.FlowMonitor`.
        self.counters: Dict[str, int] = {}
        #: Optional :class:`repro.simnet.fluid.FluidManager` — the hybrid-
        #: fidelity fast path. ``None`` (pure packet mode) costs the TCP
        #: ACK path one is-None check; installing a manager never changes
        #: packet-level event ordering, only which flows leave it.
        self.fluid = None
        if _default_profiler is not None:
            self.attach_profiler(_default_profiler)

    @property
    def now(self) -> float:
        """Current physical time in seconds."""
        return self._now

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback after
        all events already scheduled for the current instant. Passing the
        callback's arguments positionally (instead of binding them in a
        lambda) avoids a closure allocation on hot paths.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def call_at(
        self,
        time: float,
        fn: Callable[..., None],
        *args: Any,
        tie_key: Optional[float] = None,
    ) -> Event:
        """Schedule ``fn(*args)`` at an absolute physical time.

        Scheduling in the past is an error: the world cannot be rewound.

        ``tie_key`` overrides the event's tie rank for same-timestamp
        ordering (default: the current instant, which reproduces plain
        creation-order ties). The sharded runner passes the original
        creation instant of re-injected cross-shard deliveries here so they
        tie against local timers exactly as in a single-process run; the
        key is sticky across :meth:`Event.reschedule`. Must not exceed
        ``time`` — an event cannot outrank its own scheduling instant.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time}; current time is {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        if tie_key is None:
            event = Event(time, seq, fn, args, self)
            rank = self._now
        else:
            if tie_key > time:
                raise SchedulingError(
                    f"tie_key {tie_key} is later than event time {time}"
                )
            event = Event(time, seq, fn, args, self, tie_key)
            rank = tie_key
        self._live += 1
        queue = self._queue
        heapq.heappush(queue, (time, rank, seq, event))
        if len(queue) > self.max_heap_len:
            self.max_heap_len = len(queue)
        return event

    def schedule_transient(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> None:
        """Schedule a fire-and-forget callback with a pooled Event.

        For internal per-packet events (serialisation completion, delivery)
        that are never cancelled: the Event object is recycled after it
        fires, so steady-state packet forwarding allocates no engine
        objects. No handle is returned — transient events cannot be
        cancelled or rescheduled.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
            event._live = True
        else:
            event = Event(time, seq, fn, args, self)
            event._transient = True
        self._live += 1
        queue = self._queue
        heapq.heappush(queue, (time, self._now, seq, event))
        if len(queue) > self.max_heap_len:
            self.max_heap_len = len(queue)

    def schedule_transient_at(
        self, time: float, fn: Callable[..., None], *args: Any
    ) -> None:
        """Absolute-time variant of :meth:`schedule_transient`.

        For callers that compute an arrival instant up front (the NIC
        delivery path, which may FIFO-clamp it against an earlier
        in-flight packet): scheduling the absolute time directly avoids
        the ``(now + delay) - now`` round trip that would perturb float
        timestamps. The tie rank is the current instant, exactly as for
        a delay-form transient, so ``schedule_transient_at(now + d)``
        and ``schedule_transient(d)`` produce bit-identical heap entries.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time}; current time is {self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = seq
            event.fn = fn
            event.args = args
            event.cancelled = False
            event._live = True
        else:
            event = Event(time, seq, fn, args, self)
            event._transient = True
        self._live += 1
        queue = self._queue
        heapq.heappush(queue, (time, self._now, seq, event))
        if len(queue) > self.max_heap_len:
            self.max_heap_len = len(queue)

    # --------------------------------------------------------------- main loop

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Execute events in order until the queue drains.

        Parameters
        ----------
        until:
            Stop once the next event would be strictly later than this
            physical time. The clock is advanced to ``until`` on exit so a
            subsequent ``run`` continues from there.
        max_events:
            Safety valve for runaway simulations; raises
            :class:`SchedulingError` when a further event would exceed the
            budget. The budget is checked *before* executing, so a run
            that needs exactly ``max_events`` events completes cleanly.
        """
        if self._running:
            raise SchedulingError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        executed = 0
        # Bind hot attributes to locals: the loop body below runs once per
        # event and attribute lookups dominate at this altitude.
        queue = self._queue
        heappop = heapq.heappop
        profiler = self._profiler
        recorder = self._recorder
        pool = self._event_pool
        try:
            while queue and not self._stopped:
                entry = queue[0]
                event = entry[3]
                if entry[2] != event.seq:
                    # Dead entry: cancelled or re-keyed by reschedule().
                    heappop(queue)
                    self.dead_entries_reaped += 1
                    continue
                time = entry[0]
                if until is not None and time > until:
                    break
                if max_events is not None and executed >= max_events:
                    raise SchedulingError(
                        f"exceeded max_events={max_events} at t={self._now}; "
                        "runaway simulation?"
                    )
                heappop(queue)
                self._now = time
                event._live = False
                self._live -= 1
                event.fn(*event.args)
                self.events_processed += 1
                executed += 1
                if profiler is not None:
                    profiler._record(event)
                if recorder is not None:
                    # Before transient recycling below clears event.fn.
                    recorder.record_timer(time, event.fn)
                if event._transient and len(pool) < 512:
                    # Drop callback/arg references so pooled events do not
                    # pin packets or closures, then recycle the object.
                    event.fn = _noop
                    event.args = ()
                    pool.append(event)
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    # ------------------------------------------------------------ observation

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued — O(1)."""
        return self._live

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` if the queue is empty.

        The shard barrier polls this between every synchronization window,
        so the common case — a live head — must stay a single index plus
        compare, O(1). Dead heads are reaped permanently (popped, not
        skipped) in :meth:`_peek_slow`, so repeated polls never re-scan the
        same lazily-cancelled entries.
        """
        queue = self._queue
        if queue:
            entry = queue[0]
            if entry[2] == entry[3].seq:
                return entry[0]
            return self._peek_slow()
        return None

    def _peek_slow(self) -> Optional[float]:
        """Pop dead heads until a live one surfaces (amortised O(log n))."""
        queue = self._queue
        reaped = 0
        result: Optional[float] = None
        while queue:
            entry = queue[0]
            if entry[2] == entry[3].seq:
                result = entry[0]
                break
            heapq.heappop(queue)
            reaped += 1
        self.dead_entries_reaped += reaped
        return result

    def heap_len(self) -> int:
        """Raw heap length including dead entries (observability)."""
        return len(self._queue)

    # ------------------------------------------------------------- maintenance

    def _compact(self) -> None:
        """Sweep dead entries out of the heap in one O(n) pass.

        The list is compacted *in place*: ``run()`` holds a local alias to
        the queue, so the list object's identity must never change.
        """
        queue = self._queue
        before = len(queue)
        queue[:] = [entry for entry in queue if entry[2] == entry[3].seq]
        heapq.heapify(queue)
        self.compactions += 1
        self.dead_entries_reaped += before - len(queue)

    # -------------------------------------------------------------- profiling

    def attach_profiler(self, profiler) -> None:
        """Attach an :class:`~repro.stats.engineprof.EngineProfiler`.

        Only one profiler may be attached at a time; pass ``None`` to
        detach. Profiling adds one branch per executed event when attached
        and nothing when not.
        """
        self._profiler = profiler
        if profiler is not None:
            profiler.on_attach(self)

    def attach_recorder(self, recorder) -> None:
        """Attach a :class:`~repro.trace.recorder.FlightRecorder`.

        When attached, every executed event is reported as a
        ``timer``/``fire`` trace event. Pass ``None`` to detach. Like the
        profiler, the run loop binds the recorder once at entry, so
        attaching mid-run takes effect on the next :meth:`run` call.
        Recording never perturbs event order or timing — the recorder only
        appends to its ring buffer.
        """
        self._recorder = recorder

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending()}, "
            f"processed={self.events_processed})"
        )


def _noop() -> None:
    """Placeholder callback for recycled transient events."""
