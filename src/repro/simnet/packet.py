"""Packets — the unit of transfer on the emulated wire.

A :class:`Packet` models an IP datagram: addressing, a protocol tag used by
the receiving node to demultiplex (``"tcp"``, ``"udp"``…), a wire size in
bytes (headers included — this is what serialisation and queueing charge
for), and an opaque ``payload`` carrying the transport segment.

Packets are deliberately plain data: all behaviour lives in the links,
queues and protocol stacks that handle them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Packet", "IP_HEADER_BYTES", "DEFAULT_TTL"]

#: Nominal IPv4 header size charged on every packet.
IP_HEADER_BYTES = 20

#: Hop limit; generous for the small topologies the benchmarks use but
#: finite so that routing loops fail loudly instead of spinning forever.
DEFAULT_TTL = 64

_packet_ids = itertools.count(1)


@dataclass
class Packet:
    """One datagram on the wire.

    Attributes
    ----------
    src, dst:
        Node addresses (strings — the library uses node names as addresses).
    protocol:
        Demux key on the destination node (``"tcp"``, ``"udp"``, …).
    size_bytes:
        Total wire size including all headers; links serialise and queues
        account in these bytes.
    payload:
        The transport-layer segment (e.g. :class:`repro.tcp.segment.Segment`).
    flow_id:
        Optional label used by traces and per-flow statistics.
    created_at:
        Physical time the packet entered the network (stamped by the sender).
    """

    src: str
    dst: str
    protocol: str
    size_bytes: int
    payload: Any = None
    flow_id: Optional[str] = None
    ttl: int = DEFAULT_TTL
    created_at: float = 0.0
    #: ECN (RFC 3168): sender declares ECN capability; an AQM queue may
    #: then set Congestion Experienced instead of dropping.
    ecn_capable: bool = False
    ce: bool = False
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")

    @property
    def size_bits(self) -> float:
        """Wire size in bits (what serialisation time is computed from)."""
        return self.size_bytes * 8.0

    def hop(self) -> None:
        """Consume one TTL hop; raises when the packet has looped too long."""
        self.ttl -= 1
        if self.ttl <= 0:
            from .errors import RoutingError

            raise RoutingError(
                f"TTL expired for packet {self.uid} ({self.src} -> {self.dst}); "
                "routing loop?"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.uid} {self.src}->{self.dst} {self.protocol} "
            f"{self.size_bytes}B flow={self.flow_id})"
        )
