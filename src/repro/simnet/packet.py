"""Packets — the unit of transfer on the emulated wire.

A :class:`Packet` models an IP datagram: addressing, a protocol tag used by
the receiving node to demultiplex (``"tcp"``, ``"udp"``…), a wire size in
bytes (headers included — this is what serialisation and queueing charge
for), and an opaque ``payload`` carrying the transport segment.

Packets are deliberately plain data: all behaviour lives in the links,
queues and protocol stacks that handle them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional

__all__ = ["Packet", "PacketPool", "SHARED_POOL", "IP_HEADER_BYTES",
           "DEFAULT_TTL"]

#: Nominal IPv4 header size charged on every packet.
IP_HEADER_BYTES = 20

#: Hop limit; generous for the small topologies the benchmarks use but
#: finite so that routing loops fail loudly instead of spinning forever.
DEFAULT_TTL = 64

_packet_ids = itertools.count(1)


@dataclass(slots=True)
class Packet:
    """One datagram on the wire.

    Attributes
    ----------
    src, dst:
        Node addresses (strings — the library uses node names as addresses).
    protocol:
        Demux key on the destination node (``"tcp"``, ``"udp"``, …).
    size_bytes:
        Total wire size including all headers; links serialise and queues
        account in these bytes.
    payload:
        The transport-layer segment (e.g. :class:`repro.tcp.segment.Segment`).
    flow_id:
        Optional label used by traces and per-flow statistics.
    created_at:
        Physical time the packet entered the network (stamped by the sender).
    """

    src: str
    dst: str
    protocol: str
    size_bytes: int
    payload: Any = None
    flow_id: Optional[str] = None
    ttl: int = DEFAULT_TTL
    created_at: float = 0.0
    #: ECN (RFC 3168): sender declares ECN capability; an AQM queue may
    #: then set Congestion Experienced instead of dropping.
    ecn_capable: bool = False
    ce: bool = False
    #: Set by a Corrupt impairment stage; the receiving transport's
    #: checksum validation discards flagged packets.
    corrupted: bool = False
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")

    @property
    def size_bits(self) -> float:
        """Wire size in bits (what serialisation time is computed from)."""
        return self.size_bytes * 8.0

    def hop(self) -> None:
        """Consume one TTL hop; raises when the packet has looped too long."""
        self.ttl -= 1
        if self.ttl <= 0:
            from .errors import RoutingError

            raise RoutingError(
                f"TTL expired for packet {self.uid} ({self.src} -> {self.dst}); "
                "routing loop?"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.uid} {self.src}->{self.dst} {self.protocol} "
            f"{self.size_bytes}B flow={self.flow_id})"
        )


class PacketPool:
    """A freelist that recycles :class:`Packet` objects.

    High-rate datagram workloads (CBR cross traffic, tracker chatter)
    allocate and discard a packet per message; the pool lets the layer that
    *consumes* a packet hand the object back for the next send. Recycled
    packets always receive a **fresh** ``uid`` so traces and per-flow
    statistics still see distinct packets — only the object allocation is
    reused, never the identity.

    Release discipline: only release a packet once nothing holds a
    reference to it (taps copy fields, so after a protocol handler returns
    the packet is dead). Never release a packet whose ``payload`` is still
    in use unless the payload itself is owned elsewhere.
    """

    def __init__(self, max_size: int = 1024) -> None:
        self.max_size = max_size
        self._free: List[Packet] = []
        #: Allocations served from the freelist (observability).
        self.reused = 0

    def acquire(
        self,
        src: str,
        dst: str,
        protocol: str,
        size_bytes: int,
        payload: Any = None,
        flow_id: Optional[str] = None,
        ecn_capable: bool = False,
    ) -> Packet:
        """A packet with the given fields — recycled when one is free."""
        free = self._free
        if free:
            packet = free.pop()
            if size_bytes <= 0:
                raise ValueError(
                    f"packet size must be positive, got {size_bytes}"
                )
            packet.src = src
            packet.dst = dst
            packet.protocol = protocol
            packet.size_bytes = size_bytes
            packet.payload = payload
            packet.flow_id = flow_id
            packet.ttl = DEFAULT_TTL
            packet.created_at = 0.0
            packet.ecn_capable = ecn_capable
            packet.ce = False
            packet.corrupted = False
            packet.uid = next(_packet_ids)
            self.reused += 1
            return packet
        return Packet(
            src=src,
            dst=dst,
            protocol=protocol,
            size_bytes=size_bytes,
            payload=payload,
            flow_id=flow_id,
            ecn_capable=ecn_capable,
        )

    def release(self, packet: Packet) -> None:
        """Return a dead packet to the pool (drops the payload reference)."""
        if len(self._free) < self.max_size:
            packet.payload = None
            self._free.append(packet)


#: Process-wide pool used by layers with a clear consume point (UDP).
SHARED_POOL = PacketPool()
