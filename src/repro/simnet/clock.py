"""Clock abstraction — how components observe time and set timers.

Every time-sensitive component in the library (TCP retransmission timers,
application think times, measurement intervals) talks to a :class:`Clock`,
never to the simulator directly. This indirection is the hook where the
paper's contribution plugs in: an undilated component gets a
:class:`PhysicalClock`, a component inside a dilated VM gets a
:class:`repro.core.clock.DilatedClock`, and neither can tell the difference.

The contract:

* :meth:`Clock.now` returns *local* time — physical seconds for a physical
  clock, virtual (guest-perceived) seconds for a dilated one.
* :meth:`Clock.call_in` / :meth:`Clock.call_at` take deadlines expressed in
  local time and translate them to physical engine events.
"""

from __future__ import annotations

import abc
from typing import Callable

from .engine import Event, Simulator
from .errors import SchedulingError

__all__ = ["Clock", "PhysicalClock"]


class Clock(abc.ABC):
    """Interface through which components read time and schedule work."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current local time in seconds."""

    @abc.abstractmethod
    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` after ``delay`` local seconds; returns a cancellable handle."""

    @abc.abstractmethod
    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at absolute local time ``when``."""

    @abc.abstractmethod
    def to_physical(self, local_time: float) -> float:
        """Map a local timestamp to physical engine time."""

    @abc.abstractmethod
    def to_local(self, physical_time: float) -> float:
        """Map a physical engine timestamp to local time."""

    # The reschedule fast path: re-key an existing event instead of
    # cancelling it and allocating a new one. Subclasses whose call_in
    # arithmetic differs from ``to_physical(now() + delay)`` MUST override
    # :meth:`reschedule_in` with the exact same float operations as their
    # ``call_in`` — a one-ulp difference in a deadline changes event order
    # and breaks bit-exact determinism against the allocate-per-arm path.

    def reschedule_in(self, event: Event, delay: float) -> Event:
        """Re-arm ``event`` to fire ``delay`` local seconds from now.

        Equivalent to cancelling it and calling :meth:`call_in` with the
        same callback, including tie-breaking order, but without the Event
        and closure allocations. Works on fired and cancelled events too.
        """
        if delay < 0:
            raise SchedulingError(f"negative timer delay: {delay}")
        event.reschedule(self.to_physical(self.now() + delay))
        return event

    def reschedule_at(self, event: Event, when: float) -> Event:
        """Re-arm ``event`` to fire at absolute local time ``when``."""
        event.reschedule(self.to_physical(when))
        return event


class PhysicalClock(Clock):
    """The identity clock: local time *is* physical time.

    Used by undilated hosts, routers, and all baseline-configuration runs.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    def now(self) -> float:
        return self.sim.now

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        return self.sim.schedule(delay, fn)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        return self.sim.call_at(when, fn)

    def to_physical(self, local_time: float) -> float:
        return local_time

    def to_local(self, physical_time: float) -> float:
        return physical_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhysicalClock(now={self.sim.now:.6f})"
