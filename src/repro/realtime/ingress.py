"""Live traffic ingress/egress: a real UDP socket bridged into the simulation.

The gateway is the emulation-mode boundary: an OS-level datagram socket on
one side, a simulated host's :class:`~repro.udp.socket.UdpStack` on the
other. An external client sends real UDP to the gateway's address; the
gateway injects the datagram into the simulated network *at the current
virtual instant* (stamped exactly via ``DilatedClock.to_local_exact``),
addressed to a configured simulated destination. Replies emitted by the
simulation toward that client travel back out of the same OS socket.

Because the :class:`~repro.realtime.driver.RealtimeDriver` holds virtual
time against the wall clock, the client observes genuine emulated network
latency: a datagram that crosses a 40 ms-RTT simulated link comes back
~40 ms·TDF of wall time later, and the echoed
:class:`GatewayPayload.ingress_virtual` stamp yields the exact virtual-time
latency sample without any payload matching.

NAT-style demultiplexing: each distinct external ``(ip, port)`` gets its
own ephemeral simulated UDP socket on the gateway node, so replies
addressed to that simulated port map back to the right external client —
the same trick a home router plays, one hash lookup per datagram.

Everything here is single-threaded: the OS socket is non-blocking and
drained by :meth:`UdpGateway.poll`, which the driver calls between engine
batches (and every sleep quantum). No asyncio, no locks, no cross-thread
engine access.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..core.clock import DilatedClock
from ..udp.socket import Datagram, UdpSocket, UdpStack

__all__ = ["GatewayPayload", "UdpGateway", "UdpEchoServer"]

#: Largest real datagram accepted in one recvfrom.
_MAX_DATAGRAM = 65535


@dataclass
class GatewayPayload:
    """Payload carried by an injected datagram through the simulation.

    ``ingress_virtual`` is the exact (rational) virtual instant the bytes
    entered the simulated world; an application that echoes the payload
    back intact lets the gateway compute the per-datagram virtual-time
    latency on egress with zero bookkeeping.
    """

    data: bytes
    ingress_virtual: Fraction
    ingress_physical: float


@dataclass
class GatewayStats:
    """Datagram accounting across the real/simulated boundary."""

    ingress_datagrams: int = 0
    ingress_bytes: int = 0
    egress_datagrams: int = 0
    egress_bytes: int = 0
    #: Real-socket send failures (client gone, buffer full) — egress is
    #: best-effort, exactly like the UDP it carries.
    egress_errors: int = 0


class UdpGateway:
    """Bridge a real UDP socket to a simulated host's UDP stack.

    Parameters
    ----------
    stack:
        The simulated gateway node's UDP layer; injected datagrams are sent
        *from* this node, replies *to* it egress to the external client.
    clock:
        The gateway node's dilated clock — stamps each ingress datagram's
        exact virtual instant and prices egress latency samples.
    target_addr / target_port:
        Simulated destination every injected datagram is addressed to
        (e.g. the echo server's node and port).
    bind:
        Real ``(host, port)`` to listen on; port 0 picks a free one —
        read the result from :attr:`address`.
    """

    def __init__(
        self,
        stack: UdpStack,
        clock: DilatedClock,
        target_addr: str,
        target_port: int,
        bind: Tuple[str, int] = ("127.0.0.1", 0),
    ) -> None:
        self.stack = stack
        self.clock = clock
        self.sim = stack.node.sim
        self.target_addr = target_addr
        self.target_port = target_port
        self.stats = GatewayStats()
        #: Virtual-time RTT samples, one per egressed GatewayPayload echo.
        self.virtual_latencies_s: List[float] = []
        #: external (ip, port) → simulated ephemeral socket for that client.
        self._clients: Dict[Tuple[str, int], UdpSocket] = {}
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.setblocking(False)
        self._sock.bind(bind)
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        """The real ``(host, port)`` external clients send to."""
        return self._sock.getsockname()

    # -------------------------------------------------------------- ingress

    def poll(self) -> int:
        """Drain the OS socket, injecting each datagram into the simulation.

        Returns the number of datagrams injected (the driver accumulates
        this into ``stats.injected``). Called between engine batches, so
        injection happens at the current — wall-paced — virtual instant.
        """
        if self._closed:
            return 0
        injected = 0
        recvfrom = self._sock.recvfrom
        while True:
            try:
                data, addr = recvfrom(_MAX_DATAGRAM)
            except BlockingIOError:
                break
            except OSError:
                break
            self._inject(data, addr)
            injected += 1
        return injected

    def _inject(self, data: bytes, addr: Tuple[str, int]) -> None:
        sim_sock = self._clients.get(addr)
        if sim_sock is None:
            # First datagram from this client: allocate its NAT mapping.
            sim_sock = self.stack.bind(
                on_datagram=lambda _sock, dgram, _addr=addr: self._egress(
                    dgram, _addr
                )
            )
            self._clients[addr] = sim_sock
        payload = GatewayPayload(
            data=data,
            ingress_virtual=self.clock.to_local_exact(self.sim.now),
            ingress_physical=self.sim.now,
        )
        self.stats.ingress_datagrams += 1
        self.stats.ingress_bytes += len(data)
        sim_sock.sendto(self.target_addr, self.target_port, len(data), payload)

    # --------------------------------------------------------------- egress

    def _egress(self, datagram: Datagram, addr: Tuple[str, int]) -> None:
        payload = datagram.payload
        if isinstance(payload, GatewayPayload):
            data = payload.data
            latency = self.clock.to_local_exact(self.sim.now) - payload.ingress_virtual
            self.virtual_latencies_s.append(float(latency))
        elif isinstance(payload, (bytes, bytearray)):
            data = bytes(payload)
        else:
            # Simulated traffic with no byte representation: egress a
            # zero-filled datagram of the simulated size so the client
            # still sees the packet's timing and length.
            data = b"\x00" * datagram.size_bytes
        if self._closed:
            return
        try:
            self._sock.sendto(data, addr)
        except OSError:
            self.stats.egress_errors += 1
            return
        self.stats.egress_datagrams += 1
        self.stats.egress_bytes += len(data)

    def close(self) -> None:
        """Release the OS socket and every NAT mapping."""
        if self._closed:
            return
        self._closed = True
        for sim_sock in self._clients.values():
            sim_sock.close()
        self._clients.clear()
        self._sock.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UdpGateway({self.address!r} -> "
            f"{self.target_addr}:{self.target_port}, "
            f"in={self.stats.ingress_datagrams}, "
            f"out={self.stats.egress_datagrams})"
        )


class UdpEchoServer:
    """A simulated UDP echo service (RFC 862, inside the emulation).

    Echoes every datagram back to its source with the payload intact —
    which round-trips :class:`GatewayPayload` stamps and makes the gateway's
    virtual-latency sampling work end to end.
    """

    def __init__(self, stack: UdpStack, port: int = 7) -> None:
        self.socket = stack.bind(port=port, on_datagram=self._on_datagram)
        self.port = self.socket.port
        self.echoed = 0

    def _on_datagram(self, sock: UdpSocket, datagram: Datagram) -> None:
        self.echoed += 1
        sock.sendto(
            datagram.src_addr,
            datagram.src_port,
            datagram.size_bytes,
            datagram.payload,
        )

    def close(self) -> None:
        self.socket.close()
