"""Real-time emulation mode: run the dilated simulator against the wall clock.

The batch engine executes events as fast as the host allows; this package
binds event execution to *real* time instead, turning the reproduction into
a service external clients can exchange live traffic with. An event due at
virtual time ``t`` fires at wall-clock ``t * TDF + offset`` — which, because
the engine queue already stores physical (``t * TDF``) timestamps, reduces
to pacing the physical timeline 1:1 against a monotonic clock.

* :mod:`.driver` — the pacing loop: sleep-then-spin to each deadline,
  per-event slip measurement, deadline-miss accounting, run-to-catch-up /
  drop-to-now catch-up policies.
* :mod:`.ingress` — a live UDP gateway: external clients inject datagrams
  into a simulated host's stack and receive emitted packets back, with
  ingress timestamping through ``DilatedClock.to_local_exact``.
* :mod:`.scenario` — canned live topologies (the echo scenario the CLI and
  tests share).
* :mod:`.cli` — ``repro-realtime`` (serve / echo / loadgen).
"""

from .driver import CATCHUP_POLICIES, RealtimeConfig, RealtimeDriver, RealtimeStats
from .ingress import GatewayPayload, UdpEchoServer, UdpGateway

__all__ = [
    "CATCHUP_POLICIES",
    "RealtimeConfig",
    "RealtimeDriver",
    "RealtimeStats",
    "GatewayPayload",
    "UdpEchoServer",
    "UdpGateway",
]
