"""``repro-realtime`` — run the emulation as a live service and poke it.

Examples::

    # Terminal 1: a live echo service over a 10 Mbps / 40 ms virtual path,
    # dilated 10x (so the wall-clock RTT is ~400 ms):
    repro-realtime serve --bind 127.0.0.1:9099 --tdf 10

    # Terminal 2: a real UDP client, ping-style:
    repro-realtime echo 127.0.0.1:9099 --count 5

    # Or sustained load with a loss/rate report:
    repro-realtime loadgen 127.0.0.1:9099 --rate 200 --duration 5

``serve`` runs in-process and single-threaded: the real-time driver paces
the engine against the wall clock and polls the gateway socket between
event batches. ``echo`` and ``loadgen`` are plain OS-socket clients — they
need no simulator at all, which is the point: any UDP speaker can talk to
the emulated network.
"""

from __future__ import annotations

import argparse
import socket
import sys
import time
from typing import List, Optional, Tuple

from ..core.dilation import NetworkProfile
from .driver import CATCHUP_POLICIES, RealtimeConfig
from .scenario import build_echo_scenario

__all__ = ["main"]


def _parse_endpoint(value: str) -> Tuple[str, int]:
    """``host:port`` → tuple, with a CLI-friendly error."""
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise argparse.ArgumentTypeError(
            f"expected host:port, got {value!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad port in {value!r}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-realtime",
        description="Real-time emulation mode: serve a live dilated "
                    "network, or exercise one with a plain UDP client.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="run a live echo service over one dilated link",
    )
    serve.add_argument(
        "--bind", type=_parse_endpoint, default=("127.0.0.1", 9099),
        metavar="HOST:PORT",
        help="real UDP address the gateway listens on "
             "(default: 127.0.0.1:9099)",
    )
    serve.add_argument(
        "--bandwidth-mbps", type=float, default=10.0, metavar="MBPS",
        help="perceived link bandwidth (default: 10)",
    )
    serve.add_argument(
        "--rtt-ms", type=float, default=40.0, metavar="MS",
        help="perceived round-trip time (default: 40)",
    )
    serve.add_argument(
        "--tdf", type=int, default=1, metavar="K",
        help="time dilation factor; wall RTT = rtt-ms x K (default: 1)",
    )
    serve.add_argument(
        "--duration", type=float, default=0.0, metavar="S",
        help="virtual seconds to serve; 0 = until Ctrl-C (default: 0)",
    )
    serve.add_argument(
        "--spin-us", type=float, default=500.0, metavar="US",
        help="busy-spin threshold before each deadline (default: 500)",
    )
    serve.add_argument(
        "--miss-ms", type=float, default=5.0, metavar="MS",
        help="slip beyond this counts as a deadline miss (default: 5)",
    )
    serve.add_argument(
        "--catchup", choices=CATCHUP_POLICIES, default="run",
        help="policy when behind: run-to-catch-up or drop-to-now "
             "(default: run)",
    )

    echo = sub.add_parser(
        "echo", help="ping-style UDP client against a serve instance",
    )
    echo.add_argument("endpoint", type=_parse_endpoint, metavar="HOST:PORT")
    echo.add_argument(
        "--count", type=int, default=5, metavar="N",
        help="datagrams to send (default: 5)",
    )
    echo.add_argument(
        "--interval-ms", type=float, default=200.0, metavar="MS",
        help="gap between sends (default: 200)",
    )
    echo.add_argument(
        "--size", type=int, default=64, metavar="BYTES",
        help="datagram payload size (default: 64)",
    )
    echo.add_argument(
        "--timeout", type=float, default=5.0, metavar="S",
        help="per-reply wait (default: 5)",
    )

    loadgen = sub.add_parser(
        "loadgen", help="constant-rate UDP load against a serve instance",
    )
    loadgen.add_argument("endpoint", type=_parse_endpoint,
                         metavar="HOST:PORT")
    loadgen.add_argument(
        "--rate", type=float, default=100.0, metavar="PPS",
        help="datagrams per second (default: 100)",
    )
    loadgen.add_argument(
        "--duration", type=float, default=5.0, metavar="S",
        help="seconds to run (default: 5)",
    )
    loadgen.add_argument(
        "--size", type=int, default=64, metavar="BYTES",
        help="datagram payload size (default: 64)",
    )
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    perceived = NetworkProfile.from_rtt(
        args.bandwidth_mbps * 1e6, args.rtt_ms / 1000.0
    )
    config = RealtimeConfig(
        spin_threshold_s=args.spin_us / 1e6,
        miss_threshold_s=args.miss_ms / 1000.0,
        catchup=args.catchup,
    )
    scenario = build_echo_scenario(
        perceived=perceived, tdf=args.tdf, bind=args.bind, config=config,
    )
    host, port = scenario.gateway.address
    wall_rtt_ms = args.rtt_ms * args.tdf
    print(f"serving on {host}:{port} — {args.bandwidth_mbps:g} Mbps, "
          f"{args.rtt_ms:g} ms RTT, TDF {args.tdf} "
          f"(wall RTT ~{wall_rtt_ms:g} ms)")
    horizon = None
    if args.duration > 0:
        horizon = scenario.clock.to_physical(args.duration)
    try:
        scenario.driver.run(until=horizon)
    except KeyboardInterrupt:
        pass
    finally:
        stats = scenario.driver.stats
        gw = scenario.gateway.stats
        print(f"served {gw.ingress_datagrams} in / "
              f"{gw.egress_datagrams} out datagrams; "
              f"{stats.batches} batches, "
              f"{stats.deadline_misses} deadline misses "
              f"(max slip {stats.max_slip_s * 1000:.2f} ms, "
              f"busy {stats.busy_frac:.1%})")
        scenario.close()
    return 0


def _cmd_echo(args: argparse.Namespace) -> int:
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.settimeout(args.timeout)
    payload = bytes(args.size)
    rtts: List[float] = []
    lost = 0
    try:
        for seq in range(args.count):
            message = seq.to_bytes(4, "big") + payload[4:]
            start = time.monotonic()
            sock.sendto(message, args.endpoint)
            try:
                data, _ = sock.recvfrom(65535)
            except socket.timeout:
                lost += 1
                print(f"seq {seq}: timeout after {args.timeout:g} s")
            else:
                rtt_ms = (time.monotonic() - start) * 1000
                rtts.append(rtt_ms)
                print(f"seq {seq}: {len(data)} bytes, rtt {rtt_ms:.2f} ms")
            if seq + 1 < args.count:
                time.sleep(args.interval_ms / 1000.0)
    finally:
        sock.close()
    if rtts:
        print(f"{len(rtts)}/{args.count} replies: "
              f"rtt min/mean/max = {min(rtts):.2f}/"
              f"{sum(rtts) / len(rtts):.2f}/{max(rtts):.2f} ms")
    return 0 if lost == 0 and rtts else 1


def _cmd_loadgen(args: argparse.Namespace) -> int:
    if args.rate <= 0:
        print("--rate must be positive", file=sys.stderr)
        return 2
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.setblocking(False)
    payload = bytes(args.size)
    interval = 1.0 / args.rate
    sent = received = 0
    start = time.monotonic()
    deadline = start + args.duration
    next_send = start

    def drain() -> int:
        got = 0
        while True:
            try:
                sock.recvfrom(65535)
            except (BlockingIOError, socket.timeout):
                return got
            except OSError:
                return got
            got += 1

    try:
        now = start
        while now < deadline:
            if now >= next_send:
                sock.sendto(payload, args.endpoint)
                sent += 1
                next_send += interval
            received += drain()
            sleep_for = min(next_send, deadline) - time.monotonic()
            if sleep_for > 0:
                time.sleep(min(sleep_for, 0.01))
            now = time.monotonic()
        # Grace period for in-flight replies (one extra second of drain).
        grace = time.monotonic() + 1.0
        while time.monotonic() < grace:
            received += drain()
            time.sleep(0.01)
    finally:
        sock.close()
    elapsed = time.monotonic() - start
    loss = 1.0 - received / sent if sent else 0.0
    print(f"sent {sent} ({sent / args.duration:.1f}/s), "
          f"received {received} ({loss:.1%} loss) in {elapsed:.2f} s")
    return 0 if sent and received else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "serve": _cmd_serve,
        "echo": _cmd_echo,
        "loadgen": _cmd_loadgen,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
