"""The real-time engine driver: pace event execution against the wall clock.

The batch engine's contract is "execute events in timestamp order, as fast
as possible". This driver adds exactly one thing on top — *when* — and
deliberately nothing else: it never schedules, cancels, re-keys, or reorders
an event. Every event still executes through :meth:`Simulator.run`, so a
run under the driver is event-for-event identical to a batch run of the
same configuration (pinned by ``tests/realtime/test_batch_guard.py``); the
driver is an observer and a pacer, never a mutator.

Deadline arithmetic
-------------------
The engine queue stores *physical* timestamps, and a dilated component's
virtual deadline ``t`` is converted to physical ``t * TDF`` (piecewise, per
TDF epoch) before it is scheduled — see :mod:`repro.core.clock`. Binding
the physical timeline to the wall clock therefore realises the paper's
mapping ``wall = t * TDF + offset`` for free, runtime TDF changes included:
a ``set_tdf`` epoch re-anchors the virtual→physical line, but events keep
their physical firing times (exactly as pending hardware timers did in the
Xen implementation), so the driver needs no epoch bookkeeping at all.
``offset`` is anchored at the first :meth:`RealtimeDriver.run` call and
only ever moves under the ``drop`` catch-up policy.

Pacing loop
-----------
For the next due timestamp the driver sleeps in bounded quanta (polling any
attached ingress sources, which may land an *earlier* event — the loop
re-peeks after every quantum), then busy-spins the final
``spin_threshold_s`` so sub-millisecond deadlines are not at the mercy of
the OS sleep granularity. Lateness measured at execution is the event's
**slip**; slip beyond ``miss_threshold_s`` is a **deadline miss**, counted,
optionally traced (one ``realtime``/``slip`` flight-recorder event per
miss), and handed to the catch-up policy:

``run`` (run-to-catch-up, default)
    Deadlines stay anchored; the driver executes flat-out until the
    backlog drains. Total virtual time is preserved — the emulation is
    temporarily late but never loses schedule.
``drop`` (drop-to-now)
    The offset is re-anchored so the *current* event is on time; the lost
    wall time is never made up. Slip stops cascading — every subsequent
    event is judged against the new anchor — at the cost of the emulation
    finishing late by the sum of the drops.

Observability: per-run counters are published into ``sim.counters`` under
the ``realtime.`` namespace (``deadline_miss`` / ``max_slip_ms`` /
``busy_frac`` …), which :class:`repro.stats.engineprof.EngineProfiler`
splits into its own report section; richer detail lives on
:attr:`RealtimeDriver.stats`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..simnet.engine import Simulator
from ..simnet.errors import ConfigurationError, SchedulingError

__all__ = ["CATCHUP_POLICIES", "RealtimeConfig", "RealtimeStats", "RealtimeDriver"]

#: Catch-up policies when the driver falls behind the wall clock.
CATCHUP_POLICIES = ("run", "drop")

#: Longest single sleep the loop takes with no ingress sources attached,
#: so ``stop()`` from another thread is honoured promptly.
_MAX_SLEEP_S = 0.05


@dataclass(frozen=True)
class RealtimeConfig:
    """Knobs of the pacing loop.

    Parameters
    ----------
    spin_threshold_s:
        Busy-spin (instead of sleeping) once the deadline is this close.
        OS sleeps are only ~1 ms accurate; spinning the last stretch gives
        sub-millisecond deadlines their precision. 0 disables spinning.
    miss_threshold_s:
        Slip beyond this is a deadline miss (counted, traced, and handed
        to the catch-up policy). Slip *below* it still accumulates in the
        stats — the threshold classifies, it does not filter.
    catchup:
        ``"run"`` (run-to-catch-up) or ``"drop"`` (drop-to-now); see the
        module docstring.
    io_poll_interval_s:
        Sleep quantum while ingress sources are attached — the bound on
        how stale an external datagram can go unnoticed during a long
        inter-event gap.
    """

    spin_threshold_s: float = 0.0005
    miss_threshold_s: float = 0.005
    catchup: str = "run"
    io_poll_interval_s: float = 0.002

    def __post_init__(self) -> None:
        if self.catchup not in CATCHUP_POLICIES:
            raise ConfigurationError(
                f"unknown catchup policy {self.catchup!r}: "
                f"expected one of {CATCHUP_POLICIES}"
            )
        if self.spin_threshold_s < 0:
            raise ConfigurationError("spin_threshold_s must be >= 0")
        if self.miss_threshold_s <= 0:
            raise ConfigurationError("miss_threshold_s must be positive")
        if self.io_poll_interval_s <= 0:
            raise ConfigurationError("io_poll_interval_s must be positive")


@dataclass
class RealtimeStats:
    """Cumulative pacing accounting across every ``run()`` call."""

    #: Deadline batches executed (one per distinct due timestamp).
    batches: int = 0
    #: Engine events executed under the driver.
    events: int = 0
    #: Batches whose slip exceeded the miss threshold.
    deadline_misses: int = 0
    #: Worst slip observed, seconds.
    max_slip_s: float = 0.0
    #: Sum of all slips (for the mean), seconds.
    total_slip_s: float = 0.0
    #: Wall time spent inside ``sim.run`` executing events.
    busy_s: float = 0.0
    #: Wall time spent sleeping toward deadlines.
    sleep_s: float = 0.0
    #: Wall time spent busy-spinning the final approach.
    spin_s: float = 0.0
    #: Total wall time spent inside ``run()``.
    wall_s: float = 0.0
    #: Times the ``drop`` policy re-anchored the offset.
    catchup_drops: int = 0
    #: Datagrams injected by polled ingress sources.
    injected: int = 0

    @property
    def miss_rate(self) -> float:
        """Deadline misses per executed batch (0 when nothing ran)."""
        return self.deadline_misses / self.batches if self.batches else 0.0

    @property
    def busy_frac(self) -> float:
        """Fraction of wall time spent executing events (the headroom
        gauge: sustained pacing needs busy_frac well below 1)."""
        return self.busy_s / self.wall_s if self.wall_s else 0.0

    @property
    def mean_slip_s(self) -> float:
        return self.total_slip_s / self.batches if self.batches else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Picklable summary (rides experiment result dataclasses)."""
        return {
            "batches": self.batches,
            "events": self.events,
            "deadline_misses": self.deadline_misses,
            "miss_rate": self.miss_rate,
            "max_slip_s": self.max_slip_s,
            "mean_slip_s": self.mean_slip_s,
            "busy_s": self.busy_s,
            "sleep_s": self.sleep_s,
            "spin_s": self.spin_s,
            "wall_s": self.wall_s,
            "busy_frac": self.busy_frac,
            "catchup_drops": self.catchup_drops,
            "injected": self.injected,
        }


class RealtimeDriver:
    """Pace a :class:`Simulator` against a monotonic wall clock.

    Parameters
    ----------
    sim:
        The engine to pace. The driver owns *when* ``sim.run`` is called,
        never what it executes.
    config:
        Pacing knobs; defaults to :class:`RealtimeConfig()`.
    recorder:
        Optional :class:`~repro.trace.recorder.FlightRecorder`; when set,
        every deadline miss records one ``realtime``/``slip`` trace event
        (so ``repro-trace diff``/``summarize`` can localize where pacing
        broke down).
    name:
        Site label on slip trace events.
    """

    def __init__(
        self,
        sim: Simulator,
        config: Optional[RealtimeConfig] = None,
        recorder: Any = None,
        name: str = "realtime",
    ) -> None:
        self.sim = sim
        self.config = config if config is not None else RealtimeConfig()
        self.recorder = recorder
        self.name = name
        self.stats = RealtimeStats()
        #: wall = physical + offset; anchored at the first run() call.
        self._offset: Optional[float] = None
        self._sources: List[Any] = []
        self._stop = False
        self._running = False

    # ------------------------------------------------------------- io sources

    def add_source(self, source: Any) -> Any:
        """Attach an ingress source (``poll() -> int``, e.g. a
        :class:`~repro.realtime.ingress.UdpGateway`); polled every sleep
        quantum and while idle. Returns the source for chaining."""
        self._sources.append(source)
        return source

    def remove_source(self, source: Any) -> None:
        if source in self._sources:
            self._sources.remove(source)

    def _poll_sources(self) -> int:
        injected = 0
        for source in self._sources:
            injected += source.poll()
        if injected:
            self.stats.injected += injected
        return injected

    def _sync_idle_clock(self, horizon: Optional[float]) -> None:
        """Advance the engine clock through event-free idle time.

        ``wall = physical + offset`` must hold *between* events too: an
        ingress datagram arriving after an idle stretch has to be injected
        at the wall-equivalent virtual instant, not at the last executed
        event's timestamp — a reply scheduled from a stale ``now`` would
        be due in the past and egress immediately, erasing the emulated
        RTT for any client that connects late. The advance executes
        nothing: it is clamped to the run horizon and skipped entirely
        when a pending event is already due.
        """
        target = _time.monotonic() - self._offset
        if horizon is not None and target > horizon:
            target = horizon
        if target <= self.sim.now:
            return
        next_time = self.sim.peek_time()
        if next_time is not None and target >= next_time:
            return
        self.sim.run(until=target)

    # ------------------------------------------------------------ wall mapping

    def wall_deadline(self, physical_time: float) -> Optional[float]:
        """Monotonic-clock instant ``physical_time`` is due at (None until
        the first ``run()`` anchors the offset)."""
        if self._offset is None:
            return None
        return physical_time + self._offset

    # --------------------------------------------------------------- main loop

    def stop(self) -> None:
        """Ask the pacing loop to return after the current quantum.

        Safe to call from another thread (the loop re-checks a flag every
        bounded sleep); the engine itself is never interrupted mid-event.
        """
        self._stop = True
        self.sim.stop()

    def run(self, until: Optional[float] = None) -> RealtimeStats:
        """Execute due events at their wall deadlines.

        Parameters
        ----------
        until:
            Physical horizon, exactly as :meth:`Simulator.run` — but the
            driver also *holds the pace* through trailing idle time, so a
            warmup advance and the measurement advance that follows stay
            on one continuous schedule. ``None`` runs until the queue
            drains (or, with ingress sources attached, until
            :meth:`stop` — a live service has no natural horizon).

        Returns the cumulative :attr:`stats` for convenience.
        """
        if self._running:
            raise SchedulingError("realtime driver is already running")
        sim = self.sim
        config = self.config
        stats = self.stats
        monotonic = _time.monotonic
        perf = _time.perf_counter
        sleep = _time.sleep
        spin_threshold = config.spin_threshold_s
        quantum = config.io_poll_interval_s
        entry = monotonic()
        if self._offset is None:
            self._offset = entry - sim.now
        self._stop = False
        self._running = True
        try:
            while not self._stop:
                next_time = sim.peek_time()
                if next_time is not None and (
                    until is None or next_time <= until
                ):
                    target = next_time
                    is_event = True
                elif until is not None:
                    target = until
                    is_event = False
                elif self._sources:
                    # Live service, queue idle: wait for ingress traffic.
                    sleep(quantum)
                    stats.sleep_s += quantum
                    self._sync_idle_clock(until)
                    self._poll_sources()
                    continue
                else:
                    break
                deadline = target + self._offset
                remaining = deadline - monotonic()
                if remaining > spin_threshold:
                    # Coarse approach: bounded sleeps, re-evaluating after
                    # each (an ingress poll may land an earlier event, and
                    # stop() must not wait out a long gap).
                    chunk = min(remaining - spin_threshold, _MAX_SLEEP_S)
                    if self._sources:
                        chunk = min(chunk, quantum)
                    sleep(chunk)
                    stats.sleep_s += chunk
                    if self._sources:
                        self._sync_idle_clock(until)
                        self._poll_sources()
                    continue
                if remaining > 0:
                    # Final approach: spin to the deadline.
                    spin_start = monotonic()
                    while monotonic() < deadline:
                        pass
                    stats.spin_s += monotonic() - spin_start
                if not is_event:
                    # Horizon reached on schedule: advance the clock and
                    # hand control back without consuming any event.
                    sim.run(until=until)
                    break
                slip = monotonic() - deadline
                if slip < 0.0:
                    slip = 0.0
                stats.total_slip_s += slip
                if slip > stats.max_slip_s:
                    stats.max_slip_s = slip
                if slip > config.miss_threshold_s:
                    stats.deadline_misses += 1
                    if self.recorder is not None:
                        self.recorder.record_realtime(
                            "slip", target, site=self.name, value=slip,
                            reason=config.catchup,
                        )
                    if config.catchup == "drop":
                        # Drop-to-now: this event becomes "on time"; the
                        # lost wall time is abandoned rather than chased.
                        self._offset += slip
                        stats.catchup_drops += 1
                before = sim.events_processed
                busy_start = perf()
                sim.run(until=target)
                stats.busy_s += perf() - busy_start
                stats.events += sim.events_processed - before
                stats.batches += 1
        finally:
            self._running = False
            stats.wall_s += monotonic() - entry
            self._publish_counters()
        return stats

    # ------------------------------------------------------------- observability

    def _publish_counters(self) -> None:
        """Surface pacing health in the engine's counter namespace.

        Overwrites (rather than accumulates): the stats are already
        cumulative across ``run()`` calls, and one driver paces one
        engine. ``max_slip_ms`` / ``busy_frac`` are gauges, not counts —
        they ride the same dict for engineprof's report section.
        """
        stats = self.stats
        counters = self.sim.counters
        counters["realtime.batches"] = stats.batches
        counters["realtime.events"] = stats.events
        counters["realtime.deadline_miss"] = stats.deadline_misses
        counters["realtime.max_slip_ms"] = round(stats.max_slip_s * 1000, 3)
        counters["realtime.busy_frac"] = round(stats.busy_frac, 4)
        counters["realtime.catchup_drops"] = stats.catchup_drops
        counters["realtime.injected"] = stats.injected

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RealtimeDriver({self.name!r}, batches={self.stats.batches}, "
            f"misses={self.stats.deadline_misses}, "
            f"max_slip={self.stats.max_slip_s * 1000:.3f} ms)"
        )
