"""Canned live topologies shared by the ``repro-realtime`` CLI and tests.

The echo scenario is the smallest end-to-end demonstration of the
real-time mode: one dilated link, a simulated echo server on the far side,
and a live UDP gateway on the near side. An external client that sends a
datagram to the gateway sees it come back after the simulated round trip —
``RTT_virtual x TDF`` of wall time — with the exact virtual-time latency
recoverable from the gateway's samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.clock import DilatedClock
from ..core.dilation import NetworkProfile, physical_for
from ..core.tdf import TdfLike, as_tdf
from ..core.vmm import Hypervisor
from ..simnet.queues import DropTailQueue
from ..simnet.topology import Network
from .driver import RealtimeConfig, RealtimeDriver
from .ingress import UdpEchoServer, UdpGateway

__all__ = ["EchoScenario", "build_echo_scenario"]

#: Default perceived path: 10 Mbps, 40 ms RTT — humane for a live demo
#: (a datagram echoes in ~40 ms x TDF of wall time).
DEFAULT_PROFILE = NetworkProfile.from_rtt(10e6, 0.040)


@dataclass
class EchoScenario:
    """Everything a live echo service needs, wired and ready to run."""

    net: Network
    vmm: Hypervisor
    driver: RealtimeDriver
    gateway: UdpGateway
    echo: UdpEchoServer
    clock: DilatedClock
    perceived: NetworkProfile
    tdf: TdfLike

    def close(self) -> None:
        """Release the gateway's OS socket (the simulation needs no teardown)."""
        self.gateway.close()


def build_echo_scenario(
    perceived: NetworkProfile = DEFAULT_PROFILE,
    tdf: TdfLike = 1,
    bind: Tuple[str, int] = ("127.0.0.1", 0),
    echo_port: int = 7,
    config: Optional[RealtimeConfig] = None,
    recorder=None,
) -> EchoScenario:
    """Build gateway ⇄ echo-server over one dilated link, driver attached.

    The returned scenario is idle: call ``scenario.driver.run(until=...)``
    (or ``run(None)`` for an open-ended service, stopped via
    ``driver.stop()``) to start pacing. The gateway's live address is
    ``scenario.gateway.address``.
    """
    from ..udp.socket import UdpStack

    factor = as_tdf(tdf)
    physical = physical_for(perceived, factor)
    net = Network()
    gw = net.add_node("gw")
    srv = net.add_node("srv")
    net.add_link(
        gw, srv, physical.bandwidth_bps, physical.delay_s,
        queue_factory=lambda: DropTailQueue(capacity_packets=64),
    )
    net.finalize()
    vmm = Hypervisor(net.sim)
    gw_vm = vmm.create_vm("gw-vm", tdf=factor, cpu_share=0.5, node=gw)
    vmm.create_vm("srv-vm", tdf=factor, cpu_share=0.5, node=srv)
    echo = UdpEchoServer(UdpStack(srv), port=echo_port)
    gateway = UdpGateway(
        UdpStack(gw), gw_vm.clock, target_addr="srv",
        target_port=echo.port, bind=bind,
    )
    driver = RealtimeDriver(net.sim, config=config, recorder=recorder)
    driver.add_source(gateway)
    return EchoScenario(
        net=net, vmm=vmm, driver=driver, gateway=gateway, echo=echo,
        clock=gw_vm.clock, perceived=perceived, tdf=factor,
    )
