"""Stream buffers: counted bytes plus application message markers.

The emulator does not haul literal payload bytes through the network —
segments carry *lengths*. What applications actually exchange are Python
objects ("messages") pinned to stream offsets:

* the sender writes ``send(n_bytes, message=obj)``; the send buffer records
  that ``obj`` completes at stream offset ``written_so_far + n_bytes``;
* markers ride on the segment that carries the byte completing them
  (retransmissions re-attach them, so losses cannot lose a message);
* the receiver's reassembler delivers ``obj`` to the application exactly
  when the in-order stream passes that offset.

This gives byte-accurate TCP dynamics (windows, MSS boundaries, partial
delivery) with O(messages) memory instead of O(bytes).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..simnet.errors import ProtocolError

__all__ = ["SendBuffer", "ReceiveAssembler"]


class SendBuffer:
    """Outbound stream: how many bytes are queued and which messages ride on them."""

    def __init__(self) -> None:
        #: Total bytes the application has written so far (stream length).
        self.stream_length = 0
        #: Markers not yet acknowledged: sorted (offset_end, message).
        self._markers: List[Tuple[int, Any]] = []

    def write(self, n_bytes: int, message: Any = None) -> None:
        """Append ``n_bytes`` to the stream, optionally tagged with a message."""
        if n_bytes <= 0:
            raise ProtocolError(f"write size must be positive: {n_bytes}")
        self.stream_length += n_bytes
        if message is not None:
            self._markers.append((self.stream_length, message))

    def available_from(self, offset: int) -> int:
        """Unsent bytes at and beyond ``offset``."""
        return max(0, self.stream_length - offset)

    def markers_in(self, start: int, end: int) -> List[Tuple[int, Any]]:
        """Markers whose completing byte lies in ``(start, end]``.

        Called for every (re)transmission covering that range, so a lost
        segment's markers are re-attached to the retransmission.
        """
        return [(off, msg) for off, msg in self._markers if start < off <= end]

    def release_through(self, offset: int) -> None:
        """Drop markers fully acknowledged at stream ``offset``."""
        self._markers = [(off, msg) for off, msg in self._markers if off > offset]

    @property
    def pending_markers(self) -> int:
        """Markers not yet acknowledged (observability)."""
        return len(self._markers)


class ReceiveAssembler:
    """Inbound stream reassembly: cumulative delivery plus out-of-order holding.

    Tracks byte ranges only. ``rcv_nxt`` is the next in-order byte expected.
    Out-of-order ranges are merged into a sorted list of disjoint
    ``(start, end)`` intervals; message markers wait in a dict keyed by
    their completing offset until the stream passes them.
    """

    def __init__(
        self,
        buffer_size: int,
        on_message: Optional[Callable[[Any], None]] = None,
        on_data: Optional[Callable[[int], None]] = None,
    ) -> None:
        if buffer_size <= 0:
            raise ProtocolError("receive buffer must be positive")
        self.buffer_size = buffer_size
        self.rcv_nxt = 0
        self.bytes_delivered = 0
        self.on_message = on_message
        self.on_data = on_data
        self._ooo: List[Tuple[int, int]] = []  # disjoint, sorted [start, end)
        #: Same intervals ordered most-recently-touched first (for SACK).
        self._recent: List[Tuple[int, int]] = []
        self._pending_messages: Dict[int, List[Any]] = {}
        #: Highest marker offset already handed to the application. Marker
        #: delivery is in offset order, so any arriving marker at or below
        #: this is a duplicate from a retransmission and must be ignored.
        self._max_delivered_marker = 0

    # ----------------------------------------------------------------- window

    @property
    def out_of_order_bytes(self) -> int:
        """Bytes parked beyond the in-order point."""
        return sum(end - start for start, end in self._ooo)

    def window(self) -> int:
        """Advertised receive window.

        Applications in this emulator consume delivered data as soon as it
        becomes in-order, so the in-order buffer is always empty and the
        full buffer is advertised. Out-of-order bytes need no accounting:
        the sender cannot legally place data more than one window beyond
        ``snd_una``, so they are bounded by this same value. A constant
        window also keeps the RFC 5681 duplicate-ACK test ("window
        unchanged") meaningful during loss recovery.
        """
        return self.buffer_size

    # ---------------------------------------------------------------- arrival

    def accept(
        self, seq: int, length: int, messages: List[Tuple[int, Any]]
    ) -> bool:
        """Process an arriving data range.

        Returns ``True`` if the segment advanced ``rcv_nxt`` (in-order
        progress), ``False`` for duplicates and out-of-order arrivals — the
        socket uses this to decide between a normal and an immediate
        duplicate ACK.
        """
        for offset, message in messages:
            if offset <= self._max_delivered_marker:
                continue  # duplicate copy from a retransmission
            pending = self._pending_messages.setdefault(offset, [])
            if not pending:
                pending.append(message)
        end = seq + length
        if length == 0:
            return False
        if end <= self.rcv_nxt:
            self._flush_stale_messages()
            return False  # pure duplicate
        start = max(seq, self.rcv_nxt)
        if start > self.rcv_nxt:
            self._insert_ooo(start, end)
            return False
        # In-order (possibly overlapping) data: advance and absorb any
        # out-of-order ranges that are now contiguous.
        self._advance(end)
        return True

    def _advance(self, end: int) -> None:
        new_next = max(self.rcv_nxt, end)
        merged = True
        while merged:
            merged = False
            for index, (start, stop) in enumerate(self._ooo):
                if start <= new_next:
                    new_next = max(new_next, stop)
                    del self._ooo[index]
                    merged = True
                    break
        survivors = set(self._ooo)
        self._recent = [iv for iv in self._recent if iv in survivors]
        delivered = new_next - self.rcv_nxt
        self.rcv_nxt = new_next
        self.bytes_delivered += delivered
        if delivered > 0 and self.on_data is not None:
            self.on_data(delivered)
        self._deliver_messages()

    def _insert_ooo(self, start: int, end: int) -> None:
        if end - start > self.window() + self.out_of_order_bytes:
            # Beyond what we advertised; a real stack would have trimmed at
            # the window edge. Trim here too.
            end = start + max(0, self.window())
            if end <= start:
                return
        intervals = self._ooo + [(start, end)]
        intervals.sort()
        merged: List[Tuple[int, int]] = []
        for lo, hi in intervals:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        self._ooo = merged
        # Refresh recency: the interval now containing the new data moves to
        # the front (RFC 2018 requires the most recent block first, which is
        # how the sender learns the full extent of a wide loss burst).
        containing = next(iv for iv in merged if iv[0] <= start and end <= iv[1])
        merged_set = set(merged)
        self._recent = [containing] + [
            iv for iv in self._recent if iv in merged_set and iv != containing
        ]

    def sack_blocks(self, limit: int = 4):
        """Out-of-order ranges to advertise as SACK blocks (stream offsets).

        At most ``limit`` blocks fit in the TCP option space; per RFC 2018
        the block containing the most recently received data comes first,
        then the next most recent — so over successive ACKs the sender
        hears about every held range.
        """
        return list(self._recent[:limit])

    # --------------------------------------------------------------- messages

    def _deliver_messages(self) -> None:
        if self.on_message is None:
            self._drop_delivered_message_keys()
            return
        ready = sorted(off for off in self._pending_messages if off <= self.rcv_nxt)
        for offset in ready:
            self._max_delivered_marker = max(self._max_delivered_marker, offset)
            for message in self._pending_messages.pop(offset):
                self.on_message(message)

    def _flush_stale_messages(self) -> None:
        # A retransmission may carry markers for data we already passed.
        self._deliver_messages()

    def _drop_delivered_message_keys(self) -> None:
        for offset in [off for off in self._pending_messages if off <= self.rcv_nxt]:
            self._max_delivered_marker = max(self._max_delivered_marker, offset)
            del self._pending_messages[offset]
