"""Tunable parameters of the TCP implementation.

Defaults follow the mid-2000s Linux stack the paper's guests ran, except
where an RFC pins the value. Every duration here is interpreted in the
owning host's **local clock** — virtual seconds inside a dilated guest —
which is precisely how dilation makes a guest's TCP behave as if the
network were faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simnet.errors import ConfigurationError

__all__ = ["TcpOptions"]


@dataclass
class TcpOptions:
    """Per-connection TCP configuration.

    Attributes
    ----------
    mss:
        Maximum segment payload, bytes (1460 = Ethernet MTU minus headers).
    receive_buffer:
        Receive window limit, bytes. Sized generously by default so the
        micro-benchmarks are congestion- not flow-control-limited; the
        paper's guests used window scaling to the same effect.
    flavor:
        Congestion-control algorithm: ``"tahoe"``, ``"reno"``, ``"newreno"``
        or ``"cubic"``.
    delayed_ack_timeout:
        Maximum time a pure ACK may be withheld (RFC 1122 allows 500 ms;
        Linux uses ~40 ms quick-ack behaviour for bulk flows).
    ack_every:
        Send an ACK after this many full segments arrive (RFC 5681: 2).
    min_rto / initial_rto / max_rto:
        RFC 6298 bounds. Linux lowers min RTO to 200 ms; we follow Linux.
    msl:
        Maximum segment lifetime for TIME_WAIT (2*MSL linger). Kept small
        by default so experiments do not spend ages tearing down.
    nagle:
        RFC 896 coalescing of sub-MSS writes. Off by default: the bulk and
        request/response workloads here always write full messages, and
        determinism is easier to reason about without it.
    sack:
        Selective acknowledgements (RFC 2018) with scoreboard-driven loss
        recovery (RFC 6675-style). On by default — the paper's Linux 2.6
        guests ran with SACK, and without it a large burst loss is repaired
        at one hole per RTT, which dominates high-BDP experiments.
    ecn:
        Explicit Congestion Notification (RFC 3168). When on, data packets
        are sent ECN-capable; an AQM queue in marking mode sets CE instead
        of dropping, the receiver echoes ECE, and the sender halves its
        window once per RTT without any retransmission. Off by default
        (as in the paper's era); both endpoints must enable it.
    timestamps:
        RFC 7323 timestamps. Gives the RTT estimator one sample per ACK
        (instead of one per flight via the single-timed-segment method)
        and makes Karn's ambiguity moot. Off by default so the default
        configuration stays bit-comparable with earlier results; the
        paper's guests (Linux 2.6) had it on. Inside a dilated guest the
        stamped values are virtual time — a nice observable of dilation.
    """

    mss: int = 1460
    receive_buffer: int = 1 << 20
    flavor: str = "newreno"
    sack: bool = True
    ecn: bool = False
    timestamps: bool = False
    delayed_ack_timeout: float = 0.040
    ack_every: int = 2
    min_rto: float = 0.200
    initial_rto: float = 1.0
    max_rto: float = 60.0
    msl: float = 1.0
    nagle: bool = False

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise ConfigurationError(f"mss must be positive: {self.mss}")
        if self.receive_buffer < self.mss:
            raise ConfigurationError("receive buffer must hold at least one MSS")
        if self.flavor not in ("tahoe", "reno", "newreno", "cubic", "vegas"):
            raise ConfigurationError(f"unknown TCP flavor {self.flavor!r}")
        if self.ack_every < 1:
            raise ConfigurationError("ack_every must be at least 1")
        if not 0 < self.min_rto <= self.initial_rto <= self.max_rto:
            raise ConfigurationError(
                "need 0 < min_rto <= initial_rto <= max_rto "
                f"(got {self.min_rto}, {self.initial_rto}, {self.max_rto})"
            )
        if self.delayed_ack_timeout < 0:
            raise ConfigurationError("delayed_ack_timeout must be non-negative")
        if self.msl <= 0:
            raise ConfigurationError("msl must be positive")
