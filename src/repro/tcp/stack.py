"""Per-node TCP layer: port space, listeners, and connection demux.

One :class:`TcpStack` is registered on a node as its ``"tcp"`` protocol
handler. It owns the port namespace, accepts SYNs on listening ports by
spawning server sockets, routes arriving segments to the right connection
by ``(local_port, remote_addr, remote_port)``, and answers strays with RST
— the same responsibilities the kernel's TCP layer has above the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..simnet.errors import AddressError
from ..simnet.node import Node
from ..simnet.packet import IP_HEADER_BYTES, Packet
from .options import TcpOptions
from .segment import Segment
from .socket import LISTEN, TcpSocket

__all__ = ["TcpStack", "Listener"]

#: First ephemeral port (IANA suggested range).
EPHEMERAL_BASE = 49152

ConnectionKey = Tuple[int, str, int]


@dataclass
class Listener:
    """A passive open: spawns a server socket per incoming SYN."""

    port: int
    on_accept: Callable[[TcpSocket], None]
    options: Optional[TcpOptions] = None
    socket_callbacks: Optional[Dict[str, Any]] = None


class TcpStack:
    """The TCP protocol handler for one node."""

    def __init__(self, node: Node, default_options: Optional[TcpOptions] = None) -> None:
        self.node = node
        self.default_options = default_options if default_options is not None else TcpOptions()
        self._connections: Dict[ConnectionKey, TcpSocket] = {}
        self._listeners: Dict[int, Listener] = {}
        #: Local-port refcounts over ``_connections`` — ``allocate_port``
        #: must answer "is this port free?" in O(1); scanning the demux
        #: table made every active open O(connections), which is quadratic
        #: across a swarm-sized node's connection setup storm.
        self._ports_in_use: Dict[int, int] = {}
        self._next_ephemeral = EPHEMERAL_BASE
        node.register_protocol("tcp", self)
        #: Stray segments answered with RST (observability).
        self.resets_sent = 0
        #: Segments discarded for failing checksum validation (packets a
        #: Corrupt impairment stage flagged in flight).
        self.checksum_drops = 0

    # ------------------------------------------------------------------- ports

    def allocate_port(self) -> int:
        """Hand out the next free ephemeral port."""
        for _ in range(65536 - EPHEMERAL_BASE):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 65536:
                self._next_ephemeral = EPHEMERAL_BASE
            if port not in self._listeners and port not in self._ports_in_use:
                return port
        raise AddressError(f"{self.node.name}: ephemeral ports exhausted")

    def _bind_connection(self, key: ConnectionKey, sock: TcpSocket) -> None:
        self._connections[key] = sock
        self._ports_in_use[key[0]] = self._ports_in_use.get(key[0], 0) + 1

    def _unbind_connection(self, key: ConnectionKey) -> None:
        if self._connections.pop(key, None) is None:
            return
        count = self._ports_in_use.get(key[0], 0) - 1
        if count <= 0:
            self._ports_in_use.pop(key[0], None)
        else:
            self._ports_in_use[key[0]] = count

    # ----------------------------------------------------------------- opening

    def listen(
        self,
        port: int,
        on_accept: Callable[[TcpSocket], None],
        options: Optional[TcpOptions] = None,
        **socket_callbacks: Any,
    ) -> Listener:
        """Passive open on ``port``.

        ``socket_callbacks`` (``on_data=…``, ``on_message=…``, ``on_close=…``,
        ``on_error=…``) are installed on every accepted socket.
        """
        if port in self._listeners:
            raise AddressError(f"{self.node.name}: port {port} already listening")
        listener = Listener(port, on_accept, options, socket_callbacks or None)
        self._listeners[port] = listener
        return listener

    def stop_listening(self, port: int) -> None:
        """Close a listener; established connections are unaffected."""
        self._listeners.pop(port, None)

    def connect(
        self,
        remote_addr: str,
        remote_port: int,
        local_port: Optional[int] = None,
        options: Optional[TcpOptions] = None,
        **callbacks: Any,
    ) -> TcpSocket:
        """Active open; returns the socket immediately (handshake proceeds
        in simulated time; use ``on_connected``)."""
        port = local_port if local_port is not None else self.allocate_port()
        key = (port, remote_addr, remote_port)
        if key in self._connections:
            raise AddressError(f"{self.node.name}: connection {key} already exists")
        sock = TcpSocket(
            self,
            local_port=port,
            remote_addr=remote_addr,
            remote_port=remote_port,
            options=options if options is not None else self.default_options,
            **callbacks,
        )
        self._bind_connection(key, sock)
        sock.open_active()
        return sock

    # -------------------------------------------------------------- demultiplex

    def deliver(self, packet: Packet) -> None:
        """Protocol-handler entry point from the node."""
        if packet.corrupted:
            # Checksum failure: silently discard, exactly like a kernel.
            # The sender only learns via dupacks or an RTO.
            self.checksum_drops += 1
            counters = self.node.sim.counters
            counters["drop.checksum"] = counters.get("drop.checksum", 0) + 1
            return
        segment = packet.payload
        if not isinstance(segment, Segment):
            raise AddressError(f"non-TCP payload delivered to TcpStack: {packet!r}")
        key = (segment.dst_port, packet.src, segment.src_port)
        sock = self._connections.get(key)
        if sock is not None:
            sock.handle_segment(segment, ce=packet.ce)
            return
        listener = self._listeners.get(segment.dst_port)
        if listener is not None and segment.syn and not segment.ack_flag:
            self._accept(listener, packet, segment)
            return
        if not segment.rst:
            self._send_reset(packet, segment)

    def _accept(self, listener: Listener, packet: Packet, segment: Segment) -> None:
        callbacks = dict(listener.socket_callbacks or {})
        sock = TcpSocket(
            self,
            local_port=listener.port,
            remote_addr=packet.src,
            remote_port=segment.src_port,
            options=listener.options if listener.options is not None else self.default_options,
            flow_id=packet.flow_id,
            **callbacks,
        )
        sock._accept_callback = listener.on_accept
        key = (listener.port, packet.src, segment.src_port)
        self._bind_connection(key, sock)
        sock.open_passive(segment)

    def _send_reset(self, packet: Packet, segment: Segment) -> None:
        self.resets_sent += 1
        reset = Segment(
            src_port=segment.dst_port,
            dst_port=segment.src_port,
            seq=segment.ack if segment.ack_flag else 0,
            ack=segment.end_seq,
            ack_flag=True,
            rst=True,
            window=0,
        )
        self.node.send(
            Packet(
                src=self.node.name,
                dst=packet.src,
                protocol="tcp",
                size_bytes=IP_HEADER_BYTES + reset.wire_bytes,
                payload=reset,
            )
        )

    # ------------------------------------------------------------------ cleanup

    def forget(self, sock: TcpSocket) -> None:
        """Remove a closed socket from the demux table."""
        key = (sock.local_port, sock.remote_addr, sock.remote_port)
        self._unbind_connection(key)

    def connection_count(self) -> int:
        """Live connections (any state but CLOSED)."""
        return len(self._connections)

    def connection(
        self, local_port: int, remote_addr: str, remote_port: int
    ) -> Optional[TcpSocket]:
        """Look up one live connection by its demux key (or None).

        The fluid fast path uses this to find the receiving socket of a
        flow whose sender it is about to advance analytically.
        """
        return self._connections.get((local_port, remote_addr, remote_port))
