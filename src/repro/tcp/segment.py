"""TCP segments.

Sequence numbers count bytes from an initial value of zero per connection
and are unbounded Python integers, so wraparound never occurs; SYN and FIN
each consume one sequence unit, exactly as in real TCP. Application data is
carried as a *byte count* plus optional message markers (see
:mod:`repro.tcp.buffers`): the emulator transfers stream lengths and
delivers application objects at the right stream offsets, without hauling
real payload bytes through memory.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Tuple

__all__ = ["Segment", "TCP_HEADER_BYTES"]

#: Nominal TCP header size (no options), charged on every segment.
TCP_HEADER_BYTES = 20

_segment_ids = itertools.count(1)


@dataclass
class Segment:
    """One TCP segment.

    Attributes
    ----------
    seq:
        Sequence number of the first byte (or of the SYN/FIN flag itself).
    ack:
        Cumulative acknowledgement — next byte expected by the sender of
        this segment. Only meaningful when ``ack_flag`` is set.
    window:
        Receiver's advertised window in bytes.
    length:
        Payload bytes carried (0 for pure ACKs and control segments).
    messages:
        Application message markers riding on this payload: a list of
        ``(stream_offset_end, message)`` pairs, delivered to the application
        once the receive stream passes each offset.
    """

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    length: int = 0
    syn: bool = False
    fin: bool = False
    rst: bool = False
    ack_flag: bool = False
    window: int = 65535
    messages: List[Tuple[int, Any]] = field(default_factory=list)
    #: SACK option blocks: (start_seq, end_seq) ranges the receiver holds
    #: beyond the cumulative ACK (RFC 2018; at most 4 blocks fit).
    sack: Tuple[Tuple[int, int], ...] = ()
    #: ECN flags (RFC 3168): receiver echoes congestion (ECE) until the
    #: sender confirms the window reduction (CWR).
    ece: bool = False
    cwr: bool = False
    #: Timestamps option (RFC 7323): sender's clock at transmission and
    #: the echo of the peer's most recent timestamp. ``None`` when the
    #: connection does not use timestamps.
    ts_val: "float | None" = None
    ts_ecr: "float | None" = None
    uid: int = field(default_factory=lambda: next(_segment_ids))

    @property
    def seq_space(self) -> int:
        """Sequence space consumed: payload plus one for SYN and for FIN."""
        return self.length + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def end_seq(self) -> int:
        """Sequence number just past this segment."""
        return self.seq + self.seq_space

    @property
    def wire_bytes(self) -> int:
        """Bytes this segment occupies inside the IP payload.

        SACK blocks are charged as the real option is (2 + 8 per block);
        the timestamps option costs its canonical 12 bytes (10 + padding).
        """
        option_bytes = 2 + 8 * len(self.sack) if self.sack else 0
        if self.ts_val is not None:
            option_bytes += 12
        return TCP_HEADER_BYTES + option_bytes + self.length

    def flags(self) -> str:
        """Human-readable flag string, tcpdump style."""
        parts = []
        if self.syn:
            parts.append("S")
        if self.fin:
            parts.append("F")
        if self.rst:
            parts.append("R")
        if self.ack_flag:
            parts.append(".")
        return "".join(parts) or "-"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment({self.src_port}>{self.dst_port} [{self.flags()}] "
            f"seq={self.seq} ack={self.ack} len={self.length} win={self.window})"
        )
