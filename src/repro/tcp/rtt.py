"""Round-trip-time estimation and retransmission timeout (RFC 6298).

Implements the Jacobson/Karels estimator with Karn's algorithm (samples are
never taken from retransmitted segments — the socket enforces that by only
timing unretransmitted ones) and exponential RTO backoff.

All times are in the connection's local clock. Inside a dilated guest the
estimator therefore measures *virtual* RTTs — which is the entire trick: a
TDF-10 guest over a 100 ms physical path measures a 10 ms RTT and paces its
window growth accordingly.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["RttEstimator"]

# RFC 6298 constants.
_ALPHA = 1 / 8
_BETA = 1 / 4
_K = 4


class RttEstimator:
    """SRTT/RTTVAR tracking plus RTO computation with backoff."""

    def __init__(
        self,
        initial_rto: float = 1.0,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        granularity: float = 0.0,
    ) -> None:
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.granularity = granularity
        # Clamp into [min_rto, max_rto] up front: a super-max initial RTO
        # would make backoff()'s multiplier cap collapse to 1.0 (backoff
        # permanently disabled) until the first RTT sample re-derived _rto.
        # reset() restores the *clamped* value so the invariant survives
        # connection restarts too.
        self._initial_rto = min(max(initial_rto, min_rto), max_rto)
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._rto = self._initial_rto
        self._backoff = 1
        self.samples = 0

    @property
    def rto(self) -> float:
        """Current retransmission timeout, backoff included."""
        return min(self._rto * self._backoff, self.max_rto)

    def observe(self, sample: float) -> None:
        """Feed one RTT measurement (local seconds, non-retransmitted data).

        A successful measurement also clears any timeout backoff, per
        RFC 6298 §5.7.
        """
        if sample < 0:
            raise ValueError(f"negative RTT sample: {sample}")
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            assert self.rttvar is not None
            self.rttvar = (1 - _BETA) * self.rttvar + _BETA * abs(self.srtt - sample)
            self.srtt = (1 - _ALPHA) * self.srtt + _ALPHA * sample
        self.samples += 1
        self._backoff = 1
        raw = self.srtt + max(self.granularity, _K * self.rttvar)
        self._rto = min(max(raw, self.min_rto), self.max_rto)

    def backoff(self) -> None:
        """Double the effective RTO after a retransmission timeout.

        The multiplier itself is clamped so ``_rto * _backoff`` never
        exceeds ``max_rto``: an unchecked multiplier (the old ``1 << 16``
        guard) only *looked* bounded because the ``rto`` property min'd the
        product, but it left a stale super-max product behind that any
        future consumer of the raw state could trip over.
        """
        cap = max(1.0, self.max_rto / self._rto) if self._rto > 0 else 1.0
        self._backoff = min(self._backoff * 2, cap)

    def reset(self) -> None:
        """Forget all history (used on connection restart)."""
        self.srtt = None
        self.rttvar = None
        self._rto = self._initial_rto
        self._backoff = 1
        self.samples = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RttEstimator(srtt={self.srtt}, rttvar={self.rttvar}, "
            f"rto={self.rto:.3f})"
        )
