"""Congestion-control algorithms.

The loss-recovery *state machine* (dup-ACK counting, fast retransmit,
partial ACKs) lives in the socket; the algorithms here own the two numbers
that state machine consults — ``cwnd`` and ``ssthresh``, in bytes — and
adjust them at the socket's hooks.

Provided flavors:

* :class:`Tahoe` — slow start + congestion avoidance + fast retransmit,
  but no fast recovery (every loss collapses to one segment).
* :class:`Reno` — RFC 5681 fast recovery with window inflation.
* :class:`NewReno` — RFC 6582 partial-ACK handling (what the paper's Linux
  2.6 guests ran; the default).
* :class:`Cubic` — the modern default, included as an extension to show the
  dilation-invariance holds for time-*function* controllers too. Its growth
  depends on elapsed time, so it is the most sensitive to a broken time
  base: the on-ACK hook takes the connection's local ``now``.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

from ..simnet.errors import ConfigurationError

__all__ = [
    "CongestionControl",
    "Tahoe",
    "Reno",
    "NewReno",
    "Cubic",
    "Vegas",
    "make_congestion_control",
    "initial_window",
]


def initial_window(mss: int) -> int:
    """RFC 3390 initial congestion window."""
    return min(4 * mss, max(2 * mss, 4380))


class CongestionControl(abc.ABC):
    """Owns cwnd/ssthresh; the socket calls the ``on_*`` hooks."""

    #: Tahoe lacks fast recovery; the socket checks this flag.
    supports_fast_recovery = True

    #: Whether the hybrid-fidelity fast path (:mod:`repro.simnet.fluid`)
    #: may advance this flavor analytically. Only the classic AIMD
    #: arithmetic (Reno/NewReno) has a faithful closed form; delay-based
    #: (Vegas), cubic-growth and Tahoe flows stay packet-level.
    supports_fluid = False

    name = "abstract"

    def __init__(self, mss: int) -> None:
        if mss <= 0:
            raise ConfigurationError(f"mss must be positive: {mss}")
        self.mss = mss
        self.cwnd = float(initial_window(mss))
        self.ssthresh = float(1 << 30)  # "infinite" until the first loss

    # ------------------------------------------------------------------ hooks

    def on_rtt_sample(self, rtt: float, now: float) -> None:
        """RTT measurement hook; only delay-based flavors (Vegas) use it."""

    def on_ack(self, bytes_acked: int, flight_size: int, now: float) -> None:
        """New data acknowledged outside recovery: grow the window."""
        if self.cwnd < self.ssthresh:
            # Slow start with appropriate byte counting (RFC 3465, L=1).
            self.cwnd += min(bytes_acked, self.mss)
        else:
            self._congestion_avoidance(bytes_acked, now)

    def _congestion_avoidance(self, bytes_acked: int, now: float) -> None:
        # Standard AIMD: one MSS per window's worth of ACKs.
        self.cwnd += self.mss * self.mss / self.cwnd

    def _halve(self, flight_size: int) -> None:
        self.ssthresh = max(flight_size / 2.0, 2.0 * self.mss)

    def on_retransmit_timeout(self, flight_size: int, now: float) -> None:
        """RTO fired: collapse to one segment and slow-start again."""
        self._halve(flight_size)
        self.cwnd = float(self.mss)

    def on_enter_recovery(self, flight_size: int, now: float) -> None:
        """Triple duplicate ACK: halve, then inflate by the three dupacks."""
        self._halve(flight_size)
        self.cwnd = self.ssthresh + 3.0 * self.mss

    def on_enter_recovery_sack(self, flight_size: int, now: float) -> None:
        """SACK recovery entry: halve without inflation — the scoreboard's
        pipe estimate replaces dupack window inflation (RFC 6675)."""
        self._halve(flight_size)
        self.cwnd = self.ssthresh

    def on_ecn_congestion(self, flight_size: int, now: float) -> None:
        """ECE received (RFC 3168 §6.1.2): react as to a single loss, but
        with nothing to retransmit."""
        self.on_enter_recovery_sack(flight_size, now)

    def on_dup_ack_in_recovery(self) -> None:
        """Each further dupack signals a departed segment: inflate."""
        self.cwnd += self.mss

    def on_partial_ack(self, bytes_acked: int) -> None:
        """NewReno deflation on a partial ACK (RFC 6582 §3.2 step 3)."""
        self.cwnd = max(self.cwnd - bytes_acked + self.mss, float(self.mss))

    def on_exit_recovery(self, now: float) -> None:
        """Full ACK received: deflate back to ssthresh."""
        self.cwnd = self.ssthresh

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(cwnd={self.cwnd:.0f}, "
            f"ssthresh={self.ssthresh:.0f})"
        )


class Tahoe(CongestionControl):
    """No fast recovery: a triple dupack is treated like a timeout."""

    supports_fast_recovery = False
    name = "tahoe"

    def on_enter_recovery(self, flight_size: int, now: float) -> None:
        self._halve(flight_size)
        self.cwnd = float(self.mss)


class Reno(CongestionControl):
    """RFC 5681 fast retransmit / fast recovery."""

    supports_fluid = True
    name = "reno"


class NewReno(Reno):
    """RFC 6582 — identical window arithmetic, the socket drives the
    partial-ACK retransmissions that distinguish NewReno from Reno."""

    name = "newreno"


class Cubic(CongestionControl):
    """CUBIC (RFC 8312) — window growth is a cubic function of the time
    since the last congestion event.

    Included as a *beyond-the-paper* extension: because its growth depends
    on wall-clock time rather than on ACK arrival counts, CUBIC only
    behaves identically under dilation if every timestamp it reads is
    virtual. Benchmarks use it to show the dilation invariance is not a
    Reno-specific accident.
    """

    name = "cubic"

    C = 0.4          # scaling constant, segments/sec^3
    BETA = 0.7       # multiplicative decrease factor

    def __init__(self, mss: int) -> None:
        super().__init__(mss)
        self._w_max: Optional[float] = None   # segments
        self._epoch_start: Optional[float] = None
        self._k = 0.0

    def _segments(self, byte_count: float) -> float:
        return byte_count / self.mss

    def on_ack(self, bytes_acked: int, flight_size: int, now: float) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += min(bytes_acked, self.mss)
            return
        if self._w_max is None:
            # No loss yet: grow like Reno until the first congestion event.
            self._congestion_avoidance(bytes_acked, now)
            return
        if self._epoch_start is None:
            self._epoch_start = now
            current = self._segments(self.cwnd)
            self._k = ((self._w_max - current) / self.C) ** (1 / 3) if self._w_max > current else 0.0
        t = now - self._epoch_start
        target_segments = self.C * (t - self._k) ** 3 + self._w_max
        target = target_segments * self.mss
        if target > self.cwnd:
            # Approach the cubic target over the next RTT's worth of ACKs.
            self.cwnd += (target - self.cwnd) / self._segments(self.cwnd)
        else:
            # TCP-friendly floor: never slower than Reno.
            self.cwnd += 0.01 * self.mss

    def _on_congestion(self, now: float) -> None:
        self._w_max = self._segments(self.cwnd)
        self._epoch_start = None

    def on_enter_recovery(self, flight_size: int, now: float) -> None:
        self._on_congestion(now)
        self.ssthresh = max(self.cwnd * self.BETA, 2.0 * self.mss)
        self.cwnd = self.ssthresh + 3.0 * self.mss

    def on_enter_recovery_sack(self, flight_size: int, now: float) -> None:
        self._on_congestion(now)
        self.ssthresh = max(self.cwnd * self.BETA, 2.0 * self.mss)
        self.cwnd = self.ssthresh

    def on_retransmit_timeout(self, flight_size: int, now: float) -> None:
        self._on_congestion(now)
        self.ssthresh = max(self.cwnd * self.BETA, 2.0 * self.mss)
        self.cwnd = float(self.mss)

    def on_exit_recovery(self, now: float) -> None:
        self.cwnd = self.ssthresh
        self._epoch_start = None


class Vegas(CongestionControl):
    """TCP Vegas (Brakmo & Peterson 1995) — delay-based avoidance.

    Included as the sharpest dilation probe in the family: Vegas steers by
    *measured RTTs* (expected vs. actual throughput), so a time base that
    leaked physical time anywhere would send it to a different operating
    point immediately. The socket feeds it RTT samples via
    :meth:`on_rtt_sample`.

    Classic parameters: keep between ``alpha`` and ``beta`` segments
    queued at the bottleneck; grow/shrink by one MSS per RTT outside that
    band. Loss handling falls back to Reno behaviour.
    """

    name = "vegas"

    ALPHA = 2.0  # segments
    BETA = 4.0

    def __init__(self, mss: int) -> None:
        super().__init__(mss)
        self.base_rtt: Optional[float] = None
        self._last_rtt: Optional[float] = None
        self._next_adjust_at = 0.0

    def on_rtt_sample(self, rtt: float, now: float) -> None:
        """Track the path's minimum and the most recent RTT."""
        if self.base_rtt is None or rtt < self.base_rtt:
            self.base_rtt = rtt
        self._last_rtt = rtt

    def on_ack(self, bytes_acked: int, flight_size: int, now: float) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += min(bytes_acked, self.mss)
            return
        if self.base_rtt is None or self._last_rtt is None:
            self._congestion_avoidance(bytes_acked, now)
            return
        if now < self._next_adjust_at:
            return
        # Once per RTT: diff = cwnd*(1/baseRTT - 1/RTT)*baseRTT, in segments.
        expected = self.cwnd / self.base_rtt
        actual = self.cwnd / self._last_rtt
        diff_segments = (expected - actual) * self.base_rtt / self.mss
        if diff_segments < self.ALPHA:
            self.cwnd += self.mss
        elif diff_segments > self.BETA:
            self.cwnd = max(self.cwnd - self.mss, 2.0 * self.mss)
        self._next_adjust_at = now + self._last_rtt


_FLAVORS = {
    "tahoe": Tahoe,
    "reno": Reno,
    "newreno": NewReno,
    "cubic": Cubic,
    "vegas": Vegas,
}


def make_congestion_control(flavor: str, mss: int) -> CongestionControl:
    """Instantiate a congestion controller by name."""
    try:
        cls = _FLAVORS[flavor]
    except KeyError:
        raise ConfigurationError(f"unknown TCP flavor {flavor!r}") from None
    return cls(mss)
