"""``repro.tcp`` — a from-scratch TCP implementation for the emulator.

The guest protocol stack of the reproduction: three-way handshake, sliding
windows, Tahoe/Reno/NewReno/CUBIC congestion control, RFC 6298
retransmission timers, fast retransmit/recovery, delayed ACKs and
FIN teardown — with every timer and timestamp read from the owning node's
clock, so the entire stack dilates transparently inside a warped guest.
"""

from .buffers import ReceiveAssembler, SendBuffer
from .cc import (
    Cubic,
    NewReno,
    Reno,
    Tahoe,
    Vegas,
    initial_window,
    make_congestion_control,
)
from .options import TcpOptions
from .rtt import RttEstimator
from .segment import Segment, TCP_HEADER_BYTES
from .socket import (
    CLOSED,
    CLOSE_WAIT,
    CLOSING,
    ESTABLISHED,
    FIN_WAIT_1,
    FIN_WAIT_2,
    LAST_ACK,
    LISTEN,
    SYN_RCVD,
    SYN_SENT,
    TIME_WAIT,
    TcpSocket,
)
from .stack import Listener, TcpStack

__all__ = [
    "TcpStack",
    "TcpSocket",
    "Listener",
    "TcpOptions",
    "Segment",
    "TCP_HEADER_BYTES",
    "RttEstimator",
    "SendBuffer",
    "ReceiveAssembler",
    "Tahoe",
    "Reno",
    "NewReno",
    "Cubic",
    "Vegas",
    "initial_window",
    "make_congestion_control",
    "CLOSED",
    "LISTEN",
    "SYN_SENT",
    "SYN_RCVD",
    "ESTABLISHED",
    "FIN_WAIT_1",
    "FIN_WAIT_2",
    "CLOSE_WAIT",
    "CLOSING",
    "LAST_ACK",
    "TIME_WAIT",
]
