"""The TCP connection state machine.

A :class:`TcpSocket` implements the full connection lifecycle over the
:mod:`repro.simnet` substrate: three-way handshake, sliding-window data
transfer with congestion control (:mod:`repro.tcp.cc`), RFC 6298
retransmission timing (:mod:`repro.tcp.rtt`), fast retransmit / fast
recovery with NewReno partial-ACK handling, delayed ACKs, limited transmit
(RFC 3042), zero-window persist probes, and the FIN/TIME_WAIT teardown.

Every timer and timestamp flows through the owning node's clock. That is
the single point of contact with the paper's mechanism: run this exact
stack on a dilated node and all of its RTT measurements, RTO arming and
congestion-window pacing happen in virtual time.

The socket is callback-driven (the substrate has no threads):

* ``on_connected(sock)`` — handshake completed;
* ``on_data(sock, n)`` — ``n`` more in-order bytes delivered;
* ``on_message(sock, obj)`` — an application message marker passed;
* ``on_close(sock)`` — remote side finished sending (EOF);
* ``on_error(sock, exc)`` — reset, handshake failure, or too many RTOs.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Optional

from ..simnet.engine import Event
from ..simnet.errors import ProtocolError
from ..simnet.node import Node
from ..simnet.packet import IP_HEADER_BYTES, Packet
from .buffers import ReceiveAssembler, SendBuffer
from .cc import make_congestion_control
from .options import TcpOptions
from .rtt import RttEstimator
from .segment import Segment

__all__ = ["TcpSocket", "CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD",
           "ESTABLISHED", "FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT",
           "CLOSING", "LAST_ACK", "TIME_WAIT"]

CLOSED = "CLOSED"
LISTEN = "LISTEN"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
CLOSING = "CLOSING"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"

#: Connection attempts / retransmissions before giving up (Linux: 15).
MAX_RETRIES = 15


def _merge_interval(ranges, start, end):
    """Insert [start, end) into a sorted disjoint interval list.

    Fast paths cover the overwhelmingly common cases on a hot ACK path:
    appending above the current top, and extending the top range.
    """
    if end <= start:
        return ranges
    if ranges:
        last_lo, last_hi = ranges[-1]
        if start > last_hi:
            ranges.append((start, end))
            return ranges
        if start >= last_lo and end >= last_hi:
            # Overlaps only the last range: extend it in place.
            ranges[-1] = (last_lo, max(last_hi, end))
            return ranges
        if last_lo <= start and end <= last_hi:
            return ranges  # already covered
    merged = []
    for lo, hi in ranges:
        if hi < start or lo > end:
            merged.append((lo, hi))
        else:
            start = min(start, lo)
            end = max(end, hi)
    merged.append((start, end))
    merged.sort()
    return merged


def _trim_below(ranges, floor):
    """Drop interval parts below ``floor`` (no-op fast path when clean)."""
    if not ranges or ranges[0][0] >= floor:
        return ranges
    trimmed = []
    for lo, hi in ranges:
        if hi <= floor:
            continue
        trimmed.append((max(lo, floor), hi))
    return trimmed


def _total_bytes(ranges):
    """Sum of interval lengths."""
    return sum(hi - lo for lo, hi in ranges)


def _covers(ranges, start, end):
    """Whether [start, end) is already inside one interval (O(log n))."""
    index = bisect.bisect_right(ranges, (start, float("inf"))) - 1
    return index >= 0 and ranges[index][0] <= start and end <= ranges[index][1]


class TcpSocket:
    """One endpoint of a TCP connection. Create via :class:`repro.tcp.stack.TcpStack`."""

    def __init__(
        self,
        stack: "Any",
        local_port: int,
        remote_addr: str,
        remote_port: int,
        options: Optional[TcpOptions] = None,
        on_connected: Optional[Callable[["TcpSocket"], None]] = None,
        on_data: Optional[Callable[["TcpSocket", int], None]] = None,
        on_message: Optional[Callable[["TcpSocket", Any], None]] = None,
        on_close: Optional[Callable[["TcpSocket"], None]] = None,
        on_error: Optional[Callable[["TcpSocket", Exception], None]] = None,
        on_acked: Optional[Callable[["TcpSocket", int], None]] = None,
        flow_id: Optional[str] = None,
    ) -> None:
        self.stack = stack
        self.node: Node = stack.node
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self.options = options if options is not None else TcpOptions()
        self.flow_id = flow_id
        self.on_connected = on_connected
        self.on_data = on_data
        self.on_message = on_message
        self.on_close = on_close
        self.on_error = on_error
        #: Called as on_acked(sock, total_stream_bytes_acked) whenever new
        #: data is cumulatively acknowledged (sender-side progress hook).
        self.on_acked = on_acked

        #: Optional :class:`repro.trace.recorder.FlightRecorder` observing
        #: state transitions, retransmits and cwnd changes. Default off;
        #: hot paths guard the hook with a single is-None check.
        self.recorder = None
        #: Last cwnd value reported to the recorder (dedups 'cwnd' events).
        self._traced_cwnd = -1.0

        # ---- hybrid-fidelity hooks (see repro.simnet.fluid)
        #: While a FluidManager drains or owns this flow, no new data may
        #: enter the packet network; _try_send parks on this flag.
        self._fluid_hold = False
        #: After a fluid->packet handback the usable window is capped here
        #: while the manager's pacing timers re-open it over one srtt.
        self._pace_window: Optional[float] = None
        #: New-data ACKs remaining before fluid re-entry is considered.
        self._fluid_cooldown = 0
        #: Loss-quiet tracking for the fluid predicate: last observed
        #: (fast_retransmits, timeouts) pair and when it last changed.
        self._fluid_loss_stat = (0, 0)
        self._fluid_last_loss = float("-inf")

        self.state = CLOSED

        # ---- sender state (sequence space: SYN=0, data starts at 1)
        self.snd_una = 0
        self.snd_nxt = 0
        self.snd_wnd = self.options.receive_buffer  # until first ACK says otherwise
        self.send_buffer = SendBuffer()
        self.cc = make_congestion_control(self.options.flavor, self.options.mss)
        self.rtt = RttEstimator(
            initial_rto=self.options.initial_rto,
            min_rto=self.options.min_rto,
            max_rto=self.options.max_rto,
        )
        self._rto_event: Optional[Event] = None
        self._persist_event: Optional[Event] = None
        self._retries = 0
        self._dupacks = 0
        self._in_recovery = False
        self._recover = 0
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0
        self._fin_pending = False
        self._fin_sent = False
        #: Highest sequence ever sent; anything below is a retransmission.
        self._high_water = 0
        # ---- SACK scoreboard (RFC 6675-style recovery)
        #: Disjoint, sorted (start, end) seq ranges the peer has SACKed.
        self._scoreboard: list = []
        #: Ranges retransmitted during the current recovery episode
        #: (appended in ascending order — see _scan_cursor).
        self._rexmit_marks: list = []
        #: Hole-scan position: everything below it is sacked or already
        #: retransmitted this episode, so the per-segment hole search is
        #: O(scoreboard) instead of O(episode length^2).
        self._scan_cursor = 0
        #: Cached byte total of _rexmit_marks (kept >= snd_una), so _pipe
        #: is O(1) instead of re-summing the marks on every send decision.
        self._marks_bytes = 0
        # ---- timestamps (RFC 7323)
        #: Most recent TSval received from the peer, echoed on our ACKs.
        self._ts_recent: Optional[float] = None
        #: ts_ecr of the ACK currently being processed (RTTM sample source).
        self._last_ack_ts_ecr: Optional[float] = None
        # ---- ECN (RFC 3168)
        #: Receiver side: echo ECE on every ACK until the peer sends CWR.
        self._ecn_echo = False
        #: Sender side: set CWR on the next data segment after reducing.
        self._cwr_pending = False
        #: One window reduction per RTT: ECE is ignored until snd_una
        #: passes this point.
        self._ecn_recover = 0

        # ---- receiver state
        self.assembler = ReceiveAssembler(
            self.options.receive_buffer,
            on_message=self._deliver_message,
            on_data=self._deliver_data,
        )
        self._remote_fin_stream: Optional[int] = None
        self._fin_received = False
        self._segments_since_ack = 0
        self._delack_event: Optional[Event] = None

        # ---- statistics
        self.segments_sent = 0
        self.segments_received = 0
        self.retransmits = 0
        self.timeouts = 0
        self.bytes_acked = 0
        #: Cumulative duplicate ACKs seen (``_dupacks`` is the per-episode
        #: counter that resets; this one never does).
        self.dupacks_received = 0
        #: Fast retransmits fired on the third dupack (SACK or classic).
        self.fast_retransmits = 0
        #: Fast-recovery episodes entered (0 forever on Tahoe, whose
        #: response to the third dupack is a slow-start collapse instead).
        self.fast_recoveries = 0

    # ================================================================= helpers

    @property
    def clock(self):
        """The owning node's clock (virtual inside a dilated guest)."""
        return self.node.clock

    def _set_state(self, new_state: str) -> None:
        """Transition the connection state, tracing when a recorder is on.

        State changes are rare (a handful per connection), so the extra
        call is off every hot path; ``self.state = X`` assignment sites all
        route through here except ``__init__``.
        """
        if self.recorder is not None and new_state != self.state:
            self.recorder.record_tcp(
                "state", self, f"{self.state}->{new_state}"
            )
        self.state = new_state

    def _trace_cc(self, cause: str) -> None:
        """Record a cwnd change; callers guard with ``recorder is not None``."""
        cwnd = self.cc.cwnd
        if cwnd != self._traced_cwnd:
            self._traced_cwnd = cwnd
            self.recorder.record_tcp("cwnd", self, cause, value=float(cwnd))

    @property
    def mss(self) -> int:
        return self.options.mss

    @property
    def flight_size(self) -> int:
        """Sequence space in flight."""
        return self.snd_nxt - self.snd_una

    @property
    def bytes_received(self) -> int:
        """In-order payload bytes delivered to the application."""
        return self.assembler.bytes_delivered

    def _stream_offset(self, seq: int) -> int:
        """Map a data sequence number to a stream offset (SYN shifts by 1)."""
        return seq - 1

    def _rcv_ack_value(self) -> int:
        """The cumulative ACK we advertise."""
        ack = 1 + self.assembler.rcv_nxt
        if (
            self._remote_fin_stream is not None
            and self.assembler.rcv_nxt >= self._remote_fin_stream
        ):
            ack += 1  # the FIN itself
        return ack

    # ================================================================== opening

    def open_active(self) -> None:
        """Client side: send the SYN."""
        if self.state != CLOSED:
            raise ProtocolError(f"cannot connect from state {self.state}")
        self._set_state(SYN_SENT)
        self.snd_una = 0
        self.snd_nxt = 1
        self._emit(seq=0, syn=True, ack_flag=False)
        self._arm_rto()

    def open_passive(self, syn: Segment) -> None:
        """Server side: a listener saw a SYN; reply SYN+ACK."""
        self._set_state(SYN_RCVD)
        self.snd_una = 0
        self.snd_nxt = 1
        self._emit(seq=0, syn=True, ack_flag=True)
        self._arm_rto()

    # ================================================================== sending

    def send(self, n_bytes: int, message: Any = None) -> None:
        """Queue ``n_bytes`` of application data, optionally tagged."""
        if self.state in (CLOSED, LISTEN, TIME_WAIT, LAST_ACK, CLOSING,
                          FIN_WAIT_1, FIN_WAIT_2):
            raise ProtocolError(f"cannot send in state {self.state}")
        if self._fin_pending:
            raise ProtocolError("cannot send after close()")
        self.send_buffer.write(n_bytes, message)
        if self.state == ESTABLISHED or self.state == CLOSE_WAIT:
            self._try_send()

    def send_message(self, message: Any, n_bytes: int) -> None:
        """Ergonomic alias: ``send(n_bytes, message=message)``."""
        self.send(n_bytes, message=message)

    def close(self) -> None:
        """Finish sending: FIN goes out once the buffer drains."""
        if self.state in (CLOSED, TIME_WAIT):
            return
        if self._fin_pending:
            return
        self._fin_pending = True
        if self.state == ESTABLISHED:
            self._set_state(FIN_WAIT_1)
        elif self.state == CLOSE_WAIT:
            self._set_state(LAST_ACK)
        elif self.state in (SYN_SENT, SYN_RCVD):
            # Handshake still in flight: queue the graceful close; the
            # transition to FIN_WAIT_1 happens once we are established.
            return
        self._try_send()

    def abort(self) -> None:
        """Hard reset the connection (RST to the peer)."""
        if self.state not in (CLOSED,):
            self._emit_raw(Segment(
                src_port=self.local_port, dst_port=self.remote_port,
                seq=self.snd_nxt, rst=True, ack_flag=True,
                ack=self._rcv_ack_value(), window=self.assembler.window(),
            ))
        self._abort(ProtocolError("aborted locally"), notify=False)

    @property
    def fin_stream_offset(self) -> int:
        """Stream offset at which our FIN sits (== final stream length)."""
        return self.send_buffer.stream_length

    def _fin_seq(self) -> int:
        return self.send_buffer.stream_length + 1

    def _try_send(self) -> None:
        """Transmit as much as windows allow; called at every opportunity."""
        if self.state not in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT_1, LAST_ACK,
                              CLOSING):
            return
        if self._fluid_hold:
            # The fluid fast path owns (or is draining) this flow; it will
            # hand the window back and call us when packet mode resumes.
            return
        sent_any = False
        while True:
            window = min(self.cc.cwnd, self.snd_wnd)
            if self._pace_window is not None:
                window = min(window, self._pace_window)
            if self._dupacks in (1, 2) and not self._in_recovery:
                # Limited transmit (RFC 3042): the two early dupacks let us
                # send one new segment each to keep the ACK clock running.
                window += self._dupacks * self.mss
            usable = int(window) - self.flight_size
            offset = self._stream_offset(self.snd_nxt)
            available = self.send_buffer.available_from(offset)
            if available > 0:
                if usable <= 0:
                    break
                chunk = min(available, self.mss, usable)
                if self.options.nagle and chunk < self.mss and self.flight_size > 0:
                    break
                self._emit_data(self.snd_nxt, chunk)
                self.snd_nxt += chunk
                sent_any = True
                continue
            if (
                self._fin_pending
                and not self._fin_sent
                and self.snd_nxt == self._fin_seq()
                # Our FIN is all that's left; window always admits it.
            ):
                self._emit(seq=self.snd_nxt, fin=True, ack_flag=True)
                self._fin_sent = True
                self.snd_nxt += 1
                sent_any = True
            break
        if sent_any:
            self._arm_rto()
        elif (
            self.snd_wnd == 0
            and self.send_buffer.available_from(self._stream_offset(self.snd_nxt)) > 0
            and self.flight_size == 0
        ):
            self._arm_persist()

    def _emit_data(self, seq: int, length: int, retransmission: bool = False) -> None:
        offset = self._stream_offset(seq)
        markers = self.send_buffer.markers_in(offset, offset + length)
        retransmission = retransmission or seq < self._high_water
        self._emit(seq=seq, length=length, messages=markers, ack_flag=True,
                   retransmission=retransmission)
        if not retransmission and self._timed_seq is None:
            self._timed_seq = seq + length
            self._timed_at = self.clock.now()

    def _emit(
        self,
        seq: int,
        length: int = 0,
        syn: bool = False,
        fin: bool = False,
        ack_flag: bool = True,
        messages: Optional[list] = None,
        retransmission: bool = False,
    ) -> None:
        sack_blocks = ()
        if ack_flag and self.options.sack and not syn:
            # Out-of-order stream ranges, shifted into sequence space.
            sack_blocks = tuple(
                (lo + 1, hi + 1) for lo, hi in self.assembler.sack_blocks()
            )
        cwr = False
        if self.options.ecn and self._cwr_pending and length > 0:
            cwr = True
            self._cwr_pending = False
        segment = Segment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=self._rcv_ack_value() if ack_flag else 0,
            ack_flag=ack_flag,
            syn=syn,
            fin=fin,
            length=length,
            window=self.assembler.window(),
            messages=messages or [],
            sack=sack_blocks,
            ece=self.options.ecn and self._ecn_echo and ack_flag,
            cwr=cwr,
            ts_val=self.clock.now() if self.options.timestamps else None,
            ts_ecr=self._ts_recent if self.options.timestamps else None,
        )
        if retransmission:
            self.retransmits += 1
            counters = self.node.sim.counters
            counters["tcp.retransmits"] = counters.get("tcp.retransmits", 0) + 1
            if self.recorder is not None:
                self.recorder.record_tcp(
                    "retransmit", self,
                    "syn" if syn else "fin" if fin else "data",
                    seq=seq, length=length,
                )
            if self._timed_seq is not None and seq < self._timed_seq <= seq + max(length, 1):
                self._timed_seq = None  # Karn: never sample a retransmission
        self._high_water = max(self._high_water, segment.end_seq)
        self._emit_raw(segment)
        # Any segment carrying our current ACK satisfies the delayed-ACK duty.
        if ack_flag:
            self._ack_sent()

    def _emit_raw(self, segment: Segment) -> None:
        packet = Packet(
            src=self.node.name,
            dst=self.remote_addr,
            protocol="tcp",
            size_bytes=IP_HEADER_BYTES + segment.wire_bytes,
            payload=segment,
            flow_id=self.flow_id,
            # Only data packets are marked ECN-capable (RFC 3168 §6.1.1:
            # pure ACKs are not ECT).
            ecn_capable=self.options.ecn and segment.length > 0,
        )
        self.segments_sent += 1
        self.node.send(packet)

    # ============================================================== timers: RTO

    def _arm_rto(self) -> None:
        # Re-key the pending timer instead of cancel-and-recreate: the RTO
        # is re-armed on nearly every ACK, and this path is what used to
        # fill the engine heap with dead entries (and the allocator with
        # dead Events) on bulk transfers.
        event = self._rto_event
        if event is not None:
            self.clock.reschedule_in(event, self.rtt.rto)
        else:
            self._rto_event = self.clock.call_in(self.rtt.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        # Keep the Event: reschedule() revives a cancelled or fired entry
        # with a fresh seq (ordering-identical to cancel-and-recreate), so
        # the arm/cancel cycles of short-lived swarm connections stop
        # allocating a new Event per cycle.
        if self._rto_event is not None:
            self._rto_event.cancel()

    def _on_rto(self) -> None:
        if self.state == CLOSED:
            return
        fluid = self.node.sim.fluid
        if fluid is not None:
            # A timeout mid-drain means the tail of the flight was lost;
            # release the hold so go-back-N below can actually retransmit.
            fluid.on_timeout(self)
        self._retries += 1
        self.timeouts += 1
        counters = self.node.sim.counters
        counters["tcp.timeouts"] = counters.get("tcp.timeouts", 0) + 1
        if self._retries > MAX_RETRIES:
            self._abort(ProtocolError("too many retransmission timeouts"))
            return
        self.rtt.backoff()
        self._timed_seq = None
        if self.state == SYN_SENT:
            self._emit(seq=0, syn=True, ack_flag=False, retransmission=True)
        elif self.state == SYN_RCVD:
            self._emit(seq=0, syn=True, ack_flag=True, retransmission=True)
        else:
            self.cc.on_retransmit_timeout(self.flight_size, self.clock.now())
            if self.recorder is not None:
                self._trace_cc("rto")
            self._in_recovery = False
            self._dupacks = 0
            # An RTO invalidates our faith in the scoreboard (RFC 6675 §5.1).
            self._scoreboard = []
            self._rexmit_marks = []
            self._marks_bytes = 0
            self._scan_cursor = self.snd_una
            # Go-back-N (RFC 5681 §5): rewind and let the ACK clock
            # fast-forward over ranges the receiver already buffered.
            self.snd_nxt = self.snd_una
            if self._fin_pending:
                self._fin_sent = self.snd_nxt > self._fin_seq()
            self._try_send()
        self._arm_rto()

    def _retransmit_first(self) -> None:
        """Resend the earliest unacknowledged chunk."""
        if self.snd_una == 0:
            # SYN unacked (shouldn't reach here outside handshake states).
            return
        first_offset = self._stream_offset(self.snd_una)
        if first_offset < self.send_buffer.stream_length:
            chunk = min(
                self.mss,
                self.send_buffer.stream_length - first_offset,
                max(self.snd_nxt - self.snd_una, 1),
            )
            self._emit_data(self.snd_una, chunk, retransmission=True)
        elif self._fin_sent and self.snd_una == self._fin_seq():
            self._emit(seq=self.snd_una, fin=True, ack_flag=True,
                       retransmission=True)

    # ======================================================== SACK recovery

    def _pipe(self) -> int:
        """RFC 6675 pipe estimate: bytes believed to be in the network.

        Bytes above the highest SACKed range are in flight; bytes below it
        that are not SACKed are presumed lost and count only if we have
        retransmitted them this recovery.
        """
        high_end = self._scoreboard[-1][1] if self._scoreboard else self.snd_una
        tail = max(0, self.snd_nxt - max(self.snd_una, high_end))
        return tail + self._marks_bytes

    def _next_hole_chunk(self):
        """The first presumed-lost range not yet retransmitted, or None.

        Scanning starts at ``_scan_cursor``; everything below it was either
        SACKed or retransmitted earlier in this episode (the cursor only
        moves forward within one recovery).
        """
        high_end = self._scoreboard[-1][1] if self._scoreboard else self.snd_una
        start = max(self.snd_una, self._scan_cursor)
        if high_end <= start:
            # Recovery entered on plain dupacks without SACK ranges (e.g.
            # pure reordering): retransmit the first segment once.
            if not self._rexmit_marks and self.snd_nxt > self.snd_una \
                    and self._scan_cursor <= self.snd_una:
                return (self.snd_una, min(self.snd_una + self.mss, self.snd_nxt))
            return None
        cursor = start
        next_sacked_start = high_end
        for lo, hi in self._scoreboard:
            if hi <= cursor:
                continue
            if lo > cursor:
                next_sacked_start = lo
                break
            cursor = hi
            if cursor >= high_end:
                return None
        if cursor >= high_end:
            return None
        return (cursor, min(cursor + self.mss, next_sacked_start, high_end))

    def _enter_sack_recovery(self) -> None:
        now = self.clock.now()
        self.cc.on_enter_recovery_sack(self.flight_size, now)
        if self.recorder is not None:
            self._trace_cc("enter-recovery")
        self.fast_recoveries += 1
        self._in_recovery = True
        self._recover = self.snd_nxt
        self._timed_seq = None
        self._rexmit_marks = []
        self._marks_bytes = 0
        self._scan_cursor = self.snd_una
        # RFC 6675: the first lost segment is retransmitted immediately,
        # regardless of the pipe estimate.
        hole = self._next_hole_chunk()
        if hole is not None:
            self._retransmit_hole(hole)
        self._recovery_send()
        self._arm_rto()

    def _retransmit_hole(self, hole) -> None:
        seq, end = hole
        stream_end = self.send_buffer.stream_length
        data_end = min(end, stream_end + 1)
        if seq <= stream_end and data_end > seq:
            self._emit_data(seq, data_end - seq, retransmission=True)
        elif self._fin_sent and seq == self._fin_seq():
            self._emit(seq=seq, fin=True, ack_flag=True, retransmission=True)
        # Holes are visited in ascending order within an episode, so the
        # marks list stays sorted with O(1) appends.
        if self._rexmit_marks and self._rexmit_marks[-1][1] >= seq:
            last_lo, last_hi = self._rexmit_marks[-1]
            new_hi = max(last_hi, end)
            self._marks_bytes += new_hi - last_hi
            self._rexmit_marks[-1] = (last_lo, new_hi)
        else:
            self._rexmit_marks.append((seq, end))
            self._marks_bytes += end - seq
        self._scan_cursor = max(self._scan_cursor, end)

    def _recovery_send(self) -> None:
        """Drive transmissions while the pipe is below cwnd (RFC 6675)."""
        if not self._in_recovery or not self.options.sack:
            return
        while self._pipe() + self.mss <= self.cc.cwnd:
            hole = self._next_hole_chunk()
            if hole is not None:
                self._retransmit_hole(hole)
                continue
            offset = self._stream_offset(self.snd_nxt)
            available = self.send_buffer.available_from(offset)
            usable_rwnd = self.snd_wnd - self.flight_size
            if available <= 0 or usable_rwnd <= 0:
                break
            chunk = min(available, self.mss, usable_rwnd)
            self._emit_data(self.snd_nxt, chunk)
            self.snd_nxt += chunk
        self._arm_rto()

    # ========================================================== timers: persist

    def _arm_persist(self) -> None:
        event = self._persist_event
        if event is None:
            self._persist_event = self.clock.call_in(
                self.rtt.rto, self._on_persist
            )
        elif not event.active:
            # Fired earlier: revive the same Event for the next probe.
            self.clock.reschedule_in(event, self.rtt.rto)
        # else: already armed — the old behaviour, kept exactly.

    def _on_persist(self) -> None:
        if self.state == CLOSED or self.snd_wnd > 0:
            return
        offset = self._stream_offset(self.snd_nxt)
        if self.send_buffer.available_from(offset) > 0 and self.flight_size == 0:
            # One-byte window probe.
            self._emit_data(self.snd_nxt, 1)
            self.snd_nxt += 1
            self._arm_rto()
        self._arm_persist()

    # ============================================================ delayed ACKs

    def _ack_sent(self) -> None:
        self._segments_since_ack = 0
        # Disarm but keep the Event object: data segments satisfy the
        # delayed-ACK duty constantly, and the next _schedule_ack revives
        # the same event instead of allocating a fresh one.
        if self._delack_event is not None:
            self._delack_event.cancel()

    def _schedule_ack(self, immediate: bool) -> None:
        if immediate or self.options.delayed_ack_timeout == 0:
            self._send_pure_ack()
            return
        self._segments_since_ack += 1
        if self._segments_since_ack >= self.options.ack_every:
            self._send_pure_ack()
            return
        event = self._delack_event
        if event is None:
            self._delack_event = self.clock.call_in(
                self.options.delayed_ack_timeout, self._on_delack
            )
        elif not event.active:
            self.clock.reschedule_in(event, self.options.delayed_ack_timeout)
        # else: a delayed ACK is already pending; leave its deadline alone.

    def _on_delack(self) -> None:
        if self.state != CLOSED and self._segments_since_ack > 0:
            self._send_pure_ack()

    def _send_pure_ack(self) -> None:
        self._emit(seq=self.snd_nxt, ack_flag=True)

    # ============================================================= segment input

    def handle_segment(self, segment: Segment, ce: bool = False) -> None:
        """Entry point from the stack's demultiplexer.

        ``ce`` is the IP-layer Congestion Experienced mark of the carrying
        packet (set by an AQM queue in ECN-marking mode).
        """
        self.segments_received += 1
        if self.options.timestamps and segment.ts_val is not None:
            # Simplified RFC 7323 echo: remember the newest peer timestamp.
            if self._ts_recent is None or segment.ts_val >= self._ts_recent:
                self._ts_recent = segment.ts_val
        if self.options.ecn:
            if ce:
                self._ecn_echo = True
            if segment.cwr:
                self._ecn_echo = False
        if segment.rst:
            if self.state != CLOSED:
                self._abort(ProtocolError("connection reset by peer"))
            return
        handler = {
            SYN_SENT: self._segment_in_syn_sent,
            SYN_RCVD: self._segment_in_syn_rcvd,
            LISTEN: self._segment_ignored,
            CLOSED: self._segment_ignored,
            TIME_WAIT: self._segment_in_time_wait,
        }.get(self.state, self._segment_in_established_family)
        handler(segment)

    def _segment_ignored(self, segment: Segment) -> None:
        pass

    def _segment_in_syn_sent(self, segment: Segment) -> None:
        if segment.syn and segment.ack_flag and segment.ack == 1:
            self.snd_una = 1
            self._retries = 0
            self._cancel_rto()
            # Their SYN occupies remote sequence 0; stream data begins at 1.
            self._set_state(FIN_WAIT_1 if self._fin_pending else ESTABLISHED)
            self.snd_wnd = segment.window
            self._send_pure_ack()
            if self.on_connected is not None:
                self.on_connected(self)
            self._try_send()
        elif segment.syn and not segment.ack_flag:
            # Simultaneous open: respond with SYN+ACK (rare; supported).
            self._set_state(SYN_RCVD)
            self._emit(seq=0, syn=True, ack_flag=True)

    def _segment_in_syn_rcvd(self, segment: Segment) -> None:
        if segment.syn and not segment.ack_flag:
            # Duplicate SYN: retransmitted handshake; re-send SYN+ACK.
            self._emit(seq=0, syn=True, ack_flag=True, retransmission=True)
            return
        if segment.ack_flag and segment.ack >= 1:
            self.snd_una = max(self.snd_una, 1)
            self._retries = 0
            self._cancel_rto()
            self._set_state(FIN_WAIT_1 if self._fin_pending else ESTABLISHED)
            self.snd_wnd = segment.window
            listener = getattr(self, "_accept_callback", None)
            if listener is not None:
                listener(self)
            if self.on_connected is not None:
                self.on_connected(self)
            # The handshake-completing ACK may carry data or a FIN.
            if segment.length > 0 or segment.fin:
                self._segment_in_established_family(segment)
            else:
                self._try_send()

    def _segment_in_time_wait(self, segment: Segment) -> None:
        # Retransmitted FIN from the peer: re-ACK it.
        if segment.fin:
            self._send_pure_ack()

    # ------------------------------------------------------- established family

    def _segment_in_established_family(self, segment: Segment) -> None:
        if segment.syn:
            # Stray handshake retransmission; the ACK we send covers it.
            self._send_pure_ack()
            return
        if segment.ack_flag:
            self._process_ack(segment)
        if segment.length > 0 or segment.messages:
            self._process_payload(segment)
        if segment.fin:
            self._process_fin(segment)

    def _process_ack(self, segment: Segment) -> None:
        ack = segment.ack
        if ack > self._high_water:
            return  # acks data never sent; ignore
        self._last_ack_ts_ecr = (
            segment.ts_ecr if self.options.timestamps else None
        )
        # After a go-back-N rewind, valid ACKs may exceed snd_nxt.
        if self.options.sack and segment.sack:
            for lo, hi in segment.sack:
                # Most blocks repeat ranges we already hold; skip them in
                # O(log n) instead of paying the merge.
                if not _covers(self._scoreboard, lo, hi):
                    self._scoreboard = _merge_interval(self._scoreboard, lo, hi)
            self._scoreboard = _trim_below(self._scoreboard, self.snd_una)
        if (
            self.options.ecn
            and segment.ece
            and not self._in_recovery
            and self.snd_una >= self._ecn_recover
        ):
            # RFC 3168 §6.1.2: one window reduction per round trip.
            self.cc.on_ecn_congestion(self.flight_size, self.clock.now())
            if self.recorder is not None:
                self._trace_cc("ecn")
            self._ecn_recover = self.snd_nxt
            self._cwr_pending = True
        window_update = segment.window != self.snd_wnd
        self.snd_wnd = segment.window
        if (
            self._persist_event is not None
            and self._persist_event.active
            and self.snd_wnd > 0
        ):
            self._persist_event.cancel()
            self._try_send()
        if ack > self.snd_una:
            self._process_new_ack(ack)
        elif (
            ack == self.snd_una
            and self.flight_size > 0
            and segment.length == 0
            and not segment.fin
            and not window_update
        ):
            self._process_dup_ack()
        elif window_update:
            self._try_send()

    def _process_new_ack(self, ack: int) -> None:
        acked = ack - self.snd_una
        self.snd_una = ack
        # After a go-back-N rewind the receiver may ack past snd_nxt.
        self.snd_nxt = max(self.snd_nxt, self.snd_una)
        if self._scoreboard:
            self._scoreboard = _trim_below(self._scoreboard, ack)
        if self._rexmit_marks:
            trimmed = _trim_below(self._rexmit_marks, ack)
            if trimmed is not self._rexmit_marks:
                self._rexmit_marks = trimmed
                self._marks_bytes = _total_bytes(trimmed)
        self.bytes_acked += acked
        self._retries = 0
        self.send_buffer.release_through(self._stream_offset(ack))
        now = self.clock.now()
        if (
            self.options.timestamps
            and self._last_ack_ts_ecr is not None
        ):
            # RTTM: every ACK advancing snd_una yields a sample, and the
            # echoed timestamp disambiguates retransmissions (no Karn
            # exclusion needed).
            sample = now - self._last_ack_ts_ecr
            if sample >= 0:
                self.rtt.observe(sample)
                self.cc.on_rtt_sample(sample, now)
            self._timed_seq = None
        elif self._timed_seq is not None and ack >= self._timed_seq:
            sample = now - self._timed_at
            self.rtt.observe(sample)
            self.cc.on_rtt_sample(sample, now)
            self._timed_seq = None
        if self._in_recovery:
            if ack >= self._recover:
                self._in_recovery = False
                self._dupacks = 0
                self._rexmit_marks = []
                self._marks_bytes = 0
                self.cc.on_exit_recovery(now)
            elif self.options.sack:
                # The scoreboard drives retransmissions; partial ACKs just
                # open pipe space.
                self._recovery_send()
            else:
                # Partial ACK: NewReno retransmits the next hole and stays
                # in recovery; Reno/CUBIC exit on the first partial ACK.
                if self.options.flavor == "newreno":
                    self.cc.on_partial_ack(acked)
                    self._retransmit_first()
                else:
                    self._in_recovery = False
                    self._dupacks = 0
                    self.cc.on_exit_recovery(now)
        else:
            self._dupacks = 0
            self.cc.on_ack(acked, self.flight_size, now)
        if self.recorder is not None:
            # One check covers every cc mutation on the ACK path (growth,
            # partial ack, recovery exit).
            self._trace_cc("ack")
        if self.flight_size > 0:
            self._arm_rto()
        else:
            self._cancel_rto()
        if self.on_acked is not None:
            # Stream bytes acked: sequence progress minus the SYN (and FIN).
            stream_acked = min(self.snd_una - 1, self.send_buffer.stream_length)
            self.on_acked(self, stream_acked)
        self._after_ack_state_transitions(ack)
        self._try_send()
        fluid = self.node.sim.fluid
        if fluid is not None:
            fluid.on_ack(self)

    def _process_dup_ack(self) -> None:
        fluid = self.node.sim.fluid
        if fluid is not None:
            # A duplicate ACK is loss evidence the fluid model cannot
            # express; hand the flow back before recovery state mutates.
            fluid.on_dupack(self)
        self._dupacks += 1
        self.dupacks_received += 1
        counters = self.node.sim.counters
        counters["tcp.dupacks"] = counters.get("tcp.dupacks", 0) + 1
        if self._in_recovery:
            if self.options.sack and self.cc.supports_fast_recovery:
                self._recovery_send()  # pipe shrank: maybe send more
            else:
                self.cc.on_dup_ack_in_recovery()
                if self.recorder is not None:
                    self._trace_cc("dupack")
                self._try_send()
            return
        if self._dupacks == 3:
            now = self.clock.now()
            self.fast_retransmits += 1
            if self.options.sack and self.cc.supports_fast_recovery:
                self._enter_sack_recovery()
                return
            self.cc.on_enter_recovery(self.flight_size, now)
            if self.recorder is not None:
                self._trace_cc("enter-recovery")
            self._timed_seq = None
            if self.cc.supports_fast_recovery:
                self.fast_recoveries += 1
                self._in_recovery = True
                self._recover = self.snd_nxt
            else:
                self._dupacks = 0  # Tahoe restarts slow start outright
            self._retransmit_first()
            self._arm_rto()
        else:
            self._try_send()  # limited transmit may release a segment

    def _after_ack_state_transitions(self, ack: int) -> None:
        fin_acked = self._fin_sent and ack >= self._fin_seq() + 1
        if not fin_acked:
            return
        if self.state == FIN_WAIT_1:
            self._set_state(FIN_WAIT_2)
        elif self.state == CLOSING:
            self._enter_time_wait()
        elif self.state == LAST_ACK:
            self._become_closed()

    # ---------------------------------------------------------------- payload

    def _process_payload(self, segment: Segment) -> None:
        offset = self._stream_offset(segment.seq)
        advanced = self.assembler.accept(offset, segment.length, segment.messages)
        # RFC 5681: out-of-order or duplicate data elicits an immediate ACK;
        # in-order data may be delayed.
        self._schedule_ack(immediate=not advanced)
        if advanced and self._remote_fin_stream is not None:
            self._maybe_consume_fin()

    def _deliver_data(self, n_bytes: int) -> None:
        if self.on_data is not None:
            self.on_data(self, n_bytes)

    def _deliver_message(self, message: Any) -> None:
        if self.on_message is not None:
            self.on_message(self, message)

    # -------------------------------------------------------------------- FIN

    def _process_fin(self, segment: Segment) -> None:
        fin_stream = self._stream_offset(segment.seq) + segment.length
        if self._remote_fin_stream is None:
            self._remote_fin_stream = fin_stream
        self._maybe_consume_fin()

    def _maybe_consume_fin(self) -> None:
        if self._fin_received:
            self._send_pure_ack()
            return
        assert self._remote_fin_stream is not None
        if self.assembler.rcv_nxt < self._remote_fin_stream:
            # Data before the FIN is still missing; ACK what we have.
            self._send_pure_ack()
            return
        self._fin_received = True
        if self.state == ESTABLISHED:
            self._set_state(CLOSE_WAIT)
        elif self.state == FIN_WAIT_1:
            # FIN and our FIN crossed; were we also acked?
            self._set_state(CLOSING)
        elif self.state == FIN_WAIT_2:
            self._enter_time_wait()
        self._send_pure_ack()
        if self.on_close is not None:
            self.on_close(self)

    # ---------------------------------------------------------------- teardown

    def _enter_time_wait(self) -> None:
        self._set_state(TIME_WAIT)
        self._cancel_rto()
        self.clock.call_in(2 * self.options.msl, self._become_closed)

    def _become_closed(self) -> None:
        if self.state == CLOSED:
            return
        self._set_state(CLOSED)
        self._cancel_rto()
        if self._persist_event is not None:
            self._persist_event.cancel()
            self._persist_event = None
        if self._delack_event is not None:
            self._delack_event.cancel()
            self._delack_event = None
        self.stack.forget(self)

    def _abort(self, error: Exception, notify: bool = True) -> None:
        already_closed = self.state == CLOSED
        self._become_closed()
        if notify and not already_closed and self.on_error is not None:
            self.on_error(self, error)

    def info(self) -> dict:
        """A snapshot of connection state, in the spirit of ``ss -i``.

        All time quantities are in the connection's local (virtual) clock.
        """
        return {
            "state": self.state,
            "local": f"{self.node.name}:{self.local_port}",
            "remote": f"{self.remote_addr}:{self.remote_port}",
            "flavor": self.cc.name,
            "cwnd": self.cc.cwnd,
            "ssthresh": self.cc.ssthresh,
            "snd_una": self.snd_una,
            "snd_nxt": self.snd_nxt,
            "flight": self.flight_size,
            "snd_wnd": self.snd_wnd,
            "srtt": self.rtt.srtt,
            "rttvar": self.rtt.rttvar,
            "rto": self.rtt.rto,
            "in_recovery": self._in_recovery,
            "sacked_ranges": len(self._scoreboard),
            "segments_sent": self.segments_sent,
            "segments_received": self.segments_received,
            "retransmits": self.retransmits,
            "timeouts": self.timeouts,
            "dupacks_received": self.dupacks_received,
            "fast_retransmits": self.fast_retransmits,
            "fast_recoveries": self.fast_recoveries,
            "bytes_acked": self.bytes_acked,
            "bytes_received": self.bytes_received,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TcpSocket({self.node.name}:{self.local_port} -> "
            f"{self.remote_addr}:{self.remote_port} {self.state} "
            f"una={self.snd_una} nxt={self.snd_nxt} cwnd={self.cc.cwnd:.0f})"
        )
