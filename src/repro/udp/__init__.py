"""``repro.udp`` — datagram sockets for tracker traffic and probes."""

from .socket import Datagram, UDP_HEADER_BYTES, UdpSocket, UdpStack

__all__ = ["Datagram", "UdpSocket", "UdpStack", "UDP_HEADER_BYTES"]
