"""Datagram sockets.

UDP in this emulator is what the BitTorrent tracker protocol and probe
tools ride on: unreliable, unordered (within what the network does),
message-oriented. A :class:`UdpSocket` is bound to a port on one node;
datagrams carry a byte size plus an arbitrary Python payload object.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..simnet.errors import AddressError
from ..simnet.node import Node
from ..simnet.packet import IP_HEADER_BYTES, SHARED_POOL, Packet

__all__ = ["Datagram", "UdpSocket", "UdpStack", "UDP_HEADER_BYTES"]

#: UDP header size charged on every datagram.
UDP_HEADER_BYTES = 8

_datagram_ids = itertools.count(1)


@dataclass
class Datagram:
    """One UDP payload as seen by the application."""

    src_addr: str
    src_port: int
    dst_port: int
    size_bytes: int
    payload: Any = None
    uid: int = field(default_factory=lambda: next(_datagram_ids))


class UdpSocket:
    """A bound datagram endpoint."""

    def __init__(
        self,
        stack: "UdpStack",
        port: int,
        on_datagram: Optional[Callable[["UdpSocket", Datagram], None]] = None,
    ) -> None:
        self.stack = stack
        self.port = port
        self.on_datagram = on_datagram
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self._closed = False

    @property
    def node(self) -> Node:
        return self.stack.node

    def sendto(
        self,
        remote_addr: str,
        remote_port: int,
        size_bytes: int,
        payload: Any = None,
        flow_id: Optional[str] = None,
    ) -> None:
        """Fire one datagram at a remote endpoint (no delivery guarantee)."""
        if self._closed:
            raise AddressError("socket is closed")
        if size_bytes < 0:
            raise AddressError(f"datagram size must be non-negative: {size_bytes}")
        datagram = Datagram(
            src_addr=self.node.name,
            src_port=self.port,
            dst_port=remote_port,
            size_bytes=size_bytes,
            payload=payload,
        )
        # Datagrams have a clear consume point (the receiving stack), so
        # the wire packet rides the shared freelist instead of allocating.
        packet = SHARED_POOL.acquire(
            src=self.node.name,
            dst=remote_addr,
            protocol="udp",
            size_bytes=IP_HEADER_BYTES + UDP_HEADER_BYTES + size_bytes,
            payload=datagram,
            flow_id=flow_id,
        )
        self.datagrams_sent += 1
        self.node.send(packet)

    def close(self) -> None:
        """Release the port."""
        if not self._closed:
            self._closed = True
            self.stack.release(self.port)

    def _deliver(self, datagram: Datagram) -> None:
        self.datagrams_received += 1
        if self.on_datagram is not None:
            self.on_datagram(self, datagram)


class UdpStack:
    """Per-node UDP layer: the ``"udp"`` protocol handler."""

    EPHEMERAL_BASE = 49152

    def __init__(self, node: Node) -> None:
        self.node = node
        self._sockets: Dict[int, UdpSocket] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        node.register_protocol("udp", self)
        #: Datagrams that arrived for an unbound port.
        self.dropped_unbound = 0
        #: Datagrams discarded for failing checksum validation.
        self.checksum_drops = 0

    def bind(
        self,
        port: Optional[int] = None,
        on_datagram: Optional[Callable[[UdpSocket, Datagram], None]] = None,
    ) -> UdpSocket:
        """Bind a port (ephemeral when ``port`` is None)."""
        if port is None:
            port = self._allocate_port()
        if port in self._sockets:
            raise AddressError(f"{self.node.name}: UDP port {port} already bound")
        sock = UdpSocket(self, port, on_datagram)
        self._sockets[port] = sock
        return sock

    def _allocate_port(self) -> int:
        for _ in range(65536 - self.EPHEMERAL_BASE):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 65536:
                self._next_ephemeral = self.EPHEMERAL_BASE
            if port not in self._sockets:
                return port
        raise AddressError(f"{self.node.name}: UDP ports exhausted")

    def release(self, port: int) -> None:
        """Unbind a port."""
        self._sockets.pop(port, None)

    def deliver(self, packet: Packet) -> None:
        """Protocol-handler entry point."""
        if packet.corrupted:
            self.checksum_drops += 1
            counters = self.node.sim.counters
            counters["drop.checksum"] = counters.get("drop.checksum", 0) + 1
            SHARED_POOL.release(packet)
            return
        datagram = packet.payload
        if not isinstance(datagram, Datagram):
            raise AddressError(f"non-UDP payload delivered to UdpStack: {packet!r}")
        # The packet object is dead once the datagram is handed off (taps
        # copy fields, applications see only the Datagram) — recycle it.
        SHARED_POOL.release(packet)
        sock = self._sockets.get(datagram.dst_port)
        if sock is None:
            self.dropped_unbound += 1
            return
        sock._deliver(datagram)
