"""Sharded conservative parallel execution of the simulation engine."""

from .shard import (
    SHARDABLE_RUNNERS,
    InProcessShard,
    ShardContext,
    run_sharded,
)

__all__ = [
    "SHARDABLE_RUNNERS",
    "InProcessShard",
    "ShardContext",
    "run_sharded",
]
