"""Conservative parallel simulation: one engine per shard, barrier-synced.

The engine executes one event at a time on one core; the paper's
"emulation capacity beyond one machine" pitch therefore dies at Python
single-core speed. This module splits one experiment across worker
*processes*: the topology is partitioned into islands
(:func:`repro.simnet.topology.partition_network`), each worker runs a full
:class:`~repro.simnet.engine.Simulator` over its island, and the workers
advance in **conservative windows** — the classic null-message/LBTS
argument with link propagation delay as lookahead:

* every barrier round, each shard advertises ``N`` = the earliest thing it
  could still do (its next local event, its earliest staged inbound
  arrival, or the earliest arrival sitting in an unsent outbox — the last
  term is what makes in-flight packets bound the horizon);
* the global minimum ``M = min(N_i)`` is computed by *every* worker from a
  full-mesh exchange (there is no coordinator on the hot path); no event
  anywhere exists before ``M``, and any packet a future event emits
  arrives no earlier than ``M + L`` where ``L`` is the minimum lookahead
  over all cut edges;
* each shard may therefore execute every event strictly below
  ``G = M + L`` without ever receiving a message from the past.

Windows repeat until the driver's target time is inside the safe horizon,
at which point all shards run inclusively to the target. Every worker
executes the *same* driver code on the same floats, so all workers compute
identical targets and identical window sequences — the mesh exchange can
never pair mismatched rounds (and carries a round tag to fail loudly if it
somehow did).

Determinism (the event-for-event identity the trace diff pins)
--------------------------------------------------------------
Cross-scheduler delivery is the only place parallelism could reorder
events. The single-process engine breaks same-timestamp ties by event
*creation order*, and creation order between two same-time deliveries is
decided by when their creators executed: a delivery whose transmit
completed earlier was created earlier. So every shipped packet carries
the ordering key ``(arrival_time, tx_finish_time, channel_id,
channel_seq)`` — ``tx_finish_time`` reproduces creator-execution order
across engines, ``channel_id`` is the link direction's global
construction index, and ``channel_seq`` the sender's per-direction FIFO
counter. Arrivals are *staged* in a heap and injected into the
destination engine only at window starts, in exactly that key order —
never in IPC arrival order. Because a window is only injected once it is
complete (any not-yet-received packet arrives at or after the next
grant), the injected sequence is a pure function of the simulation, not
of process scheduling.

Intra-shard links go through the same staging discipline (a
:class:`_LocalChannel` that never touches a pipe), so same-timestamp
deliveries from different links merge under the same key on every shard
count. A delivery whose arrival falls inside the *current* window is
scheduled immediately instead, reproducing the single-process engine's
creation-order seq for short-delay hops. When even the transmit times
tie, the channel id decides — which matches the single-process order for
structurally-symmetric bursts (a swarm's simultaneous tracker announces
land on the hub at float-identical times having left float-identical
transmitters; their single-process creation order is peer construction
order, which is link construction order, which is channel order).

*Timer-vs-arrival* ties — a periodic timer firing at a bit-equal copy of
an old arrival time (timers are armed at ``arrival + exact constant``) —
are resolved through the engine's tie-rank channel: the single-process
tie-break is creation order, and a cross-shard delivery is re-*created*
in the destination engine at its injection window, so its creation *seq*
says "just now" while the timer's says "windows ago". Injection therefore
passes ``tie_key=tx_finish`` to :meth:`Simulator.call_at` — the
delivery's original creation instant — and the engine orders
same-timestamp events by ``(rank, seq)`` where a plain event's rank is
its local scheduling instant. Ranks thus equal creation instants on every
path (timers inductively, deliveries by construction: an in-window or
single-process delivery is scheduled *at* its transmit-finish instant),
so the sharded engine reproduces single-process creation order exactly
whenever creation instants differ as floats. This closed the measured
+169-event (~1e-4 relative) drift at 250 leechers; salted sharded swarms
are pinned event-for-event identical by the flight-recorder diff from 4
through 250 leechers, and on every bulk topology.

What remains is deliberately *bounded*: events whose creation instants
are themselves bit-equal fall back to seq order, which across shards is
injection-key order — ``(channel_id, channel_seq)`` — not single-process
creation *genealogy*. For two equal-float, equal-tx-finish deliveries the
single-process discriminator regresses through the ancestry of their
transmit events (back-to-back NIC busy runs chain each transmit's
creation to the previous one), and reproducing that across processes
would mean shipping unbounded ancestor-time chains with every packet. A
perfectly symmetric topology (every leaf the same delay) phase-locks real
traffic onto exactly such ties; experiment builders therefore expose a
deterministic per-link ``delay_salt`` that perturbs propagation delays at
the nanosecond scale, making bit-equal cross-shard creation instants
measure-zero and the bounded key exact. (Apps that cannot accept salted
link delays can instead salt their *timer periods* — see the swarm's
``timer_salt`` — which de-phase-locks the timer-vs-arrival class the same
way; the harness default is link salt because it also covers
delivery-vs-delivery ties.) Unsalted symmetric runs still merge
*aggregates* exactly (event counts are conserved 1:1, byte totals are
order-free) but may reorder same-float deliveries; the flight-recorder
divergence gates in CI run salted.

Wall-clock: a *full* barrier round costs two pipe transfers per mesh
peer, O(shards²) total. YAWNS-style batching (see
:meth:`ShardContext.advance`) grants up to ``window_batch`` consecutive
lookahead windows per full round in busy regions, separated only by
neighbor-pair outbox swaps that are O(cut degree); the
``shard.windows_per_round`` counter says how often the batch path ran.
Sparse regions fall back to one global-min window per round, which jumps
idle gaps in one hop. ``REPRO_SHARD_WINDOW_BATCH`` (default 8, minimum 1)
caps the batch size; 1 restores the unbatched engine.
"""

from __future__ import annotations

import heapq
import math
import os
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..simnet.errors import ConfigurationError

__all__ = [
    "DEFAULT_DELAY_SALT",
    "SHARDABLE_RUNNERS",
    "InProcessShard",
    "ShardContext",
    "run_sharded",
    "shard_cell_kwargs",
]

#: Runners that accept ``shards=N`` (checked by the sweep runner so
#: ``--shards`` fails loudly on figures that cannot honour it).
SHARDABLE_RUNNERS = frozenset({"run_bulk", "run_bittorrent"})

#: Relative per-link delay spread applied to sharded swarm cells whose
#: spec does not choose its own (nanoseconds at the swarm's 10 ms leaf
#: delay): a perfectly symmetric star phase-locks onto bit-equal
#: cross-channel timestamps whose single-process tie order no bounded
#: merge key reproduces (see the module docstring), so the harness runs
#: sharded swarms symmetry-broken by default.
DEFAULT_DELAY_SALT = 1e-6


def shard_cell_kwargs(runner: str, kwargs: Dict[str, Any],
                      shards: int) -> Dict[str, Any]:
    """Runner kwargs for executing a shardable cell on ``shards`` workers.

    Central so the sweep runner and the trace-capture CLI shard a cell
    identically: sets ``shards`` and, for the swarm runner, the default
    ``delay_salt`` (an explicit salt in the spec — including 0.0 — wins).
    """
    out = dict(kwargs)
    out["shards"] = shards
    if runner == "run_bittorrent" and "delay_salt" not in out:
        out["delay_salt"] = DEFAULT_DELAY_SALT
    return out


# ----------------------------------------------------------------- channels


class _LocalChannel:
    """A same-shard directed link, routed through the ordering domain.

    Keeping intra-shard deliveries on the same ``(arrival, tx_finish,
    channel, seq)`` key as cross-shard ones is what makes same-time
    arrivals from different links merge identically on every shard count —
    see the module docstring's determinism argument.
    """

    __slots__ = ("_ctx", "channel_id", "_target", "_seq")

    def __init__(self, ctx: "ShardContext", channel_id: int, target) -> None:
        self._ctx = ctx
        self.channel_id = channel_id
        self._target = target
        self._seq = 0

    def send(self, arrival: float, packet) -> None:
        ctx = self._ctx
        if arrival <= ctx._window_limit:
            # Arrives inside the window being executed: schedule natively,
            # exactly where the single-process engine would have.
            ctx.sim.call_at(arrival, self._target._deliver, packet)
        else:
            self._seq += 1
            heapq.heappush(
                ctx._staged,
                (arrival, ctx.sim.now, self.channel_id, self._seq, packet),
            )


class _RemoteChannel:
    """A directed cut edge: ships (arrival, packet) to the owning shard."""

    __slots__ = ("_ctx", "channel_id", "_box", "_seq")

    def __init__(self, ctx: "ShardContext", channel_id: int,
                 to_shard: int) -> None:
        self._ctx = ctx
        self.channel_id = channel_id
        self._box = ctx._outbox[to_shard]
        self._seq = 0

    def send(self, arrival: float, packet) -> None:
        self._seq += 1
        self._box.append(
            (arrival, self._ctx.sim.now, self.channel_id, self._seq, packet)
        )


class _ForeignChannel:
    """Egress of a non-owned node: transmitting through it is a bug.

    Non-owned nodes exist (the whole topology is built in every worker so
    routing tables and float arithmetic are identical) but must stay
    silent — they have no applications and receive no deliveries. A send
    here means ownership gating failed somewhere; fail loudly rather than
    corrupt determinism.
    """

    __slots__ = ("_name", "_owner")

    def __init__(self, name: str, owner: int) -> None:
        self._name = name
        self._owner = owner

    def send(self, arrival: float, packet) -> None:
        raise RuntimeError(
            f"interface {self._name!r} transmitted in a shard that does not "
            f"own its node (owner: shard {self._owner}); non-owned nodes "
            "must be silent"
        )


# ------------------------------------------------------------ shard context


class ShardContext:
    """One worker's view of a sharded run: channels, staging, barrier.

    The experiment runner calls :meth:`localize` after building the full
    topology (installing a channel on every directed link), then drives
    the run through :meth:`advance` / :meth:`all_agree` instead of
    ``net.run`` — the same call sequence on every worker.
    """

    def __init__(
        self,
        shard_id: int,
        shards: int,
        assignment: Dict[str, int],
        mesh: Dict[int, Any],
    ) -> None:
        self.shard_id = shard_id
        self.shards = shards
        self.assignment = dict(assignment)
        #: peer shard id -> duplex Connection, in increasing-peer order
        #: (the deadlock-free handshake below relies on this ordering).
        self._mesh = dict(sorted(mesh.items()))
        self.sim = None
        self.lookahead_s = math.inf
        #: Min-heap of (arrival, tx_finish, channel_id, channel_seq,
        #: packet): inbound cross-shard packets plus beyond-window local
        #: deliveries. The (channel_id, channel_seq) pair is unique, so
        #: packets are never compared.
        self._staged: List[Tuple[float, float, int, int, Any]] = []
        #: Unsent outbound packets per destination shard. Channels hold a
        #: reference to these lists — cleared in place, never replaced.
        self._outbox: Dict[int, List[Tuple[float, float, int, int, Any]]] = {
            peer: [] for peer in self._mesh
        }
        #: channel_id -> destination Interface (for injection).
        self._targets: Dict[int, Any] = {}
        #: Inclusive time bound of the window currently executing; local
        #: sends at or below it are scheduled natively (see _LocalChannel).
        self._window_limit = -math.inf
        self._round = 0
        #: Shards sharing a cut edge with this one (sorted; filled by
        #: :meth:`localize`). Mid-batch boundary swaps pair only these —
        #: the full mesh is touched once per round, not once per window.
        self._neighbors: List[int] = []
        #: Max lookahead windows granted per barrier round (YAWNS
        #: batching); identical in every worker because the environment is
        #: inherited. 1 restores the one-window-per-round PR 6 behaviour.
        raw_batch = os.environ.get("REPRO_SHARD_WINDOW_BATCH", "").strip()
        self.window_batch = max(1, int(raw_batch) if raw_batch else 8)
        #: Events executed as of the previous full exchange / windows run
        #: since then — the density guard's inputs (see :meth:`advance`).
        self._events_at_exchange = 0
        self._windows_since_exchange = 0
        self._dense = True
        # Barrier counters (mirrored into sim.counters as shard.*).
        self.rounds = 0
        self.windows = 0
        self.messages_in = 0
        self.messages_out = 0
        self.barrier_wait_s = 0.0

    # ------------------------------------------------------------- topology

    def owns(self, node) -> bool:
        """Whether this shard owns ``node`` (a Node or a node name)."""
        name = getattr(node, "name", node)
        return self.assignment[name] == self.shard_id

    def localize(self, net, partition) -> None:
        """Install a channel on every directed link of the built topology.

        Owned-to-owned edges get a :class:`_LocalChannel`, owned-to-foreign
        a :class:`_RemoteChannel`, and foreign egresses a poison channel.
        ``channel_id`` is assigned in link construction order, forward
        direction first — identically in every worker, which is what makes
        it a valid global tie key.
        """
        self.sim = net.sim
        self.lookahead_s = partition.lookahead_s
        assignment = partition.assignment
        neighbors = set()
        channel_id = 0
        for link in net.links:
            for iface in (link.a_to_b, link.b_to_a):
                src_shard = assignment[iface.node.name]
                dst_shard = assignment[iface.peer.node.name]
                if dst_shard == self.shard_id:
                    self._targets[channel_id] = iface.peer
                    if src_shard != self.shard_id:
                        neighbors.add(src_shard)
                if src_shard == self.shard_id:
                    if dst_shard == self.shard_id:
                        iface.egress_channel = _LocalChannel(
                            self, channel_id, iface.peer
                        )
                    else:
                        neighbors.add(dst_shard)
                        iface.egress_channel = _RemoteChannel(
                            self, channel_id, dst_shard
                        )
                else:
                    iface.egress_channel = _ForeignChannel(
                        iface.name, src_shard
                    )
                channel_id += 1
        # Links are duplex, so the cut-neighbor relation is symmetric and
        # every worker derives the same pairing from the same assignment.
        self._neighbors = sorted(neighbors)

    # -------------------------------------------------------------- barrier

    def _advert(self) -> float:
        """Earliest thing this shard could still do (its ``N`` value).

        Includes the earliest unsent outbox arrival: a packet in flight
        must bound the global minimum or a grant could skip past it.
        """
        peek = self.sim.peek_time()
        advert = peek if peek is not None else math.inf
        staged = self._staged
        if staged and staged[0][0] < advert:
            advert = staged[0][0]
        for box in self._outbox.values():
            for item in box:
                if item[0] < advert:
                    advert = item[0]
        return advert

    def _handshake(self, payload: Tuple) -> List[Tuple]:
        """One full-mesh exchange; returns the peers' payloads.

        Peers are visited in increasing id; toward a higher id we send
        first, toward a lower id we receive first. The pairwise operations
        then chain acyclically, so the exchange can never deadlock however
        large a pickled bundle is relative to the pipe buffer.
        """
        replies = []
        started = time.perf_counter()
        for peer, conn in self._mesh.items():
            if peer > self.shard_id:
                conn.send(payload)
                replies.append(conn.recv())
            else:
                reply = conn.recv()
                conn.send(payload)
                replies.append(reply)
        self.barrier_wait_s += time.perf_counter() - started
        return replies

    def _exchange(self) -> float:
        """One full barrier round: swap adverts + outboxes, return global min.

        The payload also carries each shard's events-executed-since-last-
        round so every worker computes the same *density* verdict: batching
        fixed-width windows only pays when the region is busy (see
        :meth:`advance`), and the verdict must be a pure function of shared
        data or the workers' window sequences would diverge.
        """
        self._round += 1
        tag = self._round
        advert = self._advert()
        lowest = advert
        executed = self.sim.events_processed
        delta = executed - self._events_at_exchange
        self._events_at_exchange = executed
        total_delta = delta
        started = time.perf_counter()
        for peer, conn in self._mesh.items():
            box = self._outbox[peer]
            if peer > self.shard_id:
                conn.send((tag, advert, delta, box))
                self.messages_out += len(box)
                box.clear()  # in place: channels hold this list
                peer_tag, peer_advert, peer_delta, bundle = conn.recv()
            else:
                peer_tag, peer_advert, peer_delta, bundle = conn.recv()
                conn.send((tag, advert, delta, box))
                self.messages_out += len(box)
                box.clear()
            if peer_tag != tag:
                raise RuntimeError(
                    f"shard {self.shard_id} barrier desync with shard "
                    f"{peer}: round {tag}, peer answered {peer_tag}"
                )
            if peer_advert < lowest:
                lowest = peer_advert
            total_delta += peer_delta
            if bundle:
                self.messages_in += len(bundle)
                staged = self._staged
                for item in bundle:
                    heapq.heappush(staged, item)
        self.barrier_wait_s += time.perf_counter() - started
        self.rounds += 1
        # Dense enough to batch iff the span since the previous round
        # averaged at least one event per window globally; sparse regions
        # keep the one-window round whose global-min grant can jump an
        # idle gap in one hop, which fixed-width windows cannot.
        self._dense = total_delta >= self._windows_since_exchange
        self._windows_since_exchange = 0
        return lowest

    def _swap_boundary(self, window: int) -> None:
        """Ship outboxes to cut neighbors at a mid-batch window boundary.

        Packets sent during sub-window ``w`` arrive no earlier than the
        start of sub-window ``w + 1`` (every cut edge's delay is at least
        the lookahead), so shipping at each boundary is sufficient; an
        empty bundle is the null message that licenses the receiver to
        proceed. Only neighbors swap — this is the part of a round that is
        O(cut degree), not O(shards²) — with the same low/high
        send-first/receive-first ordering as the full mesh.
        """
        tag = (self._round, window)
        started = time.perf_counter()
        for peer in self._neighbors:
            conn = self._mesh[peer]
            box = self._outbox[peer]
            if peer > self.shard_id:
                conn.send((tag, box))
                self.messages_out += len(box)
                box.clear()
                peer_tag, bundle = conn.recv()
            else:
                peer_tag, bundle = conn.recv()
                conn.send((tag, box))
                self.messages_out += len(box)
                box.clear()
            if peer_tag != tag:
                raise RuntimeError(
                    f"shard {self.shard_id} window-boundary desync with "
                    f"shard {peer}: expected {tag}, peer answered {peer_tag}"
                )
            if bundle:
                self.messages_in += len(bundle)
                staged = self._staged
                for item in bundle:
                    heapq.heappush(staged, item)
        self.barrier_wait_s += time.perf_counter() - started

    def _inject(self, limit: float) -> None:
        """Schedule every staged arrival at or below ``limit``, in key order.

        The heap pops in ``(arrival, tx_finish, channel_id, channel_seq)``
        order, so the engine assigns seqs — and therefore same-time tie
        order — as a pure function of the simulation, never of IPC
        interleaving. Each delivery is injected with ``tie_key=tx_finish``,
        its *original* creation instant: the engine then ranks it against
        same-timestamp local events (periodic timers armed windows ago
        especially) exactly where single-process creation order would have
        put it, no matter which window re-created it here.
        """
        staged = self._staged
        if not staged or staged[0][0] > limit:
            return
        sim = self.sim
        targets = self._targets
        pop = heapq.heappop
        while staged and staged[0][0] <= limit:
            arrival, tx, channel_id, _seq, packet = pop(staged)
            sim.call_at(
                arrival, targets[channel_id]._deliver, packet, tie_key=tx
            )

    # ---------------------------------------------------------------- drive

    def advance(self, until: float) -> None:
        """Run this shard's engine to physical time ``until`` (inclusive).

        Conservative loop with YAWNS-style window batching: each full
        round establishes the global minimum next-event time ``M``; every
        event strictly below ``M + L`` is safe, and by induction sub-window
        ``w`` (events strictly below ``M + (w+1)·L``) is safe once the
        sends of sub-windows ``0..w-1`` have been shipped — they arrive no
        earlier than the start of the window after the one that sent them.
        So a busy region runs up to ``window_batch`` fixed-width windows
        per round, paying only a cheap neighbor-only outbox swap per
        boundary instead of a full-mesh advert exchange per window. Sparse
        regions (the density verdict from :meth:`_exchange`) fall back to
        one window per round because there the global-min grant jumps idle
        gaps that a fixed-width march would crawl across.

        Once the target is inside the horizon the final window runs
        inclusively to it — any event executed there sits at ``t >= M``,
        so packets it emits arrive at ``t + L' >= M + L > until`` and
        belong to a later ``advance``.
        """
        sim = self.sim
        lookahead = self.lookahead_s
        while True:
            lowest = self._exchange()
            batch = self.window_batch if self._dense else 1
            for window in range(batch):
                if window:
                    self._swap_boundary(window)
                horizon = lowest + (window + 1) * lookahead
                if horizon > until:
                    limit = until
                else:
                    # Execute strictly below the grant: run() is inclusive
                    # of its bound, so bound at the float just below it.
                    limit = math.nextafter(horizon, -math.inf)
                self._inject(limit)
                self._window_limit = limit
                sim.run(until=limit)
                self.windows += 1
                self._windows_since_exchange += 1
                if limit == until:
                    self._publish_counters()
                    return

    def all_agree(self, flag: bool) -> bool:
        """Consensus barrier: AND of ``flag`` across all shards.

        Drivers use this for global predicates (e.g. "is the whole swarm
        complete?") so every worker takes identical control-flow decisions.
        """
        self._round += 1
        tag = -self._round  # negative tags mark consensus rounds
        agreed = bool(flag)
        for peer_tag, peer_flag in self._handshake((tag, bool(flag))):
            if peer_tag != tag:
                raise RuntimeError(
                    f"shard {self.shard_id} consensus desync: round {-tag}, "
                    f"peer answered {peer_tag}"
                )
            agreed = agreed and peer_flag
        return agreed

    # ---------------------------------------------------------- observation

    def _publish_counters(self) -> None:
        counters = self.sim.counters
        counters["shard.rounds"] = self.rounds
        counters["shard.windows"] = self.windows
        counters["shard.windows_per_round"] = round(
            self.windows / self.rounds) if self.rounds else 0
        counters["shard.messages_in"] = self.messages_in
        counters["shard.messages_out"] = self.messages_out
        counters["shard.barrier_wait_ms"] = int(self.barrier_wait_s * 1000)

    def stats(self) -> Dict[str, Any]:
        """Per-shard barrier accounting, returned to the parent process."""
        if self.sim is not None:
            self._publish_counters()
        return {
            "shard": self.shard_id,
            "rounds": self.rounds,
            "windows": self.windows,
            "windows_per_round":
                round(self.windows / self.rounds, 3) if self.rounds else 0.0,
            "messages_in": self.messages_in,
            "messages_out": self.messages_out,
            "barrier_wait_s": self.barrier_wait_s,
            "events_processed":
                self.sim.events_processed if self.sim is not None else 0,
        }


class InProcessShard:
    """The ``shards=1`` context: today's engine, byte-for-byte.

    ``owns`` everything, ``advance`` is ``net.run``, consensus is the
    local predicate. Runners drive this and a real :class:`ShardContext`
    through one code path, so the single-process goldens cannot drift.
    """

    shard_id = 0
    shards = 1

    def __init__(self, net) -> None:
        self._net = net

    def owns(self, node) -> bool:
        return True

    def advance(self, until: float) -> None:
        self._net.run(until=until)

    def all_agree(self, flag: bool) -> bool:
        return bool(flag)

    def stats(self) -> Optional[Dict[str, Any]]:
        return None


# -------------------------------------------------------------- orchestration


def _worker_main(
    runner_name: str,
    kwargs: Dict[str, Any],
    shard_id: int,
    shards: int,
    assignment: Dict[str, int],
    mesh: Dict[int, Any],
    result_conn,
) -> None:
    """Worker process entry: run one shard of the experiment."""
    try:
        import itertools

        from ..harness.experiments import RUNNERS
        from ..simnet import packet as _packet

        # Packet uids come from a module-global counter; under the fork
        # start method the worker inherits the parent's position. Restart
        # it at a per-shard base so worker uid streams are reproducible
        # run-to-run (uids are debugging handles, never semantic — trace
        # diffing normalises them away).
        _packet._packet_ids = itertools.count(1 + shard_id * 10**9)

        ctx = ShardContext(shard_id, shards, assignment, mesh)
        result = RUNNERS[runner_name](**kwargs, shards=shards, _shard=ctx)
        result_conn.send(("ok", result, ctx.stats()))
    except BaseException:
        try:
            result_conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        try:
            result_conn.close()
        except Exception:  # pragma: no cover - defensive
            pass


def run_sharded(
    runner_name: str,
    kwargs: Dict[str, Any],
    shards: int,
    assignment: Dict[str, int],
) -> Tuple[List[Any], List[Dict[str, Any]]]:
    """Parent-side orchestration: spawn one worker per shard, collect.

    Builds the full-mesh pipe topology, starts the workers, and waits for
    every per-shard result. The parent is *not* on the barrier hot path —
    workers synchronise peer-to-peer; the parent only watches for results
    and failures (a worker that raises reports its traceback; a worker
    that dies hard is caught by exit-code polling, and either way all
    siblings are terminated so a mesh partner's death can never hang the
    run).

    Returns ``(results, stats)``, both indexed by shard id. The caller
    (the experiment runner's parent entry) owns the merge.
    """
    import multiprocessing

    if shards < 2:
        raise ConfigurationError(
            f"run_sharded needs at least 2 shards, got {shards}"
        )
    methods = multiprocessing.get_all_start_methods()
    mp_ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    pair_conns = {}
    for low in range(shards):
        for high in range(low + 1, shards):
            pair_conns[(low, high)] = mp_ctx.Pipe(duplex=True)
    workers = []
    result_conns = []
    for shard_id in range(shards):
        mesh = {}
        for (low, high), (conn_low, conn_high) in pair_conns.items():
            if low == shard_id:
                mesh[high] = conn_low
            elif high == shard_id:
                mesh[low] = conn_high
        parent_conn, child_conn = mp_ctx.Pipe(duplex=False)
        worker = mp_ctx.Process(
            target=_worker_main,
            args=(runner_name, kwargs, shard_id, shards, assignment, mesh,
                  child_conn),
            name=f"repro-shard-{shard_id}",
        )
        worker.start()
        child_conn.close()
        workers.append(worker)
        result_conns.append(parent_conn)
    for conn_low, conn_high in pair_conns.values():
        conn_low.close()
        conn_high.close()

    outcomes: List[Optional[Tuple[Any, Dict[str, Any]]]] = [None] * shards
    pending = set(range(shards))
    failure = None
    try:
        while pending and failure is None:
            for shard_id in sorted(pending):
                conn = result_conns[shard_id]
                if conn.poll(0.05):
                    try:
                        message = conn.recv()
                    except EOFError:
                        failure = (
                            f"shard {shard_id} exited without reporting "
                            "a result"
                        )
                        break
                    if message[0] == "ok":
                        outcomes[shard_id] = (message[1], message[2])
                        pending.discard(shard_id)
                    else:
                        failure = f"shard {shard_id} failed:\n{message[1]}"
                        break
                elif workers[shard_id].exitcode not in (None, 0):
                    failure = (
                        f"shard {shard_id} died with exit code "
                        f"{workers[shard_id].exitcode}"
                    )
                    break
    finally:
        if pending:
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
        for worker in workers:
            worker.join()
        for conn in result_conns:
            conn.close()
    if failure is not None:
        raise RuntimeError(f"sharded {runner_name} failed: {failure}")
    results = [outcome[0] for outcome in outcomes]  # type: ignore[index]
    stats = [outcome[1] for outcome in outcomes]  # type: ignore[index]
    return results, stats
