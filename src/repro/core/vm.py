"""The virtual machine: a dilated container for a guest's node and stacks.

A :class:`VirtualMachine` bundles the three guest-visible resources that
dilation touches:

* a :class:`~repro.core.clock.DilatedClock` — every timestamp the guest sees;
* a :class:`~repro.core.timer.TimerService` — every timer the guest arms;
* a :class:`~repro.core.cpu.VirtualCpu` — every cycle the guest burns.

Attaching a :class:`~repro.simnet.node.Node` to a VM swaps that node's clock
for the VM's dilated clock, which transparently dilates every protocol stack
and application running on the node — the Python analogue of booting the OS
inside the dilated Xen domain.
"""

from __future__ import annotations

from typing import Optional

from ..simnet.engine import Simulator
from ..simnet.errors import ConfigurationError
from ..simnet.node import Node
from .clock import DilatedClock
from .cpu import VirtualCpu
from .disk import VirtualDisk
from .tdf import TDF, TdfLike, as_tdf
from .timer import TimerService

__all__ = ["VirtualMachine"]


class VirtualMachine:
    """A guest whose entire perception of time is governed by its TDF.

    Construct through :meth:`repro.core.vmm.Hypervisor.create_vm`; the
    hypervisor supplies the physical CPU rate and polices shares.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        tdf: TdfLike = 1,
        host_cycles_per_second: float = 1e9,
        cpu_share: float = 1.0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.clock = DilatedClock(sim, tdf)
        self.timers = TimerService(self.clock)
        self.cpu = VirtualCpu(sim, host_cycles_per_second, cpu_share)
        self.node: Optional[Node] = None
        self.disk: Optional[VirtualDisk] = None
        self._booted_at_physical = sim.now

    @property
    def tdf(self) -> TDF:
        """The dilation factor currently in effect."""
        return self.clock.tdf

    def set_tdf(self, tdf: TdfLike) -> None:
        """Change the dilation factor at runtime (continuous virtual time)."""
        self.clock.set_tdf(tdf)

    def attach_node(self, node: Node) -> None:
        """Make ``node`` this VM's guest host: its clock becomes dilated."""
        if self.node is not None:
            raise ConfigurationError(f"VM {self.name} already has a node attached")
        self.node = node
        node.clock = self.clock

    def attach_disk(self, disk: VirtualDisk) -> VirtualDisk:
        """Give the guest a block device (perceived speed scales with TDF).

        Pass ``throttle = 1/TDF`` on the disk to hold perceived disk speed
        constant, mirroring the CPU-share compensation.
        """
        if self.disk is not None:
            raise ConfigurationError(f"VM {self.name} already has a disk attached")
        self.disk = disk
        return disk

    def uptime(self) -> float:
        """Guest-perceived seconds since the VM was created."""
        return self.clock.now()

    def physical_uptime(self) -> float:
        """Physical seconds since the VM was created."""
        return self.sim.now - self._booted_at_physical

    def perceived_cpu_speed(self) -> float:
        """Apparent cycles per (virtual) second — ``host × share × TDF``."""
        return self.cpu.perceived_cycles_per_second(self.clock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualMachine({self.name}, tdf={self.tdf!r})"
