"""A miniature guest kernel: processes running on dilated resources.

The original system dilated entire operating systems, so arbitrary guest
*programs* — not just protocol stacks — experienced warped time. This
module provides the equivalent programming model for the emulator: a
:class:`GuestKernel` runs :class:`GuestProcess` es written as Python
generators that ``yield`` syscalls:

>>> def program():
...     start = yield Now()
...     yield Compute(cycles=5e8)     # burn CPU on the guest's vCPU
...     yield Sleep(0.5)              # virtual seconds
...     n = yield DiskRead(1 << 20)   # through the guest's virtual disk
...     elapsed = (yield Now()) - start

Every syscall is served by the owning VM's dilated clock, CPU and disk, so
a program's self-measured timings scale with the TDF exactly as a real
benchmark binary inside a dilated Xen guest did. The kernel itself adds no
scheduling policy beyond what the devices impose (the vCPU is FIFO, the
disk is FIFO); concurrency comes from processes interleaving at their
syscall boundaries — cooperative multitasking, the honest model for a
single-core guest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from ..simnet.errors import ConfigurationError, SimulationError
from .vm import VirtualMachine

__all__ = [
    "Sleep",
    "Compute",
    "DiskRead",
    "DiskWrite",
    "Now",
    "Join",
    "Connect",
    "SendOn",
    "Flush",
    "Recv",
    "CloseSock",
    "GuestSocket",
    "GuestProcess",
    "GuestKernel",
]


@dataclass(frozen=True)
class Sleep:
    """Suspend for ``seconds`` of virtual time."""

    seconds: float


@dataclass(frozen=True)
class Compute:
    """Execute ``cycles`` on the guest's vCPU (FIFO with other work)."""

    cycles: float


@dataclass(frozen=True)
class DiskRead:
    """Read ``size_bytes`` from the guest's virtual disk."""

    size_bytes: int


@dataclass(frozen=True)
class DiskWrite:
    """Write ``size_bytes`` to the guest's virtual disk."""

    size_bytes: int


@dataclass(frozen=True)
class Now:
    """Resolve immediately to the guest's current virtual time."""


@dataclass(frozen=True)
class Join:
    """Block until another process exits; resolves to that process.

    Joining an already-exited process resolves immediately. A process
    crashing does not propagate its error to joiners — inspect
    ``process.error`` after the join.
    """

    process: "GuestProcess"


@dataclass(frozen=True)
class Connect:
    """Open a TCP connection; resolves to a :class:`GuestSocket`.

    Requires the VM to have a node with a registered
    :class:`~repro.tcp.stack.TcpStack` handed to the kernel via
    :meth:`GuestKernel.use_tcp`. A refused/failed connection crashes the
    process with the socket error.
    """

    addr: str
    port: int


@dataclass(frozen=True)
class SendOn:
    """Queue ``n_bytes`` on a guest socket; resolves immediately."""

    sock: "GuestSocket"
    n_bytes: int


@dataclass(frozen=True)
class Flush:
    """Block until everything written so far has been cumulatively ACKed
    (blocking-write semantics); resolves to the total bytes acked."""

    sock: "GuestSocket"


@dataclass(frozen=True)
class Recv:
    """Block until ``n_bytes`` more in-order bytes have arrived on the
    socket; resolves to the socket's total received count."""

    sock: "GuestSocket"
    n_bytes: int


@dataclass(frozen=True)
class CloseSock:
    """Close the write side of a guest socket; resolves immediately."""

    sock: "GuestSocket"


class GuestSocket:
    """Kernel-managed wrapper pairing a TcpSocket with waiter bookkeeping."""

    def __init__(self, raw) -> None:
        self.raw = raw
        self.connected = False
        self.received_bytes = 0
        self.acked_bytes = 0
        self.closed_by_peer = False
        self.error: Optional[BaseException] = None
        # (condition, resume) pairs; condition() -> value or None.
        self.waiters: List = []

    def _wake(self) -> None:
        still_waiting = []
        for condition, resume in self.waiters:
            value = condition()
            if value is None:
                still_waiting.append((condition, resume))
            else:
                resume(value)
        self.waiters = still_waiting


#: A guest program: a generator yielding syscalls, resumed with results.
Program = Generator[Any, Any, None]


class GuestProcess:
    """One running program inside a guest."""

    def __init__(
        self,
        kernel: "GuestKernel",
        program: Program,
        name: str,
        on_exit: Optional[Callable[["GuestProcess"], None]] = None,
    ) -> None:
        self.kernel = kernel
        self.program = program
        self.name = name
        self.on_exit = on_exit
        self.started_at_virtual = kernel.vm.clock.now()
        self.finished_at_virtual: Optional[float] = None
        self.error: Optional[BaseException] = None
        self.syscalls = 0
        self._joiners: List[Callable[[], None]] = []

    @property
    def alive(self) -> bool:
        """Still running (not exited, not crashed)."""
        return self.finished_at_virtual is None and self.error is None

    def runtime(self) -> Optional[float]:
        """Virtual seconds from spawn to exit (None while alive)."""
        if self.finished_at_virtual is None:
            return None
        return self.finished_at_virtual - self.started_at_virtual

    # ------------------------------------------------------------- execution

    def _step(self, value: Any = None) -> None:
        try:
            syscall = self.program.send(value)
        except StopIteration:
            self._exit()
            return
        except Exception as error:  # program crashed
            self.error = error
            self._exit()
            return
        self.syscalls += 1
        self._dispatch(syscall)

    def _dispatch(self, syscall: Any) -> None:
        vm = self.kernel.vm
        if isinstance(syscall, Now):
            # Resolve synchronously but resume through the event loop so a
            # tight Now() loop cannot starve the simulation.
            now = vm.clock.now()
            vm.clock.call_in(0.0, lambda: self._step(now))
        elif isinstance(syscall, Sleep):
            if syscall.seconds < 0:
                self._crash(ConfigurationError("negative sleep"))
                return
            vm.clock.call_in(
                syscall.seconds, lambda: self._step(vm.clock.now())
            )
        elif isinstance(syscall, Compute):
            vm.cpu.run(
                syscall.cycles, on_complete=lambda: self._step(vm.clock.now())
            )
        elif isinstance(syscall, Join):
            target = syscall.process
            if target is self:
                self._crash(SimulationError(
                    f"process {self.name} cannot join itself"
                ))
                return
            if target.alive:
                target._joiners.append(
                    lambda: self._step(target)
                )
            else:
                vm.clock.call_in(0.0, lambda: self._step(target))
        elif isinstance(syscall, Connect):
            self._sys_connect(syscall)
        elif isinstance(syscall, SendOn):
            try:
                syscall.sock.raw.send(syscall.n_bytes)
            except Exception as error:
                self._crash(error)
                return
            vm.clock.call_in(0.0, lambda: self._step(syscall.n_bytes))
        elif isinstance(syscall, Flush):
            sock = syscall.sock
            target = sock.raw.send_buffer.stream_length

            def flushed():
                if sock.error is not None:
                    return None  # the error path crashes separately
                return sock.acked_bytes if sock.acked_bytes >= target else None

            self._wait_on(sock, flushed)
        elif isinstance(syscall, Recv):
            sock = syscall.sock
            target = sock.received_bytes + syscall.n_bytes

            def received():
                return (
                    sock.received_bytes
                    if sock.received_bytes >= target else None
                )

            self._wait_on(sock, received)
        elif isinstance(syscall, CloseSock):
            syscall.sock.raw.close()
            vm.clock.call_in(0.0, lambda: self._step(None))
        elif isinstance(syscall, (DiskRead, DiskWrite)):
            if vm.disk is None:
                self._crash(SimulationError(
                    f"process {self.name}: VM {vm.name} has no disk attached"
                ))
                return
            submit = vm.disk.read if isinstance(syscall, DiskRead) else vm.disk.write
            submit(
                syscall.size_bytes,
                on_complete=lambda: self._step(syscall.size_bytes),
            )
        else:
            self._crash(SimulationError(
                f"process {self.name}: unknown syscall {syscall!r}"
            ))

    def _sys_connect(self, syscall: "Connect") -> None:
        stack = self.kernel._tcp_stack
        if stack is None:
            self._crash(SimulationError(
                f"process {self.name}: kernel has no TCP stack "
                "(call GuestKernel.use_tcp first)"
            ))
            return
        guest_sock = GuestSocket(raw=None)

        def on_connected(raw) -> None:
            guest_sock.connected = True
            self._step(guest_sock)

        def on_data(raw, n) -> None:
            guest_sock.received_bytes += n
            guest_sock._wake()

        def on_acked(raw, total) -> None:
            guest_sock.acked_bytes = total
            guest_sock._wake()

        def on_close(raw) -> None:
            guest_sock.closed_by_peer = True
            guest_sock._wake()

        def on_error(raw, error) -> None:
            guest_sock.error = error
            self._crash(error)

        guest_sock.raw = stack.connect(
            syscall.addr, syscall.port,
            on_connected=on_connected,
            on_data=on_data,
            on_acked=on_acked,
            on_close=on_close,
            on_error=on_error,
        )

    def _wait_on(self, sock: "GuestSocket", condition) -> None:
        value = condition()
        if value is not None:
            self.kernel.vm.clock.call_in(0.0, lambda: self._step(value))
            return
        sock.waiters.append((condition, self._step))

    def _crash(self, error: BaseException) -> None:
        self.error = error
        self.program.close()
        self._exit()

    def _exit(self) -> None:
        self.finished_at_virtual = self.kernel.vm.clock.now()
        self.kernel._reap(self)
        if self.on_exit is not None:
            self.on_exit(self)
        joiners, self._joiners = self._joiners, []
        for resume in joiners:
            self.kernel.vm.clock.call_in(0.0, resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else ("crashed" if self.error else "done")
        return f"GuestProcess({self.name}, {state})"


class GuestKernel:
    """Process management for one guest VM."""

    def __init__(self, vm: VirtualMachine) -> None:
        self.vm = vm
        self.processes: Dict[str, GuestProcess] = {}
        self.exited: List[GuestProcess] = []
        self._tcp_stack = None

    def use_tcp(self, stack) -> None:
        """Give guest programs a TCP stack (enables the Connect syscall)."""
        self._tcp_stack = stack

    def spawn(
        self,
        program: Program,
        name: Optional[str] = None,
        on_exit: Optional[Callable[[GuestProcess], None]] = None,
    ) -> GuestProcess:
        """Start a program; it takes its first step on the next event."""
        if name is None:
            name = f"proc{len(self.processes) + len(self.exited)}"
        if name in self.processes:
            raise ConfigurationError(f"process name {name!r} already running")
        process = GuestProcess(self, program, name, on_exit)
        self.processes[name] = process
        self.vm.clock.call_in(0.0, process._step)
        return process

    def _reap(self, process: GuestProcess) -> None:
        self.processes.pop(process.name, None)
        self.exited.append(process)

    @property
    def running(self) -> int:
        """Processes currently alive."""
        return len(self.processes)
