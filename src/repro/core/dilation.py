"""Resource-scaling arithmetic: what dilation makes a guest perceive.

These are the equations behind the paper's Table 1 and behind every
experiment's configuration step. Given a *target* network a researcher
wants to emulate (say a 10 Gbps, 2 ms-RTT path) and a TDF, `physical_for`
answers "what physical network must I build, and what TDF must the guests
run, so they perceive the target?" — and `perceived` is its inverse.

The relations (for TDF = k):

    perceived bandwidth = physical bandwidth × k
    perceived delay     = physical delay ÷ k
    perceived CPU       = physical CPU × share × k

so    physical bandwidth = target ÷ k     (you need *less* hardware!)
      physical delay     = target × k     (inject more delay)
      CPU share          = 1 ÷ k          (to hold perceived CPU constant)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from ..simnet.errors import ConfigurationError
from .tdf import TDF, TdfLike, as_tdf

__all__ = [
    "NetworkProfile",
    "perceived",
    "physical_for",
    "cpu_share_for_constant_speed",
    "resource_scaling_rows",
]


@dataclass(frozen=True)
class NetworkProfile:
    """A network path described by the quantities dilation scales.

    ``delay_s`` is the one-way propagation delay of the bottleneck path;
    RTT-oriented helpers are provided because the paper's figures sweep RTT.
    """

    bandwidth_bps: float
    delay_s: float
    cpu_cycles_per_second: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("profile bandwidth must be positive")
        if self.delay_s < 0:
            raise ConfigurationError("profile delay must be non-negative")
        if self.cpu_cycles_per_second is not None and self.cpu_cycles_per_second <= 0:
            raise ConfigurationError("profile CPU rate must be positive")

    @property
    def rtt_s(self) -> float:
        """Round-trip propagation time for a symmetric path."""
        return 2 * self.delay_s

    @classmethod
    def from_rtt(
        cls,
        bandwidth_bps: float,
        rtt_s: float,
        cpu_cycles_per_second: Optional[float] = None,
    ) -> "NetworkProfile":
        """Build a profile from an RTT instead of a one-way delay."""
        return cls(bandwidth_bps, rtt_s / 2, cpu_cycles_per_second)

    @property
    def bandwidth_delay_product_bits(self) -> float:
        """BDP over the round trip — sizes windows and queues."""
        return self.bandwidth_bps * self.rtt_s


def perceived(physical: NetworkProfile, tdf: TdfLike, cpu_share: float = 1.0) -> NetworkProfile:
    """What a guest at ``tdf`` perceives, running over ``physical``."""
    factor = float(as_tdf(tdf).value)
    cpu = physical.cpu_cycles_per_second
    return NetworkProfile(
        bandwidth_bps=physical.bandwidth_bps * factor,
        delay_s=physical.delay_s / factor,
        cpu_cycles_per_second=None if cpu is None else cpu * cpu_share * factor,
    )


def physical_for(target: NetworkProfile, tdf: TdfLike) -> NetworkProfile:
    """The physical network needed so guests at ``tdf`` perceive ``target``."""
    factor = float(as_tdf(tdf).value)
    cpu = target.cpu_cycles_per_second
    return NetworkProfile(
        bandwidth_bps=target.bandwidth_bps / factor,
        delay_s=target.delay_s * factor,
        cpu_cycles_per_second=None if cpu is None else cpu / factor,
    )


def cpu_share_for_constant_speed(tdf: TdfLike) -> float:
    """The VMM share that keeps perceived CPU speed unchanged: ``1/k``."""
    return float(1 / as_tdf(tdf).value)


@dataclass(frozen=True)
class ScalingRow:
    """One row of the paper's conceptual resource-scaling table."""

    tdf: TDF
    physical_bandwidth_bps: float
    perceived_bandwidth_bps: float
    physical_delay_s: float
    perceived_delay_s: float
    perceived_cpu_cycles_per_second: Optional[float]


def resource_scaling_rows(
    physical: NetworkProfile, tdfs: List[TdfLike], cpu_share: float = 1.0
) -> List[ScalingRow]:
    """Rows of Table 1: the same hardware under a sweep of TDFs."""
    rows: List[ScalingRow] = []
    for raw in tdfs:
        tdf = as_tdf(raw)
        view = perceived(physical, tdf, cpu_share)
        rows.append(
            ScalingRow(
                tdf=tdf,
                physical_bandwidth_bps=physical.bandwidth_bps,
                perceived_bandwidth_bps=view.bandwidth_bps,
                physical_delay_s=physical.delay_s,
                perceived_delay_s=view.delay_s,
                perceived_cpu_cycles_per_second=view.cpu_cycles_per_second,
            )
        )
    return rows
