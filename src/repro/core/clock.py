"""Dilated clocks — the mechanism at the heart of the paper.

In the original system, Xen's paravirtual time interface was modified so a
guest's every source of time (timer interrupts, jiffies, TSC reads,
``gettimeofday``) advanced at ``1/TDF`` of the physical rate. Here the same
effect is achieved by giving a guest a :class:`DilatedClock` instead of a
:class:`~repro.simnet.clock.PhysicalClock`: components read ``now()`` and
set timers in *virtual* seconds, and the clock translates to and from the
engine's physical timeline.

The mapping is piecewise linear and anchored at *epochs*: changing the TDF
at runtime (the paper's §"implementation" notes the hypercall that allows
this) re-anchors the line at the current instant, so virtual time is always
continuous and strictly increasing.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, List, Tuple

from ..simnet.clock import Clock
from ..simnet.engine import Event, Simulator
from ..simnet.errors import ConfigurationError, SchedulingError
from .tdf import TDF, TdfLike, as_tdf

__all__ = ["DilatedClock"]


class DilatedClock(Clock):
    """A clock whose local ("virtual") time runs at ``1/TDF`` physical rate.

    Parameters
    ----------
    sim:
        The physical-time engine.
    tdf:
        Initial dilation factor.
    virtual_origin:
        Virtual time corresponding to the instant of construction (guests
        usually boot at virtual time zero regardless of when they start
        physically).
    """

    def __init__(
        self, sim: Simulator, tdf: TdfLike = 1, virtual_origin: float = 0.0
    ) -> None:
        self.sim = sim
        self._tdf = as_tdf(tdf)
        self._physical_epoch = sim.now
        self._virtual_epoch = virtual_origin
        #: History of (physical_time, virtual_time, tdf) anchors, newest last.
        #: Kept so traces recorded before a TDF change can still be mapped.
        self._epochs: List[Tuple[float, float, TDF]] = [
            (self._physical_epoch, self._virtual_epoch, self._tdf)
        ]
        #: Optional :class:`repro.trace.recorder.FlightRecorder`; records a
        #: ``clock``/``epoch`` event on every runtime TDF change.
        self.recorder = None
        #: Label used as the trace event's site (set by attach_clock).
        self.trace_label = ""

    # ------------------------------------------------------------- conversions

    @property
    def tdf(self) -> TDF:
        """The dilation factor currently in effect."""
        return self._tdf

    def now(self) -> float:
        """Current virtual time."""
        return self.to_local(self.sim.now)

    def to_local(self, physical_time: float) -> float:
        """Map physical → virtual using the epoch in effect at that instant."""
        physical_epoch, virtual_epoch, tdf = self._epoch_for_physical(physical_time)
        return virtual_epoch + (physical_time - physical_epoch) / float(tdf.value)

    def to_physical(self, local_time: float) -> float:
        """Map virtual → physical using the epoch in effect at that instant."""
        physical_epoch, virtual_epoch, tdf = self._epoch_for_virtual(local_time)
        return physical_epoch + (local_time - virtual_epoch) * float(tdf.value)

    def to_local_exact(self, physical_time: float) -> Fraction:
        """Physical → virtual in exact rational arithmetic.

        ``Fraction(float)`` is exact and the TDF is a fraction, so the
        mapping through the epoch history introduces no rounding at all:
        ``to_physical_exact(to_local_exact(p)) == Fraction(p)`` for any
        TDF (7/3 included) and any number of runtime epoch changes. The
        trace subsystem uses this to re-express recorded timestamps in
        another time base without drift.
        """
        anchor = self._epoch_for_physical(float(physical_time))
        physical_epoch, virtual_epoch, tdf = anchor
        return Fraction(virtual_epoch) + (
            Fraction(physical_time) - Fraction(physical_epoch)
        ) / tdf.value

    def to_physical_exact(self, local_time: float) -> Fraction:
        """Virtual → physical in exact rational arithmetic (see above)."""
        anchor = self._epoch_for_virtual(float(local_time))
        physical_epoch, virtual_epoch, tdf = anchor
        return Fraction(physical_epoch) + (
            Fraction(local_time) - Fraction(virtual_epoch)
        ) * tdf.value

    def _epoch_for_physical(self, physical_time: float) -> Tuple[float, float, TDF]:
        for anchor in reversed(self._epochs):
            if physical_time >= anchor[0] - 1e-15:
                return anchor
        return self._epochs[0]

    def _epoch_for_virtual(self, virtual_time: float) -> Tuple[float, float, TDF]:
        for anchor in reversed(self._epochs):
            if virtual_time >= anchor[1] - 1e-15:
                return anchor
        return self._epochs[0]

    # --------------------------------------------------------------- scheduling

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` after ``delay`` *virtual* seconds."""
        if delay < 0:
            raise SchedulingError(f"negative virtual delay: {delay}")
        physical_delay = self._tdf.virtual_to_physical(delay)
        return self.sim.schedule(physical_delay, fn)

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at absolute *virtual* time ``when``."""
        return self.sim.call_at(self.to_physical(when), fn)

    def reschedule_in(self, event: Event, delay: float) -> Event:
        """Re-arm ``event`` after ``delay`` *virtual* seconds.

        Mirrors :meth:`call_in`'s arithmetic exactly (TDF-scaled relative
        delay, not an absolute virtual deadline) so a rescheduled timer
        fires at the bit-identical physical instant a cancel-and-recreate
        would have — the determinism contract of the fast path.
        """
        if delay < 0:
            raise SchedulingError(f"negative virtual delay: {delay}")
        physical_delay = self._tdf.virtual_to_physical(delay)
        event.reschedule(self.sim.now + physical_delay)
        return event

    # ------------------------------------------------------------- dynamic TDF

    def set_tdf(self, tdf: TdfLike) -> None:
        """Change the dilation factor, re-anchoring at the current instant.

        Virtual time is continuous across the change and remains strictly
        increasing; only its *rate* changes. Timers already scheduled keep
        their physical firing times (exactly as pending hardware timers did
        in the Xen implementation — the paper notes this as a caveat of
        changing TDF mid-run).
        """
        new_tdf = as_tdf(tdf)
        if new_tdf == self._tdf:
            return
        old_tdf = self._tdf
        now_physical = self.sim.now
        now_virtual = self.to_local(now_physical)
        self._physical_epoch = now_physical
        self._virtual_epoch = now_virtual
        self._tdf = new_tdf
        self._epochs.append((now_physical, now_virtual, new_tdf))
        if self.recorder is not None:
            self.recorder.record_epoch(
                self, now_physical, now_virtual, old_tdf, new_tdf
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DilatedClock(tdf={self._tdf!r}, virtual_now={self.now():.6f})"
