"""Guest timer service: one-shot and periodic timers in virtual time.

This models the guest-visible programmable timer (the PIT/APIC timer whose
interrupt rate Xen's dilation patch scaled). A guest OS component asks for
callbacks in *virtual* seconds; the service converts deadlines through the
guest's clock, so a TDF-10 guest asking for a 10 ms tick gets one every
100 ms of physical time — exactly the dilated interrupt rate of the paper.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..simnet.clock import Clock
from ..simnet.engine import Event
from ..simnet.errors import ConfigurationError, SchedulingError

__all__ = ["Timer", "PeriodicTimer", "TimerService"]


class Timer:
    """A cancellable one-shot timer armed in virtual time."""

    def __init__(self, clock: Clock, delay: float, fn: Callable[[], None]) -> None:
        self._clock = clock
        self._fired = False
        self._cancelled = False

        def _fire() -> None:
            self._fired = True
            fn()

        self._event: Event = clock.call_in(delay, _fire)

    @property
    def fired(self) -> bool:
        """Whether the callback has run."""
        return self._fired

    @property
    def active(self) -> bool:
        """Armed and not yet fired or cancelled."""
        return not self._fired and not self._cancelled

    def cancel(self) -> None:
        """Disarm; safe after firing or repeated calls."""
        self._cancelled = True
        self._event.cancel()

    def reset(self, delay: float) -> None:
        """Re-arm the timer ``delay`` virtual seconds from now.

        Valid in any state (pending, fired, cancelled) and reuses the
        underlying engine event instead of allocating a new one — the fast
        path for repeatedly re-armed timeouts (retransmission, stall
        detection) that previously cancelled and recreated a Timer per
        re-arm, leaving a trail of dead heap entries.
        """
        if delay < 0:
            raise SchedulingError(f"negative timer delay: {delay}")
        self._fired = False
        self._cancelled = False
        self._clock.reschedule_in(self._event, delay)


class PeriodicTimer:
    """A timer that re-arms itself every ``period`` virtual seconds.

    The callback receives the tick ordinal (1-based). Re-arming happens
    relative to the *scheduled* deadline, not the callback's completion, so
    long callbacks do not skew the tick train — matching how a hardware
    periodic timer behaves.
    """

    def __init__(
        self,
        clock: Clock,
        period: float,
        fn: Callable[[int], None],
        max_ticks: Optional[int] = None,
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"period must be positive: {period}")
        self._clock = clock
        self._period = period
        self._fn = fn
        self._max_ticks = max_ticks
        self._ticks = 0
        self._stopped = False
        self._next_deadline = clock.now() + period
        self._event: Event = clock.call_at(self._next_deadline, self._tick)

    @property
    def ticks(self) -> int:
        """Number of ticks delivered so far."""
        return self._ticks

    def _tick(self) -> None:
        if self._stopped:
            return
        self._ticks += 1
        self._fn(self._ticks)
        if self._stopped:  # the callback may stop the timer
            return
        if self._max_ticks is not None and self._ticks >= self._max_ticks:
            self._stopped = True
            return
        self._next_deadline += self._period
        # Re-key the just-fired event rather than allocating a new one per
        # tick: periodic timers (choke rounds, measurement intervals) are
        # the steady-state heartbeat of long runs.
        self._clock.reschedule_at(self._event, self._next_deadline)

    def stop(self) -> None:
        """Stop ticking; safe to call from within the callback."""
        self._stopped = True
        self._event.cancel()


class TimerService:
    """Factory for a guest's timers, bound to the guest's (dilated) clock."""

    def __init__(self, clock: Clock) -> None:
        self.clock = clock

    def after(self, delay: float, fn: Callable[[], None]) -> Timer:
        """One-shot timer ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SchedulingError(f"negative timer delay: {delay}")
        return Timer(self.clock, delay, fn)

    def every(
        self, period: float, fn: Callable[[int], None], max_ticks: Optional[int] = None
    ) -> PeriodicTimer:
        """Periodic timer with the given virtual period."""
        return PeriodicTimer(self.clock, period, fn, max_ticks=max_ticks)
