"""Guest CPU model: cycle accounting under dilation and VMM shares.

Time dilation scales *every* per-second resource, CPU included: a guest at
TDF k that receives the whole physical CPU perceives a k×-faster processor.
The paper points out that the VMM scheduler can compensate — allocate the
guest a 1/k share and its perceived CPU speed stays constant while the
network still appears k× faster. Both behaviours are reproduced here:

    perceived cycles per virtual second = host_rate × share × TDF

A :class:`VirtualCpu` is a single core executing submitted
:class:`CpuTask` s in FIFO order; completions are scheduled in physical
time from the *delivered* rate (``host_rate × share``), and guests measure
durations with their own (possibly dilated) clock — the perceived speedup
then falls out naturally rather than being programmed in.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..simnet.clock import Clock
from ..simnet.engine import Event, Simulator
from ..simnet.errors import ConfigurationError

__all__ = ["CpuTask", "VirtualCpu"]


class CpuTask:
    """A unit of CPU work measured in cycles."""

    def __init__(self, cycles: float, on_complete: Optional[Callable[[], None]] = None) -> None:
        if cycles <= 0:
            raise ConfigurationError(f"task cycles must be positive: {cycles}")
        self.cycles = float(cycles)
        self.remaining_cycles = float(cycles)
        self.on_complete = on_complete
        self.submitted_at_physical: Optional[float] = None
        self.completed_at_physical: Optional[float] = None

    @property
    def done(self) -> bool:
        """Whether the task has finished executing."""
        return self.completed_at_physical is not None


class VirtualCpu:
    """One guest core scheduled by the hypervisor.

    Parameters
    ----------
    sim:
        Physical-time engine.
    host_cycles_per_second:
        Raw speed of the underlying physical core.
    share:
        Fraction of the physical core the VMM delivers to this guest
        (0 < share ≤ 1). May be changed at runtime; an in-flight task is
        re-costed from its remaining cycles.
    """

    def __init__(
        self,
        sim: Simulator,
        host_cycles_per_second: float,
        share: float = 1.0,
    ) -> None:
        if host_cycles_per_second <= 0:
            raise ConfigurationError("host cycle rate must be positive")
        self.sim = sim
        self.host_cycles_per_second = host_cycles_per_second
        self._share = 0.0
        self._validate_and_set_share(share)
        self._queue: Deque[CpuTask] = deque()
        self._current: Optional[CpuTask] = None
        self._current_started_at: float = 0.0
        self._completion_event: Optional[Event] = None
        #: Total cycles retired (observability).
        self.cycles_executed = 0.0

    def _validate_and_set_share(self, share: float) -> None:
        if not 0 < share <= 1:
            raise ConfigurationError(f"CPU share must be in (0, 1]: {share}")
        self._share = share

    @property
    def share(self) -> float:
        """Fraction of the physical core currently delivered."""
        return self._share

    @property
    def delivered_cycles_per_second(self) -> float:
        """Cycles per *physical* second this guest actually receives."""
        return self.host_cycles_per_second * self._share

    def perceived_cycles_per_second(self, clock: Clock) -> float:
        """Cycles per *local* second as measured by ``clock``.

        For a dilated guest this is ``delivered × TDF`` — the apparent
        speedup the paper describes.
        """
        # Measure over a unit of local time mapped to physical time.
        t0_local = clock.now()
        physical_span = clock.to_physical(t0_local + 1.0) - clock.to_physical(t0_local)
        return self.delivered_cycles_per_second * physical_span

    # ----------------------------------------------------------------- running

    def submit(self, task: CpuTask) -> CpuTask:
        """Queue a task; it runs when the core is free (FIFO)."""
        task.submitted_at_physical = self.sim.now
        self._queue.append(task)
        if self._current is None:
            self._start_next()
        return task

    def run(self, cycles: float, on_complete: Optional[Callable[[], None]] = None) -> CpuTask:
        """Convenience: build and submit a task in one call."""
        return self.submit(CpuTask(cycles, on_complete))

    @property
    def busy(self) -> bool:
        """Whether a task is executing now."""
        return self._current is not None

    @property
    def queue_depth(self) -> int:
        """Tasks waiting behind the current one."""
        return len(self._queue)

    def _start_next(self) -> None:
        if not self._queue:
            self._current = None
            self._completion_event = None
            return
        task = self._queue.popleft()
        self._current = task
        self._current_started_at = self.sim.now
        duration = task.remaining_cycles / self.delivered_cycles_per_second
        self._completion_event = self.sim.schedule(duration, self._complete_current)

    def _complete_current(self) -> None:
        task = self._current
        assert task is not None
        self.cycles_executed += task.remaining_cycles
        task.remaining_cycles = 0.0
        task.completed_at_physical = self.sim.now
        self._current = None
        if task.on_complete is not None:
            task.on_complete()
        if self._current is None:  # the callback may have submitted work
            self._start_next()

    # ----------------------------------------------------------- share changes

    def set_share(self, share: float) -> None:
        """Change the delivered share; re-costs the in-flight task."""
        if self._current is not None and self._completion_event is not None:
            elapsed = self.sim.now - self._current_started_at
            executed = elapsed * self.delivered_cycles_per_second
            self._current.remaining_cycles = max(
                0.0, self._current.remaining_cycles - executed
            )
            self.cycles_executed += min(executed, self._current.cycles)
            self._completion_event.cancel()
            self._validate_and_set_share(share)
            self._current_started_at = self.sim.now
            duration = self._current.remaining_cycles / self.delivered_cycles_per_second
            self._completion_event = self.sim.schedule(duration, self._complete_current)
        else:
            self._validate_and_set_share(share)
