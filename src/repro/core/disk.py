"""Guest disk I/O under dilation.

The paper's discussion notes that dilation scales *every* time-derived
resource a guest observes — disk throughput and request latency included —
and that, as with CPU, the VMM can compensate (throttle the virtual disk)
when an experiment wants only the network scaled.

:class:`VirtualDisk` models the guest-visible block device the way the
experiments need it: a single service queue with

* per-request positioning overhead (seek + rotational, physical seconds),
* transfer at a fixed physical bandwidth,

both paid in physical time. A guest timing its I/O with a dilated clock
therefore sees bandwidth multiplied by the TDF and latency divided by it —
the same emergent scaling as the network path, with no dilation logic in
the device itself. The ``throttle`` knob is the VMM-side compensation
(fraction of the physical device's speed this guest receives).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from ..simnet.engine import Simulator
from ..simnet.errors import ConfigurationError

__all__ = ["DiskRequest", "VirtualDisk"]


class DiskRequest:
    """One read or write of ``size_bytes``."""

    def __init__(
        self,
        size_bytes: int,
        is_write: bool = False,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        if size_bytes <= 0:
            raise ConfigurationError(f"request size must be positive: {size_bytes}")
        self.size_bytes = size_bytes
        self.is_write = is_write
        self.on_complete = on_complete
        self.submitted_at_physical: Optional[float] = None
        self.completed_at_physical: Optional[float] = None

    @property
    def done(self) -> bool:
        """Whether the request finished."""
        return self.completed_at_physical is not None


class VirtualDisk:
    """A FIFO block device whose *perception* dilates with the guest clock.

    Parameters
    ----------
    sim:
        The physical-time engine.
    bandwidth_bytes_per_s:
        Sustained transfer rate of the physical device.
    positioning_delay_s:
        Seek + rotational latency charged per request (physical seconds).
    throttle:
        Fraction of the device delivered to this guest (0 < throttle ≤ 1).
        Set to ``1/TDF`` to keep perceived disk speed constant while the
        rest of the guest dilates.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bytes_per_s: float = 50e6,
        positioning_delay_s: float = 0.008,
        throttle: float = 1.0,
    ) -> None:
        if bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("disk bandwidth must be positive")
        if positioning_delay_s < 0:
            raise ConfigurationError("positioning delay must be non-negative")
        if not 0 < throttle <= 1:
            raise ConfigurationError(f"throttle must be in (0, 1]: {throttle}")
        self.sim = sim
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.positioning_delay_s = positioning_delay_s
        self.throttle = throttle
        self._queue: Deque[DiskRequest] = deque()
        self._busy = False
        self.requests_completed = 0
        self.bytes_transferred = 0

    @property
    def effective_bandwidth(self) -> float:
        """Physical bytes/second this guest's requests are served at."""
        return self.bandwidth_bytes_per_s * self.throttle

    def service_time(self, size_bytes: int) -> float:
        """Physical seconds one request occupies the device."""
        return (
            self.positioning_delay_s / self.throttle
            + size_bytes / self.effective_bandwidth
        )

    def submit(self, request: DiskRequest) -> DiskRequest:
        """Enqueue a request; completions run in submission order."""
        request.submitted_at_physical = self.sim.now
        self._queue.append(request)
        if not self._busy:
            self._start_next()
        return request

    def read(self, size_bytes: int,
             on_complete: Optional[Callable[[], None]] = None) -> DiskRequest:
        """Convenience: submit a read."""
        return self.submit(DiskRequest(size_bytes, False, on_complete))

    def write(self, size_bytes: int,
              on_complete: Optional[Callable[[], None]] = None) -> DiskRequest:
        """Convenience: submit a write."""
        return self.submit(DiskRequest(size_bytes, True, on_complete))

    @property
    def queue_depth(self) -> int:
        """Requests waiting behind the one in service."""
        return len(self._queue)

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        request = self._queue.popleft()
        self.sim.schedule(
            self.service_time(request.size_bytes),
            lambda: self._complete(request),
        )

    def _complete(self, request: DiskRequest) -> None:
        request.completed_at_physical = self.sim.now
        self.requests_completed += 1
        self.bytes_transferred += request.size_bytes
        if request.on_complete is not None:
            request.on_complete()
        self._start_next()
