"""The time dilation factor (TDF).

A TDF of *k* means one second of guest-perceived (virtual) time takes *k*
seconds of physical time; the guest's world appears to run *k* times
faster. ``k = 1`` is an undilated guest; ``k > 1`` slows the guest's clock
(the paper's use); ``0 < k < 1`` speeds it up ("time contraction", which the
paper notes is also possible, e.g. to emulate slower-than-real resources).

TDFs are backed by :class:`fractions.Fraction` so repeated virtual↔physical
conversions introduce no cumulative drift: a dilated run and its scaled
baseline must remain comparable to float precision over millions of events.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from ..simnet.errors import ConfigurationError

__all__ = ["TDF", "TdfLike", "as_tdf"]

TdfLike = Union["TDF", int, float, str, Fraction]


class TDF:
    """An immutable, exact time dilation factor."""

    __slots__ = ("_value",)

    def __init__(self, value: TdfLike) -> None:
        if isinstance(value, TDF):
            fraction = value._value
        elif isinstance(value, Fraction):
            fraction = value
        elif isinstance(value, int):
            fraction = Fraction(value)
        elif isinstance(value, str):
            fraction = Fraction(value)
        elif isinstance(value, float):
            # Keep human-entered floats exact-looking: 0.1 -> 1/10, not the
            # nearest binary fraction.
            fraction = Fraction(value).limit_denominator(10**9)
        else:
            raise ConfigurationError(f"cannot interpret {value!r} as a TDF")
        if fraction <= 0:
            raise ConfigurationError(f"TDF must be positive, got {fraction}")
        object.__setattr__(self, "_value", fraction)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("TDF is immutable")

    @property
    def value(self) -> Fraction:
        """The exact factor as a fraction."""
        return self._value

    def __float__(self) -> float:
        return float(self._value)

    def virtual_to_physical(self, duration: float) -> float:
        """A virtual duration expressed in physical seconds (``d * k``)."""
        return duration * float(self._value)

    def physical_to_virtual(self, duration: float) -> float:
        """A physical duration expressed in virtual seconds (``d / k``)."""
        return duration / float(self._value)

    def scale_rate(self, physical_rate: float) -> float:
        """The perceived rate for a physical per-second rate (``r * k``)."""
        return physical_rate * float(self._value)

    def is_identity(self) -> bool:
        """True for TDF 1 (no dilation)."""
        return self._value == 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TDF):
            return self._value == other._value
        if isinstance(other, (int, Fraction)):
            return self._value == other
        if isinstance(other, float):
            return float(self._value) == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __repr__(self) -> str:
        if self._value.denominator == 1:
            return f"TDF({self._value.numerator})"
        return f"TDF({self._value})"


def as_tdf(value: TdfLike) -> TDF:
    """Coerce any accepted representation to a :class:`TDF`."""
    return value if isinstance(value, TDF) else TDF(value)
