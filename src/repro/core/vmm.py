"""The hypervisor: creates dilated guests and polices physical CPU shares.

The original system modified Xen; what the experiments actually relied on
from the VMM is small and is reproduced faithfully:

* per-guest TDF, settable at creation and changeable at runtime;
* a proportional-share CPU scheduler, because the interesting experiments
  scale CPU *independently* of the TDF (give a TDF-k guest a 1/k share and
  its perceived CPU speed is unchanged while its network is k× faster);
* an enforcement that the shares handed out on one physical machine do not
  exceed the machine.

The hypervisor does not interpose on the network path: dilation of network
perception falls out of the guests' clocks alone, exactly as in the paper
(packets are timestamped and timers armed with warped time; the wire is
untouched).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..simnet.engine import Simulator
from ..simnet.errors import ConfigurationError
from ..simnet.node import Node
from .tdf import TdfLike
from .vm import VirtualMachine

__all__ = ["Hypervisor"]


class Hypervisor:
    """One physical machine's VMM.

    Parameters
    ----------
    sim:
        The physical-time engine (shared with the network substrate).
    host_cycles_per_second:
        Speed of the physical CPU this machine contributes to its guests.
    name:
        Label for error messages and reports.
    """

    def __init__(
        self,
        sim: Simulator,
        host_cycles_per_second: float = 1e9,
        name: str = "vmm0",
    ) -> None:
        if host_cycles_per_second <= 0:
            raise ConfigurationError("host CPU rate must be positive")
        self.sim = sim
        self.name = name
        self.host_cycles_per_second = host_cycles_per_second
        self.vms: Dict[str, VirtualMachine] = {}

    def _total_share(self, excluding: Optional[str] = None) -> float:
        return sum(
            vm.cpu.share for vm_name, vm in self.vms.items() if vm_name != excluding
        )

    def create_vm(
        self,
        name: str,
        tdf: TdfLike = 1,
        cpu_share: float = 1.0,
        node: Optional[Node] = None,
    ) -> VirtualMachine:
        """Boot a guest with the given dilation factor and CPU share.

        If ``node`` is given, it is attached immediately (its clock becomes
        the guest's dilated clock).
        """
        if name in self.vms:
            raise ConfigurationError(f"VM name {name!r} already in use on {self.name}")
        if self._total_share() + cpu_share > 1.0 + 1e-9:
            raise ConfigurationError(
                f"CPU over-commit on {self.name}: existing shares "
                f"{self._total_share():.3f} + requested {cpu_share:.3f} > 1"
            )
        vm = VirtualMachine(
            self.sim,
            name,
            tdf=tdf,
            host_cycles_per_second=self.host_cycles_per_second,
            cpu_share=cpu_share,
        )
        self.vms[name] = vm
        if node is not None:
            vm.attach_node(node)
        return vm

    def set_cpu_share(self, vm_name: str, share: float) -> None:
        """Re-apportion CPU; enforced against the machine's total."""
        vm = self.vm(vm_name)
        if self._total_share(excluding=vm_name) + share > 1.0 + 1e-9:
            raise ConfigurationError(
                f"CPU over-commit on {self.name} when resizing {vm_name!r}"
            )
        vm.cpu.set_share(share)

    def set_tdf(self, vm_name: str, tdf: TdfLike) -> None:
        """Change a guest's dilation factor at runtime."""
        self.vm(vm_name).set_tdf(tdf)

    def vm(self, name: str) -> VirtualMachine:
        """Look up a guest by name."""
        try:
            return self.vms[name]
        except KeyError:
            raise ConfigurationError(f"no VM named {name!r} on {self.name}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hypervisor({self.name}, vms={sorted(self.vms)})"
