"""``repro.core`` — time dilation, the paper's primary contribution.

The package provides the dilated time base (:class:`TDF`,
:class:`DilatedClock`), the guest-visible services built on it
(:class:`TimerService`, :class:`VirtualCpu`), the container tying them to a
network node (:class:`VirtualMachine`), the VMM that creates and polices
guests (:class:`Hypervisor`), and the resource-scaling arithmetic used to
configure experiments (:mod:`repro.core.dilation`).
"""

from .clock import DilatedClock
from .cpu import CpuTask, VirtualCpu
from .disk import DiskRequest, VirtualDisk
from .dilation import (
    NetworkProfile,
    cpu_share_for_constant_speed,
    perceived,
    physical_for,
    resource_scaling_rows,
)
from .tdf import TDF, as_tdf
from .timer import PeriodicTimer, Timer, TimerService
from .vm import VirtualMachine
from .vmm import Hypervisor

__all__ = [
    "TDF",
    "as_tdf",
    "DilatedClock",
    "TimerService",
    "Timer",
    "PeriodicTimer",
    "CpuTask",
    "VirtualCpu",
    "DiskRequest",
    "VirtualDisk",
    "VirtualMachine",
    "Hypervisor",
    "NetworkProfile",
    "perceived",
    "physical_for",
    "cpu_share_for_constant_speed",
    "resource_scaling_rows",
]
