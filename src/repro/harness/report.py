"""ASCII rendering for experiment tables and figure series.

Benchmarks print the same rows the paper's tables and figures report, plus
a dilated-vs-baseline error column the paper could only eyeball from
graphs. Everything renders as monospace tables so ``pytest -s`` or the
``repro-figure`` CLI shows results directly in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = ["Table", "FigureResult", "Check"]


class Table:
    """A fixed-column ASCII table."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any) -> None:
        """Append one row; values are str()-ed (pre-format floats yourself)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([str(v) for v in values])

    def to_csv(self) -> str:
        """The table as CSV (header row + data rows), for offline plotting."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def render(self) -> str:
        """The table as a string (no trailing newline)."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


@dataclass
class Check:
    """One shape assertion attached to a figure (who wins, crossover, …)."""

    description: str
    passed: bool


@dataclass
class FigureResult:
    """Everything a benchmark prints and asserts for one paper figure."""

    figure_id: str
    title: str
    table: Table
    notes: List[str] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)
    #: Optional ASCII rendering of the figure's series (printed after the
    #: table — the paper shows graphs, so we do too).
    chart: Optional[str] = None
    #: Optional engine-profile text (``EngineProfiler.render()``) captured
    #: while the figure ran; appended to the report when present.
    engine_profile: Optional[str] = None

    def check(self, description: str, passed: bool) -> None:
        """Record a shape check."""
        self.checks.append(Check(description, bool(passed)))

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failed_checks(self) -> List[Check]:
        return [check for check in self.checks if not check.passed]

    def render(self) -> str:
        """Full report: table, chart, notes, and check outcomes."""
        parts = [f"=== {self.figure_id}: {self.title} ===", self.table.render()]
        if self.chart:
            parts.append(self.chart)
        for note in self.notes:
            parts.append(f"  note: {note}")
        for check in self.checks:
            marker = "PASS" if check.passed else "FAIL"
            parts.append(f"  [{marker}] {check.description}")
        if self.engine_profile:
            parts.append(self.engine_profile)
        return "\n".join(parts)

    def write_csv(self, directory) -> str:
        """Dump the table to ``<directory>/<figure_id>.csv``; returns the path."""
        import os

        path = os.path.join(str(directory), f"{self.figure_id}.csv")
        with open(path, "w", newline="") as handle:
            handle.write(self.table.to_csv())
        return path
